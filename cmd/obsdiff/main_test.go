package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeProfile renders a synthetic run's profile, with the straggler
// rank's compute stretched by skew seconds per iteration.
func writeProfile(t *testing.T, dir, name string, skew float64) string {
	t.Helper()
	r := obs.NewRollupRecorder()
	for g := 0; g < 2; g++ {
		u := r.Unit("rank/" + string(rune('0'+g)))
		extra := 0.0
		if g == 1 {
			extra = skew
		}
		u.SetIter(0)
		u.Record(obs.KindCompute, 0, 1+extra, 0, 100)
		u.Record(obs.KindDMA, 1+extra, 1.5+extra, 64, 0)
		u.Finish(1.5 + extra)
	}
	var buf bytes.Buffer
	if err := obs.WriteProfileJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObsdiffExitContract(t *testing.T) {
	dir := t.TempDir()
	a := writeProfile(t, dir, "a.json", 0)
	b := writeProfile(t, dir, "b.json", 0)
	c := writeProfile(t, dir, "c.json", 0.5)

	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{a, b}); code != 0 {
		t.Errorf("identical profiles exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no deltas") {
		t.Errorf("zero-delta output:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run(&stdout, &stderr, []string{a, c}); code != 1 {
		t.Errorf("diverging profiles exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "rank/compute_seconds") {
		t.Errorf("diff output does not name the regressed row:\n%s", stdout.String())
	}

	// A generous threshold accepts the divergence.
	stdout.Reset()
	if code := run(&stdout, &stderr, []string{"-threshold", "0.9", a, c}); code != 0 {
		t.Errorf("thresholded diff exit = %d, want 0", code)
	}

	// Usage and unreadable input exit 2.
	if code := run(&stdout, &stderr, []string{a}); code != 2 {
		t.Errorf("one-arg exit = %d, want 2", code)
	}
	if code := run(&stdout, &stderr, []string{a, filepath.Join(dir, "missing.json")}); code != 2 {
		t.Errorf("missing-file exit = %d, want 2", code)
	}
	if code := run(&stdout, &stderr, []string{"-threshold", "-1", a, b}); code != 2 {
		t.Errorf("negative-threshold exit = %d, want 2", code)
	}
}

func TestObsdiffBenchMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := write("old.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":10,"ns_per_op":100}]}`)
	slow := write("slow.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":10,"ns_per_op":200}]}`)
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-bench", old, old}); code != 0 {
		t.Errorf("identical bench exit = %d", code)
	}
	stdout.Reset()
	if code := run(&stdout, &stderr, []string{"-bench", old, slow}); code != 1 {
		t.Errorf("2x bench regression exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "bench:BenchmarkA-8") {
		t.Errorf("bench diff output:\n%s", stdout.String())
	}
	// An obs profile is not a bench report.
	prof := writeProfile(t, dir, "p.json", 0)
	if code := run(&stdout, &stderr, []string{"-bench", prof, prof}); code != 2 {
		t.Errorf("profile in bench mode exit = %d, want 2", code)
	}
}
