// Command obsdiff compares two observability exports of the
// simulator — aggregate profiles (-profile-out), JSONL metrics logs
// (-metrics-out), or, with -bench, benchjson reports — and reports
// per-phase deltas per unit class. The exit code is the verdict, so
// CI can gate on it:
//
//	0  no row changed beyond -threshold
//	1  at least one row did
//	2  usage or unreadable/unparsable input
//
// Usage:
//
//	obsdiff old.profile.json new.profile.json
//	obsdiff -threshold 0.05 old.metrics.jsonl new.metrics.jsonl
//	obsdiff -bench BENCH_host.json BENCH_now.json
//
// The two sides may mix formats (a profile against a metrics log):
// both normalize to per-(unit class, phase) virtual seconds plus a
// whole-run total. A zero-delta comparison prints nothing but the
// hidden-row summary — the shape `make obscheck` asserts on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/profdiff"
)

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0, "relative change (fraction, e.g. 0.05 = 5%) a row must exceed to fail the diff")
	bench := fs.Bool("bench", false, "compare benchjson reports (ns/op per benchmark) instead of obs exports")
	all := fs.Bool("all", false, "print identical rows too, not just changed ones")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obsdiff [-threshold frac] [-bench] [-all] old new")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintln(stderr, "obsdiff: -threshold must be non-negative")
		return 2
	}
	load := profdiff.LoadObs
	if *bench {
		load = profdiff.LoadBench
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 2
	}
	new_, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 2
	}
	rows := profdiff.Diff(old, new_)
	if err := profdiff.Render(stdout, rows, !*all); err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 2
	}
	if changed := profdiff.Changed(rows, *threshold); len(changed) > 0 {
		fmt.Fprintf(stdout, "%d row(s) beyond threshold %g\n", len(changed), *threshold)
		return 1
	}
	fmt.Fprintf(stdout, "no deltas beyond threshold %g\n", *threshold)
	return 0
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}
