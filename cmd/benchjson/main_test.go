package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1Capability-8   	       1	  91234567 ns/op
BenchmarkFig3Level1-8         	       2	  45000000 ns/op	  12 B/op	       3 allocs/op
some stray log line
PASS
ok  	repro	1.234s
pkg: repro/internal/core
BenchmarkArgminDistance-8     	 1000000	      1234.5 ns/op
PASS
ok  	repro/internal/core	0.567s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	want := []Result{
		{Name: "BenchmarkTable1Capability-8", Iters: 1, NsPerOp: 91234567},
		{Name: "BenchmarkFig3Level1-8", Iters: 2, NsPerOp: 45000000},
		{Name: "BenchmarkArgminDistance-8", Iters: 1000000, NsPerOp: 1234.5},
	}
	for i, w := range want {
		if results[i] != w {
			t.Errorf("result %d = %+v, want %+v", i, results[i], w)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	results, err := Parse(strings.NewReader("PASS\nok  \trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from benchmark-free input, want 0", len(results))
	}
}

func TestRenderMetadata(t *testing.T) {
	doc, err := Render("ci", []Result{{Name: "BenchmarkX-4", Iters: 10, NsPerOp: 5}})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Host != "ci" {
		t.Errorf("host = %q, want ci", rep.Host)
	}
	if rep.GoVersion != runtime.Version() || rep.GOOS != runtime.GOOS || rep.GOARCH != runtime.GOARCH {
		t.Errorf("machine metadata %q/%q/%q does not match the runtime", rep.GoVersion, rep.GOOS, rep.GOARCH)
	}
	if rep.NumCPU < 1 {
		t.Errorf("num_cpu = %d, want >= 1", rep.NumCPU)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "BenchmarkX-4" {
		t.Errorf("results round-trip failed: %+v", rep.Results)
	}
	if !bytes.HasSuffix(doc, []byte("\n")) {
		t.Error("report does not end with a newline")
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	code := run(strings.NewReader(sampleBenchOutput), &stdout, &stderr, []string{"-host", "test", "-out", out})
	if code != 0 {
		t.Fatalf("run exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if len(rep.Results) != 3 {
		t.Errorf("written report has %d results, want 3", len(rep.Results))
	}
}

func TestRunNoResultsFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(strings.NewReader("PASS\n"), &stdout, &stderr, nil)
	if code != 1 {
		t.Fatalf("run exit = %d for benchmark-free input, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no benchmark result lines") {
		t.Errorf("stderr %q does not explain the failure", stderr.String())
	}
}

func TestDiffMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := write("old.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":10,"ns_per_op":100}]}`)
	same := write("same.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":12,"ns_per_op":100}]}`)
	slow := write("slow.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":10,"ns_per_op":130}]}`)

	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader(""), &stdout, &stderr, []string{"-diff", old, same}); code != 0 {
		t.Errorf("identical ns/op diff exit = %d, stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run(strings.NewReader(""), &stdout, &stderr, []string{"-diff", old, slow}); code != 1 {
		t.Errorf("30%% regression diff exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "+30.00%") {
		t.Errorf("diff output missing the delta:\n%s", stdout.String())
	}
	// Threshold above the regression passes.
	if code := run(strings.NewReader(""), &stdout, &stderr, []string{"-diff", "-threshold", "0.5", old, slow}); code != 0 {
		t.Errorf("thresholded diff exit = %d, want 0", code)
	}
	// Usage errors exit 2.
	if code := run(strings.NewReader(""), &stdout, &stderr, []string{"-diff", old}); code != 2 {
		t.Errorf("one-file diff exit = %d, want 2", code)
	}
	if code := run(strings.NewReader(""), &stdout, &stderr, []string{"-diff", old, filepath.Join(dir, "missing.json")}); code != 2 {
		t.Errorf("missing-file diff exit = %d, want 2", code)
	}
}
