// Command benchjson turns `go test -bench` output into a machine-
// readable perf-trajectory file. It reads the benchmark text from
// stdin, extracts ns/op per benchmark, attaches the machine metadata
// needed to compare runs honestly (host label, Go version, OS, arch,
// CPU count), and writes one JSON document.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -host ci -out BENCH_ci.json
//
// The parser ignores everything that is not a benchmark result line,
// so package headers, PASS/ok trailers and log output pass through
// harmlessly. Results keep their input order, which `go test` makes
// deterministic, so reruns on the same machine diff cleanly.
//
// Diff mode compares two report files instead of reading stdin:
//
//	benchjson -diff BENCH_old.json BENCH_new.json
//	benchjson -diff -threshold 0.10 BENCH_old.json BENCH_new.json
//
// It prints per-benchmark ns/op deltas (shared machinery with
// cmd/obsdiff) and exits 1 when any benchmark moved beyond
// -threshold, 0 otherwise — `make benchdiff` runs it non-blocking
// against the checked-in baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"

	"repro/internal/profdiff"
)

// Report is the schema of a BENCH_<host>.json file.
type Report struct {
	Host      string   `json:"host"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Results   []Result `json:"benchmarks"`
}

// Result is one benchmark line: the name as printed (including the
// -N GOMAXPROCS suffix), the iteration count and the ns/op figure.
type Result struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches `BenchmarkName-8  	      12	  98765 ns/op`
// with any extra per-op metrics after the ns/op column ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// Parse extracts the benchmark results from `go test -bench` text.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		out = append(out, Result{Name: m[1], Iters: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading input: %w", err)
	}
	return out, nil
}

// Render builds the report document for a host label.
func Render(host string, results []Result) ([]byte, error) {
	rep := Report{
		Host:      host,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Results:   results,
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	defaultHost, _ := os.Hostname()
	if defaultHost == "" {
		defaultHost = "host"
	}
	host := fs.String("host", defaultHost, "host label recorded in the report (and baseline file name)")
	out := fs.String("out", "", "output path; stdout when empty")
	diff := fs.Bool("diff", false, "compare two report files (old new) instead of reading stdin")
	threshold := fs.Float64("threshold", 0, "with -diff: relative ns/op change (fraction) a benchmark must exceed to fail")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff {
		return runDiff(stdout, stderr, fs.Args(), *threshold)
	}
	results, err := Parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark result lines on stdin")
		return 1
	}
	doc, err := Render(*host, results)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if *out == "" {
		_, err = stdout.Write(doc)
	} else {
		err = os.WriteFile(*out, doc, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(results), *out)
	}
	return 0
}

// runDiff is the -diff mode: per-benchmark ns/op deltas between two
// report files, exit 1 when any moved beyond the threshold.
func runDiff(stdout, stderr io.Writer, paths []string, threshold float64) int {
	if len(paths) != 2 {
		fmt.Fprintln(stderr, "benchjson: -diff needs exactly two report files (old new)")
		return 2
	}
	if threshold < 0 {
		fmt.Fprintln(stderr, "benchjson: -threshold must be non-negative")
		return 2
	}
	old, err := profdiff.LoadBench(paths[0])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	cur, err := profdiff.LoadBench(paths[1])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	rows := profdiff.Diff(old, cur)
	if err := profdiff.Render(stdout, rows, false); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if changed := profdiff.Changed(rows, threshold); len(changed) > 0 {
		fmt.Fprintf(stdout, "%d benchmark(s) beyond threshold %g\n", len(changed), threshold)
		return 1
	}
	fmt.Fprintf(stdout, "no deltas beyond threshold %g\n", threshold)
	return 0
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]))
}
