package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// sweepSpec is a user-defined figure: one scenario parameter varies
// over a range while the others are fixed. The -sweep flag syntax is
// semicolon-separated key=value pairs, where exactly one of nodes, n,
// k or d carries a range:
//
//	lo..hi:step     arithmetic progression
//	lo..hi*factor   geometric progression
//
// Examples:
//
//	-sweep "level=3;nodes=128;n=1265723;k=2000;d=512..8192:512"
//	-sweep "level=2;nodes=2..256*2;n=1265723;k=2000;d=4096"
//	-sweep "level=0;nodes=128;n=1265723;k=256..131072*2;d=4096"  (level 0 = both 2 and 3)
type sweepSpec struct {
	levels []core.Level
	base   perfmodel.Scenario
	vary   string
	xs     []int
}

// parseSweep parses the -sweep flag value.
func parseSweep(s string) (*sweepSpec, error) {
	spec := &sweepSpec{}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("sweep: %q is not key=value", part)
		}
		key := strings.TrimSpace(kv[0])
		val := strings.TrimSpace(kv[1])
		if seen[key] {
			return nil, fmt.Errorf("sweep: duplicate key %q", key)
		}
		seen[key] = true
		if key == "level" {
			lv, err := strconv.Atoi(val)
			if err != nil || lv < 0 || lv > 3 {
				return nil, fmt.Errorf("sweep: level must be 0 (compare 2 vs 3), 1, 2 or 3")
			}
			if lv == 0 {
				spec.levels = []core.Level{core.Level2, core.Level3}
			} else {
				spec.levels = []core.Level{core.Level(lv)}
			}
			continue
		}
		if !strings.ContainsAny(val, ".*:") || !strings.Contains(val, "..") {
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s=%q is not an integer", key, val)
			}
			if err := spec.setFixed(key, v); err != nil {
				return nil, err
			}
			continue
		}
		xs, err := parseRange(val)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", key, err)
		}
		if spec.vary != "" {
			return nil, fmt.Errorf("sweep: both %q and %q carry ranges; exactly one may vary", spec.vary, key)
		}
		switch key {
		case "nodes", "n", "k", "d":
			spec.vary = key
			spec.xs = xs
		default:
			return nil, fmt.Errorf("sweep: unknown range key %q", key)
		}
	}
	if len(spec.levels) == 0 {
		return nil, fmt.Errorf("sweep: missing level=")
	}
	if spec.vary == "" {
		return nil, fmt.Errorf("sweep: no parameter carries a range (use lo..hi:step or lo..hi*factor)")
	}
	for _, key := range []string{"nodes", "n", "k", "d"} {
		if key != spec.vary && !seen[key] {
			return nil, fmt.Errorf("sweep: missing %s=", key)
		}
	}
	return spec, nil
}

func (s *sweepSpec) setFixed(key string, v int) error {
	switch key {
	case "nodes":
		s.base.Nodes = v
	case "n":
		s.base.N = v
	case "k":
		s.base.K = v
	case "d":
		s.base.D = v
	default:
		return fmt.Errorf("sweep: unknown key %q", key)
	}
	return nil
}

func (s *sweepSpec) scenarioAt(x int) perfmodel.Scenario {
	sc := s.base
	switch s.vary {
	case "nodes":
		sc.Nodes = x
	case "n":
		sc.N = x
	case "k":
		sc.K = x
	case "d":
		sc.D = x
	}
	return sc
}

// parseRange parses "lo..hi:step" or "lo..hi*factor".
func parseRange(val string) ([]int, error) {
	var sep string
	if strings.Contains(val, ":") {
		sep = ":"
	} else if strings.Contains(val, "*") {
		sep = "*"
	} else {
		return nil, fmt.Errorf("range %q needs :step or *factor", val)
	}
	main, stepStr, _ := strings.Cut(val, sep)
	lo, hi, ok := strings.Cut(main, "..")
	if !ok {
		return nil, fmt.Errorf("range %q needs lo..hi", val)
	}
	loV, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return nil, fmt.Errorf("bad range start %q", lo)
	}
	hiV, err := strconv.Atoi(strings.TrimSpace(hi))
	if err != nil {
		return nil, fmt.Errorf("bad range end %q", hi)
	}
	stepV, err := strconv.Atoi(strings.TrimSpace(stepStr))
	if err != nil {
		return nil, fmt.Errorf("bad range step %q", stepStr)
	}
	if loV < 1 || hiV < loV {
		return nil, fmt.Errorf("range %q must satisfy 1 <= lo <= hi", val)
	}
	var xs []int
	switch sep {
	case ":":
		if stepV < 1 {
			return nil, fmt.Errorf("arithmetic step must be >= 1")
		}
		for x := loV; x <= hiV; x += stepV {
			xs = append(xs, x)
		}
	case "*":
		if stepV < 2 {
			return nil, fmt.Errorf("geometric factor must be >= 2")
		}
		for x := loV; x <= hiV; x *= stepV {
			xs = append(xs, x)
		}
	}
	if len(xs) > 64 {
		return nil, fmt.Errorf("range %q yields %d points (max 64)", val, len(xs))
	}
	return xs, nil
}

// customSweep runs a user-defined sweep and emits the table (and chart
// in -plot mode).
func customSweep(c *ctx, sweepArg string) error {
	spec, err := parseSweep(sweepArg)
	if err != nil {
		return err
	}
	var series []perfmodel.Series
	for _, lv := range spec.levels {
		series = append(series, perfmodel.Sweep(lv.String(), lv, spec.xs, spec.scenarioAt))
	}
	show := func(key string, v int) string {
		if key == spec.vary {
			return key + "=*"
		}
		return fmt.Sprintf("%s=%d", key, v)
	}
	title := fmt.Sprintf("Custom sweep — vary %s (%s %s %s %s) [model, calibrated]",
		spec.vary, show("nodes", spec.base.Nodes), show("n", spec.base.N),
		show("k", spec.base.K), show("d", spec.base.D))
	if err := c.emit(seriesTable(title, spec.vary, series)); err != nil {
		return err
	}
	return c.plotSeries("custom sweep (model, log y)", series)
}
