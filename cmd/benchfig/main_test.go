package main

import (
	"strings"
	"testing"
)

func TestRunSelectsNothing(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, 0, false, false, false, false, false); err == nil {
		t.Error("no selection accepted")
	}
}

func TestRunFigure10Hint(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 10, 0, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cmd/landcover") {
		t.Errorf("figure 10 hint missing: %q", b.String())
	}
}

func TestRunSingleTable(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, 1, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Bender, et al [2]", "Our approach"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q", want)
		}
	}
}

func TestRunFigureSeven(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 7, 0, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 7", "Level 2", "Level 3", "cannot run"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 7 output missing %q", want)
		}
	}
}

func TestRunFigureSevenFunctional(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 7, 0, false, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "functional cross-check") {
		t.Error("functional section missing")
	}
}

func TestRunCSVMode(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, 2, false, false, true, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Kegg Network,65554") {
		t.Errorf("CSV output unexpected: %q", out)
	}
	if strings.Contains(out, "---") {
		t.Error("CSV output contains table rule")
	}
}

func TestRunAllTablesAndModelFigures(t *testing.T) {
	// -all without -functional exercises every model exhibit quickly.
	var b strings.Builder
	if err := run(&b, 0, 0, true, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I", "Table II", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6a", "Figure 6b", "Figure 7", "Figure 8", "Figure 9",
		"Table III",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-all output missing %q", want)
		}
	}
}

func TestRunAllFunctional(t *testing.T) {
	// Every figure with its reduced-scale functional cross-check: the
	// full harness end to end. The Figure 6b DES sweep is shrunk to
	// one 512-rank point at a coarser stride — the full 4,096-rank
	// list is the CLI default and is exercised by make schedcheck;
	// under the race detector the full sweep costs minutes.
	savedNodes, savedStride := f6bNodes, f6bStride
	f6bNodes, f6bStride = []int{128}, 16384
	t.Cleanup(func() { f6bNodes, f6bStride = savedNodes, savedStride })
	var b strings.Builder
	if err := run(&b, 0, 0, true, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "functional cross-check") < 6 {
		t.Errorf("expected at least 6 functional sections, got %d",
			strings.Count(out, "functional cross-check"))
	}
	if !strings.Contains(out, "DES driver") {
		t.Error("figure 6b DES sweep section missing")
	}
	// Functional Figure 7 must reproduce the who-wins flip: at the
	// largest functional d, Level 3's column value is below Level 2's.
	idx := strings.Index(out, "Figure 7 functional cross-check")
	if idx < 0 {
		t.Fatal("figure 7 functional section missing")
	}
	section := out[idx:]
	lines := strings.Split(section, "\n")
	var last string
	for _, l := range lines[3:] {
		if strings.TrimSpace(l) == "" {
			break
		}
		last = l
	}
	fields := strings.Fields(last)
	if len(fields) != 3 {
		t.Fatalf("unexpected functional row %q", last)
	}
	if !(fields[2] < fields[1]) { // same width, lexicographic compare works for %.6f
		t.Errorf("at d=%s Level 3 (%s) should beat Level 2 (%s)", fields[0], fields[2], fields[1])
	}
}

func TestRunPlotMode(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 9, 0, false, false, false, true, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 9 (model, log y)", "* = Level 2", "+ = Level 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot output missing %q", want)
		}
	}
}

func TestSortInts(t *testing.T) {
	xs := []int{5, 1, 4, 1, 3}
	sortInts(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}

func TestRunFigureSixFunctional(t *testing.T) {
	// One reduced point of the DES sweep (512 ranks, coarse stride);
	// the full 4,096-rank list runs via the CLI and make schedcheck.
	savedNodes, savedStride := f6bNodes, f6bStride
	f6bNodes, f6bStride = []int{128}, 16384
	t.Cleanup(func() { f6bNodes, f6bStride = savedNodes, savedStride })
	var b strings.Builder
	if err := run(&b, 6, 0, false, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "DES driver") || !strings.Contains(out, "model/sim") {
		t.Errorf("figure 6b DES sweep output unexpected: %q", out)
	}
}
