package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func tableOne(c *ctx) error {
	t := report.NewTable("Table I — Parallel k-means implementations (capability)",
		"Approach", "Hardware", "Model", "Samples n", "Clusters k", "Dimensions d")
	for _, r := range perfmodel.TableI(machine.MustSpec(40960)) {
		t.AddStringRow(r.Approach, r.Hardware, r.Model,
			fmt.Sprintf("%.0g", r.N), fmt.Sprintf("%d", r.K), fmt.Sprintf("%d", r.D))
	}
	return c.emit(t)
}

func tableTwo(c *ctx) error {
	t := report.NewTable("Table II — Benchmarks (synthetic generators with the published shapes)",
		"Data Set", "n", "k (evaluated up to)", "d")
	t.AddStringRow("Kegg Network", fmt.Sprintf("%d", dataset.KeggN), "256", fmt.Sprintf("%d", dataset.KeggD))
	t.AddStringRow("Road Network", fmt.Sprintf("%d", dataset.RoadN), "10,000", fmt.Sprintf("%d", dataset.RoadD))
	t.AddStringRow("US Census 1990", fmt.Sprintf("%d", dataset.CensusN), "10,000", fmt.Sprintf("%d", dataset.CensusD))
	t.AddStringRow("ILSVRC2012 (ImgNet)", fmt.Sprintf("%d", dataset.ImgNetN), "160,000", fmt.Sprintf("%d", dataset.ImgNetD))
	return c.emit(t)
}

func figureThree(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 3 — Level 1 (dataflow partition), one SW26010 processor [model, calibrated]",
		"k", perfmodel.Figure3())); err != nil {
		return err
	}
	if err := c.plotSeries("Figure 3 (model, log y)", perfmodel.Figure3()[:1]); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	// Functional cross-check at reduced n (scale 16) on the simulated
	// machine; times are uncalibrated simulator seconds.
	src, err := dataset.Kegg(16)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 3 functional cross-check — Kegg/16, 1 node [simulator, uncalibrated]",
		"k", "sim s/iter")
	for _, k := range []int{16, 32, 64, 128, 256} {
		res, err := core.Run(core.Config{
			Spec: machine.MustSpec(1), Level: core.Level1, K: k, MaxIters: 2, Seed: 1, Sched: c.sched,
		}, src)
		if err != nil {
			return err
		}
		t.AddStringRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.6f", res.MeanIterTime()))
	}
	return c.emit(t)
}

func figureFour(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 4 — Level 2 (dataflow+centroid partition), one SW26010 processor [model, calibrated]",
		"k", perfmodel.Figure4())); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	src, err := dataset.Kegg(16) // n=4097
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 4 functional cross-check — Kegg/16, 1 node, Level 2 [simulator, uncalibrated]",
		"k", "sim s/iter")
	for _, k := range []int{512, 1024, 2048} {
		res, err := core.Run(core.Config{
			Spec: machine.MustSpec(1), Level: core.Level2, K: k, MaxIters: 1, Seed: 1, SampleStride: 4, Sched: c.sched,
		}, src)
		if err != nil {
			return err
		}
		t.AddStringRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.6f", res.MeanIterTime()))
	}
	return c.emit(t)
}

func figureFive(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 5 — Level 3 (nkd partition), ImgNet shape, 128 nodes [model, calibrated]",
		"k", perfmodel.Figure5())); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	t := report.NewTable("Figure 5 functional cross-check — ImgNet/1024 (n=1236), d=3072, 2 nodes [simulator, uncalibrated]",
		"k", "sim s/iter")
	src, err := dataset.ImgNet(3072, 1024)
	if err != nil {
		return err
	}
	for _, k := range []int{128, 256, 512} {
		res, err := core.Run(core.Config{
			Spec: machine.MustSpec(2), Level: core.Level3, K: k, MaxIters: 1, Seed: 1, SampleStride: 8, Sched: c.sched,
		}, src)
		if err != nil {
			return err
		}
		t.AddStringRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.6f", res.MeanIterTime()))
	}
	return c.emit(t)
}

func figureSix(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 6a — Level 3 large-scale centroid scaling (d=3,072, 128 nodes) [model, calibrated]",
		"k", []perfmodel.Series{perfmodel.Figure6Centroids()})); err != nil {
		return err
	}
	if err := c.emit(seriesTable(
		"Figure 6b — Level 3 node scaling (d=196,608, k=2,000; paper: <18 s at 4,096 nodes) [model, calibrated]",
		"nodes", []perfmodel.Series{perfmodel.Figure6Nodes()})); err != nil {
		return err
	}
	if err := c.plotSeries("Figure 6b (model, log y)", []perfmodel.Series{perfmodel.Figure6Nodes()}); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	return figureSixFunctional(c)
}

// Figure 6b DES sweep shape: the full published sample count and
// centroid count on up to 1,024 nodes = 4,096 ranks — the paper's
// whole-machine configuration, executed in-process by the
// discrete-event driver rather than extrapolated by the model. The
// dimension is reduced (d=196,608 would move terabytes of centroid
// slices) and samples are strided; simulated time still charges the
// full dataflow, so the node-scaling shape survives. MPrime is pinned
// so per-rank centroid slices stay small at every node count, and the
// model column re-uses the same pin via Scenario.MPrime.
const (
	f6bD      = 1024
	f6bK      = 2000
	f6bMPrime = 128
)

// f6bNodes and f6bStride are variables so the test suite can shrink
// the sweep — the race detector multiplies the 4,096-rank points'
// cost several-fold. The CLI always runs this full list, and make
// schedcheck re-pins the 4,096-rank scale in CI on every push.
var (
	f6bNodes  = []int{128, 512, 1024}
	f6bStride = 2048
)

func figureSixFunctional(c *ctx) error {
	src, err := dataset.ImgNet(f6bD, 1)
	if err != nil {
		return err
	}
	// The model column is de-calibrated (divided by CalibrationFactor)
	// to the simulator's theoretical-bandwidth scale, the same
	// comparison the perfmodel consistency suite makes.
	t := report.NewTable(
		fmt.Sprintf("Figure 6b functional cross-check — full n=%d, d=%d, k=%d, DES driver [simulator, uncalibrated]",
			src.N(), f6bD, f6bK),
		"nodes", "ranks", "sim s/iter", "model s/iter", "model/sim")
	for _, nodes := range f6bNodes {
		row := []string{fmt.Sprintf("%d", nodes), fmt.Sprintf("%d", 4*nodes)}
		res, err := core.Run(core.Config{
			Spec: machine.MustSpec(nodes), Level: core.Level3, K: f6bK,
			MPrimeGroup: f6bMPrime, MaxIters: 1, Seed: 1,
			SampleStride: f6bStride, Sched: true,
		}, src)
		if err != nil {
			t.AddStringRow(append(row, "cannot run", "", "")...)
			continue
		}
		sim := res.MeanIterTime()
		row = append(row, fmt.Sprintf("%.6f", sim))
		pred, err := perfmodel.Predict(core.Level3, perfmodel.Scenario{
			Nodes: nodes, N: src.N(), K: f6bK, D: f6bD, MPrime: f6bMPrime,
		})
		if err != nil {
			t.AddStringRow(append(row, "cannot model", "")...)
			continue
		}
		model := pred.Total / perfmodel.CalibrationFactor
		t.AddStringRow(append(row, fmt.Sprintf("%.6f", model), fmt.Sprintf("%.2f", model/sim))...)
	}
	return c.emit(t)
}

func figureSeven(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 7 — L2 vs L3, varying d (k=2,000, n=1,265,723, 128 nodes) [model, calibrated]",
		"d", perfmodel.Figure7())); err != nil {
		return err
	}
	if err := c.plotSeries("Figure 7 (model, log y)", perfmodel.Figure7()); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	// Reduced scale: same who-wins shape with n/512, k=200, 2 nodes.
	t := report.NewTable("Figure 7 functional cross-check — n=2472, k=200, 2 nodes [simulator, uncalibrated]",
		"d", "Level 2 (s)", "Level 3 (s)")
	for _, d := range []int{256, 1024, 4096} {
		src, err := dataset.ImgNet(d, 512)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%d", d)}
		for _, lv := range []core.Level{core.Level2, core.Level3} {
			res, err := core.Run(core.Config{
				Spec: machine.MustSpec(2), Level: lv, K: 200, MaxIters: 1, Seed: 1, SampleStride: 8, Sched: c.sched,
			}, src)
			if err != nil {
				row = append(row, "cannot run")
				continue
			}
			row = append(row, fmt.Sprintf("%.6f", res.MeanIterTime()))
		}
		t.AddStringRow(row...)
	}
	return c.emit(t)
}

func figureEight(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 8 — L2 vs L3, varying k (d=4,096, n=1,265,723, 128 nodes) [model, calibrated]",
		"k", perfmodel.Figure8())); err != nil {
		return err
	}
	if err := c.plotSeries("Figure 8 (model, log y)", perfmodel.Figure8()); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	src, err := dataset.ImgNet(4096, 512)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 8 functional cross-check — n=2472, d=4096, 2 nodes [simulator, uncalibrated]",
		"k", "Level 2 (s)", "Level 3 (s)")
	for _, k := range []int{64, 256, 1024} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, lv := range []core.Level{core.Level2, core.Level3} {
			res, err := core.Run(core.Config{
				Spec: machine.MustSpec(2), Level: lv, K: k, MaxIters: 1, Seed: 1, SampleStride: 8, Sched: c.sched,
			}, src)
			if err != nil {
				row = append(row, "cannot run")
				continue
			}
			row = append(row, fmt.Sprintf("%.6f", res.MeanIterTime()))
		}
		t.AddStringRow(row...)
	}
	return c.emit(t)
}

func figureNine(c *ctx) error {
	if err := c.emit(seriesTable(
		"Figure 9 — L2 vs L3, varying nodes (d=4,096, k=2,000, n=1,265,723) [model, calibrated]",
		"nodes", perfmodel.Figure9())); err != nil {
		return err
	}
	if err := c.plotSeries("Figure 9 (model, log y)", perfmodel.Figure9()); err != nil {
		return err
	}
	if !c.functional {
		return nil
	}
	src, err := dataset.ImgNet(4096, 512)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 9 functional cross-check — n=2472, d=4096, k=200 [simulator, uncalibrated]",
		"nodes", "Level 2 (s)", "Level 3 (s)")
	for _, nodes := range []int{1, 2, 4} {
		row := []string{fmt.Sprintf("%d", nodes)}
		for _, lv := range []core.Level{core.Level2, core.Level3} {
			res, err := core.Run(core.Config{
				Spec: machine.MustSpec(nodes), Level: lv, K: 200, MaxIters: 1, Seed: 1, SampleStride: 8, Sched: c.sched,
			}, src)
			if err != nil {
				row = append(row, "cannot run")
				continue
			}
			row = append(row, fmt.Sprintf("%.6f", res.MeanIterTime()))
		}
		t.AddStringRow(row...)
	}
	return c.emit(t)
}

func tableThree(c *ctx) error {
	rows, err := perfmodel.TableIII()
	if err != nil {
		return err
	}
	t := report.NewTable("Table III — Execution time comparison with other architectures",
		"Approach", "Hardware", "n", "k", "d",
		"their s/iter", "paper Sunway s/iter", "paper speedup",
		"model Sunway s/iter", "model speedup", "model level")
	for _, r := range rows {
		t.AddStringRow(r.Approach, r.Hardware,
			fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.K), fmt.Sprintf("%d", r.D),
			fmt.Sprintf("%.4f", r.TheirSeconds),
			fmt.Sprintf("%.6f (%d nodes)", r.PaperSeconds, r.PaperNodes),
			fmt.Sprintf("%.0fx", r.PaperSpeedup),
			fmt.Sprintf("%.6f", r.ModelSeconds),
			fmt.Sprintf("%.0fx", r.ModelSpeedup),
			r.ModelLevelUsed)
	}
	return c.emit(t)
}
