package main

import (
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"1..5:2", []int{1, 3, 5}},
		{"2..16*2", []int{2, 4, 8, 16}},
		{"512..1536:512", []int{512, 1024, 1536}},
	}
	for _, c := range cases {
		got, err := parseRange(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: %v", c.in, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: %v, want %v", c.in, got, c.want)
			}
		}
	}
	for _, bad := range []string{"5", "1..5", "5..1:1", "1..5:0", "1..5*1", "0..4:1", "a..5:1", "1..b:1", "1..5:x", "1..1000000:1"} {
		if _, err := parseRange(bad); err == nil {
			t.Errorf("parseRange(%q) accepted", bad)
		}
	}
}

func TestParseSweep(t *testing.T) {
	spec, err := parseSweep("level=3;nodes=128;n=1000000;k=2000;d=512..2048*2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.vary != "d" || len(spec.xs) != 3 || len(spec.levels) != 1 {
		t.Errorf("spec = %+v", spec)
	}
	sc := spec.scenarioAt(1024)
	if sc.D != 1024 || sc.K != 2000 || sc.Nodes != 128 || sc.N != 1000000 {
		t.Errorf("scenario = %+v", sc)
	}
	// level=0 expands to the comparison pair.
	spec, err = parseSweep("level=0;nodes=2..8*2;n=1000;k=16;d=64")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.levels) != 2 || spec.vary != "nodes" {
		t.Errorf("spec = %+v", spec)
	}
	if sc := spec.scenarioAt(4); sc.Nodes != 4 || sc.D != 64 {
		t.Errorf("scenario = %+v", sc)
	}
}

func TestParseSweepErrors(t *testing.T) {
	for _, bad := range []string{
		"",                                        // nothing
		"nodes=1;n=10;k=2;d=1..4:1",               // missing level
		"level=3;nodes=1;n=10;k=2;d=4",            // no range
		"level=3;nodes=1..2:1;n=10;k=2;d=1..4:1",  // two ranges
		"level=9;nodes=1;n=10;k=2;d=1..4:1",       // bad level
		"level=3;nodes=1;n=10;k=2",                // missing d
		"level=3;nodes=1;n=10;k=2;d=1..4:1;k=3",   // duplicate key
		"level=3;widgets=7;nodes=1;n=10;k=2;d=4",  // unknown key, no range anywhere
		"level=3;nodes=x;n=10;k=2;d=1..4:1",       // non-integer
		"level=3;nodes",                           // not key=value
		"level=3;widgets=1..4:1;nodes=1;n=10;k=2", // unknown range key
	} {
		if _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q) accepted", bad)
		}
	}
}

func TestCustomSweepEndToEnd(t *testing.T) {
	var b strings.Builder
	c := &ctx{out: &b, plot: true}
	c.emit = emitter(&b, false)
	if err := customSweep(c, "level=0;nodes=128;n=1265723;k=2000;d=2048..8192*2"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Custom sweep", "cannot run", "custom sweep (model, log y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	if err := customSweep(c, "level=3;bad"); err == nil {
		t.Error("bad sweep accepted")
	}
}
