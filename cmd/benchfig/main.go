// Command benchfig regenerates every table and figure of the paper's
// evaluation section. Paper-scale series come from the calibrated
// analytic model (internal/perfmodel); pass -functional to additionally
// run the functional machine simulator at a reduced scale that the host
// can execute, cross-checking the model's shape (who wins, how curves
// grow). Each printed block states which mode produced it.
//
//	benchfig -fig 7             # Figure 7 model series
//	benchfig -fig 7 -functional # plus reduced-scale functional run
//	benchfig -table 3           # Table III
//	benchfig -all               # everything
//	benchfig -fig 8 -csv        # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/perfmodel"
	"repro/internal/report"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (3-9; 10 is produced by cmd/landcover)")
		table      = flag.Int("table", 0, "table to regenerate (1-3)")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		functional = flag.Bool("functional", false, "also run the reduced-scale functional cross-check")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot       = flag.Bool("plot", false, "render ASCII charts of the model series after each figure")
		sweepArg   = flag.String("sweep", "", `custom sweep, e.g. "level=0;nodes=128;n=1265723;k=2000;d=512..8192:512"`)
		sched      = flag.Bool("sched", false, "run functional cross-checks on the discrete-event scheduler driver (bit-identical to the goroutine driver; the Figure 6b sweep always uses it)")
		schedcheck = flag.Bool("schedcheck", false, "run the scheduler gate: a seeded 4,096-rank Figure 6b smoke under the DES driver, plus a crash+straggler fault plan, asserting two-run determinism and perfmodel agreement; exits non-zero on failure")
	)
	flag.Parse()
	out := os.Stdout
	if *schedcheck {
		if err := runSchedCheck(out); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig: schedcheck:", err)
			os.Exit(1)
		}
		return
	}
	if *sweepArg != "" {
		c := &ctx{out: out, plot: *plot && !*csv, sched: *sched}
		c.emit = emitter(out, *csv)
		if err := customSweep(c, *sweepArg); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(out, *fig, *table, *all, *functional, *csv, *plot, *sched); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

// ctx carries the output sink and mode flags through the per-exhibit
// generators.
type ctx struct {
	out        io.Writer
	emit       func(*report.Table) error
	functional bool
	plot       bool
	// sched runs the functional cross-checks on the discrete-event
	// scheduler driver. Results are bit-identical either way (the
	// golden suite pins that); the flag exists to exercise the DES
	// path from the CLI. The Figure 6b sweep ignores it and always
	// uses the DES driver — 4,096 ranks is what that driver is for.
	sched bool
}

// plotSeries renders an ASCII chart of model series (log-y: the
// figures span orders of magnitude) when -plot is active.
func (c *ctx) plotSeries(title string, series []perfmodel.Series) error {
	if !c.plot || len(series) == 0 {
		return nil
	}
	var labels []string
	for _, p := range series[0].Points {
		labels = append(labels, fmt.Sprintf("%d", p.X))
	}
	ch := report.NewChart(title, labels, 14).LogY()
	for _, s := range series {
		ys := make([]float64, 0, len(labels))
		for _, p := range s.Points {
			if p.Infeasible {
				ys = append(ys, math.NaN())
			} else {
				ys = append(ys, p.Seconds)
			}
		}
		// Series on different x grids (Figures 3/4) are plotted only
		// when they align with the first series' grid.
		if len(ys) != len(labels) {
			continue
		}
		if err := ch.Add(report.ChartSeries{Name: s.Name, Y: ys}); err != nil {
			return err
		}
	}
	if err := ch.Render(c.out); err != nil {
		return err
	}
	_, err := fmt.Fprintln(c.out)
	return err
}

// emitter builds the table sink for the chosen output mode.
func emitter(out io.Writer, csv bool) func(*report.Table) error {
	return func(t *report.Table) error {
		if csv {
			return t.CSV(out)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(out)
		return err
	}
}

func run(out io.Writer, fig, table int, all, functional, csv, plot, sched bool) error {
	c := &ctx{out: out, functional: functional, plot: plot && !csv, sched: sched}
	c.emit = emitter(out, csv)
	type job struct {
		enabled bool
		fn      func(*ctx) error
	}
	jobs := []job{
		{all || table == 1, tableOne},
		{all || table == 2, tableTwo},
		{all || fig == 3, figureThree},
		{all || fig == 4, figureFour},
		{all || fig == 5, figureFive},
		{all || fig == 6, figureSix},
		{all || fig == 7, figureSeven},
		{all || fig == 8, figureEight},
		{all || fig == 9, figureNine},
		{all || table == 3, tableThree},
	}
	ran := false
	for _, j := range jobs {
		if !j.enabled {
			continue
		}
		ran = true
		if err := j.fn(c); err != nil {
			return err
		}
	}
	if !ran {
		if fig == 10 {
			fmt.Fprintln(out, "Figure 10 (land-cover classification) is produced by: go run ./cmd/landcover")
			return nil
		}
		flag.Usage()
		return fmt.Errorf("nothing selected: use -fig, -table or -all")
	}
	return nil
}

// seriesTable renders model series as one table: x column, one value
// column per series.
func seriesTable(title, xLabel string, series []perfmodel.Series) *report.Table {
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name+" (s)")
	}
	t := report.NewTable(title, headers...)
	if len(series) == 0 {
		return t
	}
	// Series may have different x grids (Figures 3/4); union them.
	seen := map[int]bool{}
	var xs []int
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sortInts(xs)
	for _, x := range xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if p.Infeasible {
						cell = "cannot run"
					} else {
						cell = fmt.Sprintf("%.4f", p.Seconds)
					}
				}
			}
			row = append(row, cell)
		}
		t.AddStringRow(row...)
	}
	return t
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
