package main

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// The schedcheck gate is the CI contract of the DES driver: the
// full 4,096-rank Figure 6b shape (1,024 nodes, k=2,000, full ImgNet
// sample count) must actually execute in-process, twice to
// byte-identical traces; the analytic model must agree with the
// executed time within the perfmodel consistency tolerance; and a
// seeded crash+straggler fault plan must recover deterministically.
// The dimension and sample stride are tighter than the -functional
// sweep so the gate stays a smoke test, but the rank count is not
// reduced — hosting that world is the point.
const (
	scNodes  = 1024 // 4,096 ranks
	scD      = 256
	scStride = 4096
)

// schedRun captures everything one gate run must reproduce bit for
// bit: the clustering result plus the exported observability
// artifacts.
type schedRun struct {
	res     *core.Result
	trace   []byte
	metrics []byte
}

func schedRunOnce(src dataset.Source, cfg core.Config) (schedRun, error) {
	cfg.Stats = trace.NewStats()
	cfg.Obs = obs.NewRecorder()
	res, err := core.Run(cfg, src)
	if err != nil {
		return schedRun{}, err
	}
	var tr, mx bytes.Buffer
	if err := obs.WriteTraceEvents(&tr, cfg.Obs); err != nil {
		return schedRun{}, err
	}
	if err := obs.WriteMetricsJSONL(&mx, cfg.Obs); err != nil {
		return schedRun{}, err
	}
	return schedRun{res: res, trace: tr.Bytes(), metrics: mx.Bytes()}, nil
}

// assertSameRun requires two runs of the same configuration to be
// indistinguishable: exact iteration counts, bit-identical centroids
// and per-iteration virtual times, byte-identical trace and metrics
// exports.
func assertSameRun(what string, a, b schedRun) error {
	if a.res.Iters != b.res.Iters || a.res.Converged != b.res.Converged {
		return fmt.Errorf("%s: iters/converged differ across runs: %d/%v vs %d/%v",
			what, a.res.Iters, a.res.Converged, b.res.Iters, b.res.Converged)
	}
	if err := sameBits(what+" centroids", a.res.Centroids, b.res.Centroids); err != nil {
		return err
	}
	if err := sameBits(what+" iteration times", a.res.IterTimes, b.res.IterTimes); err != nil {
		return err
	}
	if !bytes.Equal(a.trace, b.trace) {
		return fmt.Errorf("%s: exported Chrome traces differ across runs", what)
	}
	if !bytes.Equal(a.metrics, b.metrics) {
		return fmt.Errorf("%s: exported metrics JSONL differs across runs", what)
	}
	return nil
}

func sameBits(what string, a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return fmt.Errorf("%s[%d]: %016x vs %016x", what, i,
				math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
	return nil
}

func runSchedCheck(out io.Writer) error {
	src, err := dataset.ImgNet(scD, 1)
	if err != nil {
		return err
	}
	base := core.Config{
		Spec: machine.MustSpec(scNodes), Level: core.Level3, K: f6bK,
		MPrimeGroup: f6bMPrime, MaxIters: 1, Seed: 1,
		SampleStride: scStride, Sched: true,
	}
	fmt.Fprintf(out, "schedcheck: clean %d-rank Figure 6b smoke (n=%d, k=%d, d=%d) under the DES driver, twice\n",
		4*scNodes, src.N(), f6bK, scD)
	a, err := schedRunOnce(src, base)
	if err != nil {
		return fmt.Errorf("clean run 1: %w", err)
	}
	b, err := schedRunOnce(src, base)
	if err != nil {
		return fmt.Errorf("clean run 2: %w", err)
	}
	if err := assertSameRun("clean", a, b); err != nil {
		return err
	}
	sim := a.res.MeanIterTime()
	fmt.Fprintf(out, "schedcheck: deterministic (sim %.6f s/iter, trace %d bytes)\n", sim, len(a.trace))

	pred, err := perfmodel.Predict(core.Level3, perfmodel.Scenario{
		Nodes: scNodes, N: src.N(), K: f6bK, D: scD, MPrime: f6bMPrime,
	})
	if err != nil {
		return fmt.Errorf("perfmodel: %w", err)
	}
	// Same comparison as the perfmodel consistency suite: de-calibrate
	// the model to the simulator's theoretical-bandwidth scale and
	// require order-of-magnitude agreement.
	model := pred.Total / perfmodel.CalibrationFactor
	ratio := model / sim
	if ratio < 0.3 || ratio > 3.5 {
		return fmt.Errorf("perfmodel disagrees with the DES run: model %.6f s/iter, sim %.6f s/iter, ratio %.2f outside [0.3, 3.5]",
			model, sim, ratio)
	}
	fmt.Fprintf(out, "schedcheck: perfmodel agreement model/sim = %.2f (tolerance 0.3..3.5)\n", ratio)

	fcfg := base
	fcfg.MaxIters = 2
	fcfg.CheckpointInterval = 1
	fcfg.Faults = fault.Plan{
		Seed:       7,
		Crashes:    []fault.Crash{{CG: 2049, At: 2e-5}},
		Stragglers: []fault.Straggler{{CG: 4095, CPE: -1, Factor: 1.75}},
	}
	fmt.Fprintln(out, "schedcheck: crash+straggler fault plan (crash CG 2049, straggler CG 4095 x1.75), twice")
	fa, err := schedRunOnce(src, fcfg)
	if err != nil {
		return fmt.Errorf("fault run 1: %w", err)
	}
	fb, err := schedRunOnce(src, fcfg)
	if err != nil {
		return fmt.Errorf("fault run 2: %w", err)
	}
	if err := assertSameRun("fault", fa, fb); err != nil {
		return err
	}
	fmt.Fprintf(out, "schedcheck: fault plan deterministic (%d iters, sim %.6f s/iter)\n",
		fa.res.Iters, fa.res.MeanIterTime())
	fmt.Fprintln(out, "schedcheck: PASS")
	return nil
}
