// Command ablate quantifies the design choices behind the paper's
// system, one table per trade:
//
//   - register communication vs the network for the Update-step reduce
//     (Section II.A claims a 3x-4x speedup);
//   - compact vs scattered CG-group placement (Section III.C);
//   - resident vs DRAM-tiled centroid stripes at Level 3;
//   - assignment batch sizing in the Level-3 assign step;
//   - binomial vs ring allreduce for the Update volume;
//   - fat-tree uplink contention under concurrent per-slice reduces;
//   - checkpoint interval under a mid-run CG crash (recovery overhead);
//   - Level-3 crash recovery: the same coordinated-checkpoint cycle
//     when the model itself is partitioned across a CG group;
//   - where virtual time goes per level: the span-tracing phase
//     breakdown (compute / dma / regcomm / mpi) of one workload run at
//     all three partition levels.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/fattree"
	"repro/internal/fault"
	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/regcomm"
	"repro/internal/report"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	for _, section := range []func() (*report.Table, error){
		regVsNet, placement, residentVsTiled, batchSweep, ringVsBinomial, contention, checkpointSweep, level3Recovery, phaseBreakdown,
	} {
		t, err := section()
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// regVsNet compares the register-communication mesh against the
// network for the Update-step reduce volume at several k*d sizes.
func regVsNet() (*report.Table, error) {
	spec := machine.MustSpec(256)
	mesh := regcomm.NewModel(spec)
	net := netmodel.MustNew(spec)
	t := report.NewTable("Register communication vs network for the Update reduce (per CG volume)",
		"k*d elements", "regcomm (s)", "network (s)", "speedup")
	for _, elems := range []int{1 << 14, 1 << 18, 1 << 22} {
		regT := mesh.AllReduceTime(elems / 64)
		hop := net.Latency(machine.SameSupernode) +
			float64(elems/64*ldm.ElemBytes)/net.Bandwidth(machine.SameSupernode)
		netT := 6 * hop * 64
		t.AddStringRow(fmt.Sprintf("%d", elems),
			fmt.Sprintf("%.6f", regT), fmt.Sprintf("%.6f", netT),
			fmt.Sprintf("%.1fx", netT/regT))
	}
	return t, nil
}

// placement compares the min-reduce hop cost for a compact CG group
// against one scattered across supernodes.
func placement() (*report.Table, error) {
	net := netmodel.MustNew(machine.MustSpec(512))
	t := report.NewTable("CG-group placement: compact (intra-supernode) vs scattered (cross-router)",
		"batch bytes", "compact hop (s)", "scattered hop (s)", "penalty")
	for _, bytes := range []int{2 * 256 * 4, 2 * 4096 * 4} {
		intra := net.Latency(machine.SameSupernode) + float64(bytes)/net.Bandwidth(machine.SameSupernode)
		cross := net.Latency(machine.CrossSupernode) + float64(bytes)/net.Bandwidth(machine.CrossSupernode)
		t.AddStringRow(fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%.2e", intra), fmt.Sprintf("%.2e", cross),
			fmt.Sprintf("%.2fx", cross/intra))
	}
	return t, nil
}

// residentVsTiled compares the Level-3 local iteration cost with
// resident centroid stripes against DRAM tiling.
func residentVsTiled() (*report.Table, error) {
	spec := machine.MustSpec(128)
	t := report.NewTable("Level 3: resident centroid stripes vs DRAM tiling (k=2000, 10k samples/group)",
		"d", "m'group", "resident (s)", "tiled (s)", "penalty")
	for _, d := range []int{2048, 4096, 8192} {
		resident := costmodel.Level3(spec, 10000, 2000, d, 16, 256, false)
		tiled := costmodel.Level3(spec, 10000, 2000, d, 16, 256, true)
		t.AddStringRow(fmt.Sprintf("%d", d), "16",
			fmt.Sprintf("%.4f", resident.Seconds()),
			fmt.Sprintf("%.4f", tiled.Seconds()),
			fmt.Sprintf("%.2fx", tiled.Seconds()/resident.Seconds()))
	}
	return t, nil
}

// batchSweep runs the functional Level-3 engine at several assignment
// batch sizes.
func batchSweep() (*report.Table, error) {
	g, err := dataset.ImgNet(512, 2048)
	if err != nil {
		return nil, err
	}
	spec := machine.MustSpec(1)
	t := report.NewTable("Level-3 assignment batch size (functional, n=617, d=512, k=32)",
		"batch", "sim s/iter")
	for _, batch := range []int{1, 4, 16, 64, 256, 1024} {
		res, err := core.Run(core.Config{
			Spec: spec, Level: core.Level3, K: 32, MPrimeGroup: 2,
			MaxIters: 1, Seed: 1, BatchSamples: batch,
		}, g)
		if err != nil {
			return nil, err
		}
		t.AddStringRow(fmt.Sprintf("%d", batch), fmt.Sprintf("%.6f", res.MeanIterTime()))
	}
	return t, nil
}

// ringVsBinomial measures both allreduce algorithms functionally at
// Update-step volumes.
func ringVsBinomial() (*report.Table, error) {
	t := report.NewTable("Allreduce algorithm at Update volume over 16 CGs (functional)",
		"elements", "binomial (sim s)", "ring (sim s)", "ring speedup")
	for _, elems := range []int{1 << 12, 1 << 17, 1 << 20} {
		times := make(map[bool]float64)
		for _, ring := range []bool{false, true} {
			w := mpi.MustWorld(machine.MustSpec(4), nil, 16)
			err := w.Run(func(c *mpi.Comm) error {
				buf := make([]float64, elems)
				if ring {
					return c.AllReduceSumRing(buf, nil)
				}
				return c.AllReduceSum(buf, nil)
			})
			if err != nil {
				return nil, err
			}
			times[ring] = w.MaxTime()
		}
		t.AddStringRow(fmt.Sprintf("%d", elems),
			fmt.Sprintf("%.6f", times[false]), fmt.Sprintf("%.6f", times[true]),
			fmt.Sprintf("%.2fx", times[false]/times[true]))
	}
	return t, nil
}

// contention evaluates the fat-tree uplink model under the Level-3
// Update pattern (many concurrent per-slice allreduces).
func contention() (*report.Table, error) {
	m := fattree.MustNew(machine.MustSpec(2048))
	t := report.NewTable("Fat-tree uplink contention: concurrent per-slice allreduces over 8 supernodes",
		"concurrent collectives", "contention factor")
	for _, conc := range []int{1, 64, 512, 1024} {
		f, err := m.ContentionFactor(0, 8192, 1<<20, conc)
		if err != nil {
			return nil, err
		}
		t.AddStringRow(fmt.Sprintf("%d", conc), fmt.Sprintf("%.2fx", f))
	}
	return t, nil
}

// checkpointIntervals is the sweep shared by the ablation table and
// its U-shape regression test.
var checkpointIntervals = []int{1, 2, 4, 8, 16, 40}

// checkpointRuns executes the fixed fault scenario — one CG crash at
// ~60% of the fault-free completion time — once per checkpoint
// interval and returns the resilient results in sweep order.
func checkpointRuns() ([]*core.Result, error) {
	g, err := dataset.NewGaussianMixture("ckpt", 2000, 48, 8, 0.08, 2.5, 11)
	if err != nil {
		return nil, err
	}
	base := core.Config{Spec: machine.MustSpec(1), Level: core.Level1, K: 48, MaxIters: 40, Seed: 3}
	clean, err := core.Run(base, g)
	if err != nil {
		return nil, err
	}
	crashAt := 0.6 * completionSeconds(clean)
	out := make([]*core.Result, 0, len(checkpointIntervals))
	for _, interval := range checkpointIntervals {
		cfg := base
		cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: crashAt}}}
		cfg.CheckpointInterval = interval
		res, err := core.Run(cfg, g)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// completionSeconds is a run's virtual time-to-completion: the useful
// iteration time plus any recovery overhead (checkpoints, re-planning,
// redone work, retries), all on the same simulated clock.
func completionSeconds(r *core.Result) float64 {
	total := 0.0
	for _, it := range r.IterTimes {
		total += it
	}
	if r.Recovery != nil {
		total += r.Recovery.OverheadSeconds()
	}
	return total
}

// checkpointSweep sweeps the checkpoint interval under one mid-run CG
// crash. Short intervals pay for checkpoints that are never consumed;
// long intervals re-execute everything since the last checkpoint on
// restart; time-to-completion is U-shaped in between (Section on
// recovery cost accounting in docs/FAULT_TOLERANCE.md).
func checkpointSweep() (*report.Table, error) {
	runs, err := checkpointRuns()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Checkpoint interval under a mid-run CG crash (n=2000, d=48, k=48, Level 1)",
		"interval", "ckpts", "ckpt (s)", "redo (s)", "completion (s)")
	for i, res := range runs {
		rec := res.Recovery
		t.AddStringRow(fmt.Sprintf("%d", checkpointIntervals[i]),
			fmt.Sprintf("%d", rec.Checkpoints),
			fmt.Sprintf("%.6f", rec.CheckpointSeconds),
			fmt.Sprintf("%.6f", rec.RedoSeconds),
			fmt.Sprintf("%.6f", completionSeconds(res)))
	}
	return t, nil
}

// level3Recovery runs the coordinated-checkpoint cycle at Level 3,
// where a checkpoint must first gather the centroid stripes of one CG
// group and a restore re-stripes the model over the re-planned groups.
// One mid-run CG crash, swept over the checkpoint interval.
func level3Recovery() (*report.Table, error) {
	g, err := dataset.NewGaussianMixture("l3ckpt", 800, 16, 8, 0.08, 2.5, 11)
	if err != nil {
		return nil, err
	}
	base := core.Config{Spec: machine.MustSpec(2), Level: core.Level3, K: 16, MPrimeGroup: 4, MaxIters: 20, Seed: 3}
	clean, err := core.Run(base, g)
	if err != nil {
		return nil, err
	}
	crashAt := 0.5 * completionSeconds(clean)
	t := report.NewTable("Level-3 crash recovery: checkpoint interval under a mid-run CG crash (n=800, d=16, k=16, m'=4)",
		"interval", "ckpts", "ckpt (s)", "restore (s)", "replan (s)", "redo (s)", "completion (s)")
	for _, interval := range []int{1, 2, 4, 8, 20} {
		cfg := base
		cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 5, At: crashAt}}}
		cfg.CheckpointInterval = interval
		res, err := core.Run(cfg, g)
		if err != nil {
			return nil, err
		}
		rec := res.Recovery
		t.AddStringRow(fmt.Sprintf("%d", interval),
			fmt.Sprintf("%d", rec.Checkpoints),
			fmt.Sprintf("%.6f", rec.CheckpointSeconds),
			fmt.Sprintf("%.6f", rec.RestoreSeconds),
			fmt.Sprintf("%.6f", rec.ReplanSeconds),
			fmt.Sprintf("%.6f", rec.RedoSeconds),
			fmt.Sprintf("%.6f", completionSeconds(res)))
	}
	return t, nil
}

// phaseBreakdown runs one workload at each partition level with the
// span tracer attached and reports where the critical-path rank's
// virtual time goes: the paper's Section IV decomposition measured
// from the recorded spans rather than the closed-form cost model.
func phaseBreakdown() (*report.Table, error) {
	g, err := dataset.NewGaussianMixture("phases", 1200, 32, 8, 0.08, 2.5, 11)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Per-phase virtual time by partition level (n=1200, d=32, k=32, spans; slowest rank)",
		"level", "compute (s)", "dma (s)", "regcomm (s)", "mpi (s)", "other (s)", "total (s)")
	for _, cfg := range []core.Config{
		{Spec: machine.MustSpec(1), Level: core.Level1, K: 32, MaxIters: 10, Seed: 3},
		{Spec: machine.MustSpec(1), Level: core.Level2, K: 32, MGroup: 8, MaxIters: 10, Seed: 3},
		{Spec: machine.MustSpec(1), Level: core.Level3, K: 32, MPrimeGroup: 4, MaxIters: 10, Seed: 3},
	} {
		rec := obs.NewRecorder()
		cfg.Obs = rec
		if _, err := core.Run(cfg, g); err != nil {
			return nil, err
		}
		var worst obs.UnitTotal
		for _, ut := range obs.UnitTotals(rec) {
			if ut.Phases.Total() > worst.Phases.Total() {
				worst = ut
			}
		}
		p := worst.Phases
		t.AddStringRow(cfg.Level.String(),
			fmt.Sprintf("%.6f", p.Compute),
			fmt.Sprintf("%.6f", p.DMA),
			fmt.Sprintf("%.6f", p.Reg),
			fmt.Sprintf("%.6f", p.MPI),
			fmt.Sprintf("%.6f", p.Other+p.Recovery),
			fmt.Sprintf("%.6f", p.Total()))
	}
	return t, nil
}
