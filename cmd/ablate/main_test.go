package main

import (
	"strings"
	"testing"
)

func TestRunAllSections(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Register communication vs network",
		"CG-group placement",
		"resident centroid stripes vs DRAM tiling",
		"assignment batch size",
		"Allreduce algorithm",
		"Fat-tree uplink contention",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	// The register-communication speedup lands in the paper's band at
	// the large Update volume (the last regcomm row).
	if !strings.Contains(out, "x") {
		t.Error("no speedup columns rendered")
	}
}
