package main

import (
	"strings"
	"testing"
)

func TestRunAllSections(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Register communication vs network",
		"CG-group placement",
		"resident centroid stripes vs DRAM tiling",
		"assignment batch size",
		"Allreduce algorithm",
		"Fat-tree uplink contention",
		"Checkpoint interval under a mid-run CG crash",
		"Level-3 crash recovery",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	// The register-communication speedup lands in the paper's band at
	// the large Update volume (the last regcomm row).
	if !strings.Contains(out, "x") {
		t.Error("no speedup columns rendered")
	}
}

// TestCheckpointSweepIsUShaped: time-to-completion under the fixed
// crash must be worse at both sweep extremes than at the best interior
// interval — frequent checkpoints pay write overhead, rare ones pay
// redo overhead.
func TestCheckpointSweepIsUShaped(t *testing.T) {
	runs, err := checkpointRuns()
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, len(runs))
	for i, r := range runs {
		totals[i] = completionSeconds(r)
	}
	best, bestIdx := totals[0], 0
	for i, v := range totals {
		if v < best {
			best, bestIdx = v, i
		}
	}
	if bestIdx == 0 || bestIdx == len(totals)-1 {
		t.Fatalf("completion minimum at sweep edge (interval %d): totals=%v",
			checkpointIntervals[bestIdx], totals)
	}
	if totals[0] <= best {
		t.Errorf("interval %d (%.9g) not slower than best %.9g",
			checkpointIntervals[0], totals[0], best)
	}
	if last := totals[len(totals)-1]; last <= best {
		t.Errorf("interval %d (%.9g) not slower than best %.9g",
			checkpointIntervals[len(totals)-1], last, best)
	}
	// The extremes must be dominated by the matching overhead class.
	if first := runs[0].Recovery; first.CheckpointSeconds <= runs[len(runs)-1].Recovery.CheckpointSeconds {
		t.Errorf("interval %d checkpoint overhead %.9g not above interval %d's %.9g",
			checkpointIntervals[0], first.CheckpointSeconds,
			checkpointIntervals[len(runs)-1], runs[len(runs)-1].Recovery.CheckpointSeconds)
	}
	if last := runs[len(runs)-1].Recovery; last.RedoSeconds <= runs[0].Recovery.RedoSeconds {
		t.Errorf("interval %d redo overhead %.9g not above interval %d's %.9g",
			checkpointIntervals[len(runs)-1], last.RedoSeconds,
			checkpointIntervals[0], runs[0].Recovery.RedoSeconds)
	}
}
