package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func base(out *strings.Builder) options {
	return options{
		out: out, dsName: "gauss", scale: 64, n: 400, d: 8, components: 4,
		level: 1, k: 4, nodes: 1, iters: 5, seed: 1, stride: 1, algo: "sim",
	}
}

func TestRunSimulated(t *testing.T) {
	var b strings.Builder
	if err := run(base(&b)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"plan    :", "quality :", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAutoLevelAndSummary(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.level = 0
	o.summary = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"mean_iter_seconds"`) {
		t.Error("summary JSON missing")
	}
}

func TestRunSaveModel(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.savePath = filepath.Join(t.TempDir(), "model.swkm")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(o.savePath)
	if err != nil {
		t.Fatal(err)
	}
	// v2 model files: 16-byte header + k*d float64 payload + 4-byte CRC.
	if info.Size() != 16+4*8*8+4 {
		t.Errorf("model file size %d", info.Size())
	}
}

func TestRunHostBaselines(t *testing.T) {
	for _, algo := range []string{"lloyd", "hamerly", "elkan", "minibatch"} {
		var b strings.Builder
		o := base(&b)
		o.algo = algo
		o.useKpp = true
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(b.String(), algo+" (host baseline)") {
			t.Errorf("%s output wrong:\n%s", algo, b.String())
		}
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.algo = "magic"
	if err := run(o); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestBuildSourceVariants(t *testing.T) {
	for _, name := range []string{"gauss", "hard", "kegg", "road", "census", "imgnet", "landcover"} {
		src, labeler, err := buildSource(name, 256, 100, 8, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if src.N() < 1 || src.D() < 1 {
			t.Errorf("%s: shape %dx%d", name, src.N(), src.D())
		}
		if labeler == nil {
			t.Errorf("%s: no labeler", name)
		}
	}
	if _, _, err := buildSource("nope", 1, 1, 1, 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunInference(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.savePath = filepath.Join(t.TempDir(), "model.swkm")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Reload and classify.
	var b2 strings.Builder
	o2 := base(&b2)
	o2.loadPath = o.savePath
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "model   :") || !strings.Contains(b2.String(), "quality :") {
		t.Errorf("inference output wrong:\n%s", b2.String())
	}
	// Dimension mismatch rejected.
	o3 := base(&strings.Builder{})
	o3.loadPath = o.savePath
	o3.d = 16
	if err := run(o3); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Missing file.
	o4 := base(&strings.Builder{})
	o4.loadPath = filepath.Join(t.TempDir(), "missing.swkm")
	if err := run(o4); err == nil {
		t.Error("missing model accepted")
	}
}

func TestRunFineGrainedKernels(t *testing.T) {
	for _, algo := range []string{"fine1", "fine2", "fine3"} {
		var b strings.Builder
		o := base(&b)
		o.algo = algo
		o.n = 256
		o.iters = 3
		if algo == "fine3" {
			o.mprime = 2
		}
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(b.String(), "CPE-granularity reference") {
			t.Errorf("%s output wrong:\n%s", algo, b.String())
		}
	}
}

func TestRunStrideSkipsQuality(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.stride = 4
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "quality :") {
		t.Error("quality printed in stride mode")
	}
}

func TestBuildSpecPrecedence(t *testing.T) {
	// Preset overrides nodes.
	o := options{nodes: 7, preset: "processor"}
	s, err := o.buildSpec()
	if err != nil || s.Nodes != 1 {
		t.Errorf("preset spec = %v (%v)", s, err)
	}
	// JSON file overrides both.
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"nodes":3,"ldm_bytes_per_cpe":65536,"dram_bytes_per_cg":8589934592,
		"bandwidths":{"DMA":32e9,"RegComm":46.4e9,"Network":16e9,"IntraSupernodeFactor":1,
		"InterSupernodeFactor":0.6,"NetworkLatency":1.5e-6,"DMALatency":1e-6,"RegLatency":1e-8},
		"compute":{"FlopsPerCPE":4e9}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o = options{nodes: 7, preset: "processor", specPath: path}
	s, err = o.buildSpec()
	if err != nil || s.Nodes != 3 {
		t.Errorf("file spec = %v (%v)", s, err)
	}
	// Bad preset fails.
	o = options{preset: "nope"}
	if _, err := o.buildSpec(); err == nil {
		t.Error("bad preset accepted")
	}
	// Missing file fails.
	o = options{specPath: filepath.Join(t.TempDir(), "missing.json")}
	if _, err := o.buildSpec(); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	o := base(&b)
	o.traceOut = filepath.Join(dir, "trace.json")
	o.metricsOut = filepath.Join(dir, "metrics.jsonl")
	o.timeline = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"per-rank virtual-time timeline", "trace   :", "metrics :", "C compute"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	trace1, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(trace1), `{"traceEvents":[`) {
		t.Errorf("trace file does not open a traceEvents array: %.40s", trace1)
	}
	metrics1, err := os.ReadFile(o.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics1), `"type":"rank_iter"`) {
		t.Error("metrics file has no rank_iter lines")
	}

	// Identical flags and seed reproduce both exports byte for byte.
	var b2 strings.Builder
	o2 := base(&b2)
	o2.traceOut = filepath.Join(dir, "trace2.json")
	o2.metricsOut = filepath.Join(dir, "metrics2.jsonl")
	o2.timeline = true
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
	trace2, err := os.ReadFile(o2.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(trace1) != string(trace2) {
		t.Error("identical runs produced different trace exports")
	}
	metrics2, err := os.ReadFile(o2.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(metrics1) != string(metrics2) {
		t.Error("identical runs produced different metrics exports")
	}
}

func TestRunObservabilityFineGrained(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.algo = "fine2"
	o.mgroup = 8
	o.traceOut = filepath.Join(t.TempDir(), "trace.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cpe/63"`) {
		t.Error("fine-grained trace missing CPE tracks")
	}
}

func TestRunObservabilityRejectsHostAlgos(t *testing.T) {
	var b strings.Builder
	o := base(&b)
	o.algo = "lloyd"
	o.timeline = true
	if err := run(o); err == nil || !strings.Contains(err.Error(), "simulated machine") {
		t.Errorf("host baseline with -timeline: err = %v, want a simulated-machine error", err)
	}
}

func TestRunRollupProfileExports(t *testing.T) {
	dir := t.TempDir()
	render := func(sub string) (profile, folded, trace string) {
		var b strings.Builder
		o := base(&b)
		o.rollup = true
		o.sched = true
		o.profileOut = filepath.Join(dir, sub+"-p.json")
		o.foldedOut = filepath.Join(dir, sub+"-f.txt")
		o.traceOut = filepath.Join(dir, sub+"-t.json")
		o.traceAgg = 4 // main() implies this under -rollup; set explicitly here
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{"profile :", "folded  :", "aggregate, top 4 stragglers"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
		read := func(p string) string {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			return string(data)
		}
		return read(o.profileOut), read(o.foldedOut), read(o.traceOut)
	}
	p1, f1, tr1 := render("a")
	if !strings.Contains(p1, `"schema": "swkm-profile/1"`) {
		t.Errorf("profile lacks its schema marker: %.80s", p1)
	}
	if !strings.Contains(p1, `"sched:dispatches"`) {
		t.Error("sched-driver profile lacks the scheduler counters")
	}
	if !strings.Contains(f1, "rank;iter:") {
		t.Errorf("folded stacks look wrong: %.80s", f1)
	}
	if !strings.Contains(tr1, `agg:rank`) {
		t.Errorf("aggregate trace lacks class lanes: %.120s", tr1)
	}
	// Byte determinism across identical seeded runs.
	p2, f2, tr2 := render("b")
	if p1 != p2 || f1 != f2 || tr1 != tr2 {
		t.Error("identical rollup runs produced different exports")
	}
}

func TestRunProfileWithoutRollup(t *testing.T) {
	// -profile-out works from a span-retaining run too, and produces
	// the same bytes as a rollup run of the same seed.
	dir := t.TempDir()
	render := func(rollup bool, sub string) string {
		var b strings.Builder
		o := base(&b)
		o.rollup = rollup
		o.profileOut = filepath.Join(dir, sub+".json")
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(o.profileOut)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if span, roll := render(false, "span"), render(true, "roll"); span != roll {
		t.Error("profile bytes differ between recorder modes")
	}
}
