// Command swkmeans runs multi-level k-means on the simulated Sunway
// TaihuLight: pick a workload, a partition level and a machine size,
// and it reports the partition plan, simulated per-iteration
// completion times (the paper's metric), the traffic breakdown and
// clustering quality against the generated ground truth.
//
// Examples:
//
//	swkmeans -dataset kegg -scale 8 -level 1 -k 64 -nodes 1
//	swkmeans -dataset imgnet -scale 2048 -d 3072 -level 3 -k 128 -nodes 2
//	swkmeans -dataset gauss -n 5000 -d 64 -components 8 -level 2 -k 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"runtime"
	"runtime/pprof"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/report"
	"repro/internal/sw26010"
	"repro/internal/trace"
)

func main() {
	var (
		dsName     = flag.String("dataset", "gauss", "workload: gauss, hard, kegg, road, census, imgnet, landcover")
		scale      = flag.Int("scale", 64, "divide the published sample count by this factor (shaped datasets)")
		n          = flag.Int("n", 4096, "samples (gauss dataset)")
		d          = flag.Int("d", 32, "dimensions (gauss and imgnet datasets)")
		components = flag.Int("components", 8, "ground-truth components (gauss dataset)")
		level      = flag.Int("level", 3, "partition level: 1, 2, 3, or 0 = auto")
		k          = flag.Int("k", 8, "centroids")
		nodes      = flag.Int("nodes", 1, "SW26010 nodes to simulate")
		iters      = flag.Int("iters", 10, "max Lloyd iterations")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		stride     = flag.Int("stride", 1, "process every stride-th sample (timing mode when > 1)")
		mgroup     = flag.Int("mgroup", 0, "Level-2 CPE group size (0 = auto)")
		mprime     = flag.Int("mprime", 0, "Level-3 CG group size (0 = auto)")
		useKpp     = flag.Bool("kmeanspp", false, "use k-means++ initialization")
		algo       = flag.String("algo", "sim", "sim (simulated machine), a host baseline (lloyd, hamerly, elkan, minibatch), or a fine-grained CPE-level kernel (fine1, fine2, fine3)")
		savePath   = flag.String("save", "", "write the trained centroid model to this file")
		loadPath   = flag.String("load", "", "inference mode: classify the dataset with an existing centroid model instead of training")
		summary    = flag.Bool("summary", false, "emit a JSON result summary to stdout")
		preset     = flag.String("preset", "", "machine preset overriding -nodes: taihulight, headline, comparison, processor")
		specPath   = flag.String("spec", "", "load the machine spec from a JSON file (see machine.WriteJSON)")
		faultSpec  = flag.String("faults", "", "deterministic fault plan, e.g. \"seed=7; crash=1@2e-5; msg=0.01; link=*@0:1x4\" (see docs/FAULT_TOLERANCE.md)")
		ckpt       = flag.Int("ckpt", 0, "checkpoint interval in iterations under -faults (0 = default)")
		dropLost   = flag.Bool("droplost", false, "drop a failed rank's data shard instead of redistributing it")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of the simulated run to this file (see docs/OBSERVABILITY.md)")
		metricsOut = flag.String("metrics-out", "", "write a JSONL span and per-iteration metrics log of the simulated run to this file")
		timeline   = flag.Bool("timeline", false, "render an ASCII per-rank virtual-time timeline after the run")
		rollup     = flag.Bool("rollup", false, "aggregate observability online instead of retaining spans: bounded memory at any rank count; excludes -timeline, and -trace-out switches to the aggregate form")
		profileOut = flag.String("profile-out", "", "write the per-phase aggregate profile JSON of the simulated run to this file (see docs/OBSERVABILITY.md)")
		foldedOut  = flag.String("folded-out", "", "write the profile as folded stacks for flamegraph rendering to this file")
		traceAgg   = flag.Int("trace-agg", 0, "export -trace-out in aggregate form: one rollup lane per unit class plus this many top straggler lanes (0 = full per-unit trace; implied 8 under -rollup)")
		schedFlag  = flag.Bool("sched", false, "run the simulated machine on the discrete-event scheduler driver (bit-identical to the default goroutine driver; scales to thousands of ranks)")
		cpuprofile = flag.String("cpuprofile", "", "write a host CPU profile of this process to the given file")
		memprofile = flag.String("memprofile", "", "write a host heap profile to the given file on exit")
	)
	flag.Parse()
	// Exit code contract: 2 for unusable flags (flag.Parse exits 2 on
	// syntax errors itself; semantic flag errors follow suit), 1 for
	// run failures.
	var faults fault.Plan
	if *faultSpec != "" {
		var err error
		faults, err = fault.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swkmeans: -faults:", err)
			os.Exit(2)
		}
	}
	if *ckpt < 0 {
		fmt.Fprintln(os.Stderr, "swkmeans: -ckpt must be non-negative")
		os.Exit(2)
	}
	if *traceAgg < 0 {
		fmt.Fprintln(os.Stderr, "swkmeans: -trace-agg must be non-negative")
		os.Exit(2)
	}
	if *rollup && *timeline {
		fmt.Fprintln(os.Stderr, "swkmeans: -timeline needs the raw spans that -rollup folds away; pick one")
		os.Exit(2)
	}
	if *rollup && *traceAgg == 0 {
		// A rollup recorder has no spans to export in full; the trace
		// output, when asked for, is the aggregate form.
		*traceAgg = 8
	}
	opts := options{
		out:    os.Stdout,
		dsName: *dsName, scale: *scale, n: *n, d: *d, components: *components,
		level: *level, k: *k, nodes: *nodes, iters: *iters, seed: *seed,
		stride: *stride, mgroup: *mgroup, mprime: *mprime, useKpp: *useKpp,
		algo: *algo, savePath: *savePath, loadPath: *loadPath, summary: *summary,
		preset: *preset, specPath: *specPath,
		faults: faults, ckpt: *ckpt, dropLost: *dropLost,
		traceOut: *traceOut, metricsOut: *metricsOut, timeline: *timeline,
		rollup: *rollup, profileOut: *profileOut, foldedOut: *foldedOut,
		traceAgg: *traceAgg,
		sched:    *schedFlag,
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swkmeans: -cpuprofile:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "swkmeans: -cpuprofile:", err)
			os.Exit(2)
		}
	}
	err := run(opts)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if merr := writeMemProfile(*memprofile); merr != nil && err == nil {
			err = merr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swkmeans:", err)
		os.Exit(1)
	}
}

// writeMemProfile dumps a heap profile after a final GC so the numbers
// reflect live allocations, not garbage awaiting collection.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("-memprofile: %w", err)
	}
	return f.Close()
}

type options struct {
	out                     io.Writer
	dsName                  string
	scale, n, d, components int
	level, k, nodes, iters  int
	seed                    uint64
	stride, mgroup, mprime  int
	useKpp                  bool
	algo                    string
	savePath                string
	loadPath                string
	summary                 bool
	preset                  string
	specPath                string
	faults                  fault.Plan
	ckpt                    int
	dropLost                bool
	traceOut, metricsOut    string
	timeline                bool
	rollup                  bool
	profileOut, foldedOut   string
	traceAgg                int
	sched                   bool
	rec                     *obs.Recorder
}

// obsRequested reports whether any observability output was asked for.
func (o options) obsRequested() bool {
	return o.traceOut != "" || o.metricsOut != "" || o.timeline ||
		o.profileOut != "" || o.foldedOut != ""
}

// buildSpec resolves the machine: an explicit JSON spec wins, then a
// preset, then -nodes.
func (o options) buildSpec() (*machine.Spec, error) {
	if o.specPath != "" {
		f, err := os.Open(o.specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return machine.ReadJSON(f)
	}
	if o.preset != "" {
		return machine.Preset(o.preset)
	}
	return machine.NewSpec(o.nodes)
}

// buildSource constructs the selected workload and returns it along
// with its ground-truth labeler (nil when unknown).
func buildSource(name string, scale, n, d, components int, seed uint64) (dataset.Source, func(int) int, error) {
	switch name {
	case "gauss":
		g, err := dataset.NewGaussianMixture("gauss", n, d, components, 0.2, 2.0, seed)
		if err != nil {
			return nil, nil, err
		}
		return g, g.TrueLabel, nil
	case "kegg":
		g, err := dataset.Kegg(scale)
		if err != nil {
			return nil, nil, err
		}
		return g, g.TrueLabel, nil
	case "road":
		g, err := dataset.Road(scale)
		if err != nil {
			return nil, nil, err
		}
		return g, g.TrueLabel, nil
	case "census":
		g, err := dataset.Census(scale)
		if err != nil {
			return nil, nil, err
		}
		return g, g.TrueLabel, nil
	case "imgnet":
		g, err := dataset.ImgNet(d, scale)
		if err != nil {
			return nil, nil, err
		}
		return g, g.TrueLabel, nil
	case "landcover":
		side := 2448 / max(1, scale)
		lc, err := dataset.NewLandCover(max(8, side), max(8, side), d, seed)
		if err != nil {
			return nil, nil, err
		}
		return lc, lc.TrueLabel, nil
	case "hard":
		// Anisotropic, imbalanced mixture with 8% uniform outliers.
		h, err := dataset.NewHardMixture("hard", n, d, components, 0.15, 2.0, 3, 0.08, 0.7, seed)
		if err != nil {
			return nil, nil, err
		}
		return h, h.TrueLabel, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func run(o options) error {
	src, labeler, err := buildSource(o.dsName, o.scale, o.n, o.d, o.components, o.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "dataset : %s  n=%d d=%d\n", o.dsName, src.N(), src.D())

	if o.obsRequested() {
		simulated := o.loadPath == ""
		switch o.algo {
		case "sim", "fine1", "fine2", "fine3":
		default:
			simulated = false
		}
		if !simulated {
			return fmt.Errorf("-trace-out/-metrics-out/-timeline/-profile-out/-folded-out trace the simulated machine; they need -algo sim, fine1, fine2 or fine3 and training mode")
		}
		if o.rollup {
			o.rec = obs.NewRollupRecorder()
		} else {
			o.rec = obs.NewRecorder()
		}
	}
	if o.loadPath != "" {
		return runInference(o, src, labeler)
	}
	switch o.algo {
	case "sim":
	case "fine1", "fine2", "fine3":
		return runFineGrained(o, src, labeler)
	default:
		return runHostBaseline(o, src, labeler)
	}

	spec, err := o.buildSpec()
	if err != nil {
		return err
	}
	stats := trace.NewStats()
	cfg := core.Config{
		Spec:         spec,
		Level:        core.Level(o.level),
		K:            o.k,
		MaxIters:     o.iters,
		Seed:         o.seed,
		SampleStride: o.stride,
		MGroup:       o.mgroup,
		MPrimeGroup:  o.mprime,
		Sched:        o.sched,
		Stats:        stats,
	}
	if o.useKpp {
		cfg.Init = core.InitKMeansPlusPlus
	}
	cfg.Faults = o.faults
	cfg.CheckpointInterval = o.ckpt
	cfg.DropLostShards = o.dropLost
	cfg.Obs = o.rec
	fmt.Fprintf(o.out, "machine : %v\n", spec)
	if !o.faults.Empty() {
		fmt.Fprintf(o.out, "faults  : %d crashes, dma=%g msg=%g, %d links, %d stragglers (seed=%d)\n",
			len(o.faults.Crashes), o.faults.DMAFailRate, o.faults.MsgFailRate,
			len(o.faults.Links), len(o.faults.Stragglers), o.faults.Seed)
	}

	res, err := core.Run(cfg, src)
	if err != nil {
		return fmt.Errorf("training run: %w", err)
	}
	fmt.Fprintf(o.out, "plan    : %v\n", res.Plan)
	fmt.Fprintf(o.out, "iters   : %d (converged=%v)\n", res.Iters, res.Converged)
	fmt.Fprintf(o.out, "traffic : %v\n", res.Traffic)
	if err := printRecovery(o.out, res); err != nil {
		return err
	}

	tb := report.NewTable("\nsimulated one-iteration completion time", "iteration", "seconds")
	for i, it := range res.IterTimes {
		tb.AddRow(i+1, it)
	}
	tb.AddStringRow("mean", fmt.Sprintf("%.6f", res.MeanIterTime()))
	if err := tb.Render(o.out); err != nil {
		return err
	}

	if labeler != nil && o.stride == 1 {
		if err := printQuality(o.out, src, res.Centroids, res.D, res.Assign, labeler); err != nil {
			return err
		}
		if res.Recovery != nil && res.Recovery.DroppedSamples > 0 {
			if err := printQualityDelta(o, cfg, src, res, labeler); err != nil {
				return err
			}
		}
	}
	if o.savePath != "" {
		if err := saveModel(o.savePath, res.Centroids, res.K, res.D); err != nil {
			return err
		}
		fmt.Fprintf(o.out, "model   : saved to %s\n", o.savePath)
	}
	if err := exportObs(o); err != nil {
		return err
	}
	if o.summary {
		return res.WriteSummary(o.out)
	}
	return nil
}

// exportObs renders and writes whatever observability output the run
// asked for: the ASCII timeline to the report stream, the Chrome
// trace-event JSON and the JSONL metrics log to their files. All three
// are deterministic functions of the recorder, so identical seeded
// runs produce byte-identical files.
func exportObs(o options) error {
	if o.rec == nil {
		return nil
	}
	if o.timeline {
		if err := report.RenderTimeline(o.out, "\nper-rank virtual-time timeline", obs.Lanes(o.rec), 72); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		write := obs.WriteTraceEvents
		note := "full"
		if o.traceAgg > 0 {
			topK := o.traceAgg
			write = func(w io.Writer, rec *obs.Recorder) error {
				return obs.WriteAggregateTrace(w, rec, topK)
			}
			note = fmt.Sprintf("aggregate, top %d stragglers", topK)
		}
		if err := writeObsFile(o.traceOut, o.rec, write); err != nil {
			return err
		}
		fmt.Fprintf(o.out, "trace   : %s (%s; load in Perfetto or chrome://tracing)\n", o.traceOut, note)
	}
	if o.metricsOut != "" {
		if err := writeObsFile(o.metricsOut, o.rec, obs.WriteMetricsJSONL); err != nil {
			return err
		}
		fmt.Fprintf(o.out, "metrics : %s\n", o.metricsOut)
	}
	if o.profileOut != "" {
		if err := writeObsFile(o.profileOut, o.rec, obs.WriteProfileJSON); err != nil {
			return err
		}
		fmt.Fprintf(o.out, "profile : %s\n", o.profileOut)
	}
	if o.foldedOut != "" {
		p := obs.BuildProfile(o.rec)
		if err := writeObsFile(o.foldedOut, o.rec, func(w io.Writer, _ *obs.Recorder) error {
			return obs.WriteFolded(w, p)
		}); err != nil {
			return err
		}
		fmt.Fprintf(o.out, "folded  : %s (render with a flamegraph tool)\n", o.foldedOut)
	}
	return nil
}

// writeObsFile streams one recorder export into path.
func writeObsFile(path string, rec *obs.Recorder, write func(io.Writer, *obs.Recorder) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printRecovery reports the fault-recovery work of a resilient run in
// virtual seconds — the quantity that makes checkpoint-interval sweeps
// comparable to fault-free completion time.
func printRecovery(w io.Writer, res *core.Result) error {
	rec := res.Recovery
	if rec == nil {
		return nil
	}
	fmt.Fprintf(w, "recovery: replans=%d lost=%v dropped=%d checkpoints=%d\n",
		rec.Replans, rec.LostRanks, rec.DroppedSamples, rec.Checkpoints)
	useful := 0.0
	for _, t := range res.IterTimes {
		useful += t
	}
	overhead := rec.OverheadSeconds()
	pct := 0.0
	if useful+overhead > 0 {
		pct = 100 * overhead / (useful + overhead)
	}
	fmt.Fprintf(w, "overhead: ckpt=%.6fs restore=%.6fs replan=%.6fs redo=%.6fs retries=%.6fs total=%.6fs (%.1f%% of completion)\n",
		rec.CheckpointSeconds, rec.RestoreSeconds, rec.ReplanSeconds, rec.RedoSeconds, rec.RetrySeconds, overhead, pct)
	return nil
}

// printQualityDelta quantifies what dropping dead shards cost: the
// same configuration runs fault-free and the quality metrics are
// compared side by side.
func printQualityDelta(o options, cfg core.Config, src dataset.Source, res *core.Result, labeler func(int) int) error {
	cfg.Faults = fault.Plan{}
	cfg.DropLostShards = false
	cfg.Stats = trace.NewStats()
	ref, err := core.Run(cfg, src)
	if err != nil {
		return fmt.Errorf("fault-free reference run: %w", err)
	}
	refNMI, gotNMI, err := pairedNMI(src, ref.Assign, res.Assign, labeler)
	if err != nil {
		return err
	}
	refObj, err := quality.Objective(src, ref.Centroids, ref.D, ref.Assign)
	if err != nil {
		return err
	}
	gotObj, _, err := quality.ObjectiveSurviving(src, res.Centroids, res.D, res.Assign)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "delta   : NMI %.4f -> %.4f (%+.4f), objective %.6g -> %.6g (dropped %d of %d samples)\n",
		refNMI, gotNMI, gotNMI-refNMI, refObj, gotObj, res.Recovery.DroppedSamples, src.N())
	return nil
}

// pairedNMI computes NMI for the fault-free and the degraded
// assignment over the samples the degraded run still covers, so the
// two numbers are comparable.
func pairedNMI(src dataset.Source, refAssign, gotAssign []int, labeler func(int) int) (refNMI, gotNMI float64, err error) {
	var ref, got, truth []int
	for i := 0; i < src.N(); i++ {
		if gotAssign[i] < 0 {
			continue
		}
		ref = append(ref, refAssign[i])
		got = append(got, gotAssign[i])
		truth = append(truth, labeler(i))
	}
	if refNMI, err = quality.NMI(ref, truth); err != nil {
		return 0, 0, err
	}
	if gotNMI, err = quality.NMI(got, truth); err != nil {
		return 0, 0, err
	}
	return refNMI, gotNMI, nil
}

// runInference classifies the dataset with a previously trained
// centroid model: no training iterations, just the Assign step.
func runInference(o options, src dataset.Source, labeler func(int) int) error {
	cents, k, d, err := core.LoadCentroidsFile(o.loadPath)
	if err != nil {
		return err
	}
	if d != src.D() {
		return fmt.Errorf("model dimensionality %d does not match dataset d=%d", d, src.D())
	}
	fmt.Fprintf(o.out, "model   : %s (k=%d d=%d)\n", o.loadPath, k, d)
	assign := make([]int, src.N())
	buf := make([]float64, d)
	for i := 0; i < src.N(); i++ {
		src.Sample(i, buf)
		best, bestD := -1, 0.0
		for j := 0; j < k; j++ {
			cj := cents[j*d : (j+1)*d]
			acc := 0.0
			for u := 0; u < d; u++ {
				diff := buf[u] - cj[u]
				acc += diff * diff
			}
			if best < 0 || acc < bestD {
				best, bestD = j, acc
			}
		}
		assign[i] = best
	}
	if labeler != nil {
		return printQuality(o.out, src, cents, d, assign, labeler)
	}
	return nil
}

// runFineGrained executes the CPE-level reference kernels of
// internal/sw26010 (fine1/fine2/fine3 select the algorithm).
func runFineGrained(o options, src dataset.Source, labeler func(int) int) error {
	spec, err := o.buildSpec()
	if err != nil {
		return err
	}
	init, err := core.InitialCentroids(src, o.k, o.seed)
	if err != nil {
		return err
	}
	if o.useKpp {
		init, err = core.KMeansPlusPlus(src, o.k, o.seed)
		if err != nil {
			return err
		}
	}
	var res *sw26010.Result
	switch o.algo {
	case "fine1":
		res, err = sw26010.RunLevel1CG(spec, src, init, o.iters, 0, sw26010.WithObserver(o.rec))
	case "fine2":
		mg := o.mgroup
		if mg == 0 {
			mg = 8
		}
		res, err = sw26010.RunLevel2CG(spec, src, init, mg, o.iters, 0, sw26010.WithObserver(o.rec))
	default:
		mp := o.mprime
		if mp == 0 {
			mp = 1
		}
		res, err = sw26010.RunLevel3Group(spec, src, init, mp, 64, o.iters, 0, sw26010.WithObserver(o.rec))
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "algo    : %s (CPE-granularity reference)\n", o.algo)
	fmt.Fprintf(o.out, "iters   : %d (converged=%v), %.6f sim s/iter\n",
		res.Iters, res.Converged, meanOf(res.IterTimes))
	if labeler != nil {
		if err := printQuality(o.out, src, res.Centroids, src.D(), res.Assign, labeler); err != nil {
			return err
		}
	}
	return exportObs(o)
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// runHostBaseline executes a sequential host algorithm (the paper's
// single-node comparator family) instead of the simulated machine.
func runHostBaseline(o options, src dataset.Source, labeler func(int) int) error {
	init, err := core.InitialCentroids(src, o.k, o.seed)
	if err != nil {
		return err
	}
	if o.useKpp {
		init, err = core.KMeansPlusPlus(src, o.k, o.seed)
		if err != nil {
			return err
		}
	}
	var cents []float64
	var assign []int
	var iters int
	var distances int64
	switch o.algo {
	case "lloyd":
		res, err := core.LloydFrom(src, init, o.iters, 0)
		if err != nil {
			return err
		}
		cents, assign, iters = res.Centroids, res.Assign, res.Iters
		distances = int64(src.N()) * int64(o.k) * int64(res.Iters)
	case "hamerly":
		res, err := accel.Hamerly(src, init, o.iters, 0)
		if err != nil {
			return err
		}
		cents, assign, iters, distances = res.Centroids, res.Assign, res.Counters.Iters, res.Counters.Distances
	case "elkan":
		res, err := accel.Elkan(src, init, o.iters, 0)
		if err != nil {
			return err
		}
		cents, assign, iters, distances = res.Centroids, res.Assign, res.Counters.Iters, res.Counters.Distances
	case "minibatch":
		res, err := accel.MiniBatch(src, init, o.iters, 256, o.seed)
		if err != nil {
			return err
		}
		cents, assign, iters, distances = res.Centroids, res.Assign, res.Counters.Iters, res.Counters.Distances
	default:
		return fmt.Errorf("unknown algorithm %q", o.algo)
	}
	fmt.Fprintf(o.out, "algo    : %s (host baseline)\n", o.algo)
	fmt.Fprintf(o.out, "iters   : %d, %d distance computations\n", iters, distances)
	if labeler != nil {
		if err := printQuality(o.out, src, cents, src.D(), assign, labeler); err != nil {
			return err
		}
	}
	if o.savePath != "" {
		if err := saveModel(o.savePath, cents, o.k, src.D()); err != nil {
			return err
		}
		fmt.Fprintf(o.out, "model   : saved to %s\n", o.savePath)
	}
	return nil
}

func printQuality(w io.Writer, src dataset.Source, cents []float64, d int, assign []int, labeler func(int) int) error {
	// Samples without an assignment (dropped shards) stay out of the
	// scoring.
	var pred, truth []int
	for i := 0; i < src.N(); i++ {
		if assign[i] < 0 {
			continue
		}
		pred = append(pred, assign[i])
		truth = append(truth, labeler(i))
	}
	ari, err := quality.ARI(pred, truth)
	if err != nil {
		return err
	}
	nmi, err := quality.NMI(pred, truth)
	if err != nil {
		return err
	}
	obj, _, err := quality.ObjectiveSurviving(src, cents, d, assign)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nquality : ARI=%.4f NMI=%.4f objective=%.6g\n", ari, nmi, obj)
	return nil
}

func saveModel(path string, cents []float64, k, d int) error {
	// Crash-consistent: temp file + rename, with a checksum the loader
	// verifies, so an interrupted -save never leaves a torn model.
	return core.SaveCentroidsFile(path, cents, k, d)
}
