// Command swkmeansd is the resilient online-serving daemon: k-means as
// a live service. It holds immutable, epoch-numbered model snapshots
// (centroids sharded by range) swapped atomically, while a background
// trainer ingests a deterministic sample stream through the epoch
// engine's mini-batch path and publishes new epochs. The query path
// answers nearest-centroid assignments over HTTP/JSON with per-request
// deadlines, bounded admission that sheds load explicitly, per-
// connection panic recovery, health/readiness endpoints and a graceful
// drain on SIGTERM; a seeded wall-clock chaos plan (fault.ParsePlan
// syntax, remapped per docs/SERVING.md) exercises trainer crashes,
// straggling shards, dropped publishes and degraded links.
//
// Examples:
//
//	swkmeansd -addr 127.0.0.1:8147 -k 8 -d 16
//	swkmeansd -addr 127.0.0.1:0 -addr-file /tmp/addr \
//	    -chaos "seed=7; crash=0@0.6; slow=1x6; msg=0.15" \
//	    -metrics-out metrics.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8147", "listen address (port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
		k          = flag.Int("k", 8, "centroids")
		d          = flag.Int("d", 16, "stream dimensionality")
		components = flag.Int("components", 8, "ground-truth components of the synthetic stream")
		streamN    = flag.Int("stream-n", 65536, "cycle length of the deterministic sample stream")
		seed       = flag.Uint64("seed", 1, "deterministic seed (stream, training, chaos)")
		batch      = flag.Int("batch", 256, "samples ingested per training round")
		miniBatch  = flag.Int("minibatch", 32, "per-rank mini-batch inside the epoch engine rounds")
		roundIters = flag.Int("round-iters", 3, "engine iterations per training round")
		interval   = flag.Duration("train-interval", 50*time.Millisecond, "pacing between training rounds")
		shards     = flag.Int("shards", 4, "centroid-range query shards per snapshot")
		nodes      = flag.Int("nodes", 1, "simulated machine nodes for the training rounds")
		queue      = flag.Int("queue", 64, "admission queue depth; excess load is shed with 429")
		deadline   = flag.Duration("deadline", 250*time.Millisecond, "default per-request deadline")
		staleAfter = flag.Duration("stale-after", 2*time.Second, "snapshot age past which responses report degraded")
		backoff    = flag.Duration("restart-backoff", 200*time.Millisecond, "trainer restart backoff after a crash")
		chaosSpec  = flag.String("chaos", "", "seeded wall-clock chaos plan (fault.ParsePlan syntax, see docs/SERVING.md)")
		delayUnit  = flag.Duration("delay-unit", serve.DefaultDelayUnit, "base latency quantum chaos factors multiply")
		metricsOut = flag.String("metrics-out", "", "append JSONL metrics lines to this file")
		metricsInt = flag.Duration("metrics-interval", 500*time.Millisecond, "metrics line interval")
		drainWait  = flag.Duration("drain-timeout", 5*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()
	// Exit code contract, like cmd/swkmeans: 2 for unusable flags, 1
	// for runtime failures.
	var plan fault.Plan
	if *chaosSpec != "" {
		var err error
		plan, err = fault.ParsePlan(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swkmeansd: -chaos:", err)
			os.Exit(2)
		}
	}
	if err := run(options{
		addr: *addr, addrFile: *addrFile,
		k: *k, d: *d, components: *components, streamN: *streamN, seed: *seed,
		batch: *batch, miniBatch: *miniBatch, roundIters: *roundIters,
		interval: *interval, shards: *shards, nodes: *nodes,
		queue: *queue, deadline: *deadline, staleAfter: *staleAfter,
		backoff: *backoff, plan: plan, delayUnit: *delayUnit,
		metricsOut: *metricsOut, metricsInt: *metricsInt, drainWait: *drainWait,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "swkmeansd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr, addrFile                  string
	k, d, components, streamN       int
	seed                            uint64
	batch, miniBatch, roundIters    int
	interval                        time.Duration
	shards, nodes, queue            int
	deadline, staleAfter, backoff   time.Duration
	plan                            fault.Plan
	delayUnit                       time.Duration
	metricsOut                      string
	metricsInt, drainWait           time.Duration
}

func run(o options) error {
	src, err := dataset.NewGaussianMixture("stream", o.streamN, o.d, o.components, 0.25, 2.0, o.seed)
	if err != nil {
		return fmt.Errorf("building the sample stream: %w", err)
	}
	var chaos *serve.Chaos
	if !o.plan.Empty() || o.plan.Seed != 0 {
		chaos, err = serve.NewChaos(o.plan)
		if err != nil {
			return fmt.Errorf("compiling the chaos plan: %w", err)
		}
		chaos.Unit = o.delayUnit
	}
	store := &serve.Store{}
	metrics := &serve.Metrics{}
	trainer, err := serve.NewTrainer(serve.TrainerConfig{
		Store:          store,
		Metrics:        metrics,
		Chaos:          chaos,
		Source:         src,
		K:              o.k,
		BatchSamples:   o.batch,
		MiniBatch:      o.miniBatch,
		RoundIters:     o.roundIters,
		Interval:       o.interval,
		Seed:           o.seed,
		Shards:         o.shards,
		Nodes:          o.nodes,
		RestartBackoff: o.backoff,
		StaleAfter:     o.staleAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "swkmeansd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Store:           store,
		Metrics:         metrics,
		Trainer:         trainer,
		Chaos:           chaos,
		QueueDepth:      o.queue,
		DefaultDeadline: o.deadline,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", o.addr, err)
	}
	resolved := ln.Addr().String()
	if o.addrFile != "" {
		// The address file is how scripts (make servecheck) find a
		// :0-allocated port; write-then-rename so readers never see a
		// partial file.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(resolved+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	var mw *serve.MetricsWriter
	if o.metricsOut != "" {
		f, err := os.OpenFile(o.metricsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -metrics-out: %w", err)
		}
		defer f.Close()
		mw = serve.NewMetricsWriter(metrics, store, trainer, f, o.metricsInt)
	}

	trainer.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("swkmeansd: serving on %s (k=%d d=%d shards=%d queue=%d deadline=%v chaos=%v)\n",
		resolved, o.k, o.d, o.shards, o.queue, o.deadline, chaos != nil)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-stop:
		fmt.Printf("swkmeansd: %v: draining (budget %v)\n", sig, o.drainWait)
	case err := <-serveErr:
		trainer.Stop()
		return fmt.Errorf("http server: %w", err)
	}

	// Graceful drain: stop admitting (readyz flips 503), let in-flight
	// requests finish within the budget, then stop the trainer and
	// flush the metrics log.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), o.drainWait)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)
	trainer.Stop()
	if mw != nil {
		if err := mw.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "swkmeansd:", err)
		}
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return fmt.Errorf("draining: %w", shutdownErr)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http server: %w", err)
	}
	fmt.Println("swkmeansd: drained cleanly")
	return nil
}
