// Command landcover reproduces the paper's Figure 10 application:
// unsupervised land-cover classification of a remote-sensing image
// with Level-3 k-means into the seven DeepGlobe classes (urban,
// agriculture, rangeland, forest, water, barren, unknown).
//
// The paper clusters one 2448x2448-pixel DeepGlobe image as
// n=5,838,480 pixel-block samples with d=4096 on 400 processors; this
// command synthesizes a DeepGlobe-like image at a configurable reduced
// scale (the full shape needs more floating-point work per iteration
// than the host can execute), classifies it on the simulated machine
// and writes two PPM images: the ground-truth class map and the
// clustering result, coloured like the paper's figure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/quality"
)

func main() {
	var (
		side  = flag.Int("side", 96, "image side length in pixel blocks")
		d     = flag.Int("d", 48, "features per pixel block (paper: 4096)")
		nodes = flag.Int("nodes", 2, "SW26010 nodes to simulate (paper: 100, i.e. 400 processors... 400 CGs)")
		iters = flag.Int("iters", 12, "max Lloyd iterations")
		seed  = flag.Uint64("seed", 2018, "deterministic seed")
		outD  = flag.String("out", ".", "output directory for PPM images")
	)
	flag.Parse()
	if err := run(os.Stdout, *side, *d, *nodes, *iters, *seed, *outD); err != nil {
		fmt.Fprintln(os.Stderr, "landcover:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, side, d, nodes, iters int, seed uint64, outDir string) error {
	lc, err := dataset.NewLandCover(side, side, d, seed)
	if err != nil {
		return err
	}
	spec, err := machine.NewSpec(nodes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "image   : %dx%d blocks, %d features/block (n=%d)\n", side, side, d, lc.N())
	fmt.Fprintf(w, "machine : %v\n", spec)

	res, err := core.Run(core.Config{
		Spec:     spec,
		Level:    core.Level3,
		K:        dataset.LandCoverClasses,
		MaxIters: iters,
		Seed:     seed,
		Init:     core.InitKMeansPlusPlus,
	}, lc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plan    : %v\n", res.Plan)
	fmt.Fprintf(w, "iters   : %d (converged=%v), %.6f simulated s/iter\n",
		res.Iters, res.Converged, res.MeanIterTime())

	truth := lc.TrueClassMap()
	acc, err := quality.Accuracy(res.Assign, truth)
	if err != nil {
		return err
	}
	ari, err := quality.ARI(res.Assign, truth)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "quality : accuracy=%.4f ARI=%.4f over %d classes\n", acc, ari, lc.Classes())

	// Recolour predicted clusters by their best-matching true class so
	// the two images use the same palette, like the paper's side-by-
	// side presentation.
	mapping := matchClusters(res.Assign, truth, lc.Classes())
	pred := make([]int, len(res.Assign))
	for i, a := range res.Assign {
		pred[i] = mapping[a]
	}

	if err := writePPM(lc, filepath.Join(outDir, "landcover_truth.ppm"), truth); err != nil {
		return err
	}
	if err := writePPM(lc, filepath.Join(outDir, "landcover_kmeans.ppm"), pred); err != nil {
		return err
	}
	fmt.Fprintf(w, "output  : %s, %s\n",
		filepath.Join(outDir, "landcover_truth.ppm"),
		filepath.Join(outDir, "landcover_kmeans.ppm"))
	return nil
}

// matchClusters greedily maps each predicted cluster to the true class
// it overlaps most.
func matchClusters(pred, truth []int, classes int) map[int]int {
	counts := map[[2]int]int{}
	for i := range pred {
		counts[[2]int{pred[i], truth[i]}]++
	}
	mapping := make(map[int]int, classes)
	usedT := map[int]bool{}
	for len(mapping) < classes {
		best, bp, bt := -1, -1, -1
		for key, v := range counts {
			if _, done := mapping[key[0]]; done || usedT[key[1]] {
				continue
			}
			if v > best || (v == best && (key[0] < bp || (key[0] == bp && key[1] < bt))) {
				best, bp, bt = v, key[0], key[1]
			}
		}
		if bp < 0 {
			break
		}
		mapping[bp] = bt
		usedT[bt] = true
	}
	// Any unmatched clusters render as "unknown".
	for c := 0; c < classes; c++ {
		if _, ok := mapping[c]; !ok {
			mapping[c] = classes - 1
		}
	}
	return mapping
}

func writePPM(lc *dataset.LandCover, path string, classMap []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := lc.WritePPM(f, classMap); err != nil {
		return err
	}
	return f.Close()
}
