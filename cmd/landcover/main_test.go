package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunProducesImages(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, 24, 12, 1, 4, 2018, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"landcover_truth.ppm", "landcover_kmeans.ppm"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "P6\n24 24\n255\n") {
			t.Errorf("%s: bad PPM header", name)
		}
		if len(data) != len("P6\n24 24\n255\n")+24*24*3 {
			t.Errorf("%s: size %d", name, len(data))
		}
	}
	out := b.String()
	for _, want := range []string{"quality :", "accuracy="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, 12, 1, 4, 1, t.TempDir()); err == nil {
		t.Error("side=0 accepted")
	}
	if err := run(&b, 8, 12, 0, 4, 1, t.TempDir()); err == nil {
		t.Error("nodes=0 accepted")
	}
}

func TestMatchClusters(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2}
	truth := []int{5, 5, 3, 3, 5}
	m := matchClusters(pred, truth, 7)
	if m[0] != 5 || m[1] != 3 {
		t.Errorf("mapping = %v", m)
	}
	// Unmatched clusters map to the unknown class.
	if m[4] != 6 {
		t.Errorf("unmatched cluster mapped to %d, want 6", m[4])
	}
}
