// Command kmload is the load and chaos-verification client for
// swkmeansd: it drives concurrent assignment queries with retry and
// exponential backoff, and asserts the serving invariants the
// degradation contract promises (docs/SERVING.md):
//
//   - every query is answered or cleanly shed (429 queue-full, 503
//     not-ready/draining, 504 deadline) — anything else is a failure;
//   - snapshot epochs observed by one sequential client never regress;
//   - responses are never torn: the answer shape always matches the
//     query.
//
// It exits 0 when the invariants hold, 1 when they are violated (or
// -min-* thresholds are missed), 2 on unusable flags, and prints a
// JSON report to stdout.
//
// Example:
//
//	kmload -addr-file /tmp/addr -duration 2s -concurrency 8 -min-epochs 2
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
)

func main() {
	var (
		addr        = flag.String("addr", "", "server address host:port (or use -addr-file)")
		addrFile    = flag.String("addr-file", "", "read the server address from this file")
		duration    = flag.Duration("duration", 2*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 8, "concurrent closed-loop workers")
		points      = flag.Int("points", 4, "points per assignment request")
		d           = flag.Int("d", 16, "query dimensionality (must match the daemon)")
		components  = flag.Int("components", 8, "components of the synthetic query mix")
		seed        = flag.Uint64("seed", 2, "deterministic query seed")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-request deadline sent to the server (0 = server default)")
		retries     = flag.Int("retries", 8, "retry budget per request")
		backoff     = flag.Duration("backoff", 5*time.Millisecond, "base retry backoff, doubling per attempt")
		waitReady   = flag.Duration("wait-ready", 10*time.Second, "budget for the server to become ready before loading")
		minServed   = flag.Int("min-served", 1, "fail unless at least this many queries were answered")
		minEpochs   = flag.Uint64("min-epochs", 0, "fail unless the highest observed epoch reaches this")
	)
	flag.Parse()
	target, err := resolveAddr(*addr, *addrFile, *waitReady)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmload:", err)
		os.Exit(2)
	}
	if *concurrency < 1 || *points < 1 || *retries < 0 {
		fmt.Fprintln(os.Stderr, "kmload: -concurrency and -points must be positive, -retries non-negative")
		os.Exit(2)
	}
	rep, err := run(cfg{
		base: "http://" + target, duration: *duration, workers: *concurrency,
		points: *points, d: *d, components: *components, seed: *seed,
		deadlineMS: *deadlineMS, retries: *retries, backoff: *backoff,
		waitReady: *waitReady,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmload:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
	ok := true
	if rep.Failures > 0 || rep.EpochRegressions > 0 || rep.TornResponses > 0 {
		ok = false
	}
	if rep.Served < uint64(*minServed) {
		fmt.Fprintf(os.Stderr, "kmload: served %d < -min-served %d\n", rep.Served, *minServed)
		ok = false
	}
	if rep.MaxEpoch < *minEpochs {
		fmt.Fprintf(os.Stderr, "kmload: max epoch %d < -min-epochs %d\n", rep.MaxEpoch, *minEpochs)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

type cfg struct {
	base       string
	duration   time.Duration
	workers    int
	points, d  int
	components int
	seed       uint64
	deadlineMS int64
	retries    int
	backoff    time.Duration
	waitReady  time.Duration
}

// report is the JSON verdict written to stdout.
type report struct {
	// Served counts answered queries, Shed the clean refusals (429
	// queue-full, 503 not-ready, 504 deadline), Failures everything
	// else — transport errors, 5xx, malformed bodies.
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Deadline uint64 `json:"deadline"`
	NotReady uint64 `json:"not_ready"`
	Failures uint64 `json:"failures"`
	// Retries counts retry attempts spent across all requests.
	Retries uint64 `json:"retries"`
	// EpochRegressions counts responses whose epoch went backwards for
	// a sequential worker; the invariant demands zero.
	EpochRegressions uint64 `json:"epoch_regressions"`
	// TornResponses counts answers whose shape did not match the query;
	// the invariant demands zero.
	TornResponses uint64 `json:"torn_responses"`
	MaxEpoch      uint64 `json:"max_epoch"`
	// DegradedSeen counts answers flagged degraded (trainer dead or
	// snapshot stale) and MaxStalenessMS the largest staleness
	// reported — proof the contract surfaced the degradation.
	DegradedSeen   uint64  `json:"degraded_seen"`
	MaxStalenessMS int64   `json:"max_staleness_ms"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	QPS            float64 `json:"qps"`
	FailureSamples []string `json:"failure_samples,omitempty"`
}

// resolveAddr returns the target address, polling -addr-file into
// existence within the budget when used.
func resolveAddr(addr, addrFile string, wait time.Duration) (string, error) {
	if addr != "" {
		return addr, nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("need -addr or -addr-file")
	}
	deadline := time.Now().Add(wait)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b)), nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return "", fmt.Errorf("reading -addr-file: %w", err)
			}
			return "", fmt.Errorf("-addr-file %s stayed empty for %v", addrFile, wait)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type assignResponse struct {
	Epoch       uint64    `json:"epoch"`
	StalenessMS int64     `json:"staleness_ms"`
	Degraded    bool      `json:"degraded"`
	Assignments []int     `json:"assignments"`
	Distances   []float64 `json:"distances"`
}

// worker aggregates one goroutine's observations; merged at the end.
type worker struct {
	report
	latencies []time.Duration
	lastEpoch uint64
}

func run(c cfg) (*report, error) {
	if err := waitReady(c.base, c.waitReady); err != nil {
		return nil, err
	}
	queries, err := dataset.NewGaussianMixture("load", 4096, c.d, c.components, 0.25, 2.0, c.seed)
	if err != nil {
		return nil, fmt.Errorf("building query mix: %w", err)
	}
	stop := time.Now().Add(c.duration)
	workers := make([]*worker, c.workers)
	var wg sync.WaitGroup
	for wi := range workers {
		w := &worker{}
		workers[wi] = w
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			buf := make([]float64, c.d)
			for seq := 0; time.Now().Before(stop); seq++ {
				pts := make([][]float64, c.points)
				for p := range pts {
					queries.Sample((id*100003+seq*c.points+p)%queries.N(), buf)
					pts[p] = append([]float64(nil), buf...)
				}
				w.doRequest(client, c, pts)
			}
		}(wi)
	}
	wg.Wait()

	total := &report{}
	var lats []time.Duration
	for _, w := range workers {
		total.Served += w.Served
		total.Shed += w.Shed
		total.Deadline += w.Deadline
		total.NotReady += w.NotReady
		total.Failures += w.Failures
		total.Retries += w.Retries
		total.EpochRegressions += w.EpochRegressions
		total.TornResponses += w.TornResponses
		total.DegradedSeen += w.DegradedSeen
		if w.MaxEpoch > total.MaxEpoch {
			total.MaxEpoch = w.MaxEpoch
		}
		if w.MaxStalenessMS > total.MaxStalenessMS {
			total.MaxStalenessMS = w.MaxStalenessMS
		}
		for _, s := range w.FailureSamples {
			if len(total.FailureSamples) < 5 {
				total.FailureSamples = append(total.FailureSamples, s)
			}
		}
		lats = append(lats, w.latencies...)
	}
	if len(lats) > 0 {
		sortDurations(lats)
		total.P50MS = float64(lats[len(lats)/2]) / float64(time.Millisecond)
		total.P99MS = float64(lats[(len(lats)-1)*99/100]) / float64(time.Millisecond)
	}
	if c.duration > 0 {
		total.QPS = float64(total.Served) / c.duration.Seconds()
	}
	return total, nil
}

// doRequest issues one query with the retry/backoff loop. Clean sheds
// are retried; failures are recorded and not retried further than the
// budget.
func (w *worker) doRequest(client *http.Client, c cfg, pts [][]float64) {
	body, err := json.Marshal(map[string]any{"points": pts, "deadline_ms": c.deadlineMS})
	if err != nil {
		w.fail("marshal: " + err.Error())
		return
	}
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		status, respBody, err := post(client, c.base+"/v1/assign", body)
		if err == nil && status == http.StatusOK {
			var resp assignResponse
			if jerr := json.Unmarshal(respBody, &resp); jerr != nil {
				w.fail("decode: " + jerr.Error())
				return
			}
			if len(resp.Assignments) != len(pts) || len(resp.Distances) != len(pts) {
				w.TornResponses++
				w.fail(fmt.Sprintf("torn response: %d assignments for %d points", len(resp.Assignments), len(pts)))
				return
			}
			if resp.Epoch < w.lastEpoch {
				w.EpochRegressions++
				w.fail(fmt.Sprintf("epoch regression: %d after %d", resp.Epoch, w.lastEpoch))
				return
			}
			w.lastEpoch = resp.Epoch
			if resp.Epoch > w.MaxEpoch {
				w.MaxEpoch = resp.Epoch
			}
			if resp.Degraded {
				w.DegradedSeen++
			}
			if resp.StalenessMS > w.MaxStalenessMS {
				w.MaxStalenessMS = resp.StalenessMS
			}
			w.Served++
			w.latencies = append(w.latencies, time.Since(t0))
			return
		}
		shed := false
		if err == nil {
			switch status {
			case http.StatusTooManyRequests:
				w.Shed++
				shed = true
			case http.StatusServiceUnavailable:
				w.NotReady++
				shed = true
			case http.StatusGatewayTimeout:
				w.Deadline++
				shed = true
			}
		}
		if !shed {
			reason := "transport: <nil>"
			if err != nil {
				reason = "transport: " + err.Error()
			} else {
				reason = fmt.Sprintf("status %d: %s", status, strings.TrimSpace(string(respBody)))
			}
			w.fail(reason)
			return
		}
		// Clean shed: retry with exponential backoff within the budget.
		if attempt >= c.retries {
			return
		}
		w.Retries++
		time.Sleep(delay)
		delay *= 2
	}
}

// fail records a non-shed failure with a bounded sample of reasons.
func (w *worker) fail(reason string) {
	w.Failures++
	if len(w.FailureSamples) < 5 {
		w.FailureSamples = append(w.FailureSamples, reason)
	}
}

// post issues one POST and reads the whole body.
func post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// waitReady polls readyz until it answers 200 or the budget runs out.
func waitReady(base string, wait time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(wait)
	var last string
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = resp.Status
		} else {
			last = err.Error()
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready within %v (last: %s)", base, wait, last)
}

// sortDurations orders the merged latency sample for the quantiles.
func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}
