package main

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestRunFullMachine(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 40960); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I", "Our approach", "d <= 349504",
		"requires", "m'group >=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSmallMachine(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 16); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "does not fit") {
		t.Error("small machine should report the claim does not fit")
	}
}

func TestRunBadNodes(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0); err == nil {
		t.Error("nodes=0 accepted")
	}
}

func TestNeededGroupIsMinimal(t *testing.T) {
	spec := machine.MustSpec(40960)
	g := neededGroup(spec, 2000, 196608)
	if g < 751 || g > 1100 {
		t.Errorf("neededGroup = %d, want about 751-1100 for the headline shape", g)
	}
}
