// Command capability regenerates the paper's Table I — the capability
// comparison of parallel k-means implementations — with our row
// derived live from the LDM constraint model (Section III's C″
// constraints) instead of being hard-coded, and prints the constraint
// arithmetic behind it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/report"
)

func main() {
	nodes := flag.Int("nodes", 40960, "deployment size used for the capability bound (full TaihuLight)")
	flag.Parse()
	if err := run(os.Stdout, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "capability:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nodes int) error {
	spec, err := machine.NewSpec(nodes)
	if err != nil {
		return err
	}
	t := report.NewTable("Table I — Parallel k-means implementations",
		"Approach", "Hardware resources", "Programming model", "Samples n", "Clusters k", "Dimensions d")
	for _, r := range perfmodel.TableI(spec) {
		t.AddStringRow(r.Approach, r.Hardware, r.Model,
			fmt.Sprintf("%.0g", r.N), fmt.Sprintf("%d", r.K), fmt.Sprintf("%d", r.D))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nConstraint arithmetic on %v:\n", spec)
	ldmElems := ldm.ElemsPerLDM(spec.LDMBytesPerCPE)
	fmt.Fprintf(w, "  LDM per CPE: %d elements (%d B at %d B/element)\n",
		ldmElems, spec.LDMBytesPerCPE, ldm.ElemBytes)
	fmt.Fprintf(w, "  C\"2 (3d+1 <= 64*LDM): d <= %d\n", perfmodel.MaxD(spec))
	for _, d := range []int{196608, perfmodel.MaxD(spec)} {
		fmt.Fprintf(w, "  C\"1/C\"3 at d=%d with the whole deployment as one CG group: k <= %d\n",
			d, perfmodel.MaxK(spec, d))
	}
	if ldm.CheckLevel3(spec, 160000, 196608, spec.CGs()) == nil {
		fmt.Fprintf(w, "\nThe paper's capability claim (k=160,000 at d=196,608) requires\n")
		fmt.Fprintf(w, "m'group >= %d CGs; the deployment has %d CGs.\n",
			neededGroup(spec, 160000, 196608), spec.CGs())
	} else {
		fmt.Fprintf(w, "\nThe paper's capability claim (k=160,000 at d=196,608) does not fit\n")
		fmt.Fprintf(w, "this %d-CG deployment; use -nodes 40960 for the full machine.\n", spec.CGs())
	}
	return nil
}

// neededGroup finds the smallest CG group hosting k centroids at
// dimension d.
func neededGroup(spec *machine.Spec, k, d int) int {
	lo, hi := 1, spec.CGs()
	for lo < hi {
		mid := (lo + hi) / 2
		if ldm.CheckLevel3(spec, k, d, mid) == nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
