// Command swlint runs the project's static-analysis pass over the
// module. It enforces the simulator's paper-level invariants that the
// compiler cannot see; see docs/STATIC_ANALYSIS.md for the rule
// catalogue and the suppression syntax.
//
// Usage:
//
//	go run ./cmd/swlint ./...
//	go run ./cmd/swlint ./internal/mpi ./internal/vclock
//	go run ./cmd/swlint -format sarif ./... > swlint.sarif
//	go run ./cmd/swlint -fix ./...
//	go run ./cmd/swlint -update-baseline -baseline-reason "why the debt is accepted" ./...
//	go run ./cmd/swlint -stats ./...
//	go run ./cmd/swlint -list
//
// Findings recorded in .swlint-baseline.json at the module root are
// filtered out (disable with -no-baseline); -update-baseline rewrites
// the file from the current findings. Results are cached under
// .swlint-cache/ keyed by package content (disable with -no-cache).
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// load or usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rules and exit")
	format := fs.String("format", "text", "output format: text or sarif")
	baselinePath := fs.String("baseline", "", "baseline file (default: .swlint-baseline.json at the module root)")
	noBaseline := fs.Bool("no-baseline", false, "report all findings, ignoring the baseline")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the baseline from the current findings and exit")
	baselineReason := fs.String("baseline-reason", "", "justification recorded on new baseline entries (required with -update-baseline)")
	fix := fs.Bool("fix", false, "apply available mechanical fixes, then report what remains")
	jobs := fs.Int("jobs", 0, "packages analyzed concurrently (0 = GOMAXPROCS)")
	noCache := fs.Bool("no-cache", false, "disable the on-disk result cache")
	stats := fs.Bool("stats", false, "print per-rule finding counts, package count and cache hit rate to stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: swlint [flags] <package patterns>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "swlint: unknown format %q (want text or sarif)\n", *format)
		return 2
	}
	if *updateBaseline && strings.TrimSpace(*baselineReason) == "" {
		fmt.Fprintln(stderr, "swlint: -update-baseline requires -baseline-reason: justify the accepted findings or fix them")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "swlint:", err)
		return 2
	}
	cfg, err := lint.DefaultConfig(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "swlint:", err)
		return 2
	}

	if *list {
		for _, r := range lint.AllRules(cfg) {
			fmt.Fprintf(stdout, "%-18s %s\n", r.ID(), r.Doc())
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	opts := lint.RunOptions{Jobs: *jobs}
	if !*noCache {
		opts.CacheDir = lint.DefaultCacheDir(cfg.ModuleRoot)
	}
	// Stats are always collected: the suppression census feeds the
	// SARIF run properties whether or not -stats prints it.
	var runStats lint.RunStats
	opts.Stats = &runStats
	findings, err := lint.RunWithOptions(cfg, patterns, opts)
	if err != nil {
		fmt.Fprintln(stderr, "swlint:", err)
		return 2
	}

	if *fix {
		changed, applied, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(stderr, "swlint:", err)
			return 2
		}
		for _, name := range changed {
			fmt.Fprintf(stderr, "swlint: fixed %s\n", name)
		}
		if len(changed) > 0 {
			fmt.Fprintf(stderr, "swlint: applied %d fix(es) across %d file(s)\n", len(applied), len(changed))
			// Rewritten files invalidate this run's findings (and the
			// cache entries of every dependent); re-analyze to report
			// what the fixes did not cover.
			findings, err = lint.RunWithOptions(cfg, patterns, opts)
			if err != nil {
				fmt.Fprintln(stderr, "swlint:", err)
				return 2
			}
		}
	}

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(cfg.ModuleRoot, lint.BaselineFile)
	}

	if *updateBaseline {
		prev, err := lint.LoadBaseline(bpath)
		if err != nil {
			fmt.Fprintln(stderr, "swlint:", err)
			return 2
		}
		next := lint.UpdateBaseline(prev, findings, cfg.ModuleRoot, strings.TrimSpace(*baselineReason))
		if err := next.Save(bpath); err != nil {
			fmt.Fprintln(stderr, "swlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "swlint: wrote %d baseline entry(s) to %s\n", len(next.Entries), bpath)
		return 0
	}

	if !*noBaseline {
		b, err := lint.LoadBaseline(bpath)
		if err != nil {
			fmt.Fprintln(stderr, "swlint:", err)
			return 2
		}
		var stale []lint.BaselineEntry
		findings, stale = b.Filter(findings, cfg.ModuleRoot)
		for _, e := range stale {
			fmt.Fprintf(stderr, "swlint: stale baseline entry (%s in %s) matches nothing; run -update-baseline\n", e.Rule, e.File)
		}
	}

	if *format == "sarif" {
		if err := lint.WriteSARIF(stdout, findings, lint.AllRules(cfg), cfg.ModuleRoot, runStats.Suppressions); err != nil {
			fmt.Fprintln(stderr, "swlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if *stats {
		printStats(stderr, runStats, findings)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "swlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// printStats reports the run's shape: how many packages were analyzed,
// how many came from the cache, the per-rule finding counts after
// baseline filtering, and the suppression census — which rules are
// most often //swlint:ignore'd module-wide, largest debt first.
func printStats(w io.Writer, s lint.RunStats, findings []lint.Finding) {
	rate := 0.0
	if s.Packages > 0 {
		rate = 100 * float64(s.CacheHits) / float64(s.Packages)
	}
	fmt.Fprintf(w, "swlint: stats: %d package(s) analyzed, %d cache hit(s) (%.0f%%)\n", s.Packages, s.CacheHits, rate)
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.RuleID]++
	}
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(w, "swlint: stats: %-18s %d\n", id, counts[id])
	}
	total := 0
	for _, n := range s.Suppressions {
		total += n
	}
	fmt.Fprintf(w, "swlint: stats: %d suppression(s) module-wide\n", total)
	if total > 0 {
		type row struct {
			rule string
			n    int
		}
		rows := make([]row, 0, len(s.Suppressions))
		for rule, n := range s.Suppressions {
			rows = append(rows, row{rule, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].rule < rows[j].rule
		})
		fmt.Fprintln(w, "swlint: stats: top suppressed rules:")
		for _, r := range rows {
			fmt.Fprintf(w, "swlint: stats:   %-18s %d\n", r.rule, r.n)
		}
	}
}
