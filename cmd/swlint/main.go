// Command swlint runs the project's static-analysis pass over the
// module. It enforces the simulator's paper-level invariants that the
// compiler cannot see; see docs/STATIC_ANALYSIS.md for the rule
// catalogue and the suppression syntax.
//
// Usage:
//
//	go run ./cmd/swlint ./...
//	go run ./cmd/swlint ./internal/mpi ./internal/vclock
//	go run ./cmd/swlint -list
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// load or usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rules and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: swlint [-list] <package patterns>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "swlint:", err)
		return 2
	}
	cfg, err := lint.DefaultConfig(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "swlint:", err)
		return 2
	}

	if *list {
		for _, r := range lint.AllRules(cfg) {
			fmt.Fprintf(stdout, "%-14s %s\n", r.ID(), r.Doc())
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}
	findings, err := lint.Run(cfg, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "swlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "swlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
