package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, id := range []string{
		"no-wallclock", "float-eq", "guarded-field", "err-wrap", "ldm-capacity",
		"ldm-provenance", "map-order", "collective-match", "goroutine-purity",
		"hot-path-alloc", "bad-suppress", "unused-suppress",
	} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing rule %s:\n%s", id, stdout.String())
		}
	}
}

func TestUsageOnNoPatterns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no patterns exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("expected usage on stderr, got: %s", stderr.String())
	}
}

func TestUnknownFormatExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "xml", "./internal/vclock"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown format exited %d, want 2", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-cache", "./internal/vclock"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestSeededViolationExitsNonZero is the acceptance check that a rule
// violation makes swlint fail with the rule ID and position: it lints
// the float-eq fixture tree directly.
func TestSeededViolationExitsNonZero(t *testing.T) {
	cfg, err := lint.DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(cfg.ModuleRoot, "internal", "lint", "testdata", "src", "floateq")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-cache", "-no-baseline", fixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("seeded violations exited %d, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "float-eq") || !strings.Contains(out, "floateq.go:8:") {
		t.Errorf("output missing rule ID or position:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("expected finding count on stderr, got: %s", stderr.String())
	}
}

// TestSARIFOutput pins the -format sarif path: findings still exit 1,
// and stdout is a valid SARIF 2.1.0 document naming the rule.
func TestSARIFOutput(t *testing.T) {
	cfg, err := lint.DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(cfg.ModuleRoot, "internal", "lint", "testdata", "src", "floateq")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-cache", "-no-baseline", "-format", "sarif", fixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("sarif run exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 || doc.Runs[0].Results[0].RuleID != "float-eq" {
		t.Errorf("unexpected results: %+v", doc.Runs)
	}
}

// TestBaselineFlow pins -update-baseline and -baseline: recording the
// seeded findings makes the next run exit clean.
func TestBaselineFlow(t *testing.T) {
	cfg, err := lint.DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(cfg.ModuleRoot, "internal", "lint", "testdata", "src", "floateq")
	bpath := filepath.Join(t.TempDir(), "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-cache", "-baseline", bpath, "-update-baseline", fixture}, &stdout, &stderr); code != 2 {
		t.Fatalf("-update-baseline without -baseline-reason exited %d, want 2 (usage error)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-baseline-reason") {
		t.Errorf("missing-reason error does not name the flag:\n%s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-no-cache", "-baseline", bpath, "-update-baseline",
		"-baseline-reason", "fixture debt accepted for the test", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update-baseline exited %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fixture debt accepted for the test") {
		t.Errorf("baseline entries do not carry the supplied reason:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-no-cache", "-baseline", bpath, fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exited %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("baselined run still reports findings:\n%s", stdout.String())
	}
}
