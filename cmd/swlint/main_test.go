package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, id := range []string{"no-wallclock", "float-eq", "guarded-field", "err-wrap", "ldm-capacity"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing rule %s:\n%s", id, stdout.String())
		}
	}
}

func TestUsageOnNoPatterns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no patterns exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("expected usage on stderr, got: %s", stderr.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./internal/vclock"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestSeededViolationExitsNonZero is the acceptance check that a rule
// violation makes swlint fail with the rule ID and position: it lints
// the float-eq fixture tree directly.
func TestSeededViolationExitsNonZero(t *testing.T) {
	cfg, err := lint.DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(cfg.ModuleRoot, "internal", "lint", "testdata", "src", "floateq")
	var stdout, stderr bytes.Buffer
	if code := run([]string{fixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("seeded violations exited %d, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "float-eq") || !strings.Contains(out, "floateq.go:8:") {
		t.Errorf("output missing rule ID or position:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("expected finding count on stderr, got: %s", stderr.String())
	}
}
