package repro

// End-to-end integration: the workflows a downstream user would run,
// chained through the public API and the internal substrates together.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/quality"
	"repro/internal/stream"
	"repro/internal/sw26010"
)

// TestTrainSaveLoadInferWorkflow: train on the simulated machine, save
// the model, reload it, classify a fresh stream with the same
// generator, and verify quality end to end.
func TestTrainSaveLoadInferWorkflow(t *testing.T) {
	spec, err := NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	train, err := GaussianMixture("flow", 1200, 12, 6, 0.2, 2.0, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: spec, Level: LevelAuto, K: 6, MaxIters: 30,
		Init: InitKMeansPlusPlus, Seed: 21, TrackObjective: true,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("training did not converge")
	}
	if len(res.Objectives) != res.Iters {
		t.Fatalf("objective trace incomplete: %d/%d", len(res.Objectives), res.Iters)
	}

	var model bytes.Buffer
	if err := core.SaveCentroids(&model, res.Centroids, res.K, res.D); err != nil {
		t.Fatal(err)
	}
	cents, k, d, err := core.LoadCentroids(&model)
	if err != nil {
		t.Fatal(err)
	}

	// Classify a disjoint "test split": same mixture, different
	// indexes via a slice view.
	full, err := GaussianMixture("flow-test", 400, 12, 6, 0.2, 2.0, 21)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, full.N())
	buf := make([]float64, d)
	for i := 0; i < full.N(); i++ {
		full.Sample(i, buf)
		best, bestD := -1, math.Inf(1)
		for j := 0; j < k; j++ {
			cj := cents[j*d : (j+1)*d]
			acc := 0.0
			for u := 0; u < d; u++ {
				diff := buf[u] - cj[u]
				acc += diff * diff
			}
			if acc < bestD {
				best, bestD = j, acc
			}
		}
		assign[i] = best
	}
	truth := make([]int, full.N())
	for i := range truth {
		truth[i] = full.TrueLabel(i)
	}
	ari, err := ARI(assign, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.99 {
		t.Errorf("inference ARI = %g", ari)
	}
}

// TestAllExecutionPathsAgree: the coarse engines, the fine-grained
// CPE kernels, sequential Lloyd and the accelerated baselines all
// produce the same clustering on the same problem and init.
func TestAllExecutionPathsAgree(t *testing.T) {
	g, err := dataset.NewGaussianMixture("agree", 192, 32, 4, 0.15, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.MustSpec(1)
	init, err := core.InitialCentroids(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 12
	ref, err := core.LloydFrom(g, init, iters, 0)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, assign []int) {
		t.Helper()
		for i := range ref.Assign {
			if assign[i] != ref.Assign[i] {
				t.Fatalf("%s diverges from Lloyd at sample %d", name, i)
			}
		}
	}
	for _, lv := range []Level{Level1, Level2, Level3} {
		res, err := Run(Config{Spec: spec, Level: lv, K: 4, MaxIters: iters, Initial: init}, g)
		if err != nil {
			t.Fatal(err)
		}
		check(lv.String(), res.Assign)
	}
	f1, err := sw26010.RunLevel1CG(spec, g, init, iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("fine1", f1.Assign)
	f2, err := sw26010.RunLevel2CG(spec, g, init, 8, iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("fine2", f2.Assign)
	f3, err := sw26010.RunLevel3Group(spec, g, init, 2, 32, iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("fine3", f3.Assign)
	h, err := accel.Hamerly(g, init, iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("hamerly", h.Assign)
	e, err := accel.Elkan(g, init, iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("elkan", e.Assign)
}

// TestPreprocessedPipeline: standardization view feeding the engine,
// with internal quality indexes on the result.
func TestPreprocessedPipeline(t *testing.T) {
	raw, err := dataset.NewGaussianMixture("prep", 600, 8, 4, 0.2, 2.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	std, err := dataset.Standardize(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level3, K: 4, MaxIters: 25,
		Init: InitKMeansPlusPlus, Seed: 4,
	}, std)
	if err != nil {
		t.Fatal(err)
	}
	db, err := quality.DaviesBouldin(std, res.Centroids, res.D, res.Assign)
	if err != nil {
		t.Fatal(err)
	}
	sil, err := quality.Silhouette(std, res.Assign, 100)
	if err != nil {
		t.Fatal(err)
	}
	if db > 1.0 {
		t.Errorf("Davies-Bouldin = %g on separable standardized data", db)
	}
	if sil < 0.6 {
		t.Errorf("silhouette = %g on separable standardized data", sil)
	}
}

// TestStreamingThenWarmStart: streaming k-means provides the initial
// centroids for an exact machine run — the practical two-phase recipe
// for data that does not fit memory.
func TestStreamingThenWarmStart(t *testing.T) {
	g, err := dataset.NewGaussianMixture("warm", 1500, 10, 5, 0.15, 2.0, 31)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := stream.KMeans(g, 5, 200, 10, 31)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 5, MaxIters: 20,
		Initial: coarse.Centroids, Tolerance: 1e-9,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("warm-started run did not converge")
	}
	// Streaming seeds are already near the optimum: very few exact
	// iterations should remain.
	if res.Iters > 5 {
		t.Errorf("warm start needed %d iterations", res.Iters)
	}
	truth := make([]int, g.N())
	for i := range truth {
		truth[i] = g.TrueLabel(i)
	}
	ari, err := ARI(res.Assign, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.99 {
		t.Errorf("two-phase ARI = %g", ari)
	}
}
