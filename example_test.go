package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example reproduces the README quickstart: cluster a streaming
// Gaussian mixture with the paper's nkd-partition on a small simulated
// deployment. Everything is deterministic, including the simulated
// timing, so the output is stable.
func Example() {
	spec, err := repro.NewMachine(2) // 2 SW26010 nodes = 8 core groups
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.GaussianMixture("demo", 10_000, 64, 8, 0.2, 2.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Run(repro.Config{
		Spec:     spec,
		Level:    repro.Level3,
		K:        8,
		MaxIters: 25,
		Init:     repro.InitKMeansPlusPlus,
		Seed:     42,
	}, src)
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]int, src.N())
	for i := range truth {
		truth[i] = src.TrueLabel(i)
	}
	ari, err := repro.ARI(res.Assign, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Plan)
	fmt.Printf("converged=%v ARI=%.2f\n", res.Converged, ari)
	// Output:
	// level3(nkd-partition) ranks=8 m'group=1 groups=8 kLocal<=8 dStripe=1
	// converged=true ARI=1.00
}

// Example_paperScale shows the analytic model at the paper's headline
// operating point, which no host could execute functionally.
func Example_paperScale() {
	p, err := repro.Predict(repro.Level3, repro.Scenario{
		Nodes: 4096, N: 1_265_723, K: 2000, D: 196_608,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("headline: %.2f s/iteration on %d nodes (paper: < 18 s)\n", p.Total, 4096)
	// Output:
	// headline: 9.95 s/iteration on 4096 nodes (paper: < 18 s)
}
