#!/bin/sh
# servecheck drives the online-serving degradation contract end to end
# (docs/SERVING.md): swkmeansd under a seeded chaos plan — a trainer
# crash mid-run, a straggling query shard, dropped publishes — with
# kmload hammering it. It fails unless every query is answered or
# cleanly shed, epochs never regress, responses are never torn, epochs
# keep advancing through the crash, and the daemon drains cleanly on
# SIGTERM.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
DAEMON_PID=

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -KILL "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "servecheck: building"
$GO build -o "$TMP/swkmeansd" ./cmd/swkmeansd
$GO build -o "$TMP/kmload" ./cmd/kmload

# The chaos scenario ISSUE-level gates demand: the trainer is killed
# 0.6s in (and must restart), shard 1 straggles, 15% of publishes are
# dropped (epoch gaps, never regressions).
echo "servecheck: starting swkmeansd under chaos"
"$TMP/swkmeansd" \
    -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
    -k 8 -d 16 -shards 4 \
    -train-interval 5ms -restart-backoff 100ms \
    -chaos "seed=7; crash=0@0.6; slow=1x6; msg=0.15" \
    -metrics-out "$TMP/metrics.jsonl" -metrics-interval 200ms \
    >"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!

echo "servecheck: loading"
if ! "$TMP/kmload" \
    -addr-file "$TMP/addr" \
    -duration 2s -concurrency 8 -points 4 \
    -min-served 100 -min-epochs 3 \
    >"$TMP/report.json"; then
    echo "servecheck: FAIL: kmload found contract violations" >&2
    cat "$TMP/report.json" >&2
    echo "--- daemon log ---" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi
cat "$TMP/report.json"

# The Prometheus surface: one scrape of /metrics must expose the
# serving counters and the latency histogram in text format 0.0.4,
# with a served count consistent with the load phase that just ran.
echo "servecheck: scraping /metrics"
ADDR=$(cat "$TMP/addr")
curl -fsS "http://$ADDR/metrics" >"$TMP/scrape.txt"
for want in \
    "# TYPE swkmeansd_served_total counter" \
    "# TYPE swkmeansd_request_duration_seconds histogram" \
    "swkmeansd_request_duration_seconds_bucket{le=\"+Inf\"}" \
    "swkmeansd_request_duration_seconds_count" \
    "swkmeansd_snapshot_epoch"; do
    if ! grep -qF "$want" "$TMP/scrape.txt"; then
        echo "servecheck: FAIL: /metrics scrape is missing: $want" >&2
        cat "$TMP/scrape.txt" >&2
        exit 1
    fi
done
SERVED=$(awk '/^swkmeansd_served_total /{print $2}' "$TMP/scrape.txt")
if [ "${SERVED:-0}" -lt 100 ]; then
    echo "servecheck: FAIL: scrape reports served=$SERVED after a >=100-request load" >&2
    exit 1
fi

# The scheduled crash must actually have fired and been supervised
# back to life — otherwise the scenario tested nothing.
if ! grep -q "trainer died" "$TMP/daemon.log"; then
    echo "servecheck: FAIL: the chaos trainer crash never fired" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi

echo "servecheck: draining"
kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
if [ "$DRAIN_RC" -ne 0 ]; then
    echo "servecheck: FAIL: daemon exited $DRAIN_RC on SIGTERM" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi
DAEMON_PID=
if ! grep -q "drained cleanly" "$TMP/daemon.log"; then
    echo "servecheck: FAIL: no clean-drain confirmation" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi
if ! [ -s "$TMP/metrics.jsonl" ]; then
    echo "servecheck: FAIL: no metrics JSONL written" >&2
    exit 1
fi

echo "servecheck: ok"
