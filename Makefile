# Standard entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: check build vet lint lint-fix lint-sarif fixcheck test race faultcheck obscheck schedcheck servecheck bench benchdiff

# check is the full gate: build, vet, swlint, the autofix-idempotency
# gate, tests under the race detector, the fault-injection smoke
# matrix, the trace-export determinism check, the 4,096-rank scheduler
# gate, and the online-serving chaos scenario.
check: build vet lint fixcheck race faultcheck obscheck schedcheck servecheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/swlint -stats ./...

# lint-fix applies swlint's mechanical repairs (sorted-key map walks,
# %v → %w on error operands) in place, then re-checks.
lint-fix:
	$(GO) run ./cmd/swlint -fix ./...

# lint-sarif writes the findings as SARIF 2.1.0 for code-scanning
# upload; the report is written even when findings make the run fail.
lint-sarif:
	$(GO) run ./cmd/swlint -format sarif ./... > swlint.sarif; test $$? -le 1

# fixcheck is the autofix-idempotency gate: swlint -fix must be a
# no-op. A changed tree means a mechanical fix was committed unapplied
# (run `make lint-fix` and commit the result) or a fixer rewrites code
# it already fixed — either way the tree and the fixers have diverged.
# The git diff is snapshotted before and after so the gate also works
# on a dirty development tree; in CI's clean checkout this reduces to
# `git diff --exit-code`. swlint's own exit status is swallowed here
# (unfixable findings are the `lint` target's verdict); this gate only
# asserts that -fix left every tracked .go file byte-identical.
fixcheck:
	@git diff -- '*.go' > .fixcheck-before.diff
	$(GO) run ./cmd/swlint -fix ./... || true
	@git diff -- '*.go' > .fixcheck-after.diff
	@if ! cmp -s .fixcheck-before.diff .fixcheck-after.diff; then \
		echo "fixcheck: swlint -fix modified the tree; run 'make lint-fix' and commit:"; \
		diff .fixcheck-before.diff .fixcheck-after.diff; \
		rm -f .fixcheck-before.diff .fixcheck-after.diff; \
		exit 1; \
	fi
	@rm -f .fixcheck-before.diff .fixcheck-after.diff

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench seeds the perf trajectory: the root paper-figure benchmarks
# and the internal/core kernels run once each (their seeds are fixed
# in the *_test.go files), and cmd/benchjson turns the output into
# BENCH_<host>.json with machine metadata so runs on the same box
# diff cleanly. The checked-in BENCH_host.json is the first baseline;
# override BENCH_HOST=host to refresh it.
BENCH_HOST ?= $(shell hostname)

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/core \
		| $(GO) run ./cmd/benchjson -host $(BENCH_HOST) -out BENCH_$(BENCH_HOST).json

# benchdiff re-runs the benchmarks and compares ns/op against the
# checked-in baseline (BENCH_host.json). Informational, not a gate:
# ns/op on a shared CI box is too noisy to fail the build on, so CI
# runs it with `-` / continue-on-error and surfaces the table instead.
BENCH_BASELINE ?= BENCH_host.json

benchdiff:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/core \
		| $(GO) run ./cmd/benchjson -host $(BENCH_HOST) -out BENCH_current.json
	-$(GO) run ./cmd/benchjson -diff -threshold 0.25 $(BENCH_BASELINE) BENCH_current.json

# faultcheck smoke-runs the seeded fault matrix through the CLI: crash
# with checkpoint restart, crash with dropped shards, pure transient
# noise, a degraded fabric with a straggler, a whole-node loss, a
# Level-3 crash (checkpoint gather + re-striped restore), and faults
# under automatic level selection. Every scenario is deterministic
# (docs/FAULT_TOLERANCE.md) and must finish with exit code 0. Later
# flags win, so the Level-3/auto runs just override FAULTBASE's level.
FAULTBASE = $(GO) run ./cmd/swkmeans -dataset gauss -n 800 -d 8 -components 4 -level 1 -k 4 -nodes 2 -iters 10

faultcheck:
	$(FAULTBASE) -faults "seed=7; crash=3@2e-5; msg=0.01; retries=32" -ckpt 2
	$(FAULTBASE) -faults "crash=1@2e-5" -ckpt 2 -droplost
	$(FAULTBASE) -faults "seed=11; dma=0.05; msg=0.05; retries=64"
	$(FAULTBASE) -faults "link=*@0:1x4; slow=2x1.5"
	$(FAULTBASE) -faults "crashnode=1@3e-5; hb=1e-4" -ckpt 3
	$(FAULTBASE) -level 3 -mprime 4 -faults "seed=5; crash=5@2e-5; msg=0.01; retries=32" -ckpt 2
	$(FAULTBASE) -level 3 -mprime 2 -faults "crash=3@2e-5" -ckpt 2 -droplost
	$(FAULTBASE) -level 0 -faults "seed=9; crash=2@2e-5; dma=0.02; retries=32" -ckpt 2

# obscheck verifies the observability determinism contract end to end:
# the same seeded scenario run twice exports byte-identical Chrome
# trace and metrics files (docs/OBSERVABILITY.md), for a coarse Level-3
# run, a crash-recovery run, and a fine-grained CPE-level kernel.
# The final scenario is the scale gate: a 4,096-rank DES epoch under
# the rollup recorder exports its aggregate profile, folded stacks and
# aggregate Perfetto trace byte-identically twice, and cmd/obsdiff
# confirms zero deltas with exit 0. Its artifacts land in obscheck-out/
# (gitignored) for CI upload.
OBSBASE = $(GO) run ./cmd/swkmeans -dataset gauss -n 512 -d 8 -components 4 -k 4 -nodes 2 -iters 4
OBS4K = $(GO) run ./cmd/swkmeans -dataset imgnet -d 256 -stride 4096 -level 3 -k 2000 -nodes 1024 -mprime 128 -iters 1 -sched -rollup
OBSTMP := $(shell mktemp -d)

obscheck:
	$(OBSBASE) -level 3 -trace-out $(OBSTMP)/a.json -metrics-out $(OBSTMP)/a.jsonl -timeline
	$(OBSBASE) -level 3 -trace-out $(OBSTMP)/b.json -metrics-out $(OBSTMP)/b.jsonl -timeline
	cmp $(OBSTMP)/a.json $(OBSTMP)/b.json
	cmp $(OBSTMP)/a.jsonl $(OBSTMP)/b.jsonl
	$(OBSBASE) -level 1 -iters 10 -faults "seed=7; crash=3@2e-5" -ckpt 2 -trace-out $(OBSTMP)/fa.json
	$(OBSBASE) -level 1 -iters 10 -faults "seed=7; crash=3@2e-5" -ckpt 2 -trace-out $(OBSTMP)/fb.json
	cmp $(OBSTMP)/fa.json $(OBSTMP)/fb.json
	$(OBSBASE) -algo fine2 -mgroup 8 -trace-out $(OBSTMP)/c.json
	$(OBSBASE) -algo fine2 -mgroup 8 -trace-out $(OBSTMP)/d.json
	cmp $(OBSTMP)/c.json $(OBSTMP)/d.json
	mkdir -p obscheck-out
	$(OBS4K) -profile-out obscheck-out/profile-4k.json -folded-out obscheck-out/folded-4k.txt -trace-out obscheck-out/trace-agg-4k.json
	$(OBS4K) -profile-out $(OBSTMP)/p4k.json -folded-out $(OBSTMP)/f4k.txt -trace-out $(OBSTMP)/t4k.json
	cmp obscheck-out/profile-4k.json $(OBSTMP)/p4k.json
	cmp obscheck-out/folded-4k.txt $(OBSTMP)/f4k.txt
	cmp obscheck-out/trace-agg-4k.json $(OBSTMP)/t4k.json
	$(GO) run ./cmd/obsdiff obscheck-out/profile-4k.json $(OBSTMP)/p4k.json
	rm -rf $(OBSTMP)

# schedcheck is the discrete-event scheduler gate: a seeded 4,096-rank
# Figure 6b smoke run executes twice under the DES driver to
# byte-identical traces, the analytic model must agree with the
# executed iteration time within the perfmodel consistency tolerance,
# and a crash+straggler fault plan must recover deterministically.
schedcheck:
	$(GO) run ./cmd/benchfig -schedcheck

# servecheck runs the online-serving degradation contract end to end:
# swkmeansd under a seeded chaos plan (trainer crash at +0.6s, a
# straggling query shard, 15% dropped publishes) with kmload asserting
# zero non-shed failures, monotonic epochs, untorn responses and
# advancing epochs, then a graceful SIGTERM drain (docs/SERVING.md).
servecheck:
	GO="$(GO)" sh scripts/servecheck.sh
