# Standard entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: check build vet lint test race

# check is the full gate: build, vet, swlint, tests under the race
# detector.
check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/swlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
