package repro

// Ablation benchmarks for the design choices the paper argues for:
// register communication for the intra-CG reduce (Section II.A claims
// a 3x-4x speedup over DMA/MPI for the AllReduce bottleneck), compact
// CG-group placement inside a supernode (Section III.C), centroid
// residency versus DRAM tiling at Level 3, assignment batch sizing,
// and the ring-versus-binomial allreduce selection in the Update step.
// Each benchmark reports the simulated times of both arms so the trade
// is visible in the bench output, and the companion tests assert the
// direction of each trade.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/regcomm"
)

// updateVolume is a representative Update-step reduce volume
// (k=2,000 x (d=4,096+1) elements).
const updateVolume = 2000 * 4097

func TestAblationRegCommVsNetwork(t *testing.T) {
	// The paper's claim: register communication gives the AllReduce
	// bottleneck a 3x-4x speedup over other communication techniques.
	// Compare the mesh allreduce against moving the same volume over
	// the node-external network at the same collective depth.
	spec := machine.MustSpec(1)
	mesh := regcomm.NewModel(spec)
	regT := mesh.AllReduceTime(updateVolume / 64) // per-CPE share
	net := netmodel.MustNew(machine.MustSpec(256))
	perHop := net.Latency(machine.SameSupernode) +
		float64(updateVolume/64*4)/net.Bandwidth(machine.SameSupernode)
	netT := 6 * perHop * 64 // same 6-step depth, 64 participants sharing the NIC
	ratio := netT / regT
	if ratio < 2 || ratio > 8 {
		t.Errorf("register-communication speedup = %.2fx, paper claims 3x-4x (band [2,8])", ratio)
	}
}

func TestAblationCompactPlacement(t *testing.T) {
	// Section III.C: a CG group should stay within one supernode. The
	// same min-reduce is cheaper at intra-supernode bandwidth than
	// across the central router.
	net := netmodel.MustNew(machine.MustSpec(512))
	bytes := 2 * 256 * 4 // one assignment batch of (dist, index) pairs
	intra := net.Latency(machine.SameSupernode) + float64(bytes)/net.Bandwidth(machine.SameSupernode)
	cross := net.Latency(machine.CrossSupernode) + float64(bytes)/net.Bandwidth(machine.CrossSupernode)
	if cross <= intra {
		t.Errorf("cross-supernode hop (%g) not slower than intra (%g)", cross, intra)
	}
}

func TestAblationResidentVsTiledLevel3(t *testing.T) {
	// Centroid-stripe residency (bigger CG groups) versus DRAM tiling
	// (smaller groups, re-streaming): at the same group size, tiling
	// must cost more, and the planner must prefer residency when it
	// fits.
	spec := machine.MustSpec(128)
	resident := costmodel.Level3(spec, 10000, 2000, 4096, 16, 256, false)
	tiled := costmodel.Level3(spec, 10000, 2000, 4096, 16, 256, true)
	if tiled.Seconds() <= resident.Seconds() {
		t.Errorf("tiled (%g) not slower than resident (%g)", tiled.Seconds(), resident.Seconds())
	}
	plan, err := core.PlanFor(core.Config{Spec: spec, Level: core.Level3, K: 2000}, 1265723, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tiled {
		t.Error("planner tiled although a resident group fits on 128 nodes")
	}
}

func TestAblationBatchSize(t *testing.T) {
	// Larger assignment batches amortize collective latency in the
	// Level-3 assign step (until payloads dominate).
	g, err := dataset.ImgNet(512, 2048) // n=617
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.MustSpec(1)
	timeAt := func(batch int) float64 {
		res, err := core.Run(core.Config{
			Spec: spec, Level: core.Level3, K: 32, MPrimeGroup: 2,
			MaxIters: 1, Seed: 1, BatchSamples: batch,
		}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanIterTime()
	}
	tiny := timeAt(4)
	big := timeAt(256)
	if big >= tiny {
		t.Errorf("batch=256 (%g s) not faster than batch=4 (%g s)", big, tiny)
	}
}

func TestAblationAutoLevelNearBest(t *testing.T) {
	// LevelAuto must land within 25%% of the best fixed level's
	// simulated iteration time across contrasting shapes.
	shapes := []struct {
		name string
		d    int
		k    int
	}{
		{"low-dim", 16, 16},
		{"high-dim", 2048, 32},
	}
	spec := machine.MustSpec(1)
	for _, sh := range shapes {
		g, err := GaussianMixture(sh.name, 1024, sh.d, 8, 0.2, 2.0, 1)
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, lv := range []core.Level{core.Level1, core.Level2, core.Level3} {
			res, err := core.Run(core.Config{Spec: spec, Level: lv, K: sh.k, MaxIters: 1, Seed: 1}, g)
			if err != nil {
				continue
			}
			if best == 0 || res.MeanIterTime() < best {
				best = res.MeanIterTime()
			}
		}
		auto, err := core.Run(core.Config{Spec: spec, Level: core.LevelAuto, K: sh.k, MaxIters: 1, Seed: 1}, g)
		if err != nil {
			t.Fatal(err)
		}
		if auto.MeanIterTime() > best*1.25 {
			t.Errorf("%s: auto %g s vs best fixed %g s", sh.name, auto.MeanIterTime(), best)
		}
	}
}

func BenchmarkAblationRingVsBinomial(b *testing.B) {
	// The Update-step allreduce at k·d volume over 16 CGs, both
	// algorithms, simulated seconds reported side by side.
	run := func(ring bool) float64 {
		w := mpi.MustWorld(machine.MustSpec(4), nil, 16)
		if err := w.Run(func(c *mpi.Comm) error {
			buf := make([]float64, updateVolume/8)
			if ring {
				return c.AllReduceSumRing(buf, nil)
			}
			return c.AllReduceSum(buf, nil)
		}); err != nil {
			b.Fatal(err)
		}
		return w.MaxTime()
	}
	var ringT, binT float64
	for i := 0; i < b.N; i++ {
		ringT = run(true)
		binT = run(false)
	}
	b.ReportMetric(ringT, "sim-s-ring")
	b.ReportMetric(binT, "sim-s-binomial")
}

func BenchmarkAblationBatchSize(b *testing.B) {
	g, err := dataset.ImgNet(512, 2048)
	if err != nil {
		b.Fatal(err)
	}
	spec := machine.MustSpec(1)
	for _, batch := range []int{4, 64, 1024} {
		var sim float64
		for i := 0; i < b.N; i++ {
			res, err := core.Run(core.Config{
				Spec: spec, Level: core.Level3, K: 32, MPrimeGroup: 2,
				MaxIters: 1, Seed: 1, BatchSamples: batch,
			}, g)
			if err != nil {
				b.Fatal(err)
			}
			sim = res.MeanIterTime()
		}
		b.ReportMetric(sim, "sim-s-batch"+itoa(batch))
	}
}

func BenchmarkAblationLevelChoice(b *testing.B) {
	// The flexibility table of Section III.D as a benchmark: simulated
	// iteration time of each level on a low-dim and a high-dim shape.
	spec := machine.MustSpec(1)
	for _, sh := range []struct {
		name string
		d    int
	}{{"d16", 16}, {"d2048", 2048}} {
		g, err := GaussianMixture(sh.name, 1024, sh.d, 8, 0.2, 2.0, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, lv := range []core.Level{core.Level1, core.Level2, core.Level3} {
			var sim float64
			ok := true
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{Spec: spec, Level: lv, K: 16, MaxIters: 1, Seed: 1}, g)
				if err != nil {
					ok = false
					break
				}
				sim = res.MeanIterTime()
			}
			if ok {
				b.ReportMetric(sim, "sim-s-"+sh.name+"-L"+itoa(int(lv)))
			}
		}
	}
}
