package mpi

// The discrete-event (DES) World driver. The default driver runs one
// live goroutine per rank and moves packets through buffered channels;
// this one runs ranks as coroutine tasks of a sched.Sim, so blocking
// points — Recv waits, the final delivery hand-off of a send to a dead
// peer, collective protocol edges — become park/wake pairs on the
// scheduler's deterministic event heap. Nothing about the message
// protocol changes: packets, tags, timestamps, poison propagation and
// the fault plan's crash/straggler/degraded-link behaviour are shared
// code, which is why the two drivers are bit-identical (locked by the
// golden-parity suite and TestDriverParity*).
//
// Why bit-exactness holds. A rank's computation depends only on the
// packets it matches — identified by (src, tag), unique per
// communicator step — their timestamps, and its own clock; never on
// the interleaving of other ranks. The goroutine driver realizes one
// dependency-respecting interleaving chosen by the Go runtime, the
// DES driver another chosen by the event heap; both deliver the same
// packets with the same timestamps, so every per-rank float, clock
// and span is identical. The fault paths keep the property: a rank's
// deposits all precede its crash/abort publication in virtual
// execution order (here simply program order under the scheduler's
// serialization), and a receiver always prefers a buffered match over
// a failure report, mirroring drainAndTake.
//
// Why this driver scales. No per-rank inbox channels (capacity
// 4·size+16 each — quadratic in world size) are ever allocated: the
// held buffers double as mailboxes because deposits happen directly
// under the scheduler's serialization. The only per-rank costs are a
// parked goroutine (one page of stack) and a few words of wait state,
// which is what lets a 4,096-rank Figure 6(b) epoch — and 100k-rank
// collective microbenchmarks — run in-process.

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// Driver selects the World's execution engine.
type Driver int

const (
	// DriverGoroutine is the default: one live goroutine per rank,
	// channel-based packet exchange.
	DriverGoroutine Driver = iota
	// DriverSched runs ranks as coroutine tasks on a deterministic
	// discrete-event scheduler; see this file's package comment.
	DriverSched
)

// String implements fmt.Stringer.
func (d Driver) String() string {
	switch d {
	case DriverGoroutine:
		return "goroutine"
	case DriverSched:
		return "sched"
	default:
		return fmt.Sprintf("Driver(%d)", int(d))
	}
}

// SetDriver selects the execution engine for subsequent Run/RunLive
// calls. It must be called before Run, never concurrently with one;
// results are bit-identical across drivers.
func (w *World) SetDriver(d Driver) { w.driver = d }

// Driver returns the selected execution engine.
func (w *World) Driver() Driver { return w.driver }

// RunSched is Run under the discrete-event driver regardless of the
// configured one — the entry point for callers that want the DES
// engine explicitly (large-rank sweeps, microbenchmarks).
func (w *World) RunSched(fn func(c *Comm) error) error {
	prev := w.driver
	w.driver = DriverSched
	defer func() { w.driver = prev }()
	return w.Run(fn)
}

// desWorld is the per-epoch state of the DES driver: the scheduler,
// one task per participating rank, and each rank's current wait, all
// indexed by global rank. It exists only while runMembersSched is
// executing.
type desWorld struct {
	sim   *sched.Sim
	tasks []*sched.Task
	// waitSrc[g] is the global rank g's receive is waiting on, -1 when
	// g is not parked in a receive. waitTag[g] is the matching tag.
	waitSrc []int
	waitTag []uint64
}

// runMembersSched is runMembers' epoch body under the DES driver: the
// members become scheduler tasks whose initial events fire at their
// current clocks, and one Sim.Run dispatches the whole epoch.
func (w *World) runMembersSched(id uint64, members []int, fn func(c *Comm) error) error {
	des := &desWorld{
		sim:     sched.New(),
		tasks:   make([]*sched.Task, w.size),
		waitSrc: make([]int, w.size),
		waitTag: make([]uint64, w.size),
	}
	for g := range des.waitSrc {
		des.waitSrc[g] = -1
	}
	w.des = des
	defer func() { w.des = nil }()

	errs := make([]error, len(members))
	for i, g := range members {
		i, g := i, g
		comm := &Comm{w: w, id: id, rank: i, size: len(members), members: members}
		des.tasks[g] = des.sim.Spawn(g, w.clocks[g].Now(), func(*sched.Task) {
			err := fn(comm)
			errs[i] = err
			if err != nil {
				// Publish the failure before the abort wake-ups, exactly
				// like the goroutine driver publishes before close: peers
				// that observe the abort adopt the root cause.
				w.abortFail[g] = w.abortFailureFor(g, err, w.clocks[g].Now())
				close(w.aborted[g])
				w.desWakeWaitersOn(g, w.abortFail[g].DetectedAt)
			}
		})
	}
	if err := des.sim.Run(); err != nil {
		// A scheduler deadlock is a protocol bug (mismatched collective,
		// lost wake-up) — surface it with the scheduler's diagnostic
		// rather than hanging the way stuck goroutines would.
		return fmt.Errorf("mpi: sched driver: %w", err)
	}
	if w.obsRec != nil {
		st := des.sim.Stats()
		w.obsRec.AddCounter("sched:dispatches", st.Dispatches)
		w.obsRec.AddCounter("sched:parks", st.Parks)
		w.obsRec.AddCounter("sched:wakes", st.Wakes)
		w.obsRec.MaxCounter("sched:max_queue_depth", uint64(st.MaxQueue))
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", members[i], err)
		}
	}
	return nil
}

// desDeliver is the DES half of sendPacket's final hand-off: deposit
// straight into the destination's held buffer (its mailbox) and wake
// the destination if it is parked waiting for exactly this message.
// Packets bound for crashed or aborted ranks are dead letters, the
// same arms the goroutine driver's delivery select has.
func (w *World) desDeliver(dstG int, p packet) {
	if w.isCrashed(dstG) || w.isAborted(dstG) {
		return
	}
	w.held[dstG] = append(w.held[dstG], p)
	des := w.des
	if des.waitSrc[dstG] == p.src && des.waitTag[dstG] == p.tag {
		// The receive completes at max(receiver clock, packet time);
		// scheduling the wake-up there keeps the event heap's order
		// aligned with virtual time.
		des.tasks[dstG].Wake(math.Max(p.time, w.clocks[dstG].Now()))
	}
}

// desRecvWait is the DES half of recvFull's blocking loop: park until
// a matching deposit, the peer's crash, or its abort wakes us. The
// checks mirror the goroutine driver's select arms, with held-buffer
// matches taking priority over failure reports (the drainAndTake
// discipline) — under the scheduler the sender's deposits are ordered
// before its crash/abort publication, so the preference is exact.
func (c *Comm) desRecvWait(me, srcG int, tag uint64) ([]float64, []int64, *RankFailure, error) {
	w := c.w
	des := w.des
	self := des.tasks[me]
	for {
		if p, ok := c.takeHeld(me, srcG, tag); ok {
			return c.deliver(p)
		}
		if w.isCrashed(srcG) {
			fail := w.crashFailure(srcG)
			c.Clock().AdvanceTo(fail.DetectedAt)
			return nil, nil, fail, nil
		}
		if w.isAborted(srcG) {
			fail := w.abortFail[srcG]
			c.Clock().AdvanceTo(fail.DetectedAt)
			return nil, nil, fail, nil
		}
		des.waitSrc[me], des.waitTag[me] = srcG, tag
		self.Park()
		des.waitSrc[me] = -1
	}
}

// desWakeWaitersOn wakes every rank parked in a receive on the given
// global rank, at the failure's detection time reconciled with each
// waiter's own clock. Deposit wake-ups are targeted (desDeliver); this
// is the failure path, where the waiters re-check and observe the
// crash or abort.
func (w *World) desWakeWaitersOn(src int, detectedAt float64) {
	des := w.des
	if des == nil {
		return
	}
	for g, s := range des.waitSrc {
		if s == src {
			des.tasks[g].Wake(math.Max(detectedAt, w.clocks[g].Now()))
		}
	}
}

// isAborted reports whether a global rank's callback has aborted this
// epoch. Like isCrashed it is a closed-channel probe, so goroutine
// and DES code paths share one publication discipline.
func (w *World) isAborted(g int) bool {
	if w.aborted == nil {
		return false
	}
	//swlint:ignore goroutine-purity -- one case plus default is a deterministic closed-channel probe
	select {
	case <-w.aborted[g]:
		return true
	default:
		return false
	}
}
