package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/trace"
)

func world(t *testing.T, nodes, size int) *World {
	t.Helper()
	w, err := NewWorld(machine.MustSpec(nodes), trace.NewStats(), size)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	spec := machine.MustSpec(1)
	if _, err := NewWorld(spec, nil, 0); err == nil {
		t.Error("size 0: want error")
	}
	if _, err := NewWorld(spec, nil, 5); err == nil {
		t.Error("size beyond CG count: want error")
	}
	bad := machine.MustSpec(1)
	bad.Nodes = -1
	if _, err := NewWorld(bad, nil, 1); err == nil {
		t.Error("invalid spec: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorld did not panic")
		}
	}()
	MustWorld(spec, nil, 99)
}

func TestRunRanks(t *testing.T) {
	w := world(t, 2, 8)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := w.Run(func(c *Comm) error {
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		if c.Size() != 8 {
			return fmt.Errorf("size %d", c.Size())
		}
		if c.Global() != c.Rank() {
			return fmt.Errorf("global %d != rank %d in world comm", c.Global(), c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Errorf("ran %d ranks, want 8", len(seen))
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := world(t, 1, 4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestSendRecv(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(1, 7, []float64{3.14}, []int64{42})
		case 1:
			d, i, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(d) != 1 || d[0] != 3.14 || len(i) != 1 || i[0] != 42 {
				return fmt.Errorf("payload %v %v", d, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, nil, nil); err == nil {
			return fmt.Errorf("out-of-range dst accepted")
		}
		if err := c.Send(0, 0, nil, nil); err == nil {
			return fmt.Errorf("self send accepted")
		}
		if err := c.Send(1, -1, nil, nil); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if err := c.Send(1, 1<<20, nil, nil); err == nil {
			return fmt.Errorf("huge tag accepted")
		}
		if _, _, err := c.Recv(9, 0); err == nil {
			return fmt.Errorf("out-of-range src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			buf := []float64{1}
			if err := c.Send(1, 0, buf, nil); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
		case 1:
			d, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if d[0] != 1 {
				return fmt.Errorf("message mutated after send: %v", d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingByTag(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 1, []float64{1}, nil); err != nil {
				return err
			}
			if err := c.Send(1, 2, []float64{2}, nil); err != nil {
				return err
			}
		case 1:
			// Receive out of order: tag 2 first.
			d2, _, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			d1, _, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if d2[0] != 2 || d1[0] != 1 {
				return fmt.Errorf("got %v %v", d2, d1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockReconciliation(t *testing.T) {
	w := world(t, 2, 8)
	var recvAt float64
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Clock().Advance(2.0)
			return c.Send(7, 0, make([]float64, 1000), nil)
		case 7:
			_, _, err := c.Recv(0, 0)
			recvAt = c.Clock().Now()
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvAt <= 2.0 {
		t.Errorf("receive at %g, want after send time 2.0 plus wire time", recvAt)
	}
	if w.MaxTime() < recvAt {
		t.Error("MaxTime below receiver clock")
	}
}

func TestBarrier(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		w := world(t, 4, size)
		err := w.Run(func(c *Comm) error {
			c.Clock().Advance(float64(c.Rank()))
			if err := c.Barrier(); err != nil {
				return err
			}
			// After a barrier every clock is at least the slowest entry.
			if c.Clock().Now() < float64(size-1) {
				return fmt.Errorf("rank %d clock %g below barrier floor %d", c.Rank(), c.Clock().Now(), size-1)
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 16} {
		for root := 0; root < size; root += 2 {
			w := world(t, 4, size)
			err := w.Run(func(c *Comm) error {
				data := make([]float64, 3)
				ints := make([]int64, 2)
				if c.Rank() == root {
					copy(data, []float64{1, 2, 3})
					copy(ints, []int64{9, 8})
				}
				if err := c.Bcast(root, data, ints); err != nil {
					return err
				}
				if data[0] != 1 || data[1] != 2 || data[2] != 3 || ints[0] != 9 || ints[1] != 8 {
					return fmt.Errorf("rank %d got %v %v", c.Rank(), data, ints)
				}
				return nil
			})
			if err != nil {
				t.Errorf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestBcastBadRoot(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		if err := c.Bcast(5, nil, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 6, 8, 11} {
		w := world(t, 4, size)
		results := make([][]float64, size)
		err := w.Run(func(c *Comm) error {
			data := []float64{float64(c.Rank() + 1), 1}
			ints := []int64{int64(c.Rank())}
			if err := c.AllReduceSum(data, ints); err != nil {
				return err
			}
			results[c.Rank()] = data
			wantF := float64(size*(size+1)) / 2
			if data[0] != wantF || data[1] != float64(size) {
				return fmt.Errorf("rank %d sum %v, want [%g %d]", c.Rank(), data, wantF, size)
			}
			wantI := int64(size * (size - 1) / 2)
			if ints[0] != wantI {
				return fmt.Errorf("rank %d int sum %d, want %d", c.Rank(), ints[0], wantI)
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestAllReduceSumBitwiseIdentical(t *testing.T) {
	const size = 7
	w := world(t, 2, size)
	results := make([][]float64, size)
	err := w.Run(func(c *Comm) error {
		data := []float64{math.Sqrt(float64(c.Rank()+2)) * 1e-7, math.Pi * float64(c.Rank())}
		if err := c.AllReduceSum(data, nil); err != nil {
			return err
		}
		results[c.Rank()] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < size; r++ {
		if results[r][0] != results[0][0] || results[r][1] != results[0][1] {
			t.Fatalf("rank %d result %v differs from rank 0 %v", r, results[r], results[0])
		}
	}
}

func TestAllReduceMinPairs(t *testing.T) {
	const size = 9
	w := world(t, 4, size)
	err := w.Run(func(c *Comm) error {
		// Element 0: plain minimum. Element 1: tie on value, index
		// breaks it. Element 2: minimum held by the last rank.
		vals := []float64{float64(10 + c.Rank()), 5.0, float64(100 - c.Rank())}
		idxs := []int64{int64(c.Rank()), int64(size - c.Rank()), int64(c.Rank())}
		if err := c.AllReduceMinPairs(vals, idxs); err != nil {
			return err
		}
		if vals[0] != 10 || idxs[0] != 0 {
			return fmt.Errorf("elem0 = %g/%d, want 10/0", vals[0], idxs[0])
		}
		if vals[1] != 5 || idxs[1] != 1 {
			return fmt.Errorf("elem1 = %g/%d, want 5/1 (tie to lowest index)", vals[1], idxs[1])
		}
		if vals[2] != float64(100-(size-1)) || idxs[2] != int64(size-1) {
			return fmt.Errorf("elem2 = %g/%d", vals[2], idxs[2])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMinPairsMismatch(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		if err := c.AllReduceMinPairs(make([]float64, 2), make([]int64, 3)); err == nil {
			return fmt.Errorf("mismatched lengths accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherInts(t *testing.T) {
	const size = 5
	w := world(t, 2, size)
	err := w.Run(func(c *Comm) error {
		got, err := c.AllGatherInts([]int64{int64(c.Rank() * 10), int64(c.Rank())})
		if err != nil {
			return err
		}
		if len(got) != 2*size {
			return fmt.Errorf("len %d", len(got))
		}
		for r := 0; r < size; r++ {
			if got[2*r] != int64(r*10) || got[2*r+1] != int64(r) {
				return fmt.Errorf("rank %d sees %v", c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	const size = 10
	w := world(t, 4, size)
	err := w.Run(func(c *Comm) error {
		color := c.Rank() % 3
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		wantSize := size / 3
		if color < size%3 {
			wantSize++
		}
		if sub.Size() != wantSize {
			return fmt.Errorf("rank %d color %d: sub size %d, want %d", c.Rank(), color, sub.Size(), wantSize)
		}
		if sub.Global() != c.Rank() {
			return fmt.Errorf("global rank changed in split")
		}
		// Collectives work within the partition: sum of global ranks.
		data := []float64{float64(c.Rank())}
		if err := sub.AllReduceSum(data, nil); err != nil {
			return err
		}
		want := 0.0
		for r := color; r < size; r += 3 {
			want += float64(r)
		}
		if data[0] != want {
			return fmt.Errorf("color %d partial sum %g, want %g", color, data[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitThenWorldCollective(t *testing.T) {
	// Interleaving collectives on sub- and world communicators must not
	// cross-match messages.
	const size = 8
	w := world(t, 2, size)
	err := w.Run(func(c *Comm) error {
		sub, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		data := []float64{1}
		if err := sub.AllReduceSum(data, nil); err != nil {
			return err
		}
		if data[0] != 4 {
			return fmt.Errorf("sub sum %g, want 4", data[0])
		}
		if err := c.AllReduceSum(data, nil); err != nil {
			return err
		}
		if data[0] != 32 {
			return fmt.Errorf("world sum %g, want 32", data[0])
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	const size = 8
	w := world(t, 2, size)
	err := w.Run(func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		data := []float64{float64(c.Rank())}
		if err := quarter.AllReduceSum(data, nil); err != nil {
			return err
		}
		base := float64(c.Rank()/2*2) // pair base rank
		if data[0] != base+(base+1) {
			return fmt.Errorf("pair sum %g for rank %d", data[0], c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraSupernodeFasterThanInter(t *testing.T) {
	// Two worlds: 256 nodes (one supernode) and 512 nodes with ranks
	// placed across the boundary. Same traffic, slower completion when
	// crossing supernodes.
	timeFor := func(nodes, size int) float64 {
		w := world(t, nodes, size)
		err := w.Run(func(c *Comm) error {
			return c.AllReduceSum(make([]float64, 20000), nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	// 8 ranks inside one node span vs 8 ranks spread across two
	// supernodes (one rank per 64-node stride on a 512-node machine).
	intra := timeFor(2, 8)
	wSpread := world(t, 512, 2048)
	err := wSpread.Run(func(c *Comm) error {
		sub, err := c.Split(boolToInt(c.Rank()%256 == 0), c.Rank())
		if err != nil {
			return err
		}
		if c.Rank()%256 == 0 {
			return sub.AllReduceSum(make([]float64, 20000), nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spread := wSpread.MaxTime()
	if spread <= intra {
		t.Errorf("cross-supernode allreduce (%g) should be slower than node-local (%g)", spread, intra)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestResetClocks(t *testing.T) {
	w := world(t, 1, 4)
	if err := w.Run(func(c *Comm) error { return c.Barrier() }); err != nil {
		t.Fatal(err)
	}
	if w.MaxTime() <= 0 {
		t.Fatal("barrier consumed no time")
	}
	w.ResetClocks()
	if w.MaxTime() != 0 {
		t.Errorf("MaxTime after reset = %g", w.MaxTime())
	}
}

func TestStatsRecorded(t *testing.T) {
	stats := trace.NewStats()
	w := MustWorld(machine.MustSpec(2), stats, 8)
	if err := w.Run(func(c *Comm) error {
		return c.AllReduceSum(make([]float64, 10), nil)
	}); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.NetMessages == 0 || snap.NetBytes == 0 {
		t.Errorf("network traffic not recorded: %+v", snap)
	}
}

func TestAllReduceSumProperty(t *testing.T) {
	// Property: integer payloads sum exactly for arbitrary sizes.
	f := func(rawSize uint8, seed uint32) bool {
		size := int(rawSize)%13 + 1
		w, err := NewWorld(machine.MustSpec(4), nil, size)
		if err != nil {
			return false
		}
		vals := make([]float64, size)
		want := 0.0
		s := seed
		for i := range vals {
			s = s*1664525 + 1013904223
			vals[i] = float64(s % 4096)
			want += vals[i]
		}
		ok := true
		var mu sync.Mutex
		err = w.Run(func(c *Comm) error {
			data := []float64{vals[c.Rank()]}
			if err := c.AllReduceSum(data, nil); err != nil {
				return err
			}
			if data[0] != want {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
