package mpi

import (
	"fmt"
	"testing"
)

func TestGather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < size; root += 3 {
			w := world(t, 4, size)
			err := w.Run(func(c *Comm) error {
				contrib := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
				got, err := c.Gather(root, contrib)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root received data")
					}
					return nil
				}
				if len(got) != 2*size {
					return fmt.Errorf("root got %d values", len(got))
				}
				for r := 0; r < size; r++ {
					if got[2*r] != float64(r) || got[2*r+1] != float64(r*10) {
						return fmt.Errorf("slot %d = %v", r, got[2*r:2*r+2])
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("size=%d root=%d: %v", size, root, err)
			}
		}
	}
}

func TestGatherBadRoot(t *testing.T) {
	w := world(t, 1, 2)
	err := w.Run(func(c *Comm) error {
		if _, err := c.Gather(9, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < size; root += 2 {
			w := world(t, 4, size)
			err := w.Run(func(c *Comm) error {
				var data []float64
				if c.Rank() == root {
					data = make([]float64, 3*size)
					for i := range data {
						data[i] = float64(i)
					}
				}
				got, err := c.Scatter(root, data)
				if err != nil {
					return err
				}
				if len(got) != 3 {
					return fmt.Errorf("rank %d got %d values", c.Rank(), len(got))
				}
				for j := 0; j < 3; j++ {
					want := float64(c.Rank()*3 + j)
					if got[j] != want {
						return fmt.Errorf("rank %d slot %d = %g, want %g", c.Rank(), j, got[j], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("size=%d root=%d: %v", size, root, err)
			}
		}
	}
}

func TestScatterValidation(t *testing.T) {
	w := world(t, 1, 3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, make([]float64, 7)); err == nil {
				return fmt.Errorf("indivisible payload accepted")
			}
		}
		return nil
	})
	// Ranks 1,2 block waiting for a scatter that never happens — so
	// only run the root-side validation without them participating.
	// The error from rank 0 aborts Run via the deadlock-free paths of
	// the other ranks returning nil immediately.
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const size = 7
	w := world(t, 2, size)
	err := w.Run(func(c *Comm) error {
		var data []float64
		if c.Rank() == 2 {
			data = make([]float64, 4*size)
			for i := range data {
				data[i] = float64(i * i)
			}
		}
		part, err := c.Scatter(2, data)
		if err != nil {
			return err
		}
		back, err := c.Gather(2, part)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for i := range data {
				if back[i] != data[i] {
					return fmt.Errorf("round trip lost element %d", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherFloats(t *testing.T) {
	const size = 6
	w := world(t, 2, size)
	err := w.Run(func(c *Comm) error {
		got, err := c.AllGatherFloats([]float64{float64(c.Rank() + 100)})
		if err != nil {
			return err
		}
		if len(got) != size {
			return fmt.Errorf("len %d", len(got))
		}
		for r := 0; r < size; r++ {
			if got[r] != float64(r+100) {
				return fmt.Errorf("rank %d sees %v", c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargestSpan(t *testing.T) {
	cases := []struct{ rel, size, want int }{
		{0, 5, 8}, {0, 8, 8}, {1, 8, 1}, {2, 8, 2}, {4, 8, 4}, {6, 8, 2},
	}
	for _, c := range cases {
		if got := largestSpan(c.rel, c.size); got != c.want {
			t.Errorf("largestSpan(%d,%d) = %d, want %d", c.rel, c.size, got, c.want)
		}
	}
}
