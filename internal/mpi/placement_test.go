package mpi

import (
	"testing"

	"repro/internal/machine"
)

func TestPlacementValidation(t *testing.T) {
	spec := machine.MustSpec(2)
	if _, err := NewWorldPlaced(spec, nil, 4, func(r int) int { return -1 }); err == nil {
		t.Error("negative CG accepted")
	}
	if _, err := NewWorldPlaced(spec, nil, 4, func(r int) int { return 99 }); err == nil {
		t.Error("out-of-range CG accepted")
	}
	if _, err := NewWorldPlaced(spec, nil, 4, func(r int) int { return 0 }); err == nil {
		t.Error("non-injective placement accepted")
	}
	if _, err := NewWorldPlaced(spec, nil, 0, CompactPlacement); err == nil {
		t.Error("size 0 accepted")
	}
	w, err := NewWorldPlaced(spec, nil, 4, nil)
	if err != nil {
		t.Fatalf("nil placement should default to compact: %v", err)
	}
	if w.cgOf[3] != 3 {
		t.Error("default placement not compact")
	}
}

func TestStridedPlacement(t *testing.T) {
	p := StridedPlacement(64, 2048)
	if p(0) != 0 || p(1) != 64 || p(32) != 0 {
		t.Errorf("strided placement wrong: %d %d %d", p(0), p(1), p(32))
	}
}

func TestCommCG(t *testing.T) {
	spec := machine.MustSpec(512)
	w, err := NewWorldPlaced(spec, nil, 8, StridedPlacement(256, spec.CGs()))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.CG() != c.Rank()*256 {
			t.Errorf("rank %d on CG %d, want %d", c.Rank(), c.CG(), c.Rank()*256)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScatteredPlacementIsSlower: the same collective over the same
// rank count completes later when ranks scatter across supernodes —
// the functional confirmation of Section III.C's placement advice.
func TestScatteredPlacementIsSlower(t *testing.T) {
	spec := machine.MustSpec(2048) // 8192 CGs, 8 supernodes
	const size = 16
	timeFor := func(place Placement) float64 {
		w, err := NewWorldPlaced(spec, nil, size, place)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(c *Comm) error {
			return c.AllReduceSum(make([]float64, 50000), nil)
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	compact := timeFor(CompactPlacement)
	scattered := timeFor(StridedPlacement(512, spec.CGs()))
	if scattered <= compact {
		t.Errorf("scattered allreduce (%g) not slower than compact (%g)", scattered, compact)
	}
}

func TestPlacedWorldStillCorrect(t *testing.T) {
	// Correctness is placement-independent: sums agree.
	spec := machine.MustSpec(512)
	w, err := NewWorldPlaced(spec, nil, 10, StridedPlacement(128, spec.CGs()))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		data := []float64{float64(c.Rank() + 1)}
		if err := c.AllReduceSum(data, nil); err != nil {
			return err
		}
		if data[0] != 55 {
			t.Errorf("sum = %g, want 55", data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
