package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Placement maps a rank to the global CG index it runs on. The default
// world uses the identity (compact) placement: consecutive ranks fill
// nodes, then supernodes — the paper's recommended layout.
type Placement func(rank int) int

// CompactPlacement is the identity mapping.
func CompactPlacement(rank int) int { return rank }

// StridedPlacement spreads consecutive ranks stride CGs apart, wrapping
// over total CGs — the adversarial layout that scatters a CG group
// across supernodes (what Section III.C warns against).
func StridedPlacement(stride, total int) Placement {
	return func(rank int) int {
		return (rank * stride) % total
	}
}

// NewWorldPlaced creates a world whose rank r runs on CG place(r).
// The placement must be injective into [0, spec.CGs()); it is
// validated eagerly.
func NewWorldPlaced(spec *machine.Spec, stats *trace.Stats, size int, place Placement) (*World, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("mpi: %w", err)
	}
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	if size > spec.CGs() {
		return nil, fmt.Errorf("mpi: world size %d exceeds %d CGs of the deployment", size, spec.CGs())
	}
	if place == nil {
		place = CompactPlacement
	}
	cgOf := make([]int, size)
	seen := make(map[int]bool, size)
	for r := 0; r < size; r++ {
		cg := place(r)
		if cg < 0 || cg >= spec.CGs() {
			return nil, fmt.Errorf("mpi: placement maps rank %d to CG %d, outside [0,%d)", r, cg, spec.CGs())
		}
		if seen[cg] {
			return nil, fmt.Errorf("mpi: placement maps two ranks to CG %d", cg)
		}
		seen[cg] = true
		cgOf[r] = cg
	}
	w := &World{
		spec:  spec,
		net:   netmodel.MustNew(spec),
		stats: stats,
		size:  size,
		cgOf:  cgOf,
		// The channels themselves are allocated lazily by the goroutine
		// driver's first epoch; the DES driver never needs them, and at
		// its world sizes (thousands of ranks) the 4·size+16 buffers
		// would cost gigabytes.
		inbox: make([]chan packet, size),
		held:  make([][]packet, size),
		clocks: func() []*vclock.Clock {
			cs := make([]*vclock.Clock, size)
			for i := range cs {
				cs[i] = vclock.New()
			}
			return cs
		}(),
	}
	return w, nil
}
