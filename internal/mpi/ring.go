package mpi

import (
	"fmt"

	"repro/internal/ldm"
)

// ringThresholdElems selects the allreduce algorithm: payloads of at
// least this many elements use the bandwidth-optimal ring, smaller
// ones the latency-optimal binomial reduce+broadcast. The Update step
// of the k-means engines crosses this boundary as k·d grows, exactly
// the regime split real MPI libraries implement.
const ringThresholdElems = 1 << 16

// AllReduceSumAuto picks the allreduce algorithm by payload size:
// binomial reduce+broadcast below ringThresholdElems, ring at or
// above it. Results are deterministic and identical on every rank for
// either algorithm (though the two algorithms associate additions
// differently, so they are not bitwise interchangeable with each
// other).
func (c *Comm) AllReduceSumAuto(data []float64, ints []int64) error {
	if len(data)+len(ints) >= ringThresholdElems && c.size > 2 {
		return c.AllReduceSumRing(data, ints)
	}
	return c.AllReduceSum(data, ints)
}

// AllReduceSumRing sums data and ints element-wise across all ranks
// with the bandwidth-optimal ring algorithm: a reduce-scatter phase
// (p-1 steps, each moving one 1/p segment around the ring while
// accumulating) followed by an allgather phase (p-1 steps broadcasting
// the finished segments). Every rank transfers about 2·(p-1)/p of the
// payload regardless of p, versus 2·log2(p) payloads for the binomial
// algorithm — the classic large-message trade.
func (c *Comm) AllReduceSumRing(data []float64, ints []int64) error {
	u, m := c.obsBegin()
	err := c.allReduceSumRing(data, ints)
	c.obsEnd(u, m, "mpi:allreduce", int64((len(data)+len(ints))*ldm.ElemBytes))
	return err
}

func (c *Comm) allReduceSumRing(data []float64, ints []int64) error {
	p := c.size
	if p == 1 {
		return c.checkSelfCrash()
	}
	st := &opState{}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	segF := func(s int) (int, int) { return segment(len(data), p, s) }
	segI := func(s int) (int, int) { return segment(len(ints), p, s) }

	// Reduce-scatter: in step t, send segment (rank-t) and receive and
	// accumulate segment (rank-t-1). After p-1 steps, rank r holds the
	// fully reduced segment (r+1) mod p. A failure travels forward one
	// hop per step as poison, so the 2(p-1) total steps are enough to
	// reach every survivor.
	for t := 0; t < p-1; t++ {
		tag := c.nextTag()
		sendSeg := mod(c.rank-t, p)
		recvSeg := mod(c.rank-t-1, p)
		fLo, fHi := segF(sendSeg)
		iLo, iHi := segI(sendSeg)
		if err := c.opSend(st, next, tag, data[fLo:fHi], ints[iLo:iHi]); err != nil {
			return err
		}
		d, ii, err := c.opRecv(st, prev, tag)
		if err != nil {
			return err
		}
		if st.fail == nil {
			fLo, fHi = segF(recvSeg)
			iLo, iHi = segI(recvSeg)
			if len(d) != fHi-fLo || len(ii) != iHi-iLo {
				return fmt.Errorf("mpi: ring reduce-scatter segment mismatch on rank %d step %d", c.rank, t)
			}
			for j, v := range d {
				data[fLo+j] += v
			}
			for j, v := range ii {
				ints[iLo+j] += v
			}
		}
	}
	// Allgather: circulate the finished segments. In step t, send
	// segment (rank-t+1) and receive segment (rank-t).
	for t := 0; t < p-1; t++ {
		tag := c.nextTag()
		sendSeg := mod(c.rank-t+1, p)
		recvSeg := mod(c.rank-t, p)
		fLo, fHi := segF(sendSeg)
		iLo, iHi := segI(sendSeg)
		if err := c.opSend(st, next, tag, data[fLo:fHi], ints[iLo:iHi]); err != nil {
			return err
		}
		d, ii, err := c.opRecv(st, prev, tag)
		if err != nil {
			return err
		}
		if st.fail == nil {
			fLo, fHi = segF(recvSeg)
			iLo, iHi = segI(recvSeg)
			if len(d) != fHi-fLo || len(ii) != iHi-iLo {
				return fmt.Errorf("mpi: ring allgather segment mismatch on rank %d step %d", c.rank, t)
			}
			copy(data[fLo:fHi], d)
			copy(ints[iLo:iHi], ii)
		}
	}
	return st.err()
}

// segment splits n elements into p near-equal contiguous segments and
// returns segment s as a half-open range.
func segment(n, p, s int) (int, int) {
	base := n / p
	extra := n % p
	lo := s*base + min(s, extra)
	hi := lo + base
	if s < extra {
		hi++
	}
	return lo, hi
}

func mod(a, p int) int { return ((a % p) + p) % p }
