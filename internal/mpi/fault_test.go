package mpi

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/trace"
)

func faultyWorld(t *testing.T, nodes, size int, p fault.Plan) *World {
	t.Helper()
	w := world(t, nodes, size)
	w.SetFaults(fault.MustInjector(p))
	return w
}

// TestRecvFromCrashedRankReturnsTypedError: a receive posted against a
// crashed rank must complete with ErrRankFailed at crash time plus the
// heartbeat timeout instead of deadlocking.
func TestRecvFromCrashedRankReturnsTypedError(t *testing.T) {
	const hb = 1e-3
	w := faultyWorld(t, 1, 2, fault.Plan{
		Crashes:          []fault.Crash{{CG: 1, At: 0}},
		HeartbeatTimeout: hb,
	})
	var recvErr error
	var detectedAt float64
	runErr := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, 7, []float64{1}, nil)
		}
		_, _, err := c.Recv(1, 7)
		recvErr = err
		detectedAt = c.Clock().Now()
		return err
	})
	if runErr == nil {
		t.Fatal("run with a crashed rank returned nil")
	}
	if !errors.Is(recvErr, ErrRankFailed) {
		t.Fatalf("Recv error = %v, want ErrRankFailed", recvErr)
	}
	var rf *RankFailure
	if !errors.As(recvErr, &rf) || rf.Rank != 1 || rf.CrashedAt != 0 || rf.DetectedAt != hb {
		t.Fatalf("failure detail = %+v", rf)
	}
	if detectedAt != hb {
		t.Errorf("receiver clock = %v, want the detection time %v", detectedAt, hb)
	}
	if failed := w.Failed(); len(failed) != 1 || failed[0] != 1 {
		t.Errorf("Failed() = %v, want [1]", failed)
	}
	if alive := w.Alive(); len(alive) != 1 || alive[0] != 0 {
		t.Errorf("Alive() = %v, want [0]", alive)
	}
	if f := w.Failure(1); f == nil || f.Rank != 1 {
		t.Errorf("Failure(1) = %+v", f)
	}
	if w.Failure(0) != nil {
		t.Error("Failure(0) non-nil for a live rank")
	}
}

// TestMessagesSentBeforeCrashAreDelivered: a message the dead rank got
// out before its fail-stop must win over the failure report — whether
// a receive sees data or a failure is decided by virtual times, not by
// goroutine scheduling.
func TestMessagesSentBeforeCrashAreDelivered(t *testing.T) {
	w := faultyWorld(t, 1, 2, fault.Plan{
		Crashes: []fault.Crash{{CG: 1, At: 1e-3}},
	})
	errs := make([]error, 2)
	_ = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 7, []float64{42}, nil); err != nil {
				return err
			}
			c.Clock().Advance(2e-3) // cross the crash time, then fail-stop
			err := c.Send(0, 8, []float64{43}, nil)
			errs[1] = err
			return err
		}
		d, _, err := c.Recv(1, 7)
		if err != nil || len(d) != 1 || d[0] != 42 {
			t.Errorf("pre-crash message: d=%v err=%v", d, err)
		}
		_, _, err = c.Recv(1, 8)
		errs[0] = err
		return err
	})
	if !errors.Is(errs[0], ErrRankFailed) {
		t.Errorf("post-crash Recv error = %v, want ErrRankFailed", errs[0])
	}
	if !errors.Is(errs[1], ErrCrashed) {
		t.Errorf("self-crash error = %v, want ErrCrashed", errs[1])
	}
	var cs *CrashStop
	if !errors.As(errs[1], &cs) || cs.Rank != 1 || cs.At != 1e-3 {
		t.Errorf("crash detail = %+v", cs)
	}
}

// TestMidCollectiveFailurePropagatesToAll: when a rank dies mid-job,
// every survivor must come out of the collective with the same typed
// failure — no deadlock, no partial knowledge — for each collective
// the engines use. Run with -race: this is the concurrency stress for
// the poison/abort machinery.
func TestMidCollectiveFailurePropagatesToAll(t *testing.T) {
	const size = 8
	const dead = 3
	collectives := map[string]func(c *Comm) error{
		"barrier": func(c *Comm) error { return c.Barrier() },
		"allreduce": func(c *Comm) error {
			return c.AllReduceSum(make([]float64, 4), nil)
		},
		"allreduce-ring": func(c *Comm) error {
			return c.AllReduceSumRing(make([]float64, 64), nil)
		},
		"minpairs": func(c *Comm) error {
			return c.AllReduceMinPairs(make([]float64, 3), make([]int64, 3))
		},
		"allgather-ints": func(c *Comm) error {
			_, err := c.AllGatherInts([]int64{int64(c.Rank())})
			return err
		},
		"allgather-floats": func(c *Comm) error {
			_, err := c.AllGatherFloats([]float64{1})
			return err
		},
	}
	for name, op := range collectives {
		t.Run(name, func(t *testing.T) {
			w := faultyWorld(t, 2, size, fault.Plan{
				Crashes: []fault.Crash{{CG: dead, At: 0}},
			})
			errs := make([]error, size)
			_ = w.Run(func(c *Comm) error {
				err := op(c)
				errs[c.Rank()] = err
				return err
			})
			for r, err := range errs {
				if r == dead {
					if !errors.Is(err, ErrCrashed) {
						t.Errorf("dead rank error = %v, want ErrCrashed", err)
					}
					continue
				}
				var rf *RankFailure
				if !errors.As(err, &rf) {
					t.Fatalf("rank %d error = %v, want *RankFailure", r, err)
				}
				if rf.Rank != dead {
					t.Errorf("rank %d blames rank %d, want %d", r, rf.Rank, dead)
				}
			}
		})
	}
}

// TestAbortCascadePreventsDeadlock: a rank whose callback fails with
// an ordinary error (not a crash) must not strand peers waiting on it.
func TestAbortCascadePreventsDeadlock(t *testing.T) {
	w := world(t, 1, 2) // no fault injector at all
	errBoom := errors.New("boom")
	var peerErr error
	runErr := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return errBoom
		}
		_, _, err := c.Recv(1, 7)
		peerErr = err
		return err
	})
	if !errors.Is(peerErr, ErrRankFailed) {
		t.Errorf("peer error = %v, want ErrRankFailed", peerErr)
	}
	if !errors.Is(runErr, ErrRankFailed) && !errors.Is(runErr, errBoom) {
		t.Errorf("run error = %v", runErr)
	}
}

// TestRunLiveAfterCrash: after a crash the surviving ranks form a
// working communicator — collectives and Split (the re-planning
// primitive) run over exactly the live ranks.
func TestRunLiveAfterCrash(t *testing.T) {
	const size = 4
	w := faultyWorld(t, 1, size, fault.Plan{
		Crashes: []fault.Crash{{CG: 2, At: 0}},
	})
	_ = w.Run(func(c *Comm) error { return c.Barrier() })
	if failed := w.Failed(); len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("Failed() = %v, want [2]", failed)
	}
	sum := make([]float64, size)
	err := w.RunLive(func(c *Comm) error {
		if c.Size() != size-1 {
			t.Errorf("live communicator size = %d, want %d", c.Size(), size-1)
		}
		contrib := make([]float64, size)
		contrib[c.Global()] = 1
		if err := c.AllReduceSum(contrib, nil); err != nil {
			return err
		}
		if c.Rank() == 0 {
			copy(sum, contrib)
		}
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != size-1 || sub.Rank() != c.Rank() {
			t.Errorf("split over live ranks: size=%d rank=%d", sub.Size(), sub.Rank())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	want := []float64{1, 1, 0, 1} // rank 2 is dead, everyone else contributed
	for g, v := range sum {
		if v != want[g] {
			t.Fatalf("live allreduce = %v, want %v", sum, want)
		}
	}
}

// TestTransientMsgFaultsAreDeterministic: identical plans reproduce
// byte-identical virtual timelines, and the retries both show up in
// the recovery counters and slow the job down.
func TestTransientMsgFaultsAreDeterministic(t *testing.T) {
	run := func(rate float64) (float64, trace.Snapshot) {
		stats := trace.NewStats()
		w, err := NewWorld(machine.MustSpec(2), stats, 6)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaults(fault.MustInjector(fault.Plan{Seed: 13, MsgFailRate: rate, MaxRetries: 64}))
		for round := 0; round < 3; round++ {
			if err := w.Run(func(c *Comm) error {
				data := []float64{float64(c.Rank())}
				if err := c.AllReduceSum(data, nil); err != nil {
					return err
				}
				return c.Barrier()
			}); err != nil {
				t.Fatal(err)
			}
		}
		return w.MaxTime(), stats.Snapshot()
	}
	t1, s1 := run(0.2)
	t2, s2 := run(0.2)
	if math.Float64bits(t1) != math.Float64bits(t2) {
		t.Fatalf("identical faulty runs diverged: %.17g vs %.17g", t1, t2)
	}
	if s1.NetRetries == 0 || s1.NetRetries != s2.NetRetries {
		t.Fatalf("net retries = %d vs %d", s1.NetRetries, s2.NetRetries)
	}
	if s1.RetrySeconds <= 0 {
		t.Errorf("retry seconds = %v, want positive", s1.RetrySeconds)
	}
	clean, _ := run(0)
	if t1 <= clean {
		t.Errorf("faulty run %.9g not slower than clean run %.9g", t1, clean)
	}
}

// TestDegradedLinkSlowsTransfers: a degradation window stretches
// message time inside the window and leaves it unchanged outside.
func TestDegradedLinkSlowsTransfers(t *testing.T) {
	run := func(p fault.Plan, startAt float64) float64 {
		w := world(t, 1, 2)
		if !p.Empty() {
			w.SetFaults(fault.MustInjector(p))
		}
		if err := w.Run(func(c *Comm) error {
			c.Clock().AdvanceTo(startAt)
			if c.Rank() == 0 {
				return c.Send(1, 3, make([]float64, 1<<16), nil)
			}
			_, _, err := c.Recv(0, 3)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxTime() - startAt
	}
	slowPlan := fault.Plan{Links: []fault.LinkDegrade{{FromCG: -1, ToCG: -1, From: 0, To: 1, Factor: 8}}}
	clean := run(fault.Plan{}, 0)
	inWindow := run(slowPlan, 0)
	pastWindow := run(slowPlan, 2)
	if inWindow <= clean {
		t.Errorf("degraded transfer %.9g not slower than clean %.9g", inWindow, clean)
	}
	if math.Abs(pastWindow-clean) > 1e-15 {
		t.Errorf("transfer after the window = %.9g, want the clean %.9g", pastWindow, clean)
	}
}
