package mpi

// Fault machinery of the message-passing substrate. The model is
// fail-stop at message boundaries: a rank whose fault plan schedules a
// crash executes normally until its virtual clock reaches the crash
// time, then stops responding at its next send or receive — the
// granularity at which a real MPI job observes a dead peer. Peers
// detect the failure through a modelled heartbeat: a receive posted
// against a crashed rank completes at crash time plus the plan's
// heartbeat timeout with a typed *RankFailure error instead of
// deadlocking.
//
// Determinism. Whether a receive sees a real message or a failure is a
// pure function of the virtual execution, not of goroutine scheduling:
// a crashing rank finishes all its sends before it closes its crash
// channel (program order plus channel happens-before), so a receiver
// that observes the closed channel already has every packet the dead
// rank ever sent sitting in its inbox. The receiver drains the inbox
// first and prefers a real matching packet; only when none exists does
// it report the failure.
//
// Mid-collective failure propagates deterministically through two
// mechanisms. First, a live rank that discovers a failure inside a
// collective completes the identical communication pattern with
// poison-marked packets, so every peer still consumes and produces
// exactly its protocol edges (no deadlock, and the collective's tag
// sequence stays synchronized across survivors). Second, a rank whose
// callback returns an error closes its per-epoch abort channel after
// the return, so any peer still waiting on it observes the abort and
// fails over with the same root-cause failure instead of blocking.

import (
	"errors"
	"fmt"

	"repro/internal/fault"
)

// ErrRankFailed identifies a communication that failed because a peer
// rank crashed; errors.Is(err, ErrRankFailed) matches it through
// wrapping.
var ErrRankFailed = errors.New("mpi: rank failed")

// RankFailure describes a detected peer failure: which rank died,
// when, and when the heartbeat detector reported it (the virtual time
// the observing rank's clock is advanced to).
type RankFailure struct {
	// Rank is the failed world rank; CG its core group.
	Rank, CG int
	// CrashedAt is the virtual time of the failure.
	CrashedAt float64
	// DetectedAt is CrashedAt plus the heartbeat timeout.
	DetectedAt float64
}

// Error implements error.
func (f *RankFailure) Error() string {
	return fmt.Sprintf("mpi: rank %d (CG %d) failed at t=%.9fs, detected at t=%.9fs",
		f.Rank, f.CG, f.CrashedAt, f.DetectedAt)
}

// Is matches ErrRankFailed.
func (f *RankFailure) Is(target error) bool { return target == ErrRankFailed }

// ErrCrashed identifies the error a rank's own callback receives when
// the fault plan fail-stops it: the rank must unwind, it is dead.
var ErrCrashed = errors.New("mpi: rank crashed (fail-stop)")

// CrashStop is the self-crash error: the fault plan scheduled this
// rank's fail-stop and its clock has reached the crash time.
type CrashStop struct {
	Rank, CG int
	At       float64
}

// Error implements error.
func (c *CrashStop) Error() string {
	return fmt.Sprintf("mpi: rank %d (CG %d) fail-stop at t=%.9fs", c.Rank, c.CG, c.At)
}

// Is matches ErrCrashed.
func (c *CrashStop) Is(target error) bool { return target == ErrCrashed }

// SetFaults installs a fault injector on the world; it must be called
// before Run. Passing nil removes fault injection. Message transfer
// times then honour the injector's degraded-link windows, transient
// message faults are retried with backoff, and scheduled crashes
// fail-stop their ranks.
func (w *World) SetFaults(inj *fault.Injector) {
	w.inj = inj
	if inj == nil {
		w.netAt = nil
		w.crashCh = nil
		w.crashedAt = nil
		return
	}
	w.netAt = w.net.Degraded(inj)
	w.crashCh = make([]chan struct{}, w.size)
	for i := range w.crashCh {
		w.crashCh[i] = make(chan struct{})
	}
	w.crashedAt = make([]float64, w.size)
}

// Injector returns the installed fault injector (nil without faults).
func (w *World) Injector() *fault.Injector { return w.inj }

// crashChOf returns the crash channel of a global rank, nil when no
// faults are installed (a nil channel never selects, which is exactly
// the fault-free behaviour).
func (w *World) crashChOf(g int) chan struct{} {
	if w.crashCh == nil {
		return nil
	}
	return w.crashCh[g]
}

// abortChOf returns the per-epoch abort channel of a global rank (nil
// outside Run).
func (w *World) abortChOf(g int) chan struct{} {
	if w.aborted == nil {
		return nil
	}
	return w.aborted[g]
}

// markCrashed records the fail-stop of a global rank. Only the owning
// rank goroutine (or scheduler task) calls it — a rank decides its own
// death — exactly once: crashedAt is written before the channel close
// publishes it, so readers that observed the close see the final
// value. Under the DES driver, peers parked in a receive on the dead
// rank additionally get a wake-up at the heartbeat detection time; the
// goroutine driver gets the same effect from the select on crashCh.
func (w *World) markCrashed(g int, at float64) {
	w.crashedAt[g] = at
	close(w.crashCh[g])
	if w.des != nil {
		w.desWakeWaitersOn(g, at+w.inj.HeartbeatTimeout())
	}
}

// isCrashed reports whether a global rank has fail-stopped.
func (w *World) isCrashed(g int) bool {
	if w.crashCh == nil {
		return false
	}
	//swlint:ignore goroutine-purity -- one case plus default is a deterministic closed-channel probe
	select {
	case <-w.crashCh[g]:
		return true
	default:
		return false
	}
}

// crashFailure builds the failure report for a crashed global rank.
// Callers must have observed the crash channel close first.
func (w *World) crashFailure(g int) *RankFailure {
	at := w.crashedAt[g]
	return &RankFailure{
		Rank:       g,
		CG:         w.cgOf[g],
		CrashedAt:  at,
		DetectedAt: at + w.inj.HeartbeatTimeout(),
	}
}

// Failed returns the sorted global ranks that have fail-stopped so
// far. It is meaningful between Run calls (the WaitGroup in Run orders
// every rank's writes before the caller's reads).
func (w *World) Failed() []int {
	var out []int
	for g := 0; g < w.size; g++ {
		if w.isCrashed(g) {
			out = append(out, g)
		}
	}
	return out
}

// Alive returns the sorted global ranks that have not fail-stopped.
func (w *World) Alive() []int {
	out := make([]int, 0, w.size)
	for g := 0; g < w.size; g++ {
		if !w.isCrashed(g) {
			out = append(out, g)
		}
	}
	return out
}

// Failure returns the failure report of a crashed global rank, nil
// while the rank is alive. Like Failed, it is meaningful between Run
// calls.
func (w *World) Failure(g int) *RankFailure {
	if !w.isCrashed(g) {
		return nil
	}
	return w.crashFailure(g)
}

// CheckFailure reports the rank's own scheduled fail-stop once its
// clock has reached the crash time: engines call it from compute loops
// to crash promptly instead of at the next message boundary. The
// returned error wraps ErrCrashed; nil means the rank is alive.
func (c *Comm) CheckFailure() error { return c.checkSelfCrash() }

// checkSelfCrash fail-stops the calling rank when its virtual clock
// has crossed the scheduled crash time of its core group. Called at
// every message boundary.
func (c *Comm) checkSelfCrash() error {
	w := c.w
	if w.inj == nil {
		return nil
	}
	g := c.Global()
	if w.isCrashed(g) {
		return &CrashStop{Rank: g, CG: w.cgOf[g], At: w.crashedAt[g]}
	}
	at, ok := w.inj.CrashTime(w.cgOf[g])
	if !ok || c.Clock().Now() < at {
		return nil
	}
	w.markCrashed(g, at)
	return &CrashStop{Rank: g, CG: w.cgOf[g], At: at}
}

// abortFailureFor derives the failure a peer should observe when a
// rank's callback returns err: the root-cause RankFailure when one is
// wrapped, the crash report for a fail-stop, and a synthetic failure
// stamped with the rank's own clock for any other error (so bugs
// surface as errors on every rank instead of deadlocks).
func (w *World) abortFailureFor(g int, err error, now float64) *RankFailure {
	var rf *RankFailure
	if errors.As(err, &rf) {
		return rf
	}
	var cs *CrashStop
	if errors.As(err, &cs) {
		det := cs.At
		if w.inj != nil {
			det += w.inj.HeartbeatTimeout()
		}
		return &RankFailure{Rank: cs.Rank, CG: cs.CG, CrashedAt: cs.At, DetectedAt: det}
	}
	return &RankFailure{Rank: g, CG: w.cgOf[g], CrashedAt: now, DetectedAt: now}
}

// opState accumulates the failure discovered during one collective
// operation. A poisoned rank keeps executing the identical protocol
// edges (sending poison instead of data) so no peer deadlocks and the
// communicator's tag sequence stays synchronized.
type opState struct {
	fail *RankFailure
}

// merge folds a newly observed failure in, keeping a deterministic
// winner (earliest crash, ties to the lowest rank) so every rank that
// observes the same failure set reports the same root cause.
func (st *opState) merge(f *RankFailure) {
	if f == nil {
		return
	}
	if st.fail == nil {
		st.fail = f
		return
	}
	//swlint:ignore float-eq -- exact crash-time tie breaks to the lowest rank for a deterministic root cause
	if f.CrashedAt < st.fail.CrashedAt || (f.CrashedAt == st.fail.CrashedAt && f.Rank < st.fail.Rank) {
		st.fail = f
	}
}

// err returns the collective's outcome: nil, or the merged failure.
func (st *opState) err() error {
	if st.fail == nil {
		return nil
	}
	return st.fail
}

// opSend is the poison-aware protocol send: a clean rank transmits the
// payload, a poisoned rank transmits the failure marker on the same
// edge.
func (c *Comm) opSend(st *opState, dst int, tag uint64, data []float64, ints []int64) error {
	if st.fail != nil {
		return c.sendPacket(dst, tag, nil, nil, st.fail)
	}
	return c.sendPacket(dst, tag, data, ints, nil)
}

// opRecv is the poison-aware protocol receive: poison packets and
// detected crashes fold into st (returning nil payloads) while hard
// errors — the caller's own crash — propagate.
func (c *Comm) opRecv(st *opState, src int, tag uint64) ([]float64, []int64, error) {
	d, i, fail, err := c.recvFull(src, tag)
	if err != nil {
		return nil, nil, err
	}
	if fail != nil {
		st.merge(fail)
		return nil, nil, nil
	}
	return d, i, nil
}
