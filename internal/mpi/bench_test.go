package mpi

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkAllReduceSum measures the host cost of the functional
// AllReduce across 16 ranks, the dominant collective of the Update
// step (Algorithm 1 line 14).
func BenchmarkAllReduceSum(b *testing.B) {
	w := MustWorld(machine.MustSpec(4), nil, 16)
	data := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(c *Comm) error {
			buf := make([]float64, len(data))
			copy(buf, data)
			return c.AllReduceSum(buf, nil)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllReduceMinPairs measures the assignment min-reduce of
// Algorithms 2 and 3.
func BenchmarkAllReduceMinPairs(b *testing.B) {
	w := MustWorld(machine.MustSpec(4), nil, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(c *Comm) error {
			vals := make([]float64, 256)
			idxs := make([]int64, 256)
			for j := range vals {
				vals[j] = float64((c.Rank()*31 + j) % 97)
				idxs[j] = int64(c.Rank())
			}
			return c.AllReduceMinPairs(vals, idxs)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrier measures the dissemination barrier.
func BenchmarkBarrier(b *testing.B) {
	w := MustWorld(machine.MustSpec(4), nil, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(c *Comm) error { return c.Barrier() }); err != nil {
			b.Fatal(err)
		}
	}
}
