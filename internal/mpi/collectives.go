package mpi

import "fmt"

// Gather collects each rank's equal-size contribution at the root,
// ordered by rank, using a binomial tree (children aggregate their
// subtree before forwarding, so the message count is O(log p) per
// rank). Non-root ranks receive nil.
func (c *Comm) Gather(root int, data []float64) ([]float64, error) {
	st := &opState{}
	out, err := c.gatherOp(st, root, data)
	if err != nil {
		return nil, err
	}
	if st.fail != nil {
		return nil, st.fail
	}
	return out, nil
}

// gatherOp is the poison-aware gather body.
func (c *Comm) gatherOp(st *opState, root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	n := len(data)
	tag := c.nextTag()
	rel := (c.rank - root + c.size) % c.size
	// subtree holds the contributions of relative ranks
	// [rel, rel+span) collected so far, span doubling per step.
	subtree := append([]float64(nil), data...)
	span := 1
	for mask := 1; ; mask <<= 1 {
		if rel&mask != 0 {
			dst := (c.rank - mask + c.size) % c.size
			if err := c.opSend(st, dst, tag, subtree, []int64{int64(span)}); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if rel+mask < c.size {
			srcRel := rel + mask
			src := (srcRel + root) % c.size
			d, meta, err := c.opRecv(st, src, tag)
			if err != nil {
				return nil, err
			}
			if st.fail == nil {
				if len(meta) != 1 || len(d)%max(n, 1) != 0 && n > 0 {
					return nil, fmt.Errorf("mpi: gather payload mismatch on rank %d", c.rank)
				}
				subtree = append(subtree, d...)
				span += int(meta[0])
			}
		}
		if mask >= c.size {
			break
		}
	}
	if st.fail != nil {
		return nil, nil
	}
	// Root: subtree is ordered by relative rank; rotate to world order.
	if rel != 0 {
		return nil, fmt.Errorf("mpi: gather reached root path on non-root rank %d", c.rank)
	}
	if len(subtree) != n*c.size {
		return nil, fmt.Errorf("mpi: gather assembled %d values, want %d", len(subtree), n*c.size)
	}
	out := make([]float64, n*c.size)
	for relRank := 0; relRank < c.size; relRank++ {
		abs := (relRank + root) % c.size
		copy(out[abs*n:(abs+1)*n], subtree[relRank*n:(relRank+1)*n])
	}
	return out, nil
}

// Scatter distributes equal slices of root's data to every rank:
// rank r receives data[r*len/size : (r+1)*len/size]. Implemented as a
// binomial tree where each parent forwards its children's subtree
// slice. data is only read at the root; its length must be a multiple
// of the communicator size.
func (c *Comm) Scatter(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: scatter root %d out of range", root)
	}
	st := &opState{}
	tag := c.nextTag()
	rel := (c.rank - root + c.size) % c.size
	var subtree []float64 // slices for relative ranks [rel, rel+span)
	n := -1
	if rel == 0 {
		if len(data)%c.size != 0 {
			return nil, fmt.Errorf("mpi: scatter payload %d not divisible by %d ranks", len(data), c.size)
		}
		n = len(data) / c.size
		// Reorder into relative-rank order once.
		subtree = make([]float64, len(data))
		for relRank := 0; relRank < c.size; relRank++ {
			abs := (relRank + root) % c.size
			copy(subtree[relRank*n:(relRank+1)*n], data[abs*n:(abs+1)*n])
		}
	} else {
		// Receive my subtree from the parent (lowest set bit of rel).
		mask := 1
		for rel&mask == 0 {
			mask <<= 1
		}
		parent := (c.rank - mask + c.size) % c.size
		d, _, err := c.opRecv(st, parent, tag)
		if err != nil {
			return nil, err
		}
		subtree = d
	}
	// Forward the upper halves to children, halving the span. A
	// poisoned rank walks the identical child edges with the failure
	// marker so the whole subtree learns of the failure.
	span := largestSpan(rel, c.size)
	for mask := span / 2; mask >= 1; mask /= 2 {
		if rel+mask >= c.size {
			continue
		}
		child := (c.rank + mask) % c.size
		if st.fail != nil {
			if err := c.opSend(st, child, tag, nil, nil); err != nil {
				return nil, err
			}
			continue
		}
		if n < 0 {
			// Subtree covers min(span, size-rel) relative ranks.
			cover := min(span, c.size-rel)
			n = len(subtree) / cover
		}
		childCover := min(mask, c.size-rel-mask)
		lo := mask * n
		hi := lo + childCover*n
		if hi > len(subtree) {
			return nil, fmt.Errorf("mpi: scatter subtree underflow on rank %d", c.rank)
		}
		if err := c.opSend(st, child, tag, subtree[lo:hi], nil); err != nil {
			return nil, err
		}
		subtree = subtree[:lo]
	}
	if st.fail != nil {
		return nil, st.fail
	}
	if n < 0 {
		n = len(subtree)
	}
	if len(subtree) != n {
		return nil, fmt.Errorf("mpi: scatter left %d values on rank %d, want %d", len(subtree), c.rank, n)
	}
	return subtree, nil
}

// largestSpan returns the subtree span of relative rank rel in a
// binomial tree over size ranks: the largest power of two not
// exceeding size for the root, otherwise the lowest set bit of rel.
func largestSpan(rel, size int) int {
	if rel == 0 {
		s := 1
		for s < size {
			s <<= 1
		}
		return s
	}
	return rel & (-rel)
}

// AllGatherFloats gathers each rank's equal-size float contribution
// and returns the concatenation ordered by rank, identical on every
// rank.
func (c *Comm) AllGatherFloats(contrib []float64) ([]float64, error) {
	st := &opState{}
	gathered, err := c.gatherOp(st, 0, contrib)
	if err != nil {
		return nil, err
	}
	if c.rank != 0 || gathered == nil {
		gathered = make([]float64, len(contrib)*c.size)
	}
	if err := c.bcastOp(st, 0, gathered, nil); err != nil {
		return nil, err
	}
	if st.fail != nil {
		return nil, st.fail
	}
	return gathered, nil
}
