// Package mpi implements the message-passing substrate of the
// simulator: the role MPI plays on the real Sunway TaihuLight. Ranks
// are core groups (each CG's managing processing element drives the
// network), point-to-point messages really move data between rank
// goroutines, and collectives are built from point-to-point messages
// with the classic binomial-tree and dissemination algorithms so that
// message counts, volumes and the emergent critical path match what a
// real MPI library would produce on the two-level fat tree.
//
// Virtual time: every rank owns a vclock.Clock. A message carries the
// sender's clock at completion of the send; the receive completes at
// max(receiver's clock, send time + modelled transfer time), where the
// transfer time comes from the netmodel (intra- vs inter-supernode
// bandwidth and latency).
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// packet is one message in flight between ranks.
type packet struct {
	src  int // global rank
	tag  uint64
	time float64 // sender clock at send completion
	data []float64
	ints []int64
	fail *RankFailure // non-nil marks a poison packet carrying a failure
}

// World owns the rank set of one simulated job.
type World struct {
	spec  *machine.Spec
	net   *netmodel.Model
	stats *trace.Stats
	size  int
	cgOf  []int // world rank -> global CG index

	// driver selects the execution engine (see sched.go); des is the
	// DES driver's per-epoch state, non-nil only while a sched epoch is
	// dispatching.
	driver Driver
	des    *desWorld

	// inbox channels exist only under the goroutine driver and are
	// allocated lazily on its first epoch: each holds 4·size+16 packet
	// slots, which at DES scale (thousands of ranks) would dominate
	// memory for no benefit — the DES driver deposits into held
	// directly.
	inbox []chan packet
	held  [][]packet // per-rank out-of-order buffer, owned by the rank goroutine/task

	commIDs sync.Mutex
	nextID  uint64 // guarded by commIDs

	clocks []*vclock.Clock

	// obsUnits[g] is rank g's span unit, nil when unobserved. Installed
	// before Run and only read by the rank's own goroutine afterwards.
	// obsRec is the recorder they belong to, kept so the DES driver can
	// fold its scheduler counters into the run's profile.
	obsUnits []*obs.Unit
	obsRec   *obs.Recorder

	// Fault state (see fault.go). crashCh[g] is closed by rank g's own
	// goroutine when its scheduled fail-stop manifests; crashedAt[g] is
	// written before the close and read only by goroutines that
	// observed the close (channel happens-before), so neither needs a
	// mutex. aborted/abortFail are the per-epoch abort channels,
	// reallocated at the start of every Run with the same publication
	// discipline.
	inj       *fault.Injector
	netAt     *netmodel.Model // degraded-link view of net; nil without faults
	crashCh   []chan struct{}
	crashedAt []float64
	aborted   []chan struct{}
	abortFail []*RankFailure
}

// NewWorld creates a world of size ranks over the deployment spec.
// Rank r is placed on global CG index r, so consecutive ranks are
// physically adjacent (fill nodes, then supernodes), matching the
// paper's placement advice. size must not exceed the number of CGs of
// the deployment. The stats sink may be nil.
func NewWorld(spec *machine.Spec, stats *trace.Stats, size int) (*World, error) {
	return NewWorldPlaced(spec, stats, size, CompactPlacement)
}

// MustWorld is NewWorld that panics on error.
func MustWorld(spec *machine.Spec, stats *trace.Stats, size int) *World {
	w, err := NewWorld(spec, stats, size)
	if err != nil {
		panic(err)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Spec returns the deployment spec.
func (w *World) Spec() *machine.Spec { return w.spec }

// MaxTime returns the latest virtual clock across ranks — the job's
// completion time after Run returns.
func (w *World) MaxTime() float64 { return vclock.MaxTime(w.clocks...) }

// SetObserver attaches a span recorder: rank g records its collectives
// and point-to-point operations as spans on unit "rank/<g>", stamped
// with the rank's virtual clock. Install it before Run, never
// concurrently with one; a nil recorder leaves the world unobserved.
func (w *World) SetObserver(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	w.obsRec = rec
	w.obsUnits = make([]*obs.Unit, w.size)
	for g := range w.obsUnits {
		w.obsUnits[g] = rec.Unit(fmt.Sprintf("rank/%d", g))
	}
}

// ResetClocks zeroes all rank clocks between measured iterations.
func (w *World) ResetClocks() {
	for _, c := range w.clocks {
		c.Reset()
	}
}

// Run executes fn concurrently on every rank and blocks until all
// return. The first non-nil error (lowest rank) is returned. Run may
// be called repeatedly on the same world; clocks persist across calls
// unless ResetClocks is used.
func (w *World) Run(fn func(c *Comm) error) error {
	members := make([]int, w.size)
	for i := range members {
		members[i] = i
	}
	return w.runMembers(0, members, fn)
}

// RunLive executes fn on every surviving rank over a communicator of
// exactly the live ranks, ordered by world rank — the bootstrap
// communicator a recovery epoch re-plans over. Crashed ranks do not
// participate at all. Like Run, the first non-nil error by lowest
// participating rank is returned.
func (w *World) RunLive(fn func(c *Comm) error) error {
	members := w.Alive()
	if len(members) == 0 {
		return fmt.Errorf("mpi: no surviving ranks: %w", ErrRankFailed)
	}
	return w.runMembers(w.newCommID(), members, fn)
}

// runMembers is the shared epoch driver of Run and RunLive: it clears
// stale packets (messages addressed to ranks that crashed or aborted
// in a previous epoch are dead letters), arms fresh abort channels,
// then hands the epoch to the selected driver, which runs fn on each
// member and publishes each member's failure to late-blocking peers.
func (w *World) runMembers(id uint64, members []int, fn func(c *Comm) error) error {
	for g := range w.inbox {
		if w.inbox[g] != nil {
		drain:
			for {
				//swlint:ignore goroutine-purity -- one case plus default drains dead letters whose content is discarded
				select {
				case <-w.inbox[g]:
				default:
					break drain
				}
			}
		}
		w.held[g] = nil
	}
	w.aborted = make([]chan struct{}, w.size)
	for g := range w.aborted {
		w.aborted[g] = make(chan struct{})
	}
	w.abortFail = make([]*RankFailure, w.size)
	if w.driver == DriverSched {
		return w.runMembersSched(id, members, fn)
	}
	return w.runMembersGoroutine(id, members, fn)
}

// runMembersGoroutine is runMembers' epoch body under the default
// driver: one live goroutine per member, packets through the buffered
// inbox channels.
func (w *World) runMembersGoroutine(id uint64, members []int, fn func(c *Comm) error) error {
	if w.inbox[0] == nil {
		for g := range w.inbox {
			w.inbox[g] = make(chan packet, 4*w.size+16)
		}
	}
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, g := range members {
		wg.Add(1)
		go func(i, g int) {
			defer wg.Done()
			comm := &Comm{w: w, id: id, rank: i, size: len(members), members: members}
			err := fn(comm)
			errs[i] = err
			if err != nil {
				// Publish the failure before closing: peers blocked on
				// this rank observe the close and adopt the root cause
				// instead of deadlocking.
				w.abortFail[g] = w.abortFailureFor(g, err, w.clocks[g].Now())
				close(w.aborted[g])
			}
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", members[i], err)
		}
	}
	return nil
}

// newCommID allocates a distinct communicator identity for tag
// namespacing. The world communicator is ID 0.
func (w *World) newCommID() uint64 {
	w.commIDs.Lock()
	defer w.commIDs.Unlock()
	w.nextID++
	return w.nextID
}

// Comm is one rank's handle on a communicator. The world communicator
// is passed to Run's callback; sub-communicators come from Split.
// A Comm is confined to its rank's goroutine.
type Comm struct {
	w       *World
	id      uint64
	rank    int   // rank within this communicator
	size    int   // communicator size
	members []int // communicator rank -> global rank
	seq     uint64
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Global returns the caller's global (world) rank.
func (c *Comm) Global() int { return c.members[c.rank] }

// CG returns the global core-group index this rank is placed on.
func (c *Comm) CG() int { return c.w.cgOf[c.Global()] }

// Clock returns the rank's virtual clock. Engines advance it directly
// for local compute and DMA work.
func (c *Comm) Clock() *vclock.Clock { return c.w.clocks[c.Global()] }

// Stats returns the world's trace sink (possibly nil).
func (c *Comm) Stats() *trace.Stats { return c.w.stats }

// Obs returns the rank's span unit, nil when the world is unobserved.
// Engines record their local compute and DMA phases on it so the
// rank's timeline tiles completely.
func (c *Comm) Obs() *obs.Unit {
	if c.w.obsUnits == nil {
		return nil
	}
	return c.w.obsUnits[c.Global()]
}

// obsBegin opens a span section on the rank's unit at the current
// virtual time. Composite collectives nest sections; the depth guard
// in obs makes the outermost one claim the whole range.
func (c *Comm) obsBegin() (*obs.Unit, obs.Mark) {
	u := c.Obs()
	if u == nil {
		return nil, obs.Mark{}
	}
	return u, u.Begin(c.Clock().Now())
}

// obsEnd closes the section as one span of the given kind, ending at
// the rank's current virtual time.
func (c *Comm) obsEnd(u *obs.Unit, m obs.Mark, kind string, bytes int64) {
	if u == nil {
		return
	}
	u.End(m, kind, c.Clock().Now(), bytes, 0)
}

// nextTag mints the tag for the next collective operation (or the
// next step of a multi-step collective). All ranks of a communicator
// execute the same sequence of collective steps, so their sequence
// counters agree. Tags are unique per (communicator, step): the
// communicator identity occupies the bits above the 20-bit step
// counter and user tags live in a separate namespace (bit 63).
func (c *Comm) nextTag() uint64 {
	c.seq++
	return c.id<<20 | (c.seq & (1<<20 - 1))
}

// send transmits payloads to communicator rank dst under tag.
// The payloads are copied; the caller may reuse its buffers.
func (c *Comm) send(dst int, tag uint64, data []float64, ints []int64) error {
	return c.sendPacket(dst, tag, data, ints, nil)
}

// sendPacket is send plus the fault machinery: the sender fail-stops
// at this boundary if its crash time has passed, transient message
// faults are retried with the wasted wire time and a doubling backoff
// charged to the sender's clock, and delivery to a crashed or aborted
// peer is dropped (dead letters would otherwise fill the peer's inbox
// and block the sender forever). A non-nil fail marks the packet as
// poison.
func (c *Comm) sendPacket(dst int, tag uint64, data []float64, ints []int64, fail *RankFailure) error {
	if err := c.checkSelfCrash(); err != nil {
		return err
	}
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("mpi: send destination %d out of range [0,%d)", dst, c.size)
	}
	if dst == c.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", c.rank)
	}
	srcG, dstG := c.Global(), c.members[dst]
	bytes := (len(data) + len(ints)) * ldm.ElemBytes
	c.w.stats.AddNet(int64(bytes))
	// The sender is busy for the injection duration; the wire time is
	// charged on the receive side through the timestamp.
	p := packet{src: srcG, tag: tag, fail: fail}
	if len(data) > 0 {
		p.data = append(make([]float64, 0, len(data)), data...)
	}
	if len(ints) > 0 {
		p.ints = append(make([]int64, 0, len(ints)), ints...)
	}
	srcCG, dstCG := c.w.cgOf[srcG], c.w.cgOf[dstG]
	tt, err := c.w.transferTime(srcCG, dstCG, bytes, c.Clock().Now())
	if err != nil {
		return err
	}
	if inj := c.w.inj; inj != nil {
		for attempt := 0; inj.MsgFault(srcCG, dstCG, tag, c.Clock().Now(), attempt); attempt++ {
			if attempt >= inj.MaxRetries() {
				// A rank that cannot get a message through is dead to
				// its peers: fail-stop so the heartbeat detector takes
				// over instead of leaving the protocol half-run.
				at := c.Clock().Now()
				c.w.markCrashed(srcG, at)
				return fmt.Errorf("mpi: rank %d message to rank %d (tag %#x) exhausted %d retries at t=%.9fs: %w",
					srcG, dstG, tag, inj.MaxRetries(), at, fault.ErrLinkFailed)
			}
			cost := tt + inj.Backoff(attempt+1)
			c.w.stats.AddNetRetry(1, cost)
			c.Clock().Advance(cost)
		}
	}
	p.time = c.Clock().Now() + tt
	if c.w.des != nil {
		c.w.desDeliver(dstG, p)
		return nil
	}
	//swlint:ignore goroutine-purity -- the arms are equivalent: a packet bound for a crashed or aborted rank is a dead letter either way
	select {
	case c.w.inbox[dstG] <- p:
	case <-c.w.crashChOf(dstG):
	case <-c.w.abortChOf(dstG):
	}
	return nil
}

// transferTime routes through the degraded-link model when faults are
// installed and the plain model otherwise.
func (w *World) transferTime(srcCG, dstCG, bytes int, at float64) (float64, error) {
	if w.netAt != nil {
		return w.netAt.TransferTimeAt(srcCG, dstCG, bytes, at)
	}
	return w.net.TransferTime(srcCG, dstCG, bytes)
}

// recv blocks until the message with the given tag from communicator
// rank src arrives, reconciles the clock and returns the payloads.
// Failures (poison packets, crashed or aborted peers) surface as hard
// errors here; collective internals use recvFull to fold them into an
// opState instead.
func (c *Comm) recv(src int, tag uint64) ([]float64, []int64, error) {
	d, i, fail, err := c.recvFull(src, tag)
	if err != nil {
		return nil, nil, err
	}
	if fail != nil {
		return nil, nil, fail
	}
	return d, i, nil
}

// recvFull is the failure-aware receive. The hard error (last return)
// is only ever the caller's own fail-stop; a peer's failure comes back
// as a *RankFailure with nil payloads. See the determinism argument at
// the top of fault.go: the inbox drain on crash/abort wake-up
// guarantees a real matching packet always wins over a failure report,
// independent of goroutine scheduling.
func (c *Comm) recvFull(src int, tag uint64) ([]float64, []int64, *RankFailure, error) {
	if err := c.checkSelfCrash(); err != nil {
		return nil, nil, nil, err
	}
	if src < 0 || src >= c.size {
		return nil, nil, nil, fmt.Errorf("mpi: recv source %d out of range [0,%d)", src, c.size)
	}
	srcG := c.members[src]
	me := c.Global()
	// First, scan messages held back earlier.
	if p, ok := c.takeHeld(me, srcG, tag); ok {
		return c.deliver(p)
	}
	if c.w.des != nil {
		return c.desRecvWait(me, srcG, tag)
	}
	for {
		//swlint:ignore goroutine-purity -- the failure arms drain and prefer buffered matches (drainAndTake), so arm choice never changes the delivered packet
		select {
		case p := <-c.w.inbox[me]:
			if p.src == srcG && p.tag == tag {
				return c.deliver(p)
			}
			c.w.held[me] = append(c.w.held[me], p)
		case <-c.w.crashChOf(srcG):
			if p, ok := c.drainAndTake(me, srcG, tag); ok {
				return c.deliver(p)
			}
			fail := c.w.crashFailure(srcG)
			c.Clock().AdvanceTo(fail.DetectedAt)
			return nil, nil, fail, nil
		case <-c.w.abortChOf(srcG):
			if p, ok := c.drainAndTake(me, srcG, tag); ok {
				return c.deliver(p)
			}
			fail := c.w.abortFail[srcG]
			c.Clock().AdvanceTo(fail.DetectedAt)
			return nil, nil, fail, nil
		}
	}
}

// deliver reconciles the clock with a matched packet and unwraps it.
func (c *Comm) deliver(p packet) ([]float64, []int64, *RankFailure, error) {
	c.Clock().AdvanceTo(p.time)
	if p.fail != nil {
		return nil, nil, p.fail, nil
	}
	return p.data, p.ints, nil, nil
}

// takeHeld removes and returns the held packet matching (src, tag).
func (c *Comm) takeHeld(me, srcG int, tag uint64) (packet, bool) {
	for i, h := range c.w.held[me] {
		if h.src == srcG && h.tag == tag {
			c.w.held[me] = append(c.w.held[me][:i], c.w.held[me][i+1:]...)
			return h, true
		}
	}
	return packet{}, false
}

// drainAndTake moves every already-delivered packet from the inbox to
// the held buffer, then looks for a match: when a peer's crash or
// abort channel closes, every packet it ever sent is already buffered
// (channel happens-before), so preferring a buffered match keeps the
// real-message-versus-failure decision deterministic.
func (c *Comm) drainAndTake(me, srcG int, tag uint64) (packet, bool) {
	for {
		//swlint:ignore goroutine-purity -- one case plus default deterministically empties the inbox
		select {
		case p := <-c.w.inbox[me]:
			c.w.held[me] = append(c.w.held[me], p)
		default:
			return c.takeHeld(me, srcG, tag)
		}
	}
}

// Send transmits data and ints to communicator rank dst as a
// point-to-point message with a caller-chosen small tag.
func (c *Comm) Send(dst int, tag int, data []float64, ints []int64) error {
	if tag < 0 || tag >= 1<<20 {
		return fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	u, m := c.obsBegin()
	err := c.send(dst, uint64(tag)|1<<63, data, ints)
	c.obsEnd(u, m, "mpi:send", int64((len(data)+len(ints))*ldm.ElemBytes))
	return err
}

// Recv receives the matching point-to-point message from src.
func (c *Comm) Recv(src int, tag int) ([]float64, []int64, error) {
	if tag < 0 || tag >= 1<<20 {
		return nil, nil, fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	u, m := c.obsBegin()
	data, ints, err := c.recv(src, uint64(tag)|1<<63)
	c.obsEnd(u, m, "mpi:recv", int64((len(data)+len(ints))*ldm.ElemBytes))
	return data, ints, err
}

// Barrier blocks until every rank of the communicator has entered,
// using the dissemination algorithm (works for any size, log2 rounds).
// A failure anywhere poisons every survivor: dissemination is an
// allgather pattern, so the failure marker reaches all ranks.
func (c *Comm) Barrier() error {
	u, m := c.obsBegin()
	err := c.barrier()
	c.obsEnd(u, m, "mpi:barrier", 0)
	return err
}

func (c *Comm) barrier() error {
	st := &opState{}
	for step := 1; step < c.size; step *= 2 {
		tag := c.nextTag()
		to := (c.rank + step) % c.size
		from := (c.rank - step + c.size) % c.size
		if err := c.opSend(st, to, tag, nil, nil); err != nil {
			return err
		}
		if _, _, err := c.opRecv(st, from, tag); err != nil {
			return err
		}
	}
	return st.err()
}

// Bcast distributes root's data and ints to every rank using a
// binomial tree. Non-root ranks receive into the provided slices,
// which must have the same lengths as root's.
func (c *Comm) Bcast(root int, data []float64, ints []int64) error {
	u, m := c.obsBegin()
	st := &opState{}
	err := c.bcastOp(st, root, data, ints)
	if err == nil {
		err = st.err()
	}
	c.obsEnd(u, m, "mpi:bcast", int64((len(data)+len(ints))*ldm.ElemBytes))
	return err
}

// bcastOp is the poison-aware broadcast body shared by Bcast and the
// composite collectives: a poisoned rank walks the identical tree
// forwarding the failure marker instead of the payload.
func (c *Comm) bcastOp(st *opState, root int, data []float64, ints []int64) error {
	if root < 0 || root >= c.size {
		return fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	tag := c.nextTag()
	rel := (c.rank - root + c.size) % c.size
	// Find the receiving step: lowest set bit of rel.
	mask := 1
	for mask < c.size {
		if rel&mask != 0 {
			src := (c.rank - mask + c.size) % c.size
			d, i, err := c.opRecv(st, commRank(src), tag)
			if err != nil {
				return err
			}
			if st.fail == nil {
				if len(d) != len(data) || len(i) != len(ints) {
					return fmt.Errorf("mpi: bcast payload mismatch on rank %d", c.rank)
				}
				copy(data, d)
				copy(ints, i)
			}
			break
		}
		mask <<= 1
	}
	// Forward to children: steps above the receiving step.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < c.size && rel&(mask-1) == 0 && rel&mask == 0 {
			dst := (c.rank + mask) % c.size
			if err := c.opSend(st, dst, tag, data, ints); err != nil {
				return err
			}
		}
	}
	return nil
}

// commRank is an identity helper that documents rank-space: all
// internal tree arithmetic is already in communicator rank space.
func commRank(r int) int { return r }

// Reduce combines data and ints element-wise with summation onto the
// root rank using a binomial tree. On non-root ranks the slices are
// left in an unspecified partially-combined state; callers that need
// the result everywhere use AllReduceSum.
func (c *Comm) Reduce(root int, data []float64, ints []int64) error {
	u, m := c.obsBegin()
	st := &opState{}
	err := c.reduceOp(st, root, data, ints)
	if err == nil {
		err = st.err()
	}
	c.obsEnd(u, m, "mpi:reduce", int64((len(data)+len(ints))*ldm.ElemBytes))
	return err
}

// reduceOp is the poison-aware binomial reduce body. A failure in any
// subtree propagates up to the root, which is what lets the composite
// AllReduceSum distribute it to every survivor in the broadcast phase.
func (c *Comm) reduceOp(st *opState, root int, data []float64, ints []int64) error {
	if root < 0 || root >= c.size {
		return fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	tag := c.nextTag()
	rel := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask != 0 {
			dst := (c.rank - mask + c.size) % c.size
			return c.opSend(st, dst, tag, data, ints)
		}
		if rel+mask < c.size {
			src := (c.rank + mask) % c.size
			d, i, err := c.opRecv(st, commRank(src), tag)
			if err != nil {
				return err
			}
			if st.fail == nil {
				if len(d) != len(data) || len(i) != len(ints) {
					return fmt.Errorf("mpi: reduce payload mismatch on rank %d", c.rank)
				}
				for j, v := range d {
					data[j] += v
				}
				for j, v := range i {
					ints[j] += v
				}
			}
		}
	}
	return nil
}

// AllReduceSum sums data and ints element-wise across all ranks and
// leaves the identical result on every rank (reduce to rank 0, then
// broadcast, so results are bitwise identical everywhere). On failure
// every survivor returns the same *RankFailure: the broadcast phase
// always runs, distributing the poison the reduce phase collected.
func (c *Comm) AllReduceSum(data []float64, ints []int64) error {
	u, m := c.obsBegin()
	err := c.allReduceSum(data, ints)
	c.obsEnd(u, m, "mpi:allreduce", int64((len(data)+len(ints))*ldm.ElemBytes))
	return err
}

func (c *Comm) allReduceSum(data []float64, ints []int64) error {
	if c.size == 1 {
		return c.checkSelfCrash()
	}
	st := &opState{}
	if err := c.reduceOp(st, 0, data, ints); err != nil {
		return err
	}
	if err := c.bcastOp(st, 0, data, ints); err != nil {
		return err
	}
	return st.err()
}

// AllReduceMinPairs reduces (value, payload) pairs with lexicographic
// minimum: the smallest value wins; ties break to the smallest
// payload. It is the assignment-combining operation of Algorithms 2
// and 3 (a(i) = min a(i)'), with payload carrying the centroid index.
// All ranks receive identical results.
func (c *Comm) AllReduceMinPairs(vals []float64, idxs []int64) error {
	u, m := c.obsBegin()
	err := c.allReduceMinPairs(vals, idxs)
	c.obsEnd(u, m, "mpi:minpairs", int64((len(vals)+len(idxs))*ldm.ElemBytes))
	return err
}

func (c *Comm) allReduceMinPairs(vals []float64, idxs []int64) error {
	if len(vals) != len(idxs) {
		return fmt.Errorf("mpi: min-pairs length mismatch %d vs %d", len(vals), len(idxs))
	}
	if c.size == 1 {
		return c.checkSelfCrash()
	}
	st := &opState{}
	tag := c.nextTag()
	// Binomial reduce to rank 0 with min combiner.
	for mask := 1; mask < c.size; mask <<= 1 {
		if c.rank&mask != 0 {
			if err := c.opSend(st, c.rank-mask, tag, vals, idxs); err != nil {
				return err
			}
			break
		}
		if c.rank+mask < c.size {
			d, i, err := c.opRecv(st, c.rank+mask, tag)
			if err != nil {
				return err
			}
			if st.fail == nil {
				if len(d) != len(vals) {
					return fmt.Errorf("mpi: min-pairs payload mismatch on rank %d", c.rank)
				}
				for j := range vals {
					//swlint:ignore float-eq -- exact-value tie breaks to the lowest index, the paper's deterministic combining order
					if d[j] < vals[j] || (d[j] == vals[j] && i[j] < idxs[j]) {
						vals[j], idxs[j] = d[j], i[j]
					}
				}
			}
		}
	}
	if err := c.bcastOp(st, 0, vals, idxs); err != nil {
		return err
	}
	return st.err()
}

// AllGatherInts gathers each rank's ints contribution and returns the
// concatenation ordered by rank, identical on every rank. All
// contributions must have the same length.
func (c *Comm) AllGatherInts(contrib []int64) ([]int64, error) {
	u, m := c.obsBegin()
	all, err := c.allGatherInts(contrib)
	c.obsEnd(u, m, "mpi:allgather", int64(len(all)*ldm.ElemBytes))
	return all, err
}

func (c *Comm) allGatherInts(contrib []int64) ([]int64, error) {
	n := len(contrib)
	all := make([]int64, n*c.size)
	copy(all[c.rank*n:], contrib)
	if c.size == 1 {
		if err := c.checkSelfCrash(); err != nil {
			return nil, err
		}
		return all, nil
	}
	st := &opState{}
	tag := c.nextTag()
	// Gather to rank 0, then broadcast. Simple and deterministic.
	if c.rank == 0 {
		for src := 1; src < c.size; src++ {
			_, i, err := c.opRecv(st, src, tag)
			if err != nil {
				return nil, err
			}
			if st.fail == nil {
				if len(i) != n {
					return nil, fmt.Errorf("mpi: allgather size mismatch from rank %d: %d vs %d", src, len(i), n)
				}
				copy(all[src*n:], i)
			}
		}
	} else {
		if err := c.opSend(st, 0, tag, nil, contrib); err != nil {
			return nil, err
		}
	}
	if err := c.bcastOp(st, 0, nil, all); err != nil {
		return nil, err
	}
	if st.fail != nil {
		return nil, st.fail
	}
	return all, nil
}

// Split partitions the communicator: ranks passing equal color form a
// new communicator, ordered by (key, rank). Every rank of the parent
// must call Split. The returned Comm is ready for collectives within
// the partition.
func (c *Comm) Split(color, key int) (*Comm, error) {
	u, m := c.obsBegin()
	sub, err := c.split(color, key)
	c.obsEnd(u, m, "mpi:split", 0)
	return sub, err
}

func (c *Comm) split(color, key int) (*Comm, error) {
	pairs, err := c.AllGatherInts([]int64{int64(color), int64(key)})
	if err != nil {
		return nil, err
	}
	type mem struct{ color, key, rank int }
	var mine []mem
	for r := 0; r < c.size; r++ {
		col := int(pairs[2*r])
		if col == color {
			mine = append(mine, mem{col, int(pairs[2*r+1]), r})
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	members := make([]int, len(mine))
	newRank := -1
	for i, m := range mine {
		members[i] = c.members[m.rank]
		if m.rank == c.rank {
			newRank = i
		}
	}
	if newRank < 0 {
		return nil, fmt.Errorf("mpi: rank %d missing from its own split", c.rank)
	}
	// Communicator identity must agree across all members of the new
	// communicator without extra communication, and must be unique
	// across every communicator in the world. All ranks hold the same
	// gathered color table and the same (parent id, parent seq), so
	// the tuple (parent id, parent seq, index of this color among the
	// sorted distinct colors) is both agreed and collision-free.
	distinct := make(map[int]struct{}, c.size)
	var colors []int
	for r := 0; r < c.size; r++ {
		col := int(pairs[2*r])
		if _, ok := distinct[col]; !ok {
			distinct[col] = struct{}{}
			colors = append(colors, col)
		}
	}
	sort.Ints(colors)
	colorIdx := sort.SearchInts(colors, color)
	id := (c.id*1_000_003+c.seq)*65536 + uint64(colorIdx) + 1
	return &Comm{
		w:       c.w,
		id:      id,
		rank:    newRank,
		size:    len(members),
		members: members,
	}, nil
}
