package mpi

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestRingAllReduceCorrectness(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 13} {
		for _, elems := range []int{0, 1, 5, 64, 1000} {
			w := world(t, 4, size)
			err := w.Run(func(c *Comm) error {
				data := make([]float64, elems)
				ints := make([]int64, elems/2)
				for j := range data {
					data[j] = float64((c.Rank()+1)*(j+1)) // rank-dependent
				}
				for j := range ints {
					ints[j] = int64(c.Rank() + j)
				}
				if err := c.AllReduceSumRing(data, ints); err != nil {
					return err
				}
				for j := range data {
					want := 0.0
					for r := 0; r < size; r++ {
						want += float64((r + 1) * (j + 1))
					}
					if data[j] != want {
						return fmt.Errorf("rank %d elem %d = %g, want %g", c.Rank(), j, data[j], want)
					}
				}
				for j := range ints {
					want := int64(0)
					for r := 0; r < size; r++ {
						want += int64(r + j)
					}
					if ints[j] != want {
						return fmt.Errorf("rank %d int %d = %d, want %d", c.Rank(), j, ints[j], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("size=%d elems=%d: %v", size, elems, err)
			}
		}
	}
}

func TestRingAllReduceIdenticalEverywhere(t *testing.T) {
	const size = 6
	const elems = 97
	w := world(t, 2, size)
	results := make([][]float64, size)
	err := w.Run(func(c *Comm) error {
		data := make([]float64, elems)
		for j := range data {
			data[j] = 1.0 / float64((c.Rank()+2)*(j+3))
		}
		if err := c.AllReduceSumRing(data, nil); err != nil {
			return err
		}
		results[c.Rank()] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < size; r++ {
		for j := range results[0] {
			if results[r][j] != results[0][j] {
				t.Fatalf("rank %d elem %d differs bitwise from rank 0", r, j)
			}
		}
	}
}

func TestRingFasterThanBinomialForLargePayloads(t *testing.T) {
	// The bandwidth-optimal property in virtual time: for a large
	// payload over many ranks, the ring allreduce completes earlier on
	// the simulated network.
	const size = 16
	const elems = 1 << 18
	timeOf := func(ring bool) float64 {
		w := world(t, 4, size)
		err := w.Run(func(c *Comm) error {
			data := make([]float64, elems)
			if ring {
				return c.AllReduceSumRing(data, nil)
			}
			return c.AllReduceSum(data, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	ringT := timeOf(true)
	binT := timeOf(false)
	if ringT >= binT {
		t.Errorf("ring (%g s) not faster than binomial (%g s) at %d elems x %d ranks",
			ringT, binT, elems, size)
	}
}

func TestAllReduceSumAutoSelects(t *testing.T) {
	// Small payloads and size<=2 take the binomial path; both paths
	// must produce correct sums.
	for _, elems := range []int{10, ringThresholdElems} {
		const size = 4
		w := world(t, 2, size)
		err := w.Run(func(c *Comm) error {
			data := make([]float64, elems)
			for j := range data {
				data[j] = float64(c.Rank() + 1)
			}
			if err := c.AllReduceSumAuto(data, nil); err != nil {
				return err
			}
			want := float64(size * (size + 1) / 2)
			if data[0] != want || data[elems-1] != want {
				return fmt.Errorf("sum %g, want %g", data[0], want)
			}
			return nil
		})
		if err != nil {
			t.Errorf("elems=%d: %v", elems, err)
		}
	}
}

func TestSegment(t *testing.T) {
	// Segments cover [0,n) exactly for any p.
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%16 + 1
		total := 0
		prevHi := 0
		for s := 0; s < p; s++ {
			lo, hi := segment(n, p, s)
			if lo != prevHi || hi < lo {
				return false
			}
			total += hi - lo
			prevHi = hi
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMod(t *testing.T) {
	for _, c := range []struct{ a, p, want int }{{-1, 5, 4}, {0, 5, 0}, {7, 5, 2}, {-6, 5, 4}} {
		if got := mod(c.a, c.p); got != c.want {
			t.Errorf("mod(%d,%d) = %d, want %d", c.a, c.p, got, c.want)
		}
	}
}

func BenchmarkRingAllReduce(b *testing.B) {
	w := MustWorld(machine.MustSpec(4), nil, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(c *Comm) error {
			return c.AllReduceSumRing(make([]float64, 4096), nil)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
