package mpi

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/trace"
)

// worldDigest captures everything a driver can influence: every rank's
// final clock (as exact bit patterns), the per-rank payload digests a
// scenario records, the run error text, and the failed-rank set.
type worldDigest struct {
	clocks   []uint64
	payloads []string
	runErr   string
	failed   []int
}

// runScenario executes one scenario under the given driver on a fresh
// world and digests the outcome. The scenario writes each rank's
// payload digest into out[rank].
func runScenario(t *testing.T, d Driver, nodes, size int, plan *fault.Plan,
	scenario func(w *World, out []string) error) worldDigest {
	t.Helper()
	w := world(t, nodes, size)
	w.SetDriver(d)
	if plan != nil {
		w.SetFaults(fault.MustInjector(*plan))
	}
	out := make([]string, size)
	dig := worldDigest{payloads: out}
	if err := scenario(w, out); err != nil {
		dig.runErr = err.Error()
	}
	for g := 0; g < size; g++ {
		dig.clocks = append(dig.clocks, math.Float64bits(w.clocks[g].Now()))
	}
	dig.failed = w.Failed()
	return dig
}

// assertDigestsEqual compares two drivers' digests bit for bit.
func assertDigestsEqual(t *testing.T, goroutine, sched worldDigest) {
	t.Helper()
	if goroutine.runErr != sched.runErr {
		t.Fatalf("run error diverged:\n goroutine: %q\n sched:     %q", goroutine.runErr, sched.runErr)
	}
	if fmt.Sprint(goroutine.failed) != fmt.Sprint(sched.failed) {
		t.Fatalf("failed set diverged: goroutine %v, sched %v", goroutine.failed, sched.failed)
	}
	for g := range goroutine.clocks {
		if goroutine.clocks[g] != sched.clocks[g] {
			t.Fatalf("rank %d clock diverged: goroutine bits %016x, sched bits %016x",
				g, goroutine.clocks[g], sched.clocks[g])
		}
	}
	for g := range goroutine.payloads {
		if goroutine.payloads[g] != sched.payloads[g] {
			t.Fatalf("rank %d payload diverged:\n goroutine: %s\n sched:     %s",
				g, goroutine.payloads[g], sched.payloads[g])
		}
	}
}

func bitsOf(xs []float64) string {
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%016x,", math.Float64bits(x))
	}
	return b.String()
}

func intsOf(xs []int64) string { return fmt.Sprint(xs) }

// TestDriverParityCollectives runs a workload exercising every
// collective family — allreduce (tree and ring), min-pairs, barrier,
// bcast, gather/scatter, allgather, split with sub-communicator
// collectives, and tagged point-to-point — and requires bit-identical
// payloads and clocks across the goroutine and DES drivers.
func TestDriverParityCollectives(t *testing.T) {
	const size = 8
	scenario := func(w *World, out []string) error {
		return w.Run(func(c *Comm) error {
			r := c.Rank()
			var b strings.Builder

			sum := []float64{float64(r) + 0.25, float64(r * r)}
			cnt := []int64{int64(r), 1}
			if err := c.AllReduceSum(sum, cnt); err != nil {
				return err
			}
			fmt.Fprintf(&b, "sum=%s%s;", bitsOf(sum), intsOf(cnt))

			ring := []float64{1.0 / float64(r+1), float64(r)}
			if err := c.AllReduceSumRing(ring, nil); err != nil {
				return err
			}
			fmt.Fprintf(&b, "ring=%s;", bitsOf(ring))

			vals := []float64{float64((r * 5) % 7), float64(r % 3)}
			idxs := []int64{int64(r), int64(size - r)}
			if err := c.AllReduceMinPairs(vals, idxs); err != nil {
				return err
			}
			fmt.Fprintf(&b, "min=%s%s;", bitsOf(vals), intsOf(idxs))

			data := make([]float64, 3)
			if r == 2 {
				data = []float64{3.5, -1.25, 42}
			}
			if err := c.Bcast(2, data, nil); err != nil {
				return err
			}
			fmt.Fprintf(&b, "bcast=%s;", bitsOf(data))

			gathered, err := c.Gather(1, []float64{float64(r) * 1.5})
			if err != nil {
				return err
			}
			if r == 1 {
				fmt.Fprintf(&b, "gather=%s;", bitsOf(gathered))
			}
			var scatterSrc []float64
			if r == 0 {
				for i := 0; i < 2*size; i++ {
					scatterSrc = append(scatterSrc, float64(i)+0.5)
				}
			}
			part, err := c.Scatter(0, scatterSrc)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "scatter=%s;", bitsOf(part))

			all, err := c.AllGatherInts([]int64{int64(r * 10)})
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "ag=%s;", intsOf(all))

			// Tagged point-to-point ring with out-of-order tags: rank r
			// sends two messages to (r+1)%size and receives from the left
			// neighbour in the opposite tag order, exercising the held
			// buffer in both drivers.
			right, left := (c.Rank()+1)%size, (c.Rank()-1+size)%size
			if err := c.Send(right, 100, []float64{float64(r)}, nil); err != nil {
				return err
			}
			if err := c.Send(right, 101, []float64{float64(r) * 2}, nil); err != nil {
				return err
			}
			d1, _, err := c.Recv(left, 101)
			if err != nil {
				return err
			}
			d0, _, err := c.Recv(left, 100)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "p2p=%s%s;", bitsOf(d0), bitsOf(d1))

			// Split into halves; sub-communicator collectives, then a
			// world barrier over everything.
			sub, err := c.Split(r%2, r)
			if err != nil {
				return err
			}
			subSum := []float64{float64(r) + 0.125}
			if err := sub.AllReduceSum(subSum, nil); err != nil {
				return err
			}
			fmt.Fprintf(&b, "sub=%s;", bitsOf(subSum))
			if err := sub.Barrier(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			fmt.Fprintf(&b, "t=%016x", math.Float64bits(c.Clock().Now()))
			out[c.Global()] = b.String()
			return nil
		})
	}
	g := runScenario(t, DriverGoroutine, 2, size, nil, scenario)
	s := runScenario(t, DriverSched, 2, size, nil, scenario)
	assertDigestsEqual(t, g, s)
	for r := 0; r < size; r++ {
		if g.payloads[r] == "" {
			t.Fatalf("rank %d recorded no payload", r)
		}
	}
}

// TestDriverParityCrashRecovery injects a crash mid-workload and
// checks that failure detection, the abort cascade, the surviving
// RunLive epoch and every clock agree across drivers bit for bit.
func TestDriverParityCrashRecovery(t *testing.T) {
	const size = 6
	plan := &fault.Plan{
		Crashes:          []fault.Crash{{CG: 2, At: 1e-5}},
		HeartbeatTimeout: 5e-4,
	}
	scenario := func(w *World, out []string) error {
		err := w.Run(func(c *Comm) error {
			for iter := 0; ; iter++ {
				data := []float64{float64(c.Rank()*iter) + 0.5}
				if err := c.AllReduceSum(data, nil); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
		})
		if err == nil {
			return errors.New("crash epoch unexpectedly succeeded")
		}
		// Recovery epoch over the survivors: same deterministic outcome
		// expected from both drivers.
		liveErr := w.RunLive(func(c *Comm) error {
			data := []float64{float64(c.Global()) + 0.75}
			if err := c.AllReduceSum(data, nil); err != nil {
				return err
			}
			out[c.Global()] = fmt.Sprintf("live=%s t=%016x", bitsOf(data), math.Float64bits(c.Clock().Now()))
			return nil
		})
		if liveErr != nil {
			return fmt.Errorf("recovery epoch: %w (first epoch: %v)", liveErr, err)
		}
		return err
	}
	g := runScenario(t, DriverGoroutine, 2, size, plan, scenario)
	s := runScenario(t, DriverSched, 2, size, plan, scenario)
	if g.runErr == "" || !strings.Contains(g.runErr, "fail-stop") && !strings.Contains(g.runErr, "failed") {
		t.Fatalf("goroutine run error %q does not report the crash", g.runErr)
	}
	assertDigestsEqual(t, g, s)
	if len(s.failed) != 1 || s.failed[0] != 2 {
		t.Fatalf("failed set %v, want [2]", s.failed)
	}
}

// TestDriverParityTransientFaults drives retries, backoff and degraded
// links through both drivers: the injected fault decisions are pure
// functions of (link, tag, virtual time, attempt), so the clocks must
// agree exactly.
func TestDriverParityTransientFaults(t *testing.T) {
	const size = 4
	plan := &fault.Plan{
		Seed:        99,
		MsgFailRate: 0.2,
		MaxRetries:  64,
		Links: []fault.LinkDegrade{
			{FromCG: -1, ToCG: -1, From: 0, To: 1, Factor: 3},
		},
	}
	scenario := func(w *World, out []string) error {
		return w.Run(func(c *Comm) error {
			for iter := 0; iter < 5; iter++ {
				data := []float64{float64(c.Rank()) + 0.5, float64(iter)}
				if err := c.AllReduceSum(data, nil); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if iter == 2 {
					out[c.Global()] = fmt.Sprintf("i2=%s", bitsOf(data))
				}
			}
			return nil
		})
	}
	g := runScenario(t, DriverGoroutine, 1, size, plan, scenario)
	s := runScenario(t, DriverSched, 1, size, plan, scenario)
	assertDigestsEqual(t, g, s)
}

// TestRunSchedForcesDESDriver: RunSched must run under the DES engine
// regardless of the configured driver and restore the selection.
func TestRunSchedForcesDESDriver(t *testing.T) {
	w := world(t, 1, 4)
	if w.Driver() != DriverGoroutine {
		t.Fatalf("default driver = %v", w.Driver())
	}
	var inSched bool
	err := w.RunSched(func(c *Comm) error {
		if c.Rank() == 0 {
			inSched = w.des != nil
		}
		data := []float64{1}
		return c.AllReduceSum(data, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inSched {
		t.Fatal("RunSched did not engage the DES driver")
	}
	if w.Driver() != DriverGoroutine {
		t.Fatalf("driver not restored, now %v", w.Driver())
	}
}

// TestSchedDeadlockDiagnostic: a protocol bug that would hang the
// goroutine driver forever (a receive nobody answers) surfaces as the
// scheduler's deadlock diagnostic under the DES driver.
func TestSchedDeadlockDiagnostic(t *testing.T) {
	w := world(t, 1, 2)
	w.SetDriver(DriverSched)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, _, err := c.Recv(1, 7) // rank 1 never sends
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("mismatched receive returned nil")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error %q is not the scheduler's deadlock diagnostic", err)
	}
}

// TestSchedLargeWorld is the scale smoke: a 4,096-rank world (the
// paper's full 1,024-node deployment) runs a barrier and a tree
// allreduce in-process under the DES driver.
func TestSchedLargeWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("4,096-rank world in -short mode")
	}
	spec := machine.MustSpec(1024)
	w, err := NewWorld(spec, trace.NewStats(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	w.SetDriver(DriverSched)
	var sum float64
	err = w.Run(func(c *Comm) error {
		data := []float64{1}
		if err := c.AllReduceSum(data, nil); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			sum = data[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4096 {
		t.Fatalf("allreduce over 4096 ranks = %v", sum)
	}
	if w.MaxTime() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

// TestSchedDeterministicAcrossRuns: two fresh DES runs of the same
// seeded faulty scenario produce bit-identical clocks and outcomes.
func TestSchedDeterministicAcrossRuns(t *testing.T) {
	plan := &fault.Plan{
		Seed:        7,
		MsgFailRate: 0.1,
		MaxRetries:  64,
		Crashes:     []fault.Crash{{CG: 3, At: 2e-5}},
	}
	scenario := func(w *World, out []string) error {
		return w.Run(func(c *Comm) error {
			for iter := 0; iter < 8; iter++ {
				data := []float64{float64(c.Rank()) * 1.25}
				if err := c.AllReduceSum(data, nil); err != nil {
					return err
				}
			}
			return nil
		})
	}
	a := runScenario(t, DriverSched, 2, 6, plan, scenario)
	b := runScenario(t, DriverSched, 2, 6, plan, scenario)
	assertDigestsEqual(t, a, b)
}
