package trace

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestStatsAccumulate(t *testing.T) {
	s := NewStats()
	s.AddDMA(100)
	s.AddDMA(50)
	s.AddReg(8)
	s.AddNet(1000)
	s.AddNet(24)
	s.AddFlops(999)
	snap := s.Snapshot()
	if snap.DMABytes != 150 || snap.DMATransfers != 2 {
		t.Errorf("DMA = %d/%d, want 150/2", snap.DMABytes, snap.DMATransfers)
	}
	if snap.RegBytes != 8 || snap.RegTransfers != 1 {
		t.Errorf("Reg = %d/%d, want 8/1", snap.RegBytes, snap.RegTransfers)
	}
	if snap.NetBytes != 1024 || snap.NetMessages != 2 {
		t.Errorf("Net = %d/%d, want 1024/2", snap.NetBytes, snap.NetMessages)
	}
	if snap.Flops != 999 {
		t.Errorf("Flops = %d, want 999", snap.Flops)
	}
}

func TestNilStatsIsSafe(t *testing.T) {
	var s *Stats
	s.AddDMA(1)
	s.AddReg(1)
	s.AddNet(1)
	s.AddFlops(1)
	s.Reset()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil Stats snapshot = %+v, want zero", snap)
	}
}

func TestStatsReset(t *testing.T) {
	s := NewStats()
	s.AddDMA(5)
	s.AddFlops(7)
	s.Reset()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("after Reset snapshot = %+v, want zero", snap)
	}
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	const workers = 16
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.AddDMA(1)
				s.AddReg(2)
				s.AddNet(3)
				s.AddFlops(4)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.DMABytes != workers*per {
		t.Errorf("DMABytes = %d, want %d", snap.DMABytes, workers*per)
	}
	if snap.RegBytes != 2*workers*per {
		t.Errorf("RegBytes = %d, want %d", snap.RegBytes, 2*workers*per)
	}
	if snap.NetMessages != workers*per {
		t.Errorf("NetMessages = %d, want %d", snap.NetMessages, workers*per)
	}
	if snap.Flops != 4*workers*per {
		t.Errorf("Flops = %d, want %d", snap.Flops, 4*workers*per)
	}
}

func TestSnapshotSubAdd(t *testing.T) {
	a := Snapshot{DMABytes: 10, DMATransfers: 2, RegBytes: 4, RegTransfers: 1, NetBytes: 100, NetMessages: 3, Flops: 50}
	b := Snapshot{DMABytes: 4, DMATransfers: 1, RegBytes: 1, RegTransfers: 1, NetBytes: 40, NetMessages: 1, Flops: 20}
	d := a.Sub(b)
	if d.DMABytes != 6 || d.DMATransfers != 1 || d.RegBytes != 3 || d.NetBytes != 60 || d.Flops != 30 {
		t.Errorf("Sub = %+v", d)
	}
	if got := d.Add(b); got != a {
		t.Errorf("Add(Sub) = %+v, want %+v", got, a)
	}
}

// fillSnapshot populates every Snapshot field with a distinct value
// derived from base via reflection, so a field added to the struct but
// forgotten in Add or Sub fails the round-trip tests below. All values
// are exactly representable binary fractions, keeping float equality
// exact.
func fillSnapshot(t *testing.T, base int) Snapshot {
	t.Helper()
	var s Snapshot
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			f.SetInt(int64(base + i))
		case reflect.Float64:
			f.SetFloat(float64(base) + float64(i)/2)
		default:
			t.Fatalf("Snapshot field %s has unhandled kind %v; extend fillSnapshot and the arithmetic tests",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

func TestSnapshotArithmeticEveryField(t *testing.T) {
	a, b := fillSnapshot(t, 1000), fillSnapshot(t, 3)
	d := a.Sub(b)
	dv, av, bv := reflect.ValueOf(d), reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < dv.NumField(); i++ {
		name := dv.Type().Field(i).Name
		switch dv.Field(i).Kind() {
		case reflect.Int64:
			if got, want := dv.Field(i).Int(), av.Field(i).Int()-bv.Field(i).Int(); got != want {
				t.Errorf("Sub dropped field %s: got %d, want %d", name, got, want)
			}
		case reflect.Float64:
			//swlint:ignore float-eq -- exactly representable binary fractions subtract without rounding
			if got, want := dv.Field(i).Float(), av.Field(i).Float()-bv.Field(i).Float(); got != want {
				t.Errorf("Sub dropped field %s: got %g, want %g", name, got, want)
			}
		}
	}
	if got := a.Sub(b).Add(b); got != a {
		t.Errorf("Sub then Add round-trip = %+v, want %+v", got, a)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add then Sub round-trip = %+v, want %+v", got, a)
	}
	if got := a.Sub(Snapshot{}); got != a {
		t.Errorf("Sub of zero changed the snapshot: %+v", got)
	}
	if got := (Snapshot{}).Add(a); got != a {
		t.Errorf("Add to zero changed the snapshot: %+v", got)
	}
}

func TestHasRecoveryPartiallyPopulated(t *testing.T) {
	// Each recovery counter alone must flip HasRecovery.
	positives := []Snapshot{
		{DMARetries: 1},
		{NetRetries: 1},
		{Checkpoints: 1},
		{Replans: 1},
		{RetrySeconds: 0.5},
		{CheckpointSeconds: 0.5},
		{RestoreSeconds: 0.5},
		{ReplanSeconds: 0.5},
		{RedoSeconds: 0.5},
	}
	for _, s := range positives {
		if !s.HasRecovery() {
			t.Errorf("HasRecovery() = false for %+v", s)
		}
	}
	// Traffic-only snapshots are not recovery.
	negatives := []Snapshot{
		{},
		{DMABytes: 1 << 20, DMATransfers: 7, RegBytes: 9, NetBytes: 2, NetMessages: 1, Flops: 1e9},
	}
	for _, s := range negatives {
		if s.HasRecovery() {
			t.Errorf("HasRecovery() = true for fault-free snapshot %+v", s)
		}
	}
}

func TestRecoveryStringPartiallyPopulated(t *testing.T) {
	s := Snapshot{Checkpoints: 3, CheckpointBytes: 3 * 1024, CheckpointSeconds: 0.25, RedoSeconds: 1.5}
	str := s.RecoveryString()
	for _, tok := range []string{"ckpt=3(3.0KiB,0.250000s)", "redo=1.500000s", "restore=0.000000s", "replan=0(0.000000s)", "dma:0,net:0"} {
		if !strings.Contains(str, tok) {
			t.Errorf("RecoveryString() = %q, missing %q", str, tok)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1.0KiB"},
		{1536, "1.5KiB"},
		{1 << 20, "1.0MiB"},
		{3 << 30, "3.0GiB"},
		{1 << 40, "1.0TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1.00k"},
		{1500000, "1.50M"},
		{3000000000, "3.00G"},
		{1500000000000000, "1.50P"},
	}
	for _, c := range cases {
		if got := FormatCount(c.n); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{DMABytes: 2048, DMATransfers: 2, Flops: 1000}
	str := s.String()
	for _, want := range []string{"dma=2.0KiB(2)", "flops=1.00k"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}

func TestRecoveryCounters(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.AddDMARetry(2, 0.25)
			s.AddNetRetry(1, 0.125)
			s.AddCheckpoint(1024, 0.5)
			s.AddRestore(0.75)
			s.AddReplan(1.0)
			s.AddRedo(2.0)
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.DMARetries != 16 || snap.NetRetries != 8 {
		t.Errorf("retries = dma:%d net:%d, want 16/8", snap.DMARetries, snap.NetRetries)
	}
	if snap.Checkpoints != 8 || snap.CheckpointBytes != 8*1024 || snap.Replans != 8 {
		t.Errorf("ckpt=%d bytes=%d replans=%d", snap.Checkpoints, snap.CheckpointBytes, snap.Replans)
	}
	// Sums of exactly representable binary fractions stay exact, so the
	// accumulated virtual seconds compare exactly.
	want := Snapshot{
		DMARetries: 16, NetRetries: 8, Checkpoints: 8, CheckpointBytes: 8192, Replans: 8,
		RetrySeconds: 8*0.25 + 8*0.125, CheckpointSeconds: 4, RestoreSeconds: 8 * 0.75, ReplanSeconds: 8, RedoSeconds: 16,
	}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}
	if !snap.HasRecovery() {
		t.Error("HasRecovery() = false with recovery counters set")
	}
	if (Snapshot{NetBytes: 5}).HasRecovery() {
		t.Error("HasRecovery() = true on a fault-free snapshot")
	}
	if got := snap.Sub(snap); got.HasRecovery() {
		t.Errorf("self-difference keeps recovery counters: %+v", got)
	}
	if got := snap.Add(snap); got.DMARetries != 32 || got.RedoSeconds != 32 {
		t.Errorf("Add did not fold recovery counters: %+v", got)
	}
	str := snap.RecoveryString()
	for _, tok := range []string{"ckpt=8", "restore=6", "replan=8", "dma:16", "net:8"} {
		if !strings.Contains(str, tok) {
			t.Errorf("RecoveryString() = %q, missing %q", str, tok)
		}
	}
	s.Reset()
	if s.Snapshot().HasRecovery() {
		t.Error("Reset left recovery counters set")
	}
}
