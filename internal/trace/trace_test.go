package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestStatsAccumulate(t *testing.T) {
	s := NewStats()
	s.AddDMA(100)
	s.AddDMA(50)
	s.AddReg(8)
	s.AddNet(1000)
	s.AddNet(24)
	s.AddFlops(999)
	snap := s.Snapshot()
	if snap.DMABytes != 150 || snap.DMATransfers != 2 {
		t.Errorf("DMA = %d/%d, want 150/2", snap.DMABytes, snap.DMATransfers)
	}
	if snap.RegBytes != 8 || snap.RegTransfers != 1 {
		t.Errorf("Reg = %d/%d, want 8/1", snap.RegBytes, snap.RegTransfers)
	}
	if snap.NetBytes != 1024 || snap.NetMessages != 2 {
		t.Errorf("Net = %d/%d, want 1024/2", snap.NetBytes, snap.NetMessages)
	}
	if snap.Flops != 999 {
		t.Errorf("Flops = %d, want 999", snap.Flops)
	}
}

func TestNilStatsIsSafe(t *testing.T) {
	var s *Stats
	s.AddDMA(1)
	s.AddReg(1)
	s.AddNet(1)
	s.AddFlops(1)
	s.Reset()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil Stats snapshot = %+v, want zero", snap)
	}
}

func TestStatsReset(t *testing.T) {
	s := NewStats()
	s.AddDMA(5)
	s.AddFlops(7)
	s.Reset()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("after Reset snapshot = %+v, want zero", snap)
	}
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	const workers = 16
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.AddDMA(1)
				s.AddReg(2)
				s.AddNet(3)
				s.AddFlops(4)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.DMABytes != workers*per {
		t.Errorf("DMABytes = %d, want %d", snap.DMABytes, workers*per)
	}
	if snap.RegBytes != 2*workers*per {
		t.Errorf("RegBytes = %d, want %d", snap.RegBytes, 2*workers*per)
	}
	if snap.NetMessages != workers*per {
		t.Errorf("NetMessages = %d, want %d", snap.NetMessages, workers*per)
	}
	if snap.Flops != 4*workers*per {
		t.Errorf("Flops = %d, want %d", snap.Flops, 4*workers*per)
	}
}

func TestSnapshotSubAdd(t *testing.T) {
	a := Snapshot{DMABytes: 10, DMATransfers: 2, RegBytes: 4, RegTransfers: 1, NetBytes: 100, NetMessages: 3, Flops: 50}
	b := Snapshot{DMABytes: 4, DMATransfers: 1, RegBytes: 1, RegTransfers: 1, NetBytes: 40, NetMessages: 1, Flops: 20}
	d := a.Sub(b)
	if d.DMABytes != 6 || d.DMATransfers != 1 || d.RegBytes != 3 || d.NetBytes != 60 || d.Flops != 30 {
		t.Errorf("Sub = %+v", d)
	}
	if got := d.Add(b); got != a {
		t.Errorf("Add(Sub) = %+v, want %+v", got, a)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1.0KiB"},
		{1536, "1.5KiB"},
		{1 << 20, "1.0MiB"},
		{3 << 30, "3.0GiB"},
		{1 << 40, "1.0TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1.00k"},
		{1500000, "1.50M"},
		{3000000000, "3.00G"},
		{1500000000000000, "1.50P"},
	}
	for _, c := range cases {
		if got := FormatCount(c.n); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{DMABytes: 2048, DMATransfers: 2, Flops: 1000}
	str := s.String()
	for _, want := range []string{"dma=2.0KiB(2)", "flops=1.00k"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
