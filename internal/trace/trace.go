// Package trace provides the instrumentation counters of the machine
// simulator. Every substrate (DMA engine, register-communication mesh,
// message-passing layer, compute kernels) reports the volume of work it
// performed to a Stats sink; engines aggregate per-unit stats into a
// per-iteration traffic breakdown that the benchmark harnesses print
// next to the timing results.
package trace

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates work volumes. All methods are safe for concurrent
// use; simulated units on different goroutines may share one Stats.
type Stats struct {
	dmaBytes     atomic.Int64
	dmaTransfers atomic.Int64
	regBytes     atomic.Int64
	regTransfers atomic.Int64
	netBytes     atomic.Int64
	netMessages  atomic.Int64
	flops        atomic.Int64
}

// NewStats returns an empty counter set.
func NewStats() *Stats { return &Stats{} }

// AddDMA records one DMA transfer of n bytes between main memory and an
// LDM buffer.
func (s *Stats) AddDMA(n int64) {
	if s == nil {
		return
	}
	s.dmaBytes.Add(n)
	s.dmaTransfers.Add(1)
}

// AddReg records one register-communication transfer of n bytes across
// the CPE mesh.
func (s *Stats) AddReg(n int64) {
	if s == nil {
		return
	}
	s.regBytes.Add(n)
	s.regTransfers.Add(1)
}

// AddNet records one network message of n bytes between core groups.
func (s *Stats) AddNet(n int64) {
	if s == nil {
		return
	}
	s.netBytes.Add(n)
	s.netMessages.Add(1)
}

// AddFlops records n floating-point operations executed by compute
// kernels.
func (s *Stats) AddFlops(n int64) {
	if s == nil {
		return
	}
	s.flops.Add(n)
}

// Snapshot is an immutable copy of the counters at one point in time.
type Snapshot struct {
	DMABytes     int64
	DMATransfers int64
	RegBytes     int64
	RegTransfers int64
	NetBytes     int64
	NetMessages  int64
	Flops        int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		DMABytes:     s.dmaBytes.Load(),
		DMATransfers: s.dmaTransfers.Load(),
		RegBytes:     s.regBytes.Load(),
		RegTransfers: s.regTransfers.Load(),
		NetBytes:     s.netBytes.Load(),
		NetMessages:  s.netMessages.Load(),
		Flops:        s.flops.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.dmaBytes.Store(0)
	s.dmaTransfers.Store(0)
	s.regBytes.Store(0)
	s.regTransfers.Store(0)
	s.netBytes.Store(0)
	s.netMessages.Store(0)
	s.flops.Store(0)
}

// Sub returns the delta a-b of two snapshots, used to isolate the
// traffic of a single iteration from cumulative counters.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		DMABytes:     a.DMABytes - b.DMABytes,
		DMATransfers: a.DMATransfers - b.DMATransfers,
		RegBytes:     a.RegBytes - b.RegBytes,
		RegTransfers: a.RegTransfers - b.RegTransfers,
		NetBytes:     a.NetBytes - b.NetBytes,
		NetMessages:  a.NetMessages - b.NetMessages,
		Flops:        a.Flops - b.Flops,
	}
}

// Add returns the element-wise sum of two snapshots.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		DMABytes:     a.DMABytes + b.DMABytes,
		DMATransfers: a.DMATransfers + b.DMATransfers,
		RegBytes:     a.RegBytes + b.RegBytes,
		RegTransfers: a.RegTransfers + b.RegTransfers,
		NetBytes:     a.NetBytes + b.NetBytes,
		NetMessages:  a.NetMessages + b.NetMessages,
		Flops:        a.Flops + b.Flops,
	}
}

// String renders a compact single-line breakdown.
func (a Snapshot) String() string {
	return fmt.Sprintf("dma=%s(%d) reg=%s(%d) net=%s(%d) flops=%s",
		FormatBytes(a.DMABytes), a.DMATransfers,
		FormatBytes(a.RegBytes), a.RegTransfers,
		FormatBytes(a.NetBytes), a.NetMessages,
		FormatCount(a.Flops))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatCount renders a large count with a decimal SI suffix.
func FormatCount(n int64) string {
	const unit = 1000
	if n < unit {
		return fmt.Sprintf("%d", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f%c", float64(n)/float64(div), "kMGTPE"[exp])
}
