// Package trace provides the instrumentation counters of the machine
// simulator. Every substrate (DMA engine, register-communication mesh,
// message-passing layer, compute kernels) reports the volume of work it
// performed to a Stats sink; engines aggregate per-unit stats into a
// per-iteration traffic breakdown that the benchmark harnesses print
// next to the timing results.
package trace

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Stats accumulates work volumes. All methods are safe for concurrent
// use; simulated units on different goroutines may share one Stats.
type Stats struct {
	dmaBytes     atomic.Int64
	dmaTransfers atomic.Int64
	regBytes     atomic.Int64
	regTransfers atomic.Int64
	netBytes     atomic.Int64
	netMessages  atomic.Int64
	flops        atomic.Int64

	// Recovery counters: what fault injection cost the run, phase by
	// phase, with the time components in virtual seconds — the same
	// metric every figure reports.
	dmaRetries        atomic.Int64
	netRetries        atomic.Int64
	checkpoints       atomic.Int64
	checkpointBytes   atomic.Int64
	replans           atomic.Int64
	retrySeconds      atomicSeconds
	checkpointSeconds atomicSeconds
	restoreSeconds    atomicSeconds
	replanSeconds     atomicSeconds
	redoSeconds       atomicSeconds
}

// atomicSeconds accumulates a float64 duration with lock-free
// compare-and-swap on the raw bits, so concurrent simulated units can
// charge virtual seconds to a shared sink.
type atomicSeconds struct {
	bits atomic.Uint64
}

// Add folds d into the accumulator.
func (a *atomicSeconds) Add(d float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the accumulated seconds.
func (a *atomicSeconds) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// NewStats returns an empty counter set.
func NewStats() *Stats { return &Stats{} }

// AddDMA records one DMA transfer of n bytes between main memory and an
// LDM buffer.
func (s *Stats) AddDMA(n int64) {
	if s == nil {
		return
	}
	s.dmaBytes.Add(n)
	s.dmaTransfers.Add(1)
}

// AddReg records one register-communication transfer of n bytes across
// the CPE mesh.
func (s *Stats) AddReg(n int64) {
	if s == nil {
		return
	}
	s.regBytes.Add(n)
	s.regTransfers.Add(1)
}

// AddNet records one network message of n bytes between core groups.
func (s *Stats) AddNet(n int64) {
	if s == nil {
		return
	}
	s.netBytes.Add(n)
	s.netMessages.Add(1)
}

// AddFlops records n floating-point operations executed by compute
// kernels.
func (s *Stats) AddFlops(n int64) {
	if s == nil {
		return
	}
	s.flops.Add(n)
}

// AddDMARetry records n transiently failed DMA attempts that were
// retried, charging their total virtual-time cost.
func (s *Stats) AddDMARetry(n int64, seconds float64) {
	if s == nil {
		return
	}
	s.dmaRetries.Add(n)
	s.retrySeconds.Add(seconds)
}

// AddNetRetry records n retransmitted messages, charging their total
// virtual-time cost.
func (s *Stats) AddNetRetry(n int64, seconds float64) {
	if s == nil {
		return
	}
	s.netRetries.Add(n)
	s.retrySeconds.Add(seconds)
}

// AddCheckpoint records one checkpoint write of n bytes taking the
// given virtual seconds.
func (s *Stats) AddCheckpoint(n int64, seconds float64) {
	if s == nil {
		return
	}
	s.checkpoints.Add(1)
	s.checkpointBytes.Add(n)
	s.checkpointSeconds.Add(seconds)
}

// AddRestore records virtual seconds spent reading a checkpoint back
// from stable storage and broadcasting the restored model.
func (s *Stats) AddRestore(seconds float64) {
	if s == nil {
		return
	}
	s.restoreSeconds.Add(seconds)
}

// AddReplan records one recovery re-plan (failure detection, surviving
// communicator agreement and state redistribution) of the given
// virtual duration.
func (s *Stats) AddReplan(seconds float64) {
	if s == nil {
		return
	}
	s.replans.Add(1)
	s.replanSeconds.Add(seconds)
}

// AddRedo records virtual seconds spent re-executing iterations that
// were lost to a crash and restarted from the last checkpoint.
func (s *Stats) AddRedo(seconds float64) {
	if s == nil {
		return
	}
	s.redoSeconds.Add(seconds)
}

// Snapshot is an immutable copy of the counters at one point in time.
type Snapshot struct {
	DMABytes     int64
	DMATransfers int64
	RegBytes     int64
	RegTransfers int64
	NetBytes     int64
	NetMessages  int64
	Flops        int64

	DMARetries        int64
	NetRetries        int64
	Checkpoints       int64
	CheckpointBytes   int64
	Replans           int64
	RetrySeconds      float64
	CheckpointSeconds float64
	RestoreSeconds    float64
	ReplanSeconds     float64
	RedoSeconds       float64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		DMABytes:     s.dmaBytes.Load(),
		DMATransfers: s.dmaTransfers.Load(),
		RegBytes:     s.regBytes.Load(),
		RegTransfers: s.regTransfers.Load(),
		NetBytes:     s.netBytes.Load(),
		NetMessages:  s.netMessages.Load(),
		Flops:        s.flops.Load(),

		DMARetries:        s.dmaRetries.Load(),
		NetRetries:        s.netRetries.Load(),
		Checkpoints:       s.checkpoints.Load(),
		CheckpointBytes:   s.checkpointBytes.Load(),
		Replans:           s.replans.Load(),
		RetrySeconds:      s.retrySeconds.Load(),
		CheckpointSeconds: s.checkpointSeconds.Load(),
		RestoreSeconds:    s.restoreSeconds.Load(),
		ReplanSeconds:     s.replanSeconds.Load(),
		RedoSeconds:       s.redoSeconds.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.dmaBytes.Store(0)
	s.dmaTransfers.Store(0)
	s.regBytes.Store(0)
	s.regTransfers.Store(0)
	s.netBytes.Store(0)
	s.netMessages.Store(0)
	s.flops.Store(0)
	s.dmaRetries.Store(0)
	s.netRetries.Store(0)
	s.checkpoints.Store(0)
	s.checkpointBytes.Store(0)
	s.replans.Store(0)
	s.retrySeconds.bits.Store(0)
	s.checkpointSeconds.bits.Store(0)
	s.restoreSeconds.bits.Store(0)
	s.replanSeconds.bits.Store(0)
	s.redoSeconds.bits.Store(0)
}

// Sub returns the delta a-b of two snapshots, used to isolate the
// traffic of a single iteration from cumulative counters.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		DMABytes:     a.DMABytes - b.DMABytes,
		DMATransfers: a.DMATransfers - b.DMATransfers,
		RegBytes:     a.RegBytes - b.RegBytes,
		RegTransfers: a.RegTransfers - b.RegTransfers,
		NetBytes:     a.NetBytes - b.NetBytes,
		NetMessages:  a.NetMessages - b.NetMessages,
		Flops:        a.Flops - b.Flops,

		DMARetries:        a.DMARetries - b.DMARetries,
		NetRetries:        a.NetRetries - b.NetRetries,
		Checkpoints:       a.Checkpoints - b.Checkpoints,
		CheckpointBytes:   a.CheckpointBytes - b.CheckpointBytes,
		Replans:           a.Replans - b.Replans,
		RetrySeconds:      a.RetrySeconds - b.RetrySeconds,
		CheckpointSeconds: a.CheckpointSeconds - b.CheckpointSeconds,
		RestoreSeconds:    a.RestoreSeconds - b.RestoreSeconds,
		ReplanSeconds:     a.ReplanSeconds - b.ReplanSeconds,
		RedoSeconds:       a.RedoSeconds - b.RedoSeconds,
	}
}

// Add returns the element-wise sum of two snapshots.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		DMABytes:     a.DMABytes + b.DMABytes,
		DMATransfers: a.DMATransfers + b.DMATransfers,
		RegBytes:     a.RegBytes + b.RegBytes,
		RegTransfers: a.RegTransfers + b.RegTransfers,
		NetBytes:     a.NetBytes + b.NetBytes,
		NetMessages:  a.NetMessages + b.NetMessages,
		Flops:        a.Flops + b.Flops,

		DMARetries:        a.DMARetries + b.DMARetries,
		NetRetries:        a.NetRetries + b.NetRetries,
		Checkpoints:       a.Checkpoints + b.Checkpoints,
		CheckpointBytes:   a.CheckpointBytes + b.CheckpointBytes,
		Replans:           a.Replans + b.Replans,
		RetrySeconds:      a.RetrySeconds + b.RetrySeconds,
		CheckpointSeconds: a.CheckpointSeconds + b.CheckpointSeconds,
		RestoreSeconds:    a.RestoreSeconds + b.RestoreSeconds,
		ReplanSeconds:     a.ReplanSeconds + b.ReplanSeconds,
		RedoSeconds:       a.RedoSeconds + b.RedoSeconds,
	}
}

// HasRecovery reports whether any fault-recovery activity was
// recorded.
func (a Snapshot) HasRecovery() bool {
	if a.DMARetries != 0 || a.NetRetries != 0 || a.Checkpoints != 0 || a.Replans != 0 {
		return true
	}
	//swlint:ignore float-eq -- the seconds counters start at exactly zero and only ever accumulate; any recorded cost compares unequal
	return a.RetrySeconds != 0 || a.CheckpointSeconds != 0 || a.RestoreSeconds != 0 || a.ReplanSeconds != 0 || a.RedoSeconds != 0
}

// RecoveryString renders the recovery counters on one line.
func (a Snapshot) RecoveryString() string {
	return fmt.Sprintf("ckpt=%d(%s,%.6fs) restore=%.6fs replan=%d(%.6fs) redo=%.6fs retries=dma:%d,net:%d(%.6fs)",
		a.Checkpoints, FormatBytes(a.CheckpointBytes), a.CheckpointSeconds,
		a.RestoreSeconds, a.Replans, a.ReplanSeconds, a.RedoSeconds,
		a.DMARetries, a.NetRetries, a.RetrySeconds)
}

// String renders a compact single-line breakdown.
func (a Snapshot) String() string {
	return fmt.Sprintf("dma=%s(%d) reg=%s(%d) net=%s(%d) flops=%s",
		FormatBytes(a.DMABytes), a.DMATransfers,
		FormatBytes(a.RegBytes), a.RegTransfers,
		FormatBytes(a.NetBytes), a.NetMessages,
		FormatCount(a.Flops))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatCount renders a large count with a decimal SI suffix.
func FormatCount(n int64) string {
	const unit = 1000
	if n < unit {
		return fmt.Sprintf("%d", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f%c", float64(n)/float64(div), "kMGTPE"[exp])
}
