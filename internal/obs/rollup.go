// The streaming-aggregation (rollup) tier of the recorder: bounded
// per-unit state that every span emission folds into online, so runs
// with millions of spans — a 4,096-rank discrete-event epoch — stay
// observable without retaining any of them.
//
// Equivalence contract. The fold happens at the exact point a span
// would have been appended, with the same kind, iteration label and
// duration, in the same order. Per-iteration phase seconds and
// whole-run phase totals are accumulated with the same additions in
// the same sequence the span-retaining mode's Summarize/UnitTotals
// would perform, so the derived tables of the two modes are
// bit-identical, not merely close (TestRollupMatchesSummarize pins
// this at every partition level, including crash recovery).
package obs

import "sort"

// aggKey identifies one rollup cell: a span kind within an iteration
// (-1 collects setup and recovery work outside any iteration).
type aggKey struct {
	kind string
	iter int
}

// aggCell is one streaming aggregate: how many spans of this (kind,
// iter) the unit emitted, their summed virtual seconds, modelled
// traffic, and the log2 histogram of their durations.
type aggCell struct {
	count   uint64
	seconds float64
	bytes   int64
	flops   int64
	hist    Histogram
}

// unitRollup is one unit's bounded aggregation state. Key order is
// tracked by insertion (first emission), never by map iteration, so
// every derived ordering is a pure function of the emission sequence.
type unitRollup struct {
	aggs map[aggKey]*aggCell
	keys []aggKey // aggs keys in first-emission order
	// phases accumulates per-iteration phase seconds in emission order
	// — the identical addition sequence Summarize performs over
	// retained spans, which is what makes the two modes bit-equal.
	phases map[int]*PhaseSeconds
	// total is the whole-run phase breakdown, likewise accumulated in
	// emission order to match UnitTotals on retained spans.
	total PhaseSeconds
}

func newUnitRollup() *unitRollup {
	return &unitRollup{
		aggs:   make(map[aggKey]*aggCell),
		phases: make(map[int]*PhaseSeconds),
	}
}

// fold absorbs one span emission.
func (ur *unitRollup) fold(kind string, iter int, d float64, bytes, flops int64) {
	c, ok := ur.aggs[aggKey{kind, iter}]
	if !ok {
		c = &aggCell{}
		ur.aggs[aggKey{kind, iter}] = c
		ur.keys = append(ur.keys, aggKey{kind, iter})
	}
	c.count++
	c.seconds += d
	c.bytes += bytes
	c.flops += flops
	c.hist.Observe(d)

	p, ok := ur.phases[iter]
	if !ok {
		p = &PhaseSeconds{}
		ur.phases[iter] = p
	}
	p.add(kind, d)
	ur.total.add(kind, d)
}

// iterPhases returns the unit's per-iteration phase breakdown — from
// the online rollup when aggregating, by folding the retained spans
// otherwise. Both paths perform the same additions in the same order.
// The returned map is owned by the caller in span mode and shared in
// rollup mode; treat it as read-only.
func (u *Unit) iterPhases() map[int]*PhaseSeconds {
	if u.rollup != nil {
		return u.rollup.phases
	}
	m := make(map[int]*PhaseSeconds)
	for _, s := range u.spans {
		p, ok := m[s.Iter]
		if !ok {
			p = &PhaseSeconds{}
			m[s.Iter] = p
		}
		p.add(s.Kind, s.Duration())
	}
	return m
}

// totalPhases returns the unit's whole-run phase breakdown, with the
// same mode-independent bit-exactness as iterPhases.
func (u *Unit) totalPhases() PhaseSeconds {
	if u.rollup != nil {
		return u.rollup.total
	}
	var p PhaseSeconds
	for _, s := range u.spans {
		p.add(s.Kind, s.Duration())
	}
	return p
}

// cells returns the unit's (kind, iter) aggregates in (iter, kind)
// order — from the rollup state when aggregating, by folding the
// retained spans otherwise. The fold visits spans in emission order,
// so the sums are bit-identical across modes; key order comes from
// the first-emission sequence (never a map walk) and is then sorted
// under a total order over the distinct keys.
func (u *Unit) cells() ([]aggKey, map[aggKey]*aggCell) {
	var aggs map[aggKey]*aggCell
	var keys []aggKey
	if u.rollup != nil {
		aggs = u.rollup.aggs
		keys = append(keys, u.rollup.keys...)
	} else {
		aggs = make(map[aggKey]*aggCell)
		for _, s := range u.spans {
			c, ok := aggs[aggKey{s.Kind, s.Iter}]
			if !ok {
				c = &aggCell{}
				aggs[aggKey{s.Kind, s.Iter}] = c
				keys = append(keys, aggKey{s.Kind, s.Iter})
			}
			c.count++
			c.seconds += s.Duration()
			c.bytes += s.Bytes
			c.flops += s.Flops
			c.hist.Observe(s.Duration())
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].iter != keys[j].iter {
			return keys[i].iter < keys[j].iter
		}
		return keys[i].kind < keys[j].kind
	})
	return keys, aggs
}
