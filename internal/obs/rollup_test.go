package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"regexp"
	"testing"
)

// driveSynthetic emits an identical span workload into any recorder:
// three ranks with skewed compute (rank/2 is the straggler), two
// fine-grained CPE units in distinct CGs, a marker track, recovery
// work outside iterations, and run counters. Every emission path of
// the Unit API is exercised — Record, RecordCost, Begin/End, SetIter,
// Finish — so mode-equivalence tests cover the whole surface.
func driveSynthetic(r *Recorder) {
	for g := 0; g < 3; g++ {
		u := r.Unit(fmt.Sprintf("rank/%d", g))
		t := 0.0
		for it := 0; it < 2; it++ {
			u.SetIter(it)
			d := 0.5 + 0.1*float64(g)
			u.Record(KindCompute, t, t+d, 0, 1000)
			t += d
			u.Record(KindDMA, t, t+0.25, 256, 0)
			t += 0.25
			sec := u.Begin(t)
			u.End(sec, KindMPI+"allreduce", t+0.125, 64, 0)
			t += 0.125
		}
		u.SetIter(-1)
		u.Record(KindCheckpoint, t, t+0.1, 32, 0)
		t += 0.1
		// Finish past the cursor: the trailing gap becomes an "other"
		// filler, which must fold like any other span.
		u.Finish(t + 0.05)
	}
	for i := 0; i < 2; i++ {
		u := r.Unit(fmt.Sprintf("cg%d/cpe/%d", i, i))
		u.SetIter(0)
		u.RecordCost(0, 0.5, 0.25, 0.125, 100, 200, 300)
	}
	m := r.Unit(IterUnit)
	m.Record(KindIter, 0, 1, 0, 0)
	r.AddCounter("sched:dispatches", 42)
	r.AddCounter("sched:dispatches", 8)
	r.MaxCounter("sched:max_queue_depth", 7)
	r.MaxCounter("sched:max_queue_depth", 5)
}

func TestRollupRetainsNoSpans(t *testing.T) {
	r := NewRollupRecorder()
	if !r.Rollup() {
		t.Fatal("NewRollupRecorder().Rollup() = false")
	}
	driveSynthetic(r)
	for _, u := range r.Units() {
		if n := len(u.Spans()); n != 0 {
			t.Errorf("unit %s retained %d spans in rollup mode", u.Name(), n)
		}
	}
}

// TestRollupMatchesSummarize is the equivalence contract: the two
// recorder modes produce bit-identical derived tables — not merely
// close — because they perform the same additions in the same order.
func TestRollupMatchesSummarize(t *testing.T) {
	span, roll := NewRecorder(), NewRollupRecorder()
	driveSynthetic(span)
	driveSynthetic(roll)

	if got, want := Summarize(roll), Summarize(span); !reflect.DeepEqual(got, want) {
		t.Errorf("Summarize diverges across modes:\nrollup: %+v\nspan:   %+v", got, want)
	}
	if got, want := UnitTotals(roll), UnitTotals(span); !reflect.DeepEqual(got, want) {
		t.Errorf("UnitTotals diverges across modes:\nrollup: %+v\nspan:   %+v", got, want)
	}

	var pSpan, pRoll bytes.Buffer
	if err := WriteProfileJSON(&pSpan, span); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfileJSON(&pRoll, roll); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pSpan.Bytes(), pRoll.Bytes()) {
		t.Errorf("profile JSON diverges across modes:\nspan:\n%s\nrollup:\n%s", pSpan.String(), pRoll.String())
	}

	var aSpan, aRoll bytes.Buffer
	if err := WriteAggregateTrace(&aSpan, span, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteAggregateTrace(&aRoll, roll, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aSpan.Bytes(), aRoll.Bytes()) {
		t.Error("aggregate trace diverges across modes")
	}
}

func TestProfileExportDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		r := NewRollupRecorder()
		driveSynthetic(r)
		var p, f, a bytes.Buffer
		if err := WriteProfileJSON(&p, r); err != nil {
			t.Fatal(err)
		}
		if err := WriteFolded(&f, BuildProfile(r)); err != nil {
			t.Fatal(err)
		}
		if err := WriteAggregateTrace(&a, r, 3); err != nil {
			t.Fatal(err)
		}
		return p.String(), f.String(), a.String()
	}
	p1, f1, a1 := render()
	p2, f2, a2 := render()
	if p1 != p2 {
		t.Error("profile JSON not byte-deterministic")
	}
	if f1 != f2 {
		t.Error("folded stacks not byte-deterministic")
	}
	if a1 != a2 {
		t.Error("aggregate trace not byte-deterministic")
	}
	if !json.Valid([]byte(p1)) || !json.Valid([]byte(a1)) {
		t.Error("JSON exports do not parse")
	}
}

func TestProfileContents(t *testing.T) {
	r := NewRollupRecorder()
	driveSynthetic(r)
	p := BuildProfile(r)
	if p.Schema != ProfileSchema {
		t.Errorf("schema %q", p.Schema)
	}
	// 3 ranks + 2 cpe units; the marker track is excluded.
	if p.Units != 5 {
		t.Errorf("units = %d, want 5", p.Units)
	}
	if p.Iters != 2 {
		t.Errorf("iters = %d, want 2", p.Iters)
	}
	var classes []string
	for _, c := range p.Classes {
		classes = append(classes, c.Class)
	}
	if !reflect.DeepEqual(classes, []string{"cg/cpe", "rank"}) {
		t.Errorf("classes = %v", classes)
	}
	// Entries are (class, iter, kind)-sorted and their counts cover
	// every span: 3 ranks × (2 iters × 3 kinds + checkpoint + other).
	var rankSpans uint64
	prev := ProfileEntry{Iter: -2}
	for _, e := range p.Entries {
		if e.Class == "rank" {
			rankSpans += e.Count
		}
		if e.Class == prev.Class && (e.Iter < prev.Iter || (e.Iter == prev.Iter && e.Kind <= prev.Kind)) {
			t.Errorf("entries out of order at %+v after %+v", e, prev)
		}
		if e.Class != prev.Class {
			prev = ProfileEntry{Iter: -2}
		} else {
			prev = e
		}
		if e.Count == 0 {
			t.Errorf("empty cell %+v", e)
		}
		var histN uint64
		for _, c := range e.Hist {
			histN += c
		}
		if histN != e.Count {
			t.Errorf("cell %s/%d/%s: hist holds %d, count %d", e.Class, e.Iter, e.Kind, histN, e.Count)
		}
	}
	if rankSpans != 3*(2*3+2) {
		t.Errorf("rank class covers %d spans, want %d", rankSpans, 3*(2*3+2))
	}
	// The straggler table leads with the slowest rank.
	if len(p.TopUnits) == 0 || p.TopUnits[0].Unit != "rank/2" {
		t.Errorf("top unit = %+v, want rank/2 first", p.TopUnits)
	}
	// Counters: accumulated, high-watered, name-sorted.
	want := []Counter{
		{Name: "sched:dispatches", Value: 50},
		{Name: "sched:max_queue_depth", Value: 7},
	}
	if !reflect.DeepEqual(p.Counters, want) {
		t.Errorf("counters = %+v, want %+v", p.Counters, want)
	}
}

func TestUnitClass(t *testing.T) {
	cases := map[string]string{
		"rank/12":    "rank",
		"cpe/3":      "cpe",
		"cg1/cpe/7":  "cg/cpe",
		"iterations": "iterations",
		"7":          "unit",
		"":           "unit",
	}
	for in, want := range cases {
		if got := UnitClass(in); got != want {
			t.Errorf("UnitClass(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountersNilSafe(t *testing.T) {
	var r *Recorder
	r.AddCounter("x", 1)
	r.MaxCounter("x", 1)
	if c := r.Counters(); c != nil {
		t.Errorf("nil recorder counters = %v", c)
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	r := NewRollupRecorder()
	driveSynthetic(r)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, BuildProfile(r)); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^[a-z/]+;iter:-?\d+;[a-z:]+ \d+$`)
	for _, l := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		if !line.Match(l) {
			t.Errorf("folded line %q does not match the format", l)
		}
	}
}

func TestAggregateTraceShape(t *testing.T) {
	r := NewRollupRecorder()
	driveSynthetic(r)
	var buf bytes.Buffer
	const topK = 2
	if err := WriteAggregateTrace(&buf, r, topK); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
			Args *struct {
				Count uint64 `json:"count"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var lanes, spans int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			lanes++
		case "X":
			spans++
			if ev.Args == nil || ev.Args.Count == 0 {
				t.Errorf("aggregate span %q has no count", ev.Name)
			}
		}
	}
	// 2 classes + topK straggler lanes.
	if lanes != 2+topK {
		t.Errorf("%d lanes, want %d", lanes, 2+topK)
	}
	if spans == 0 {
		t.Error("no aggregate spans")
	}
}
