// Chrome trace-event export. The format is the subset of the Trace
// Event Format that Perfetto and chrome://tracing load: one
// "traceEvents" array of complete events (ph "X") with microsecond
// timestamps, plus thread_name metadata events (ph "M") naming each
// unit's track. See docs/OBSERVABILITY.md for the schema and how to
// open the file.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// usPerSecond converts virtual seconds to the trace format's
// microsecond timestamps.
const usPerSecond = 1e6

// TraceEvent is one entry of the exported traceEvents array. Fields
// marshal in declaration order, which is what makes the export
// byte-stable.
type TraceEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat,omitempty"`
	Ph   string    `json:"ph"`
	Ts   float64   `json:"ts"`
	Dur  *float64  `json:"dur,omitempty"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Args *SpanArgs `json:"args,omitempty"`
}

// SpanArgs annotates a span event with its iteration and modelled
// traffic.
type SpanArgs struct {
	Iter  int   `json:"iter"`
	Bytes int64 `json:"bytes"`
	Flops int64 `json:"flops"`
}

// TrackArgs is the args payload of a thread_name metadata event.
type TrackArgs struct {
	Name string `json:"name"`
}

// WriteTraceEvents writes the recorder's spans as a Chrome
// trace-event JSON document: one track (tid) per unit in natural name
// order, all under one process.
func WriteTraceEvents(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	put := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	for tid, u := range r.Units() {
		meta := struct {
			Name string    `json:"name"`
			Ph   string    `json:"ph"`
			Pid  int       `json:"pid"`
			Tid  int       `json:"tid"`
			Args TrackArgs `json:"args"`
		}{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid, Args: TrackArgs{Name: u.Name()}}
		if err := put(meta); err != nil {
			return err
		}
		for _, s := range u.Spans() {
			dur := s.Duration() * usPerSecond
			ev := TraceEvent{
				Name: s.Kind,
				Cat:  PhaseClass(s.Kind),
				Ph:   "X",
				Ts:   s.Start * usPerSecond,
				Dur:  &dur,
				Pid:  0,
				Tid:  tid,
				Args: &SpanArgs{Iter: s.Iter, Bytes: s.Bytes, Flops: s.Flops},
			}
			if err := put(ev); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flushing trace export: %w", err)
	}
	return nil
}

// jsonlSpan is the "span" line of the metrics JSONL export.
type jsonlSpan struct {
	Type  string  `json:"type"`
	Unit  string  `json:"unit"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Iter  int     `json:"iter"`
	Bytes int64   `json:"bytes"`
	Flops int64   `json:"flops"`
}

// jsonlRankIter is the per-(unit, iteration) phase-seconds line.
type jsonlRankIter struct {
	Type     string  `json:"type"`
	Unit     string  `json:"unit"`
	Iter     int     `json:"iter"`
	Compute  float64 `json:"compute_seconds"`
	DMA      float64 `json:"dma_seconds"`
	Reg      float64 `json:"regcomm_seconds"`
	MPI      float64 `json:"mpi_seconds"`
	Recovery float64 `json:"recovery_seconds"`
	Other    float64 `json:"other_seconds"`
	Total    float64 `json:"total_seconds"`
}

// jsonlIter is the derived per-iteration line: critical path and load
// imbalance across units.
type jsonlIter struct {
	Type         string  `json:"type"`
	Iter         int     `json:"iter"`
	MaxSeconds   float64 `json:"max_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	Imbalance    float64 `json:"imbalance"`
	CriticalUnit string  `json:"critical_unit"`
}

// WriteMetricsJSONL writes the structured event log: every span as a
// "span" line, then the per-iteration per-unit phase table as
// "rank_iter" lines, then the derived per-iteration critical-path and
// imbalance stats as "iter" lines. Line order is deterministic.
func WriteMetricsJSONL(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, u := range r.Units() {
		for _, s := range u.Spans() {
			line := jsonlSpan{
				Type: "span", Unit: u.Name(), Kind: s.Kind,
				Start: s.Start, End: s.End, Iter: s.Iter,
				Bytes: s.Bytes, Flops: s.Flops,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	m := Summarize(r)
	for _, row := range m.Ranks {
		line := jsonlRankIter{
			Type: "rank_iter", Unit: row.Unit, Iter: row.Iter,
			Compute: row.Phases.Compute, DMA: row.Phases.DMA,
			Reg: row.Phases.Reg, MPI: row.Phases.MPI,
			Recovery: row.Phases.Recovery, Other: row.Phases.Other,
			Total: row.Phases.Total(),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, it := range m.Iters {
		line := jsonlIter{
			Type: "iter", Iter: it.Iter,
			MaxSeconds: it.MaxSeconds, MeanSeconds: it.MeanSeconds,
			Imbalance: it.Imbalance, CriticalUnit: it.CriticalUnit,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flushing metrics export: %w", err)
	}
	return nil
}
