// Chrome trace-event export. The format is the subset of the Trace
// Event Format that Perfetto and chrome://tracing load: one
// "traceEvents" array of complete events (ph "X") with microsecond
// timestamps, plus thread_name metadata events (ph "M") naming each
// unit's track. See docs/OBSERVABILITY.md for the schema and how to
// open the file.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// usPerSecond converts virtual seconds to the trace format's
// microsecond timestamps.
const usPerSecond = 1e6

// TraceEvent is one entry of the exported traceEvents array. Fields
// marshal in declaration order, which is what makes the export
// byte-stable.
type TraceEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat,omitempty"`
	Ph   string    `json:"ph"`
	Ts   float64   `json:"ts"`
	Dur  *float64  `json:"dur,omitempty"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Args *SpanArgs `json:"args,omitempty"`
}

// SpanArgs annotates a span event with its iteration and modelled
// traffic. Count is only set by the aggregate export, where one event
// stands for many folded spans; omitempty keeps the full export's
// bytes unchanged.
type SpanArgs struct {
	Iter  int    `json:"iter"`
	Bytes int64  `json:"bytes"`
	Flops int64  `json:"flops"`
	Count uint64 `json:"count,omitempty"`
}

// TrackArgs is the args payload of a thread_name metadata event.
type TrackArgs struct {
	Name string `json:"name"`
}

// traceDoc streams one trace-event JSON document: the enclosing
// object, comma placement, and the final flush.
type traceDoc struct {
	bw    *bufio.Writer
	first bool
}

func startTraceDoc(w io.Writer) (*traceDoc, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return nil, err
	}
	return &traceDoc{bw: bw, first: true}, nil
}

func (td *traceDoc) put(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if !td.first {
		if _, err := td.bw.WriteString(",\n"); err != nil {
			return err
		}
	}
	td.first = false
	_, err = td.bw.Write(b)
	return err
}

// track emits the thread_name metadata event naming a tid's lane.
func (td *traceDoc) track(tid int, name string) error {
	meta := struct {
		Name string    `json:"name"`
		Ph   string    `json:"ph"`
		Pid  int       `json:"pid"`
		Tid  int       `json:"tid"`
		Args TrackArgs `json:"args"`
	}{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid, Args: TrackArgs{Name: name}}
	return td.put(meta)
}

func (td *traceDoc) finish() error {
	if _, err := td.bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	if err := td.bw.Flush(); err != nil {
		return fmt.Errorf("obs: flushing trace export: %w", err)
	}
	return nil
}

// WriteTraceEvents writes the recorder's spans as a Chrome
// trace-event JSON document: one track (tid) per unit in natural name
// order, all under one process. On a rollup recorder the raw spans no
// longer exist; use WriteAggregateTrace there.
func WriteTraceEvents(w io.Writer, r *Recorder) error {
	td, err := startTraceDoc(w)
	if err != nil {
		return err
	}
	for tid, u := range r.Units() {
		if err := td.track(tid, u.Name()); err != nil {
			return err
		}
		for _, s := range u.Spans() {
			dur := s.Duration() * usPerSecond
			ev := TraceEvent{
				Name: s.Kind,
				Cat:  PhaseClass(s.Kind),
				Ph:   "X",
				Ts:   s.Start * usPerSecond,
				Dur:  &dur,
				Pid:  0,
				Tid:  tid,
				Args: &SpanArgs{Iter: s.Iter, Bytes: s.Bytes, Flops: s.Flops},
			}
			if err := td.put(ev); err != nil {
				return err
			}
		}
	}
	return td.finish()
}

// WriteAggregateTrace writes the browser-viewable aggregate form of a
// trace: one rollup lane per unit class (the class's per-iteration
// per-kind mean), then the topK straggler units by total virtual
// seconds as individual lanes. Lanes are profile lanes, not
// timelines: each (iteration, kind) aggregate renders as one event
// whose duration is the aggregated seconds, laid out back to back in
// (iteration, kind) order, so a 4,096-rank run opens as a handful of
// readable tracks instead of 4,096. Works on both recorder modes and
// is byte-deterministic.
func WriteAggregateTrace(w io.Writer, r *Recorder, topK int) error {
	if topK <= 0 {
		topK = 8
	}
	pd := buildProfileData(r)
	td, err := startTraceDoc(w)
	if err != nil {
		return err
	}
	tid := 0
	// Class rollup lanes, classes in sorted order as in the profile.
	for _, ct := range pd.p.Classes {
		if err := td.track(tid, fmt.Sprintf("agg:%s (mean of %d)", ct.Class, ct.Units)); err != nil {
			return err
		}
		cursor := 0.0
		n := int64(ct.Units)
		for _, e := range pd.p.Entries {
			if e.Class != ct.Class {
				continue
			}
			dur := e.Seconds / float64(n) * usPerSecond
			ev := TraceEvent{
				Name: e.Kind, Cat: PhaseClass(e.Kind), Ph: "X",
				Ts: cursor, Dur: &dur, Pid: 0, Tid: tid,
				Args: &SpanArgs{Iter: e.Iter, Bytes: e.Bytes / n, Flops: e.Flops / n, Count: e.Count},
			}
			if err := td.put(ev); err != nil {
				return err
			}
			cursor += dur
		}
		tid++
	}
	// Straggler lanes: the topK units by total seconds. The profile
	// already ranked every unit (stable, natural-order ties), but only
	// retains ProfileTopUnits rows; re-rank here so topK beyond that
	// cap still works.
	ranked := append([]unitCellData(nil), pd.units...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].total.Total() > ranked[j].total.Total() })
	if topK > len(ranked) {
		topK = len(ranked)
	}
	for _, ud := range ranked[:topK] {
		if err := td.track(tid, "top:"+ud.name); err != nil {
			return err
		}
		cursor := 0.0
		for _, k := range ud.keys {
			c := ud.aggs[k]
			dur := c.seconds * usPerSecond
			ev := TraceEvent{
				Name: k.kind, Cat: PhaseClass(k.kind), Ph: "X",
				Ts: cursor, Dur: &dur, Pid: 0, Tid: tid,
				Args: &SpanArgs{Iter: k.iter, Bytes: c.bytes, Flops: c.flops, Count: c.count},
			}
			if err := td.put(ev); err != nil {
				return err
			}
			cursor += dur
		}
		tid++
	}
	return td.finish()
}

// jsonlSpan is the "span" line of the metrics JSONL export.
type jsonlSpan struct {
	Type  string  `json:"type"`
	Unit  string  `json:"unit"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Iter  int     `json:"iter"`
	Bytes int64   `json:"bytes"`
	Flops int64   `json:"flops"`
}

// jsonlRankIter is the per-(unit, iteration) phase-seconds line.
type jsonlRankIter struct {
	Type     string  `json:"type"`
	Unit     string  `json:"unit"`
	Iter     int     `json:"iter"`
	Compute  float64 `json:"compute_seconds"`
	DMA      float64 `json:"dma_seconds"`
	Reg      float64 `json:"regcomm_seconds"`
	MPI      float64 `json:"mpi_seconds"`
	Recovery float64 `json:"recovery_seconds"`
	Other    float64 `json:"other_seconds"`
	Total    float64 `json:"total_seconds"`
}

// jsonlIter is the derived per-iteration line: critical path and load
// imbalance across units.
type jsonlIter struct {
	Type         string  `json:"type"`
	Iter         int     `json:"iter"`
	MaxSeconds   float64 `json:"max_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	Imbalance    float64 `json:"imbalance"`
	CriticalUnit string  `json:"critical_unit"`
}

// WriteMetricsJSONL writes the structured event log: every span as a
// "span" line, then the per-iteration per-unit phase table as
// "rank_iter" lines, then the derived per-iteration critical-path and
// imbalance stats as "iter" lines. Line order is deterministic.
func WriteMetricsJSONL(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, u := range r.Units() {
		for _, s := range u.Spans() {
			line := jsonlSpan{
				Type: "span", Unit: u.Name(), Kind: s.Kind,
				Start: s.Start, End: s.End, Iter: s.Iter,
				Bytes: s.Bytes, Flops: s.Flops,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	m := Summarize(r)
	for _, row := range m.Ranks {
		line := jsonlRankIter{
			Type: "rank_iter", Unit: row.Unit, Iter: row.Iter,
			Compute: row.Phases.Compute, DMA: row.Phases.DMA,
			Reg: row.Phases.Reg, MPI: row.Phases.MPI,
			Recovery: row.Phases.Recovery, Other: row.Phases.Other,
			Total: row.Phases.Total(),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, it := range m.Iters {
		line := jsonlIter{
			Type: "iter", Iter: it.Iter,
			MaxSeconds: it.MaxSeconds, MeanSeconds: it.MeanSeconds,
			Imbalance: it.Imbalance, CriticalUnit: it.CriticalUnit,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flushing metrics export: %w", err)
	}
	return nil
}
