package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleRecorder builds a small two-unit recorder with a marker track.
func sampleRecorder() *Recorder {
	r := NewRecorder()
	a := r.Unit("rank/0")
	a.SetIter(0)
	a.Record(KindCompute, 0, 1, 0, 100)
	a.Record(KindMPI+"allreduce", 1, 1.5, 64, 0)
	b := r.Unit("rank/1")
	b.SetIter(0)
	b.Record(KindDMA, 0, 0.5, 32, 0)
	b.Finish(1.5)
	it := r.Unit(IterUnit)
	it.SetIter(0)
	it.Record(KindIter, 0, 1.5, 0, 0)
	return r
}

func TestWriteTraceEventsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// Unit order is natural: iterations, rank/0, rank/1 -> tids 0,1,2.
	// Each track opens with a thread_name metadata event.
	metas, complete := 0, 0
	names := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("metadata event named %q", ev.Name)
			}
			names[ev.Tid] = ev.Args["name"].(string)
			metas++
		case "X":
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
			if _, ok := ev.Args["iter"]; !ok {
				t.Errorf("span %q missing iter arg", ev.Name)
			}
			complete++
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if metas != 3 {
		t.Errorf("got %d thread_name events, want 3", metas)
	}
	if complete != 5 {
		t.Errorf("got %d complete events, want 5", complete)
	}
	if names[0] != IterUnit || names[1] != "rank/0" || names[2] != "rank/1" {
		t.Errorf("track names = %v", names)
	}
	// Microsecond conversion: rank/0's compute span is 1s = 1e6 us.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == KindCompute && ev.Tid == 1 {
			found = true
			if ev.Dur != 1e6 {
				t.Errorf("compute dur = %g us, want 1e6", ev.Dur)
			}
			if ev.Cat != PhaseCompute {
				t.Errorf("compute cat = %q", ev.Cat)
			}
		}
	}
	if !found {
		t.Error("rank/0 compute span not exported")
	}
}

func TestExportsDeterministic(t *testing.T) {
	// Two identically-built recorders export byte-identical documents,
	// regardless of map iteration order inside the recorder.
	var t1, t2, m1, m2 bytes.Buffer
	if err := WriteTraceEvents(&t1, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceEvents(&t2, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("trace exports differ between identical recorders")
	}
	if err := WriteMetricsJSONL(&m1, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSONL(&m2, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Error("metrics exports differ between identical recorders")
	}
}

func TestWriteMetricsJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsJSONL(&buf, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %q is not JSON: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		counts[typ]++
		switch typ {
		case "span":
			for _, k := range []string{"unit", "kind", "start", "end", "iter", "bytes", "flops"} {
				if _, ok := line[k]; !ok {
					t.Errorf("span line missing %q: %v", k, line)
				}
			}
		case "rank_iter":
			for _, k := range []string{"unit", "iter", "compute_seconds", "dma_seconds", "regcomm_seconds", "mpi_seconds", "recovery_seconds", "other_seconds", "total_seconds"} {
				if _, ok := line[k]; !ok {
					t.Errorf("rank_iter line missing %q: %v", k, line)
				}
			}
		case "iter":
			for _, k := range []string{"iter", "max_seconds", "mean_seconds", "imbalance", "critical_unit"} {
				if _, ok := line[k]; !ok {
					t.Errorf("iter line missing %q: %v", k, line)
				}
			}
		default:
			t.Errorf("unknown line type %q", typ)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 4 spans from the units (incl. rank/1's Finish filler) + 1 marker
	// span; one rank_iter row per unit and iteration; 1 iter line.
	if counts["span"] != 5 {
		t.Errorf("span lines = %d, want 5", counts["span"])
	}
	if counts["iter"] != 1 {
		t.Errorf("iter lines = %d, want 1", counts["iter"])
	}
	if counts["rank_iter"] == 0 {
		t.Error("no rank_iter lines")
	}
}
