// Package obs is the span-level observability layer of the simulator:
// a deterministic recording of where virtual time goes, per simulated
// unit, per iteration, per phase. Every unit — a CG rank in the
// large-scale engines, a CPE in the fine-grained substrates — owns one
// Unit and appends typed spans (compute, dma, regcomm, mpi:<op>,
// checkpoint, restore, replan, redo) carrying virtual start/end times,
// modelled bytes and flops. Exporters turn the spans into a
// Chrome-trace/Perfetto JSON file, a JSONL metrics log and an ASCII
// timeline (see export.go, metrics.go, timeline.go).
//
// Two invariants make the data trustworthy:
//
//   - Tiling: a Unit's spans partition [0, T] with no gaps and no
//     overlaps. Uninstrumented clock advances surface as explicit
//     "other" filler spans, so per-unit durations sum to the unit's
//     final virtual-clock time exactly — unattributed time is visible
//     instead of silently missing.
//   - Determinism: spans carry only vclock timestamps and each Unit is
//     appended to by one goroutine at a time (handoff through the
//     run's WaitGroup), so identical runs produce byte-identical
//     exports regardless of host scheduling.
//
// Everything is nil-safe: a nil *Recorder or *Unit turns every method
// into a no-op, so instrumented hot paths cost one pointer test when
// observability is off.
package obs

import (
	"sort"
	"sync"
)

// Span kinds. MPI collectives use KindMPI + the operation name
// ("mpi:barrier", "mpi:allreduce", ...); PhaseClass folds them back
// into one phase.
const (
	KindCompute    = "compute"
	KindDMA        = "dma"
	KindReg        = "regcomm"
	KindCheckpoint = "checkpoint"
	KindRestore    = "restore"
	KindReplan     = "replan"
	KindRedo       = "redo"
	KindIter       = "iter"
	KindOther      = "other"

	// KindMPI prefixes every MPI collective span kind.
	KindMPI = "mpi:"
)

// IterUnit is the name of the marker track rank 0 of the epoch loop
// records iteration, checkpoint and redo boundaries on. It is not a
// simulated unit, so metrics and tiling checks exclude it.
const IterUnit = "iterations"

// Span is one typed interval of a unit's virtual time line.
type Span struct {
	Kind  string
	Start float64 // virtual seconds
	End   float64 // virtual seconds, >= Start
	Iter  int     // owning iteration, -1 for setup/recovery work
	Bytes int64   // modelled bytes moved, 0 when not a transfer
	Flops int64   // modelled flops, 0 when not compute
}

// Duration returns the span's extent in virtual seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Unit records the span time line of one simulated unit. A Unit is
// confined to the goroutine currently simulating the unit; ownership
// may move between epochs because the runs' WaitGroups order the
// handoff.
//
// A Unit belonging to a rollup recorder (NewRollupRecorder) keeps no
// spans: every emission folds online into the bounded per-(kind, iter)
// aggregates of rollup.go, in exactly the order the spans would have
// been appended, so the derived tables are bit-identical to the
// span-retaining mode.
type Unit struct {
	name   string
	iter   int
	depth  int // nesting depth of open Begin sections
	cursor float64
	spans  []Span

	// Rollup-mode state; nil in the span-retaining mode.
	rollup *unitRollup
}

// Name returns the unit's export name.
func (u *Unit) Name() string {
	if u == nil {
		return ""
	}
	return u.name
}

// Spans returns the recorded time line. The slice is owned by the
// Unit; callers must not mutate it.
func (u *Unit) Spans() []Span {
	if u == nil {
		return nil
	}
	return u.spans
}

// EndTime returns the latest virtual time the time line covers.
func (u *Unit) EndTime() float64 {
	if u == nil {
		return 0
	}
	return u.cursor
}

// SetIter labels subsequently recorded spans with the given iteration
// (-1 for setup and recovery work outside any iteration).
func (u *Unit) SetIter(iter int) {
	if u == nil {
		return
	}
	u.iter = iter
}

// Mark is the receipt of a Begin, closed by the matching End. Passing
// it by value keeps Begin/End allocation-free.
type Mark struct {
	active bool
	start  float64
}

// Begin opens a section at virtual time now. Sections nest: only the
// outermost one emits a span, so a composite operation (a Split built
// on an allgather, a checkpoint wrapping collectives) claims its whole
// range once instead of double-counting the inner steps.
func (u *Unit) Begin(now float64) Mark {
	if u == nil {
		return Mark{}
	}
	u.depth++
	return Mark{active: u.depth == 1, start: now}
}

// End closes a section opened by Begin. The outermost section records
// one span of the given kind from its start to now; nested sections
// only unwind the depth.
func (u *Unit) End(m Mark, kind string, now float64, bytes, flops int64) {
	if u == nil {
		return
	}
	if u.depth > 0 {
		u.depth--
	}
	if m.active {
		u.emit(kind, m.start, now, bytes, flops)
	}
}

// Record emits one standalone span. Inside an open section it is a
// no-op — the section will claim the range.
func (u *Unit) Record(kind string, start, end float64, bytes, flops int64) {
	if u == nil || u.depth > 0 {
		return
	}
	u.emit(kind, start, end, bytes, flops)
}

// RecordCost emits the closed-form per-iteration cost triple of the
// coarse engines as three consecutive spans — DMA read, compute,
// register communication — starting at start, matching how the cost
// model serializes the phases when it charges the clock.
func (u *Unit) RecordCost(start, read, compute, reg float64, dmaBytes, regBytes, flops int64) {
	if u == nil || u.depth > 0 {
		return
	}
	t := start
	u.emit(KindDMA, t, t+read, dmaBytes, 0)
	t += read
	u.emit(KindCompute, t, t+compute, 0, flops)
	t += compute
	u.emit(KindReg, t, t+reg, regBytes, 0)
}

// Finish extends the time line to the unit's final virtual time,
// surfacing any trailing uninstrumented advance as an "other" span.
func (u *Unit) Finish(now float64) {
	if u == nil {
		return
	}
	if now > u.cursor {
		u.record(KindOther, u.cursor, now, 0, 0)
		u.cursor = now
	}
}

// emit appends a span, maintaining the tiling invariant: a gap between
// the cursor and start becomes an explicit "other" filler span, a
// start behind the cursor is clipped forward (the overlap was already
// attributed), and the cursor advances to the span's end.
func (u *Unit) emit(kind string, start, end float64, bytes, flops int64) {
	if start > u.cursor {
		u.record(KindOther, u.cursor, start, 0, 0)
		u.cursor = start
	} else {
		start = u.cursor
	}
	if end < start {
		end = start
	}
	if end > start || bytes != 0 || flops != 0 {
		u.record(kind, start, end, bytes, flops)
		u.cursor = end
	}
}

// record lands one finalized span: appended in the span-retaining
// mode, folded into the online aggregates in rollup mode. Both paths
// see the identical sequence of (kind, duration) emissions, which is
// what makes the two modes' derived tables bit-identical.
func (u *Unit) record(kind string, start, end float64, bytes, flops int64) {
	if u.rollup != nil {
		u.rollup.fold(kind, u.iter, end-start, bytes, flops)
		return
	}
	u.spans = append(u.spans, Span{Kind: kind, Start: start, End: end, Iter: u.iter, Bytes: bytes, Flops: flops})
}

// Recorder owns the units of one observed run. Unit lookup is safe
// from concurrent rank goroutines; the recorded spans themselves are
// only read after the run's goroutines joined.
type Recorder struct {
	mu       sync.Mutex
	units    map[string]*Unit  // guarded by mu
	counters map[string]uint64 // guarded by mu
	rollup   bool
}

// NewRecorder returns an empty span-retaining recorder.
func NewRecorder() *Recorder {
	return &Recorder{units: make(map[string]*Unit)}
}

// NewRollupRecorder returns a recorder in streaming-aggregation mode:
// units fold every span online into bounded per-(kind, iteration)
// aggregates — count, seconds, bytes, flops, and a log2 duration
// histogram — instead of retaining it. Memory is O(units × kinds ×
// iterations) regardless of span count, which is what lets a
// 4,096-rank discrete-event run stay observable. Raw-span consumers
// (WriteTraceEvents full mode, Lanes) see empty timelines; the
// derived tables (Summarize, UnitTotals, BuildProfile) are
// bit-identical to the span-retaining mode.
func NewRollupRecorder() *Recorder {
	return &Recorder{units: make(map[string]*Unit), rollup: true}
}

// Rollup reports whether the recorder aggregates online instead of
// retaining spans. A nil recorder reports false.
func (r *Recorder) Rollup() bool {
	return r != nil && r.rollup
}

// Unit returns the unit with the given name, creating it on first use.
// A nil recorder returns a nil unit, whose methods all no-op.
func (r *Recorder) Unit(name string) *Unit {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.units[name]
	if !ok {
		u = &Unit{name: name, iter: -1}
		if r.rollup {
			u.rollup = newUnitRollup()
		}
		r.units[name] = u
	}
	return u
}

// AddCounter accumulates a named whole-run counter (scheduler parks,
// event-queue dispatches, ...) into the recorder. Counters ride along
// in the exported profile; they are not spans and have no time line.
// Nil-safe and callable from any goroutine.
func (r *Recorder) AddCounter(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]uint64)
	}
	r.counters[name] += v
}

// MaxCounter folds a named counter as a running maximum instead of a
// sum — the right combination for high-water marks like queue depth.
// Nil-safe and callable from any goroutine.
func (r *Recorder) MaxCounter(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]uint64)
	}
	if v > r.counters[name] {
		r.counters[name] = v
	}
}

// Counters returns the recorded counters sorted by name.
func (r *Recorder) Counters() []Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Counter, 0, len(names))
	for _, name := range names {
		out = append(out, Counter{Name: name, Value: r.counters[name]})
	}
	return out
}

// Units returns all units in natural name order ("rank/2" before
// "rank/10"), the canonical export order. Call only after the
// observed runs completed.
func (r *Recorder) Units() []*Unit {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Sort names, not units: sort.Strings fixes a canonical base order,
	// and the stable natural sort on top of it breaks natural ties
	// ("rank/01" vs "rank/1") the same way every run — naturalLess
	// alone is not a total order over distinct names.
	names := make([]string, 0, len(r.units))
	for name := range r.units {
		names = append(names, name)
	}
	sort.Strings(names)
	sort.SliceStable(names, func(i, j int) bool { return naturalLess(names[i], names[j]) })
	out := make([]*Unit, 0, len(names))
	for _, name := range names {
		out = append(out, r.units[name])
	}
	return out
}

// naturalLess orders strings with embedded decimal runs numerically,
// so unit names sort the way humans number ranks.
func naturalLess(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		if isDigit(a[0]) && isDigit(b[0]) {
			an, arest := splitNum(a)
			bn, brest := splitNum(b)
			if an != bn {
				return an < bn
			}
			a, b = arest, brest
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// splitNum splits a leading decimal run off s and returns its value
// and the remainder.
func splitNum(s string) (uint64, string) {
	var n uint64
	i := 0
	for i < len(s) && isDigit(s[i]) {
		n = n*10 + uint64(s[i]-'0')
		i++
	}
	return n, s[i:]
}
