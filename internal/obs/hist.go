// A fixed-bucket log2 histogram of durations, shared by the rollup
// recorder (virtual-second span durations) and the serving layer's
// wall-clock latency metrics. The bucket layout is static — powers of
// two of a nanosecond — so histograms from different runs, units and
// processes merge by plain bucket-wise addition and export with a
// stable schema. Everything is pure arithmetic on the value: no
// clocks, no randomness, byte-deterministic.
package obs

import "math"

// NumHistBuckets is the fixed bucket count. Bucket i covers durations
// in (2^(i-1), 2^i] nanoseconds (bucket 0 takes everything at or
// below one nanosecond, the last bucket everything above its lower
// bound — about 292 years, i.e. effectively +Inf).
const NumHistBuckets = 64

// histBase is the upper bound of bucket 0 in seconds: one nanosecond.
const histBase = 1e-9

// Histogram counts observations in fixed log2 buckets and tracks
// their exact sum. The zero value is ready to use. It is a plain
// value type: callers that share one across goroutines guard it
// themselves (see internal/serve's Metrics).
type Histogram struct {
	Counts [NumHistBuckets]uint64
	Sum    float64
}

// HistBucket returns the bucket index for a duration in seconds.
func HistBucket(v float64) int {
	if v <= histBase || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v/histBase, 1) {
		// The ratio overflowed (v within a factor of 1e9 of the float64
		// max); Frexp would report exponent 0 for +Inf.
		return NumHistBuckets - 1
	}
	// v/histBase = frac * 2^exp with frac in [0.5, 1): the smallest
	// power of two at or above the ratio is 2^(exp-1) exactly when the
	// ratio is itself a power of two, 2^exp otherwise.
	frac, exp := math.Frexp(v / histBase)
	i := exp
	//swlint:ignore float-eq -- Frexp is exact: frac == 0.5 identifies a ratio that is exactly a power of two, which belongs in the lower bucket by the (lo, hi] bucket convention
	if frac == 0.5 {
		i = exp - 1
	}
	if i < 0 {
		return 0
	}
	if i >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return i
}

// HistBucketUpper returns bucket i's inclusive upper bound in seconds
// (+Inf for the last bucket).
func HistBucketUpper(i int) float64 {
	if i >= NumHistBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(histBase, i)
}

// Observe adds one duration (in seconds) to the histogram.
func (h *Histogram) Observe(v float64) {
	h.Counts[HistBucket(v)]++
	h.Sum += v
}

// Add merges another histogram into h bucket-wise.
func (h *Histogram) Add(o *Histogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound on the q-th quantile (q in [0, 1]):
// the upper bound of the bucket holding the ceil(q*total)-th smallest
// observation. The estimate is exact to within one log2 bucket — a
// factor of two — which is the histogram's resolution by design. An
// empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i == NumHistBuckets-1 {
				// The overflow bucket has no finite upper bound; report its
				// lower one rather than +Inf.
				return math.Ldexp(histBase, i-1)
			}
			return HistBucketUpper(i)
		}
	}
	return HistBucketUpper(NumHistBuckets - 1)
}
