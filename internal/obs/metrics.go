// Per-phase metrics derived from the raw spans: the paper's Section IV
// decomposition — compute, DMA, register communication, MPI — plus the
// recovery machinery, per unit and per iteration, with the critical
// path (slowest unit) and the load imbalance (max/mean) of every
// iteration.
package obs

import (
	"sort"
	"strings"
)

// Phase classes returned by PhaseClass.
const (
	PhaseCompute  = "compute"
	PhaseDMA      = "dma"
	PhaseReg      = "regcomm"
	PhaseMPI      = "mpi"
	PhaseRecovery = "recovery"
	PhaseMarker   = "marker"
	PhaseOther    = "other"
)

// PhaseClass folds a span kind into its reporting phase: every
// "mpi:<op>" kind is PhaseMPI, the recovery kinds (checkpoint,
// restore, replan, redo) are PhaseRecovery, iteration markers are
// PhaseMarker, and unknown kinds report as PhaseOther rather than
// vanishing.
func PhaseClass(kind string) string {
	switch kind {
	case KindCompute:
		return PhaseCompute
	case KindDMA:
		return PhaseDMA
	case KindReg:
		return PhaseReg
	case KindCheckpoint, KindRestore, KindReplan, KindRedo:
		return PhaseRecovery
	case KindIter:
		return PhaseMarker
	}
	if strings.HasPrefix(kind, KindMPI) {
		return PhaseMPI
	}
	return PhaseOther
}

// PhaseSeconds is virtual time split by phase class.
type PhaseSeconds struct {
	Compute  float64
	DMA      float64
	Reg      float64
	MPI      float64
	Recovery float64
	Other    float64
}

// Total returns the summed virtual time across phases.
func (p PhaseSeconds) Total() float64 {
	return p.Compute + p.DMA + p.Reg + p.MPI + p.Recovery + p.Other
}

// add accumulates d seconds of the given span kind.
func (p *PhaseSeconds) add(kind string, d float64) {
	switch PhaseClass(kind) {
	case PhaseCompute:
		p.Compute += d
	case PhaseDMA:
		p.DMA += d
	case PhaseReg:
		p.Reg += d
	case PhaseMPI:
		p.MPI += d
	case PhaseRecovery:
		p.Recovery += d
	default:
		p.Other += d
	}
}

// Add merges another phase breakdown into p.
func (p *PhaseSeconds) Add(q PhaseSeconds) {
	p.Compute += q.Compute
	p.DMA += q.DMA
	p.Reg += q.Reg
	p.MPI += q.MPI
	p.Recovery += q.Recovery
	p.Other += q.Other
}

// RankIter is one unit's phase breakdown within one iteration. Iter
// -1 collects setup and recovery work outside any iteration.
type RankIter struct {
	Unit   string
	Iter   int
	Phases PhaseSeconds
}

// IterStat is the derived per-iteration summary across units: the
// critical path (the slowest unit's total), the mean, and the load
// imbalance max/mean.
type IterStat struct {
	Iter         int
	MaxSeconds   float64
	MeanSeconds  float64
	Imbalance    float64
	CriticalUnit string
}

// Metrics is the full derived table.
type Metrics struct {
	Ranks []RankIter
	Iters []IterStat
}

// Summarize derives the per-iteration per-unit metrics table from the
// recorder — folding retained spans, or reading the online aggregates
// of a rollup recorder; the two modes produce bit-identical tables
// because they perform the same additions in the same order. The
// marker track (IterUnit) is excluded — it annotates the timeline, it
// is not a simulated unit. Rows are ordered by iteration, then by
// natural unit name; iteration stats cover real iterations (iter >=
// 0) only.
func Summarize(r *Recorder) Metrics {
	type unitData struct {
		name   string
		phases map[int]*PhaseSeconds
	}
	var units []unitData
	var iterIDs []int
	seen := make(map[int]bool)
	for _, u := range r.Units() {
		if u.Name() == IterUnit {
			continue
		}
		ph := u.iterPhases()
		units = append(units, unitData{u.Name(), ph})
		for it := range ph {
			if !seen[it] {
				seen[it] = true
				iterIDs = append(iterIDs, it)
			}
		}
	}
	// Rows come out in iteration order, then unit order, by
	// construction: walk the sorted iteration set crossed with the
	// units in their recorded (natural) order, instead of repairing a
	// map walk with an after-the-fact sort.
	sort.Ints(iterIDs)
	var rows []RankIter
	for _, it := range iterIDs {
		for _, ud := range units {
			if p, ok := ud.phases[it]; ok {
				rows = append(rows, RankIter{Unit: ud.name, Iter: it, Phases: *p})
			}
		}
	}

	var iters []IterStat
	i := 0
	for i < len(rows) {
		j := i
		for j < len(rows) && rows[j].Iter == rows[i].Iter {
			j++
		}
		if rows[i].Iter >= 0 {
			st := IterStat{Iter: rows[i].Iter}
			sum := 0.0
			for _, row := range rows[i:j] {
				t := row.Phases.Total()
				sum += t
				if row.CriticalUnitLess(st) {
					st.MaxSeconds = t
					st.CriticalUnit = row.Unit
				}
			}
			st.MeanSeconds = sum / float64(j-i)
			if st.MeanSeconds > 0 {
				st.Imbalance = st.MaxSeconds / st.MeanSeconds
			}
			iters = append(iters, st)
		}
		i = j
	}
	return Metrics{Ranks: rows, Iters: iters}
}

// CriticalUnitLess reports whether this row beats the current
// critical-path candidate: strictly larger total wins; the first unit
// in natural order keeps ties deterministic.
func (row RankIter) CriticalUnitLess(st IterStat) bool {
	return st.CriticalUnit == "" || row.Phases.Total() > st.MaxSeconds
}

// UnitTotal is one unit's whole-run phase breakdown.
type UnitTotal struct {
	Unit   string
	Phases PhaseSeconds
}

// UnitTotals aggregates each unit's phase seconds over the whole run,
// in natural unit order, excluding the marker track. Like Summarize
// it is mode-independent: span-retaining and rollup recorders produce
// bit-identical totals.
func UnitTotals(r *Recorder) []UnitTotal {
	var out []UnitTotal
	for _, u := range r.Units() {
		if u.Name() == IterUnit {
			continue
		}
		out = append(out, UnitTotal{Unit: u.Name(), Phases: u.totalPhases()})
	}
	return out
}
