// Per-phase metrics derived from the raw spans: the paper's Section IV
// decomposition — compute, DMA, register communication, MPI — plus the
// recovery machinery, per unit and per iteration, with the critical
// path (slowest unit) and the load imbalance (max/mean) of every
// iteration.
package obs

import (
	"sort"
	"strings"
)

// Phase classes returned by PhaseClass.
const (
	PhaseCompute  = "compute"
	PhaseDMA      = "dma"
	PhaseReg      = "regcomm"
	PhaseMPI      = "mpi"
	PhaseRecovery = "recovery"
	PhaseMarker   = "marker"
	PhaseOther    = "other"
)

// PhaseClass folds a span kind into its reporting phase: every
// "mpi:<op>" kind is PhaseMPI, the recovery kinds (checkpoint,
// restore, replan, redo) are PhaseRecovery, iteration markers are
// PhaseMarker, and unknown kinds report as PhaseOther rather than
// vanishing.
func PhaseClass(kind string) string {
	switch kind {
	case KindCompute:
		return PhaseCompute
	case KindDMA:
		return PhaseDMA
	case KindReg:
		return PhaseReg
	case KindCheckpoint, KindRestore, KindReplan, KindRedo:
		return PhaseRecovery
	case KindIter:
		return PhaseMarker
	}
	if strings.HasPrefix(kind, KindMPI) {
		return PhaseMPI
	}
	return PhaseOther
}

// PhaseSeconds is virtual time split by phase class.
type PhaseSeconds struct {
	Compute  float64
	DMA      float64
	Reg      float64
	MPI      float64
	Recovery float64
	Other    float64
}

// Total returns the summed virtual time across phases.
func (p PhaseSeconds) Total() float64 {
	return p.Compute + p.DMA + p.Reg + p.MPI + p.Recovery + p.Other
}

// add accumulates d seconds of the given span kind.
func (p *PhaseSeconds) add(kind string, d float64) {
	switch PhaseClass(kind) {
	case PhaseCompute:
		p.Compute += d
	case PhaseDMA:
		p.DMA += d
	case PhaseReg:
		p.Reg += d
	case PhaseMPI:
		p.MPI += d
	case PhaseRecovery:
		p.Recovery += d
	default:
		p.Other += d
	}
}

// Add merges another phase breakdown into p.
func (p *PhaseSeconds) Add(q PhaseSeconds) {
	p.Compute += q.Compute
	p.DMA += q.DMA
	p.Reg += q.Reg
	p.MPI += q.MPI
	p.Recovery += q.Recovery
	p.Other += q.Other
}

// RankIter is one unit's phase breakdown within one iteration. Iter
// -1 collects setup and recovery work outside any iteration.
type RankIter struct {
	Unit   string
	Iter   int
	Phases PhaseSeconds
}

// IterStat is the derived per-iteration summary across units: the
// critical path (the slowest unit's total), the mean, and the load
// imbalance max/mean.
type IterStat struct {
	Iter         int
	MaxSeconds   float64
	MeanSeconds  float64
	Imbalance    float64
	CriticalUnit string
}

// Metrics is the full derived table.
type Metrics struct {
	Ranks []RankIter
	Iters []IterStat
}

// Summarize derives the per-iteration per-unit metrics table from the
// recorded spans. The marker track (IterUnit) is excluded — it
// annotates the timeline, it is not a simulated unit. Rows are
// ordered by iteration, then by natural unit name; iteration stats
// cover real iterations (iter >= 0) only.
func Summarize(r *Recorder) Metrics {
	type key struct {
		unit string
		iter int
	}
	totals := make(map[key]*PhaseSeconds)
	var names []string
	seen := make(map[int]bool)
	for _, u := range r.Units() {
		if u.Name() == IterUnit {
			continue
		}
		names = append(names, u.Name())
		for _, s := range u.Spans() {
			k := key{u.Name(), s.Iter}
			p, ok := totals[k]
			if !ok {
				p = &PhaseSeconds{}
				totals[k] = p
			}
			p.add(s.Kind, s.Duration())
			seen[s.Iter] = true
		}
	}
	// Rows come out in iteration order, then unit order, by
	// construction: walk the sorted iteration set crossed with the
	// units in their recorded (natural) order, instead of repairing a
	// map walk with an after-the-fact sort.
	iterIDs := make([]int, 0, len(seen))
	for it := range seen {
		iterIDs = append(iterIDs, it)
	}
	sort.Ints(iterIDs)
	rows := make([]RankIter, 0, len(totals))
	for _, it := range iterIDs {
		for _, name := range names {
			if p, ok := totals[key{name, it}]; ok {
				rows = append(rows, RankIter{Unit: name, Iter: it, Phases: *p})
			}
		}
	}

	var iters []IterStat
	i := 0
	for i < len(rows) {
		j := i
		for j < len(rows) && rows[j].Iter == rows[i].Iter {
			j++
		}
		if rows[i].Iter >= 0 {
			st := IterStat{Iter: rows[i].Iter}
			sum := 0.0
			for _, row := range rows[i:j] {
				t := row.Phases.Total()
				sum += t
				if row.CriticalUnitLess(st) {
					st.MaxSeconds = t
					st.CriticalUnit = row.Unit
				}
			}
			st.MeanSeconds = sum / float64(j-i)
			if st.MeanSeconds > 0 {
				st.Imbalance = st.MaxSeconds / st.MeanSeconds
			}
			iters = append(iters, st)
		}
		i = j
	}
	return Metrics{Ranks: rows, Iters: iters}
}

// CriticalUnitLess reports whether this row beats the current
// critical-path candidate: strictly larger total wins; the first unit
// in natural order keeps ties deterministic.
func (row RankIter) CriticalUnitLess(st IterStat) bool {
	return st.CriticalUnit == "" || row.Phases.Total() > st.MaxSeconds
}

// UnitTotal is one unit's whole-run phase breakdown.
type UnitTotal struct {
	Unit   string
	Phases PhaseSeconds
}

// UnitTotals aggregates each unit's phase seconds over the whole run,
// in natural unit order, excluding the marker track.
func UnitTotals(r *Recorder) []UnitTotal {
	var out []UnitTotal
	for _, u := range r.Units() {
		if u.Name() == IterUnit {
			continue
		}
		t := UnitTotal{Unit: u.Name()}
		for _, s := range u.Spans() {
			t.Phases.add(s.Kind, s.Duration())
		}
		out = append(out, t)
	}
	return out
}
