package obs

import "repro/internal/report"

// Lanes adapts the recorder's units to the ASCII timeline renderer:
// one lane per unit in natural name order, the marker track included
// so iteration boundaries are visible above the rank rows.
func Lanes(r *Recorder) []report.TimelineLane {
	var lanes []report.TimelineLane
	for _, u := range r.Units() {
		lane := report.TimelineLane{Name: u.Name()}
		for _, s := range u.Spans() {
			lane.Spans = append(lane.Spans, report.TimelineSpan{Start: s.Start, End: s.End, Kind: s.Kind})
		}
		lanes = append(lanes, lane)
	}
	return lanes
}
