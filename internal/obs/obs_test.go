package obs

import (
	"math"
	"testing"
)

// tilingError returns a non-empty description if the unit's spans do
// not partition [0, EndTime] contiguously.
func tilingError(u *Unit) string {
	cursor := 0.0
	for i, s := range u.Spans() {
		//swlint:ignore float-eq -- tiling carries exact timestamps forward; any drift is a bug
		if s.Start != cursor {
			return "span " + s.Kind + " starts off the cursor"
		}
		if s.End < s.Start {
			return "span " + s.Kind + " ends before it starts"
		}
		cursor = s.End
		_ = i
	}
	//swlint:ignore float-eq -- the final span end and EndTime are the same stored value
	if cursor != u.EndTime() {
		return "spans do not reach EndTime"
	}
	return ""
}

func TestUnitRecordTiling(t *testing.T) {
	r := NewRecorder()
	u := r.Unit("rank/0")
	u.Record(KindCompute, 0, 1, 0, 100)
	// Gap [1,2) must surface as an "other" filler.
	u.Record(KindDMA, 2, 3, 64, 0)
	// Start behind the cursor clips forward.
	u.Record(KindReg, 2.5, 4, 8, 0)
	// Zero-duration span with no payload is dropped.
	u.Record(KindCompute, 4, 4, 0, 0)
	// Zero-duration span with payload is kept.
	u.Record(KindReg, 4, 4, 16, 0)
	u.Finish(5)

	spans := u.Spans()
	kinds := make([]string, len(spans))
	for i, s := range spans {
		kinds[i] = s.Kind
	}
	want := []string{KindCompute, KindOther, KindDMA, KindReg, KindReg, KindOther}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if spans[3].Start != 3.0 || spans[3].End != 4.0 {
		t.Errorf("clipped span = [%g,%g], want [3,4]", spans[3].Start, spans[3].End)
	}
	if msg := tilingError(u); msg != "" {
		t.Errorf("tiling broken: %s", msg)
	}
	if u.EndTime() != 5.0 {
		t.Errorf("EndTime = %g, want 5", u.EndTime())
	}
	sum := 0.0
	for _, s := range spans {
		sum += s.Duration()
	}
	if math.Abs(sum-5.0) > 1e-12 {
		t.Errorf("durations sum to %g, want 5", sum)
	}
}

func TestBeginEndNesting(t *testing.T) {
	r := NewRecorder()
	u := r.Unit("rank/0")
	outer := u.Begin(0)
	inner := u.Begin(0.2)
	// Standalone records inside an open section are suppressed: the
	// section claims the whole range.
	u.Record(KindCompute, 0.3, 0.4, 0, 10)
	u.RecordCost(0.4, 0.1, 0.1, 0.1, 1, 1, 1)
	u.End(inner, KindMPI+"allgather", 0.8, 32, 0)
	u.End(outer, KindReplan, 1.0, 0, 0)
	spans := u.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (the outer section): %+v", len(spans), spans)
	}
	if spans[0].Kind != KindReplan || spans[0].Start != 0.0 || spans[0].End != 1.0 {
		t.Errorf("outer span = %+v, want replan [0,1]", spans[0])
	}
	// After the section closed, records work again.
	u.Record(KindCompute, 1, 2, 0, 5)
	if n := len(u.Spans()); n != 2 {
		t.Errorf("post-section record did not land: %d spans", n)
	}
}

func TestRecordCostTriple(t *testing.T) {
	r := NewRecorder()
	u := r.Unit("rank/1")
	u.RecordCost(0, 0.5, 0.25, 0.125, 100, 200, 300)
	spans := u.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	if spans[0].Kind != KindDMA || spans[0].Bytes != 100 {
		t.Errorf("span 0 = %+v, want dma with 100 bytes", spans[0])
	}
	if spans[1].Kind != KindCompute || spans[1].Flops != 300 {
		t.Errorf("span 1 = %+v, want compute with 300 flops", spans[1])
	}
	if spans[2].Kind != KindReg || spans[2].Bytes != 200 {
		t.Errorf("span 2 = %+v, want regcomm with 200 bytes", spans[2])
	}
	if got := u.EndTime(); math.Abs(got-0.875) > 1e-15 {
		t.Errorf("EndTime = %g, want 0.875", got)
	}
	if msg := tilingError(u); msg != "" {
		t.Errorf("tiling broken: %s", msg)
	}
}

func TestSetIterLabelsSpans(t *testing.T) {
	r := NewRecorder()
	u := r.Unit("rank/0")
	u.Record(KindCompute, 0, 1, 0, 0)
	u.SetIter(3)
	u.Record(KindCompute, 1, 2, 0, 0)
	u.SetIter(-1)
	u.Finish(3)
	spans := u.Spans()
	if spans[0].Iter != -1 || spans[1].Iter != 3 || spans[2].Iter != -1 {
		t.Errorf("iter labels = %d,%d,%d, want -1,3,-1", spans[0].Iter, spans[1].Iter, spans[2].Iter)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	u := r.Unit("anything")
	if u != nil {
		t.Fatal("nil recorder returned a unit")
	}
	// None of these may panic.
	m := u.Begin(0)
	u.End(m, KindCompute, 1, 0, 0)
	u.Record(KindDMA, 0, 1, 8, 0)
	u.RecordCost(0, 1, 1, 1, 1, 1, 1)
	u.SetIter(4)
	u.Finish(9)
	if u.Name() != "" || u.EndTime() != 0 || u.Spans() != nil {
		t.Error("nil unit leaked state")
	}
	if r.Units() != nil {
		t.Error("nil recorder returned units")
	}
}

func TestUnitsNaturalOrder(t *testing.T) {
	r := NewRecorder()
	for _, name := range []string{"rank/10", "cpe/2", "rank/2", "cpe/10", "iterations", "cg2/cpe/3", "cg10/cpe/3"} {
		r.Unit(name)
	}
	var got []string
	for _, u := range r.Units() {
		got = append(got, u.Name())
	}
	want := []string{"cg2/cpe/3", "cg10/cpe/3", "cpe/2", "cpe/10", "iterations", "rank/2", "rank/10"}
	if len(got) != len(want) {
		t.Fatalf("units = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("units = %v, want %v", got, want)
		}
	}
	// Same name returns the same unit.
	if r.Unit("rank/2") != r.Unit("rank/2") {
		t.Error("Unit is not idempotent per name")
	}
}

func TestPhaseClass(t *testing.T) {
	cases := map[string]string{
		KindCompute:      PhaseCompute,
		KindDMA:          PhaseDMA,
		KindReg:          PhaseReg,
		KindCheckpoint:   PhaseRecovery,
		KindRestore:      PhaseRecovery,
		KindReplan:       PhaseRecovery,
		KindRedo:         PhaseRecovery,
		KindIter:         PhaseMarker,
		KindOther:        PhaseOther,
		"mpi:allreduce":  PhaseMPI,
		"mpi:barrier":    PhaseMPI,
		"something-else": PhaseOther,
	}
	for kind, want := range cases {
		if got := PhaseClass(kind); got != want {
			t.Errorf("PhaseClass(%q) = %q, want %q", kind, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	a := r.Unit("rank/0")
	b := r.Unit("rank/1")
	// Marker track must not show up in the metrics.
	it := r.Unit(IterUnit)
	it.SetIter(0)
	it.Record(KindIter, 0, 3, 0, 0)

	a.SetIter(0)
	a.Record(KindCompute, 0, 1, 0, 10)
	a.Record(KindMPI+"allreduce", 1, 2, 8, 0)
	b.SetIter(0)
	b.Record(KindCompute, 0, 3, 0, 30)
	a.SetIter(1)
	a.Record(KindDMA, 2, 4, 64, 0)
	b.SetIter(1)
	b.Record(KindCompute, 3, 4, 0, 10)

	m := Summarize(r)
	if len(m.Ranks) != 4 {
		t.Fatalf("got %d rank rows, want 4: %+v", len(m.Ranks), m.Ranks)
	}
	// Ordered by iter then natural unit order.
	r0 := m.Ranks[0]
	if r0.Unit != "rank/0" || r0.Iter != 0 {
		t.Errorf("row 0 = %+v, want rank/0 iter 0", r0)
	}
	if math.Abs(r0.Phases.Compute-1) > 1e-12 || math.Abs(r0.Phases.MPI-1) > 1e-12 {
		t.Errorf("rank/0 iter0 phases = %+v", r0.Phases)
	}
	if len(m.Iters) != 2 {
		t.Fatalf("got %d iter stats, want 2: %+v", len(m.Iters), m.Iters)
	}
	it0 := m.Iters[0]
	// iter 0: rank/0 total 2, rank/1 total 3 -> max 3 on rank/1, mean 2.5.
	if it0.CriticalUnit != "rank/1" || math.Abs(it0.MaxSeconds-3) > 1e-12 {
		t.Errorf("iter0 critical = %+v", it0)
	}
	if math.Abs(it0.MeanSeconds-2.5) > 1e-12 || math.Abs(it0.Imbalance-1.2) > 1e-12 {
		t.Errorf("iter0 mean/imbalance = %+v", it0)
	}

	totals := UnitTotals(r)
	if len(totals) != 2 {
		t.Fatalf("got %d unit totals, want 2 (marker excluded): %+v", len(totals), totals)
	}
	if totals[0].Unit != "rank/0" || math.Abs(totals[0].Phases.Total()-4) > 1e-12 {
		t.Errorf("unit total 0 = %+v", totals[0])
	}
}
