// The aggregate profile: the recorder's data folded to per-(unit
// class, iteration, kind) cells with duration histograms, per-class
// totals, the top straggler units, and the run's counters. A profile
// is small regardless of scale — O(classes × iterations × kinds) plus
// a fixed number of straggler rows — which makes it the unit of
// exchange for run-over-run comparison (cmd/obsdiff), flamegraph
// rendering (WriteFolded) and the browser-viewable aggregate Perfetto
// export of 4,096-rank traces (WriteAggregateTrace). Every ordering
// is a pure function of the recorded data, so profiles of identical
// seeded runs are byte-identical, from either recorder mode.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ProfileSchema identifies the profile JSON document format.
const ProfileSchema = "swkm-profile/1"

// ProfileTopUnits is how many straggler units a profile retains, in
// descending order of total virtual seconds.
const ProfileTopUnits = 16

// Counter is one named whole-run counter (Recorder.AddCounter).
type Counter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// ProfilePhases is the JSON shape of a phase breakdown.
type ProfilePhases struct {
	Compute  float64 `json:"compute_seconds"`
	DMA      float64 `json:"dma_seconds"`
	Reg      float64 `json:"regcomm_seconds"`
	MPI      float64 `json:"mpi_seconds"`
	Recovery float64 `json:"recovery_seconds"`
	Other    float64 `json:"other_seconds"`
	Total    float64 `json:"total_seconds"`
}

func profilePhasesOf(p PhaseSeconds) ProfilePhases {
	return ProfilePhases{
		Compute: p.Compute, DMA: p.DMA, Reg: p.Reg, MPI: p.MPI,
		Recovery: p.Recovery, Other: p.Other, Total: p.Total(),
	}
}

// ProfileEntry is one aggregate cell: all spans of one kind in one
// iteration across the units of one class. Hist is the log2 duration
// histogram's bucket counts with trailing zeros trimmed (bucket i
// covers durations up to 2^i nanoseconds of virtual time).
type ProfileEntry struct {
	Class   string   `json:"class"`
	Iter    int      `json:"iter"`
	Kind    string   `json:"kind"`
	Count   uint64   `json:"count"`
	Seconds float64  `json:"seconds"`
	Bytes   int64    `json:"bytes,omitempty"`
	Flops   int64    `json:"flops,omitempty"`
	Hist    []uint64 `json:"hist"`
}

// ClassTotal is one unit class's whole-run footprint.
type ClassTotal struct {
	Class   string        `json:"class"`
	Units   int           `json:"units"`
	Seconds float64       `json:"seconds"`
	Phases  ProfilePhases `json:"phases"`
}

// UnitSummary is one unit's whole-run total — the straggler table row.
type UnitSummary struct {
	Unit    string        `json:"unit"`
	Class   string        `json:"class"`
	Seconds float64       `json:"seconds"`
	Phases  ProfilePhases `json:"phases"`
}

// Profile is the aggregate export document. Entries are ordered by
// (class, iter, kind); classes and counters by name; top units by
// descending seconds with natural-name tie-break.
type Profile struct {
	Schema   string         `json:"schema"`
	Units    int            `json:"units"`
	Iters    int            `json:"iters"`
	Classes  []ClassTotal   `json:"classes"`
	Entries  []ProfileEntry `json:"entries"`
	TopUnits []UnitSummary  `json:"top_units"`
	Counters []Counter      `json:"counters,omitempty"`
}

// UnitClass maps a unit name to its class by collapsing the numeric
// parts: "rank/12" → "rank", "cpe/3" → "cpe", "cg1/cpe/7" →
// "cg/cpe", "iterations" → "iterations".
func UnitClass(name string) string {
	segs := strings.Split(name, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		s = strings.TrimRight(s, "0123456789")
		if s == "" {
			continue
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return "unit"
	}
	return strings.Join(out, "/")
}

// unitCellData is one unit's aggregates, kept around for the per-unit
// consumers (straggler lanes in the aggregate trace).
type unitCellData struct {
	name  string
	class string
	total PhaseSeconds
	keys  []aggKey
	aggs  map[aggKey]*aggCell
}

// profileData is the shared intermediate of the profile consumers:
// the document plus the per-unit cells it was folded from, units in
// natural name order.
type profileData struct {
	p     *Profile
	units []unitCellData
}

// buildProfileData folds the recorder into a profile. The fold order
// is fixed — units in natural order, cells in (iter, kind) order — so
// the result is deterministic and identical across recorder modes.
func buildProfileData(r *Recorder) *profileData {
	type classAcc struct {
		units int
		total PhaseSeconds
		keys  []aggKey
		aggs  map[aggKey]*aggCell
	}
	classes := make(map[string]*classAcc)
	var classNames []string
	var units []unitCellData
	seenIters := make(map[int]bool)
	iters := 0

	for _, u := range r.Units() {
		if u.Name() == IterUnit {
			continue
		}
		keys, aggs := u.cells()
		ud := unitCellData{
			name: u.Name(), class: UnitClass(u.Name()),
			total: u.totalPhases(), keys: keys, aggs: aggs,
		}
		units = append(units, ud)
		ca, ok := classes[ud.class]
		if !ok {
			ca = &classAcc{aggs: make(map[aggKey]*aggCell)}
			classes[ud.class] = ca
			classNames = append(classNames, ud.class)
		}
		ca.units++
		ca.total.Add(ud.total)
		for _, k := range keys {
			cell, ok := ca.aggs[k]
			if !ok {
				cell = &aggCell{}
				ca.aggs[k] = cell
				ca.keys = append(ca.keys, k)
			}
			c := aggs[k]
			cell.count += c.count
			cell.seconds += c.seconds
			cell.bytes += c.bytes
			cell.flops += c.flops
			cell.hist.Add(&c.hist)
			if k.iter >= 0 && !seenIters[k.iter] {
				seenIters[k.iter] = true
				iters++
			}
		}
	}
	sort.Strings(classNames)

	p := &Profile{Schema: ProfileSchema, Units: len(units), Iters: iters}
	for _, name := range classNames {
		ca := classes[name]
		p.Classes = append(p.Classes, ClassTotal{
			Class: name, Units: ca.units,
			Seconds: ca.total.Total(), Phases: profilePhasesOf(ca.total),
		})
		keys := append([]aggKey(nil), ca.keys...)
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].iter != keys[j].iter {
				return keys[i].iter < keys[j].iter
			}
			return keys[i].kind < keys[j].kind
		})
		for _, k := range keys {
			c := ca.aggs[k]
			p.Entries = append(p.Entries, ProfileEntry{
				Class: name, Iter: k.iter, Kind: k.kind,
				Count: c.count, Seconds: c.seconds,
				Bytes: c.bytes, Flops: c.flops,
				Hist: trimHist(&c.hist),
			})
		}
	}

	tops := make([]UnitSummary, 0, len(units))
	for _, ud := range units {
		tops = append(tops, UnitSummary{
			Unit: ud.name, Class: ud.class,
			Seconds: ud.total.Total(), Phases: profilePhasesOf(ud.total),
		})
	}
	// Stable sort over the natural-order slice: equal totals keep
	// natural name order, so the straggler table is deterministic.
	sort.SliceStable(tops, func(i, j int) bool { return tops[i].Seconds > tops[j].Seconds })
	if len(tops) > ProfileTopUnits {
		tops = tops[:ProfileTopUnits]
	}
	p.TopUnits = tops
	p.Counters = r.Counters()
	return &profileData{p: p, units: units}
}

// BuildProfile folds the recorder's data into its aggregate profile.
// It works on both recorder modes and produces bit-identical profiles
// for the same run.
func BuildProfile(r *Recorder) *Profile {
	return buildProfileData(r).p
}

// trimHist returns the histogram's bucket counts with trailing zero
// buckets trimmed (the profile's compact wire form).
func trimHist(h *Histogram) []uint64 {
	last := -1
	for i, c := range h.Counts {
		if c != 0 {
			last = i
		}
	}
	out := make([]uint64, last+1)
	copy(out, h.Counts[:last+1])
	return out
}

// WriteProfileJSON writes the recorder's aggregate profile as one
// indented JSON document. Deterministic: identical seeded runs export
// byte-identically, from either recorder mode.
func WriteProfileJSON(w io.Writer, r *Recorder) error {
	buf, err := json.MarshalIndent(BuildProfile(r), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling profile: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("obs: writing profile: %w", err)
	}
	return nil
}

// WriteFolded writes the profile as folded stacks — the collapsed
// format flamegraph renderers consume: one "class;iter:<n>;<kind>
// <nanoseconds>" line per aggregate cell, in entry order. Virtual
// seconds become integer nanoseconds, the folded format's sample
// unit.
func WriteFolded(w io.Writer, p *Profile) error {
	for _, e := range p.Entries {
		ns := int64(math.Round(e.Seconds * 1e9))
		if _, err := fmt.Fprintf(w, "%s;iter:%d;%s %d\n", e.Class, e.Iter, e.Kind, ns); err != nil {
			return fmt.Errorf("obs: writing folded stacks: %w", err)
		}
	}
	return nil
}
