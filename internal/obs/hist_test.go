package obs

import (
	"math"
	"testing"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{1e-9, 0},     // exactly 1ns: bucket 0's upper bound
		{0.5e-9, 0},   // below base
		{2e-9, 1},     // exactly 2ns: (1, 2] → bucket 1
		{2.0001e-9, 2}, // just above 2ns → bucket 2
		{4e-9, 2},     // exactly 4ns
		{1e-6, 10},    // 1µs = 1000ns: 2^9=512 < 1000 <= 2^10=1024
		{1.0, 30},     // 1s = 1e9ns: 2^29 ≈ 5.4e8 < 1e9 <= 2^30 ≈ 1.07e9
		{math.MaxFloat64, NumHistBuckets - 1},
	}
	for _, c := range cases {
		if got := HistBucket(c.v); got != c.want {
			t.Errorf("HistBucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistBucketUpperContainsValue(t *testing.T) {
	// Every positive value must be at or below its bucket's upper
	// bound, and above the previous bucket's.
	for _, v := range []float64{1.5e-9, 3e-9, 1e-7, 4.2e-5, 0.003, 0.9, 17, 250} {
		i := HistBucket(v)
		if up := HistBucketUpper(i); v > up {
			t.Errorf("value %g above its bucket %d upper bound %g", v, i, up)
		}
		if i > 0 {
			if lo := HistBucketUpper(i - 1); v <= lo {
				t.Errorf("value %g not above bucket %d lower bound %g", v, i, lo)
			}
		}
	}
	if !math.IsInf(HistBucketUpper(NumHistBuckets-1), 1) {
		t.Error("last bucket upper bound is not +Inf")
	}
}

func TestHistogramObserveAddTotal(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 5; i++ {
		a.Observe(1e-6)
	}
	b.Observe(2.0)
	b.Observe(3.0)
	a.Add(&b)
	if got := a.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	if math.Abs(a.Sum-(5e-6+5.0)) > 1e-12 {
		t.Errorf("Sum = %g", a.Sum)
	}
	if a.Counts[10] != 5 {
		t.Errorf("1µs bucket holds %d, want 5", a.Counts[10])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	// 90 fast observations (1µs) and 10 slow (1s): p50 reports the
	// fast bucket's bound, p99 the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(1e-6)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	p50 := h.Quantile(0.50)
	if p50 != HistBucketUpper(HistBucket(1e-6)) {
		t.Errorf("p50 = %g, want the 1µs bucket bound", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 != HistBucketUpper(HistBucket(1.0)) {
		t.Errorf("p99 = %g, want the 1s bucket bound", p99)
	}
	if q := h.Quantile(0); q != p50 || q > p99 {
		// q=0 clamps to the first observation's bucket.
		if q != HistBucketUpper(HistBucket(1e-6)) {
			t.Errorf("q=0 quantile = %g", q)
		}
	}
	// The overflow bucket reports its lower bound, not +Inf.
	var o Histogram
	o.Observe(math.MaxFloat64)
	if q := o.Quantile(1); math.IsInf(q, 1) {
		t.Error("overflow-bucket quantile is +Inf")
	}
}
