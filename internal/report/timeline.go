package report

import (
	"fmt"
	"io"
	"strings"
)

// TimelineSpan is one typed interval on a timeline lane, in virtual
// seconds.
type TimelineSpan struct {
	Start, End float64
	Kind       string
}

// TimelineLane is one row of the ASCII timeline: a named unit and its
// span time line in ascending, non-overlapping order.
type TimelineLane struct {
	Name  string
	Spans []TimelineSpan
}

// timelineGlyphs maps span kinds to the single character that paints
// a timeline cell. MPI collectives share one glyph regardless of the
// operation.
var timelineGlyphs = map[string]byte{
	"compute":    'C',
	"dma":        'D',
	"regcomm":    'R',
	"checkpoint": 'K',
	"restore":    'S',
	"replan":     'P',
	"redo":       'X',
	"iter":       'I',
	"other":      '.',
}

// KindGlyph returns the timeline character for a span kind.
func KindGlyph(kind string) byte {
	if g, ok := timelineGlyphs[kind]; ok {
		return g
	}
	if strings.HasPrefix(kind, "mpi:") {
		return 'M'
	}
	return '?'
}

// timelineLegend is printed under every timeline so the glyphs read
// without consulting the docs.
const timelineLegend = "C compute  D dma  R regcomm  M mpi  K checkpoint  S restore  P replan  X redo  I iter  . other"

// RenderTimeline paints one character row per lane over a shared
// virtual-time axis of the given width: each column covers an equal
// time slice and shows the glyph of the span kind occupying the
// largest share of that slice (a space when nothing covers it).
func RenderTimeline(w io.Writer, title string, lanes []TimelineLane, width int) error {
	if width < 8 {
		width = 8
	}
	tmax := 0.0
	nameW := 4
	for _, l := range lanes {
		if len(l.Name) > nameW {
			nameW = len(l.Name)
		}
		for _, s := range l.Spans {
			if s.End > tmax {
				tmax = s.End
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if tmax <= 0 {
		b.WriteString("(empty timeline)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	dt := tmax / float64(width)
	fmt.Fprintf(&b, "virtual time 0 .. %s, %s per column\n", formatSeconds(tmax), formatSeconds(dt))
	for _, l := range lanes {
		row := paintLane(l.Spans, tmax, width)
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, l.Name, row)
	}
	fmt.Fprintf(&b, "%s\n", timelineLegend)
	_, err := io.WriteString(w, b.String())
	return err
}

// paintLane fills one row: per column, the glyph of the kind covering
// the largest share of the column's time slice.
func paintLane(spans []TimelineSpan, tmax float64, width int) string {
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	cover := make(map[string]float64)
	dt := tmax / float64(width)
	si := 0
	for col := 0; col < width; col++ {
		lo := float64(col) * dt
		hi := lo + dt
		// Spans and columns both advance in time order: drop spans that
		// ended before this column.
		for si < len(spans) && spans[si].End <= lo {
			si++
		}
		for k := range cover {
			delete(cover, k)
		}
		bestKind, bestCov := "", 0.0
		for j := si; j < len(spans) && spans[j].Start < hi; j++ {
			s := spans[j]
			a, z := s.Start, s.End
			if a < lo {
				a = lo
			}
			if z > hi {
				z = hi
			}
			if z <= a {
				continue
			}
			cover[s.Kind] += z - a
			if cover[s.Kind] > bestCov {
				bestKind, bestCov = s.Kind, cover[s.Kind]
			}
		}
		if bestCov > 0 {
			row[col] = KindGlyph(bestKind)
		}
	}
	return string(row)
}
