package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindGlyph(t *testing.T) {
	cases := map[string]byte{
		"compute":       'C',
		"dma":           'D',
		"regcomm":       'R',
		"checkpoint":    'K',
		"restore":       'S',
		"replan":        'P',
		"redo":          'X',
		"iter":          'I',
		"other":         '.',
		"mpi:allreduce": 'M',
		"mpi:barrier":   'M',
		"mystery":       '?',
	}
	for kind, want := range cases {
		if got := KindGlyph(kind); got != want {
			t.Errorf("KindGlyph(%q) = %c, want %c", kind, got, want)
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, "title", nil, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty timeline)") {
		t.Errorf("empty render = %q", buf.String())
	}
}

func TestRenderTimelineRows(t *testing.T) {
	lanes := []TimelineLane{
		{Name: "rank/0", Spans: []TimelineSpan{
			{Start: 0, End: 5, Kind: "compute"},
			{Start: 5, End: 10, Kind: "mpi:allreduce"},
		}},
		{Name: "rank/1", Spans: []TimelineSpan{
			{Start: 0, End: 10, Kind: "dma"},
		}},
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, "test timeline", lanes, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, axis, two lanes, legend.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "virtual time 0 ..") {
		t.Errorf("axis line = %q", lines[1])
	}
	if want := "rank/0 |CCCCCMMMMM|"; lines[2] != want {
		t.Errorf("lane 0 = %q, want %q", lines[2], want)
	}
	if want := "rank/1 |DDDDDDDDDD|"; lines[3] != want {
		t.Errorf("lane 1 = %q, want %q", lines[3], want)
	}
	if !strings.Contains(lines[4], "C compute") || !strings.Contains(lines[4], "M mpi") {
		t.Errorf("legend = %q", lines[4])
	}
}

func TestRenderTimelineDominantKindPerColumn(t *testing.T) {
	// One 4-wide timeline over [0,4): the second column [1,2) is 60%
	// compute, 40% dma, so compute paints it.
	lanes := []TimelineLane{{Name: "u", Spans: []TimelineSpan{
		{Start: 0, End: 1.6, Kind: "compute"},
		{Start: 1.6, End: 4, Kind: "dma"},
	}}}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, "", lanes, 4); err != nil {
		t.Fatal(err)
	}
	// Width is clamped up to 8; columns of 0.5s each: compute dominates
	// the first four (through t=1.6 covering 0.1 of column [1.5,2)...
	// dma covers 0.4), dma the rest.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "u ") {
			if want := "u    |CCCDDDDD|"; line != want {
				t.Errorf("lane = %q, want %q", line, want)
			}
		}
	}
}
