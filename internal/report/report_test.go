package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "time")
	tb.AddRow("short", 0.5)
	tb.AddRow("a-much-longer-name", 12.5)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "name", "time", "500.00ms", "12.500s", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Alignment: header line and data lines have the name column padded
	// to the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
	idxHeader := strings.Index(lines[1], "time")
	idxRow := strings.Index(lines[3], "500.00ms")
	if idxHeader != idxRow {
		t.Errorf("columns misaligned: header at %d, row at %d\n%s", idxHeader, idxRow, out)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5e-7, "0.5us"},
		{0.0005, "500.0us"},
		{0.25, "250.00ms"},
		{1.5, "1.500s"},
		{250, "250.0s"},
	}
	for _, c := range cases {
		if got := formatSeconds(c.in); got != c.want {
			t.Errorf("formatSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddStringRow(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddStringRow("x", "y")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Error("string row lost")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddStringRow("plain", `quote"and,comma`)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"quote\"\"and,comma\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar(5,10,10) = %q", got)
	}
	if got := Bar(0.001, 10, 10); got != "#" {
		t.Errorf("tiny positive value should show one mark, got %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("overflow should clamp, got %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("zero max should render empty, got %q", got)
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Errorf("zero value should render empty, got %q", got)
	}
}
