package report

import (
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	ch := NewChart("demo", []string{"1", "2", "4", "8"}, 8)
	if err := ch.Add(ChartSeries{Name: "up", Marker: '*', Y: []float64{1, 2, 4, 8}}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Add(ChartSeries{Name: "down", Marker: 'o', Y: []float64{8, 4, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "*", "o", "* = up", "o = down", "+-"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Monotone series: the '*' in the first column must be below the
	// '*' in the last column.
	lines := strings.Split(out, "\n")
	firstStar, lastStar := -1, -1
	for i, l := range lines {
		if idx := strings.IndexByte(l, '*'); idx >= 0 && !strings.Contains(l, "=") {
			if firstStar == -1 && idx < 20 {
				firstStar = i
			}
		}
	}
	for i, l := range lines {
		if strings.Contains(l, "=") {
			continue
		}
		if idx := strings.LastIndexByte(l, '*'); idx > 20 {
			lastStar = i
			break
		}
	}
	if firstStar >= 0 && lastStar >= 0 && lastStar >= firstStar {
		t.Errorf("increasing series not drawn upward (first at line %d, last at %d)", firstStar, lastStar)
	}
}

func TestChartLogScale(t *testing.T) {
	ch := NewChart("log", []string{"a", "b", "c"}, 6).LogY()
	if err := ch.Add(ChartSeries{Name: "s", Y: []float64{1, 100, 10000}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1e+04") {
		t.Errorf("log axis label missing:\n%s", b.String())
	}
}

func TestChartMissingPoints(t *testing.T) {
	ch := NewChart("gaps", []string{"a", "b"}, 5)
	if err := ch.Add(ChartSeries{Name: "s", Y: []float64{math.NaN(), 2}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestChartValidation(t *testing.T) {
	ch := NewChart("", []string{"a"}, 0)
	if err := ch.Add(ChartSeries{Name: "bad", Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched series accepted")
	}
	var b strings.Builder
	if err := ch.Render(&b); err == nil {
		t.Error("empty chart rendered")
	}
	if err := ch.Add(ChartSeries{Name: "nan", Y: []float64{math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Render(&b); err == nil {
		t.Error("chart with no drawable points rendered")
	}
}

func TestChartDefaultMarkersAndOverlap(t *testing.T) {
	ch := NewChart("", []string{"a"}, 4)
	if err := ch.Add(ChartSeries{Name: "one", Y: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Add(ChartSeries{Name: "two", Y: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "&") {
		t.Errorf("overlap marker missing:\n%s", b.String())
	}
}
