// Package report renders the tables and figure series that the
// benchmark harnesses print: fixed-width text tables (aligned like the
// paper's tables) and x/value series with one row per operating point,
// plus CSV emission for plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatSeconds(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddStringRow appends a row of preformatted cells.
func (t *Table) AddStringRow(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// formatSeconds renders a duration in seconds with sensible precision.
func formatSeconds(v float64) string {
	switch {
	//swlint:ignore float-eq -- exact zero picks the "0" rendering; near-zero durations format via the branches below
	case v == 0:
		return "0"
	case v < 0.001:
		return fmt.Sprintf("%.1fus", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	case v < 100:
		return fmt.Sprintf("%.3fs", v)
	default:
		return fmt.Sprintf("%.1fs", v)
	}
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (headers first).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// Bar renders a proportional ASCII bar for quick visual comparison of
// series values in terminal output.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 && value > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}
