package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ChartSeries is one curve of an ASCII chart: a name, a marker rune
// and y values aligned with the shared x labels (NaN marks a missing
// point, e.g. an infeasible configuration).
type ChartSeries struct {
	Name   string
	Marker byte
	Y      []float64
}

// Chart renders one or more series sharing x positions as an ASCII
// scatter chart with a y axis, for quick visual inspection of figure
// shapes in terminal output.
type Chart struct {
	title   string
	xLabels []string
	series  []ChartSeries
	height  int
	logY    bool
}

// NewChart creates a chart with the shared x labels. height is the
// number of plot rows (minimum 4; default 16 when zero).
func NewChart(title string, xLabels []string, height int) *Chart {
	if height == 0 {
		height = 16
	}
	if height < 4 {
		height = 4
	}
	return &Chart{title: title, xLabels: xLabels, height: height}
}

// LogY switches the y axis to log scale (positive values only; points
// at or below zero are dropped).
func (c *Chart) LogY() *Chart {
	c.logY = true
	return c
}

// Add appends a series, which must have one y value per x label.
func (c *Chart) Add(s ChartSeries) error {
	if len(s.Y) != len(c.xLabels) {
		return fmt.Errorf("report: series %q has %d points for %d x labels", s.Name, len(s.Y), len(c.xLabels))
	}
	if s.Marker == 0 {
		s.Marker = "*+ox#@"[len(c.series)%6]
	}
	c.series = append(c.series, s)
	return nil
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 || len(c.xLabels) == 0 {
		return fmt.Errorf("report: empty chart")
	}
	transform := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		if c.logY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, v := range s.Y {
			if tv, ok := transform(v); ok {
				lo = math.Min(lo, tv)
				hi = math.Max(hi, tv)
			}
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: chart has no drawable points")
	}
	//swlint:ignore float-eq -- exact equality detects a flat series; the axis is widened by a full unit either way
	if hi == lo {
		hi = lo + 1
	}

	const colWidth = 6
	width := len(c.xLabels) * colWidth
	grid := make([][]byte, c.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(c.height-1)))
		return c.height - 1 - r
	}
	for _, s := range c.series {
		for xi, v := range s.Y {
			tv, ok := transform(v)
			if !ok {
				continue
			}
			col := xi*colWidth + colWidth/2
			r := row(tv)
			if grid[r][col] == ' ' {
				grid[r][col] = s.Marker
			} else if grid[r][col] != s.Marker {
				grid[r][col] = '&' // overlapping series
			}
		}
	}

	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	inv := func(r int) float64 {
		frac := float64(c.height-1-r) / float64(c.height-1)
		v := lo + frac*(hi-lo)
		if c.logY {
			return math.Pow(10, v)
		}
		return v
	}
	for r := 0; r < c.height; r++ {
		label := ""
		if r == 0 || r == c.height-1 || r == c.height/2 {
			label = fmt.Sprintf("%10.3g", inv(r))
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	// X labels, truncated to the column width.
	fmt.Fprintf(&b, "%10s  ", "")
	for _, xl := range c.xLabels {
		if len(xl) > colWidth-1 {
			xl = xl[:colWidth-1]
		}
		fmt.Fprintf(&b, "%-*s", colWidth, xl)
	}
	b.WriteByte('\n')
	for _, s := range c.series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", s.Marker, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
