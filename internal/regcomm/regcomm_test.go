package regcomm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/trace"
)

func spec() *machine.Spec { return machine.MustSpec(1) }

func TestModelCosts(t *testing.T) {
	m := NewModel(spec())
	if m.P2PTime(0) != spec().BW.RegLatency {
		t.Errorf("P2PTime(0) = %g, want pure latency", m.P2PTime(0))
	}
	if m.P2PTime(100) <= m.P2PTime(10) {
		t.Error("P2PTime must grow with payload")
	}
	if m.StepTime(-5) != m.StepTime(0) {
		t.Error("negative elems should clamp to zero payload")
	}
	if got, want := m.AllReduceTime(64), 6*m.StepTime(64); got != want {
		t.Errorf("AllReduceTime = %g, want %g", got, want)
	}
	if got, want := m.LineReduceTime(64), 3*m.StepTime(64); got != want {
		t.Errorf("LineReduceTime = %g, want %g", got, want)
	}
	if got, want := m.LineBroadcastTime(64), 3*m.StepTime(64); got != want {
		t.Errorf("LineBroadcastTime = %g, want %g", got, want)
	}
}

func TestMeshGeometry(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	var mu sync.Mutex
	seen := make(map[int][2]int)
	mesh.Run(func(c *CPE) {
		mu.Lock()
		seen[c.ID()] = [2]int{c.Row(), c.Col()}
		mu.Unlock()
	})
	if len(seen) != machine.CPEsPerCG {
		t.Fatalf("ran %d CPEs, want %d", len(seen), machine.CPEsPerCG)
	}
	for id, rc := range seen {
		if rc[0] != id/8 || rc[1] != id%8 {
			t.Errorf("CPE %d at row/col %v, want %d/%d", id, rc, id/8, id%8)
		}
	}
}

func TestSendRecvRowBus(t *testing.T) {
	mesh := NewMesh(spec(), trace.NewStats())
	var got []float64
	var gotInts []int64
	mesh.Run(func(c *CPE) {
		switch c.ID() {
		case 0:
			if err := c.Send(3, []float64{1.5, 2.5}, []int64{7}); err != nil {
				t.Errorf("Send: %v", err)
			}
		case 3:
			data, ints, err := c.Recv(0)
			if err != nil {
				t.Errorf("Recv: %v", err)
			}
			got, gotInts = data, ints
		}
	})
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Errorf("payload = %v", got)
	}
	if len(gotInts) != 1 || gotInts[0] != 7 {
		t.Errorf("ints = %v", gotInts)
	}
}

func TestSendRejectsDiagonal(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	mesh.Run(func(c *CPE) {
		if c.ID() != 0 {
			return
		}
		// CPE 0 (row 0, col 0) to CPE 9 (row 1, col 1): no shared bus.
		if err := c.Send(9, []float64{1}, nil); err == nil {
			t.Error("diagonal send must be rejected")
		}
		// Column bus to CPE 8 (row 1, col 0) is legal but unreceived
		// here; just validate the bus check path separately.
		if err := c.Send(-1, nil, nil); err == nil {
			t.Error("out-of-range send must be rejected")
		}
		if err := c.Send(0, nil, nil); err == nil {
			t.Error("self send must be rejected")
		}
	})
}

func TestRecvRejectsBadSource(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	mesh.Run(func(c *CPE) {
		if c.ID() != 0 {
			return
		}
		if _, _, err := c.Recv(-1); err == nil {
			t.Error("Recv(-1) must fail")
		}
		if _, _, err := c.Recv(64); err == nil {
			t.Error("Recv(64) must fail")
		}
	})
}

func TestRecvInterleavedSenders(t *testing.T) {
	// CPE 0 receives from two row neighbours in a fixed order even if
	// messages arrive interleaved; held messages must be redelivered.
	mesh := NewMesh(spec(), nil)
	var first, second []float64
	mesh.Run(func(c *CPE) {
		switch c.ID() {
		case 1:
			_ = c.Send(0, []float64{11}, nil)
		case 2:
			_ = c.Send(0, []float64{22}, nil)
		case 0:
			// Deliberately receive in reverse of the likely arrival.
			d2, _, err := c.Recv(2)
			if err != nil {
				t.Errorf("Recv(2): %v", err)
			}
			d1, _, err := c.Recv(1)
			if err != nil {
				t.Errorf("Recv(1): %v", err)
			}
			first, second = d2, d1
		}
	})
	if len(first) != 1 || first[0] != 22 {
		t.Errorf("from 2: %v", first)
	}
	if len(second) != 1 || second[0] != 11 {
		t.Errorf("from 1: %v", second)
	}
}

func TestClockReconciliation(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	var recvTime float64
	mesh.Run(func(c *CPE) {
		switch c.ID() {
		case 0:
			c.Clock().Advance(1.0) // sender is late
			_ = c.Send(1, []float64{1}, nil)
		case 1:
			_, _, _ = c.Recv(0)
			recvTime = c.Clock().Now()
		}
	})
	if recvTime < 1.0 {
		t.Errorf("receive completed at %g, before the send was issued", recvTime)
	}
}

func TestAllReduceSumsEverywhere(t *testing.T) {
	mesh := NewMesh(spec(), trace.NewStats())
	results := make([][]float64, machine.CPEsPerCG)
	countRes := make([][]int64, machine.CPEsPerCG)
	tEnd := mesh.Run(func(c *CPE) {
		buf := []float64{float64(c.ID()), 1}
		cnt := []int64{int64(c.ID() % 4)}
		if err := c.AllReduce(buf, cnt); err != nil {
			t.Errorf("AllReduce on %d: %v", c.ID(), err)
		}
		results[c.ID()] = buf
		countRes[c.ID()] = cnt
	})
	wantSum := float64(63 * 64 / 2)
	wantCnt := int64(16 * (0 + 1 + 2 + 3))
	for id, r := range results {
		if len(r) != 2 || r[0] != wantSum || r[1] != 64 {
			t.Errorf("CPE %d result %v, want [%g 64]", id, r, wantSum)
		}
		if countRes[id][0] != wantCnt {
			t.Errorf("CPE %d counts %v, want %d", id, countRes[id], wantCnt)
		}
	}
	if tEnd <= 0 {
		t.Error("allreduce should consume virtual time")
	}
}

func TestAllReduceBitwiseIdentical(t *testing.T) {
	// Commutativity of IEEE addition makes recursive doubling produce
	// bitwise-identical results on every CPE — the property the engines
	// rely on for deterministic centroid updates.
	mesh := NewMesh(spec(), nil)
	results := make([][]float64, machine.CPEsPerCG)
	mesh.Run(func(c *CPE) {
		buf := []float64{math.Sqrt(float64(c.ID()+1)) * 1e-3, float64(c.ID()) * math.Pi}
		if err := c.AllReduce(buf, nil); err != nil {
			t.Errorf("AllReduce: %v", err)
		}
		results[c.ID()] = buf
	})
	for id := 1; id < machine.CPEsPerCG; id++ {
		if results[id][0] != results[0][0] || results[id][1] != results[0][1] {
			t.Fatalf("CPE %d result %v differs from CPE 0 %v", id, results[id], results[0])
		}
	}
}

func TestAllReduceProperty(t *testing.T) {
	// Property: for random per-CPE integer payloads the allreduce total
	// equals the direct sum (exact in float64 for small ints).
	f := func(seed uint32) bool {
		mesh := NewMesh(spec(), nil)
		want := 0.0
		vals := make([]float64, machine.CPEsPerCG)
		s := seed
		for i := range vals {
			s = s*1664525 + 1013904223
			vals[i] = float64(s % 1000)
			want += vals[i]
		}
		ok := true
		var mu sync.Mutex
		mesh.Run(func(c *CPE) {
			buf := []float64{vals[c.ID()]}
			if err := c.AllReduce(buf, nil); err != nil || buf[0] != want {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeshReset(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	t1 := mesh.Run(func(c *CPE) {
		if err := c.AllReduce([]float64{1}, nil); err != nil {
			t.Errorf("AllReduce: %v", err)
		}
	})
	mesh.Reset()
	t2 := mesh.Run(func(c *CPE) {
		if err := c.AllReduce([]float64{1}, nil); err != nil {
			t.Errorf("AllReduce: %v", err)
		}
	})
	if math.Abs(t1-t2) > 1e-15 {
		t.Errorf("iteration times differ after Reset: %g vs %g", t1, t2)
	}
}

func TestStatsRecorded(t *testing.T) {
	stats := trace.NewStats()
	mesh := NewMesh(spec(), stats)
	mesh.Run(func(c *CPE) {
		if err := c.AllReduce([]float64{1, 2, 3}, nil); err != nil {
			t.Errorf("AllReduce: %v", err)
		}
	})
	snap := stats.Snapshot()
	// 64 CPEs x 6 steps, 3 elements each.
	if snap.RegTransfers != 64*6 {
		t.Errorf("RegTransfers = %d, want %d", snap.RegTransfers, 64*6)
	}
	if snap.RegBytes == 0 {
		t.Error("RegBytes not recorded")
	}
}

func TestPartnerStaysOnBus(t *testing.T) {
	// Property: every recursive-doubling partner shares a bus.
	mesh := NewMesh(spec(), nil)
	mesh.Run(func(c *CPE) {
		for _, phase := range [2]struct{ stride, limit int }{{1, 8}, {8, 64}} {
			for step := phase.stride; step < phase.limit; step *= 2 {
				p := c.partner(step, phase.stride)
				if p < 0 || p >= 64 || p == c.ID() || !sameBus(c.ID(), p) {
					t.Errorf("CPE %d step %d stride %d: bad partner %d", c.ID(), step, phase.stride, p)
				}
				// Symmetry: partner's partner is self.
				q := (&CPE{mesh: mesh, id: p}).partner(step, phase.stride)
				if q != c.ID() {
					t.Errorf("partner not symmetric: %d -> %d -> %d", c.ID(), p, q)
				}
			}
		}
	})
}

func TestRowBroadcast(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	results := make([][]float64, machine.CPEsPerCG)
	mesh.Run(func(c *CPE) {
		buf := make([]float64, 3)
		if c.Col() == 2 {
			buf[0] = float64(c.Row()) // row-specific payload
			buf[1] = 7
			buf[2] = 9
		}
		if err := c.RowBroadcast(2, buf); err != nil {
			t.Errorf("CPE %d: %v", c.ID(), err)
		}
		results[c.ID()] = buf
	})
	for id, r := range results {
		row := id / 8
		if r[0] != float64(row) || r[1] != 7 || r[2] != 9 {
			t.Errorf("CPE %d received %v, want [%d 7 9]", id, r, row)
		}
	}
}

func TestColBroadcast(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	results := make([][]float64, machine.CPEsPerCG)
	mesh.Run(func(c *CPE) {
		buf := make([]float64, 2)
		if c.Row() == 5 {
			buf[0] = float64(c.Col())
			buf[1] = -1
		}
		if err := c.ColBroadcast(5, buf); err != nil {
			t.Errorf("CPE %d: %v", c.ID(), err)
		}
		results[c.ID()] = buf
	})
	for id, r := range results {
		col := id % 8
		if r[0] != float64(col) || r[1] != -1 {
			t.Errorf("CPE %d received %v, want [%d -1]", id, r, col)
		}
	}
}

func TestBroadcastValidation(t *testing.T) {
	mesh := NewMesh(spec(), nil)
	mesh.Run(func(c *CPE) {
		if c.ID() != 0 {
			return
		}
		if err := c.RowBroadcast(-1, nil); err == nil {
			t.Error("bad root column accepted")
		}
		if err := c.ColBroadcast(8, nil); err == nil {
			t.Error("bad root row accepted")
		}
	})
}
