package regcomm

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkMeshAllReduce measures the functional 8x8-mesh allreduce
// with 64 CPE goroutines — the register-communication bottleneck of
// the Update step.
func BenchmarkMeshAllReduce(b *testing.B) {
	spec := machine.MustSpec(1)
	for i := 0; i < b.N; i++ {
		mesh := NewMesh(spec, nil)
		mesh.Run(func(c *CPE) {
			buf := []float64{float64(c.ID()), 1, 2, 3}
			if err := c.AllReduce(buf, nil); err != nil {
				b.Error(err)
			}
		})
	}
}

// BenchmarkModelAllReduceTime measures the closed-form cost path used
// by the CG executors.
func BenchmarkModelAllReduceTime(b *testing.B) {
	m := NewModel(machine.MustSpec(1))
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += m.AllReduceTime(4096)
	}
	_ = sink
}
