// Package regcomm simulates register communication across the 8-by-8
// CPE mesh of one SW26010 core group. The hardware provides 8 row and
// 8 column communication buses; a CPE can exchange register payloads
// directly with any CPE in the same row or the same column, which is
// the fastest on-chip data-sharing fabric (46.4 GB/s, a 3x-4x speedup
// over DMA or MPI for the AllReduce bottleneck of the Update step).
//
// The package offers two layers:
//
//   - Mesh/CPE: a fully functional substrate. Each CPE runs as its own
//     goroutine; sends are restricted to row/column neighbours exactly
//     like the hardware buses, payloads really move, and virtual clocks
//     reconcile through message timestamps.
//   - Model: closed-form costs for mesh collectives, used by the
//     large-scale core-group executors that simulate the 64 CPE kernels
//     of a CG inside one goroutine.
package regcomm

import (
	"fmt"

	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Model provides closed-form timing for register-communication
// operations of one core group.
type Model struct {
	bw      float64 // bytes per second, aggregate per CG
	latency float64 // seconds per transfer step
}

// NewModel derives the cost model from a machine spec.
func NewModel(spec *machine.Spec) Model {
	return Model{bw: spec.BW.RegComm, latency: spec.BW.RegLatency}
}

// P2PTime is the cost of one register transfer of elems elements
// between two CPEs on a shared bus.
func (m Model) P2PTime(elems int) float64 {
	if elems <= 0 {
		return m.latency
	}
	return m.latency + float64(elems*ldm.ElemBytes)/m.bw
}

// StepTime is the cost of one collective step in which all 64 CPEs
// exchange elems elements pairwise concurrently, sharing the CG's
// aggregate register bandwidth.
func (m Model) StepTime(elems int) float64 {
	if elems < 0 {
		elems = 0
	}
	return m.latency + float64(elems*ldm.ElemBytes*machine.CPEsPerCG)/m.bw
}

// AllReduceTime is the cost of a full-mesh allreduce of elems elements
// per CPE: recursive doubling along rows (3 steps) then columns
// (3 steps), log2(64) = 6 steps total.
func (m Model) AllReduceTime(elems int) float64 {
	return 6 * m.StepTime(elems)
}

// LineReduceTime is the cost of reducing elems elements across the 8
// CPEs of one row or column onto a leader (3 recursive-halving steps).
func (m Model) LineReduceTime(elems int) float64 {
	return 3 * m.StepTime(elems)
}

// LineBroadcastTime is the cost of broadcasting elems elements from a
// leader across its row or column bus (3 doubling steps).
func (m Model) LineBroadcastTime(elems int) float64 {
	return 3 * m.StepTime(elems)
}

// message is one register transfer in flight.
type message struct {
	from int // sender mesh index
	time float64
	data []float64
	ints []int64
}

// Mesh is a functional 8x8 register-communication fabric.
type Mesh struct {
	model  Model
	stats  *trace.Stats
	inbox  []chan message
	clocks []*vclock.Clock
	// units[i] is CPE i's span sink, nil when unobserved. Installed
	// before Run; afterwards each unit is touched only by its CPE's
	// goroutine (Run's completion channel orders the handoff).
	units []*obs.Unit
}

// NewMesh builds the fabric for one core group. The stats sink may be
// nil.
func NewMesh(spec *machine.Spec, stats *trace.Stats) *Mesh {
	m := &Mesh{
		model:  NewModel(spec),
		stats:  stats,
		inbox:  make([]chan message, machine.CPEsPerCG),
		clocks: make([]*vclock.Clock, machine.CPEsPerCG),
	}
	for i := range m.inbox {
		// One slot per potential sender is ample: the collectives used
		// here never have more than one outstanding message per pair.
		m.inbox[i] = make(chan message, machine.CPEsPerCG)
		m.clocks[i] = vclock.New()
	}
	return m
}

// Run executes kernel concurrently on all 64 CPEs of the mesh and
// blocks until every kernel returns. It returns the completion time:
// the maximum virtual clock across CPEs.
func (m *Mesh) Run(kernel func(c *CPE)) float64 {
	done := make(chan struct{})
	for i := 0; i < machine.CPEsPerCG; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			kernel(&CPE{mesh: m, id: i})
		}(i)
	}
	for i := 0; i < machine.CPEsPerCG; i++ {
		<-done
	}
	return vclock.MaxTime(m.clocks...)
}

// SetObserver attaches a span recorder: CPE i records its register
// transfers and kernel compute on unit "<prefix>cpe/<i>". The prefix
// namespaces meshes when several CGs run fine-grained at once. Install
// before Run, never concurrently with one.
func (m *Mesh) SetObserver(rec *obs.Recorder, prefix string) {
	if rec == nil {
		return
	}
	m.units = make([]*obs.Unit, machine.CPEsPerCG)
	for i := range m.units {
		m.units[i] = rec.Unit(fmt.Sprintf("%scpe/%d", prefix, i))
	}
}

// Unit returns CPE i's span unit, nil when the mesh is unobserved.
// Kernels record their compute and DMA phases on it.
func (m *Mesh) Unit(i int) *obs.Unit {
	if m.units == nil {
		return nil
	}
	return m.units[i]
}

// FinishObserved closes every CPE's timeline at its final clock,
// surfacing trailing synchronization as explicit "other" spans. Call
// after the last Run.
func (m *Mesh) FinishObserved() {
	for i, u := range m.units {
		u.Finish(m.clocks[i].Now())
	}
}

// Reset zeroes all CPE clocks, for reuse across measured iterations.
func (m *Mesh) Reset() {
	for _, c := range m.clocks {
		c.Reset()
	}
}

// MaxTime returns the latest CPE clock — the completion time of the
// last Run.
func (m *Mesh) MaxTime() float64 { return vclock.MaxTime(m.clocks...) }

// AdvanceTo raises every CPE clock to at least t, for callers that
// interleave mesh phases with work on another time line (for example
// the managing processing element driving MPI between mesh kernels).
func (m *Mesh) AdvanceTo(t float64) {
	for _, c := range m.clocks {
		c.AdvanceTo(t)
	}
}

// CPE is the per-goroutine handle of one computing processing element
// inside Mesh.Run.
type CPE struct {
	mesh *Mesh
	id   int
}

// ID returns the mesh index in [0, 64).
func (c *CPE) ID() int { return c.id }

// Row returns the mesh row in [0, 8).
func (c *CPE) Row() int { return c.id / machine.MeshSide }

// Col returns the mesh column in [0, 8).
func (c *CPE) Col() int { return c.id % machine.MeshSide }

// Clock returns the CPE's virtual clock.
func (c *CPE) Clock() *vclock.Clock { return c.mesh.clocks[c.id] }

// sameBus reports whether two mesh indexes share a row or column bus.
func sameBus(a, b int) bool {
	return a/machine.MeshSide == b/machine.MeshSide ||
		a%machine.MeshSide == b%machine.MeshSide
}

// Send transfers data to the CPE at mesh index dst. The destination
// must share a row or column bus with the sender; the hardware has no
// diagonal path, and the simulator enforces the same restriction so
// kernels that run here would be implementable on the real mesh.
func (c *CPE) Send(dst int, data []float64, ints []int64) error {
	if dst < 0 || dst >= machine.CPEsPerCG {
		return fmt.Errorf("regcomm: destination %d out of range", dst)
	}
	if dst == c.id {
		return fmt.Errorf("regcomm: CPE %d sending to itself", c.id)
	}
	if !sameBus(c.id, dst) {
		return fmt.Errorf("regcomm: CPE %d and %d share no row or column bus", c.id, dst)
	}
	elems := len(data) + len(ints)
	cost := c.mesh.model.P2PTime(elems)
	start := c.Clock().Now()
	c.Clock().Advance(cost)
	c.mesh.stats.AddReg(int64(elems * ldm.ElemBytes))
	c.mesh.Unit(c.id).Record(obs.KindReg, start, c.Clock().Now(), int64(elems*ldm.ElemBytes), 0)
	msg := message{from: c.id, time: c.Clock().Now()}
	msg.data = append(msg.data, data...)
	msg.ints = append(msg.ints, ints...)
	c.mesh.inbox[dst] <- msg
	return nil
}

// Recv blocks until a message from mesh index src arrives and returns
// its payload. The receive completes no earlier than the sender's
// clock at completion of the send.
func (c *CPE) Recv(src int) ([]float64, []int64, error) {
	if src < 0 || src >= machine.CPEsPerCG {
		return nil, nil, fmt.Errorf("regcomm: source %d out of range", src)
	}
	// Messages from distinct senders may interleave in the inbox; hold
	// back foreign messages and redeliver them.
	var held []message
	start := c.Clock().Now()
	for {
		msg := <-c.mesh.inbox[c.id]
		if msg.from == src {
			for _, h := range held {
				c.mesh.inbox[c.id] <- h
			}
			c.Clock().AdvanceTo(msg.time)
			c.mesh.Unit(c.id).Record(obs.KindReg, start, c.Clock().Now(),
				int64((len(msg.data)+len(msg.ints))*ldm.ElemBytes), 0)
			return msg.data, msg.ints, nil
		}
		//swlint:ignore goroutine-purity -- held messages are redelivered and re-matched by origin (msg.from), so arrival order never reaches results
		held = append(held, msg)
	}
}

// AllReduce combines buf and counts element-wise across all 64 CPEs
// with summation and leaves the full result on every CPE, using
// recursive doubling along rows then columns — the register-
// communication implementation of the paper's two AllReduce operations
// in the Update step (Algorithm 1 line 14). Either slice may be nil.
func (c *CPE) AllReduce(buf []float64, counts []int64) error {
	// Phase 1: recursive doubling across the row (partner differs in
	// column bit), phase 2: across the column.
	for _, phase := range [2]struct{ stride, limit int }{
		{1, machine.MeshSide},               // columns within the row
		{machine.MeshSide, machine.CPEsPerCG}, // rows within the column
	} {
		for step := phase.stride; step < phase.limit; step *= 2 {
			partner := c.partner(step, phase.stride)
			if err := c.Send(partner, buf, counts); err != nil {
				return err
			}
			data, ints, err := c.Recv(partner)
			if err != nil {
				return err
			}
			if len(data) != len(buf) || len(ints) != len(counts) {
				return fmt.Errorf("regcomm: allreduce payload mismatch on CPE %d", c.id)
			}
			for i, v := range data {
				buf[i] += v
			}
			for i, v := range ints {
				counts[i] += v
			}
		}
	}
	return nil
}

// RowBroadcast distributes the root column's buf across the CPE's row
// bus: the CPE at column rootCol sends, the others receive into buf
// (which must have equal length everywhere). Every CPE of every row
// must call it. This is the hardware-native way one sample stripe is
// shared along a row.
func (c *CPE) RowBroadcast(rootCol int, buf []float64) error {
	if rootCol < 0 || rootCol >= machine.MeshSide {
		return fmt.Errorf("regcomm: root column %d out of range", rootCol)
	}
	return c.lineBroadcast(rootCol, c.Col(), 1, buf)
}

// ColBroadcast distributes the root row's buf down the CPE's column
// bus; the counterpart of RowBroadcast for column sharing.
func (c *CPE) ColBroadcast(rootRow int, buf []float64) error {
	if rootRow < 0 || rootRow >= machine.MeshSide {
		return fmt.Errorf("regcomm: root row %d out of range", rootRow)
	}
	return c.lineBroadcast(rootRow, c.Row(), machine.MeshSide, buf)
}

// lineBroadcast runs a binomial broadcast along one bus (stride 1 for
// a row, 8 for a column). pos is the CPE's index on the bus, root the
// sender's index.
func (c *CPE) lineBroadcast(root, pos, stride int, buf []float64) error {
	rel := (pos - root + machine.MeshSide) % machine.MeshSide
	mask := 1
	for mask < machine.MeshSide {
		if rel&mask != 0 {
			srcPos := (pos - mask + machine.MeshSide) % machine.MeshSide
			src := c.id + (srcPos-pos)*stride
			data, _, err := c.Recv(src)
			if err != nil {
				return err
			}
			if len(data) != len(buf) {
				return fmt.Errorf("regcomm: broadcast payload mismatch on CPE %d", c.id)
			}
			copy(buf, data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < machine.MeshSide && rel&(mask-1) == 0 && rel&mask == 0 {
			dstPos := (pos + mask) % machine.MeshSide
			dst := c.id + (dstPos-pos)*stride
			if err := c.Send(dst, buf, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// partner computes the recursive-doubling partner at the given step
// within a phase whose unit stride is stride (1 for row phase, 8 for
// column phase).
func (c *CPE) partner(step, stride int) int {
	pos := (c.id / stride) % machine.MeshSide
	unit := step / stride
	ppos := pos ^ unit
	return c.id + (ppos-pos)*stride
}
