package quality

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// sqDist is the squared Euclidean distance between equal-length
// vectors.
func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		diff := a[i] - b[i]
		s += diff * diff
	}
	return s
}

// DaviesBouldin computes the Davies-Bouldin index of a clustering:
// the mean over clusters of the worst ratio (s_i + s_j) / d(c_i, c_j),
// where s_i is the mean distance of cluster members to their centroid.
// Lower is better; it needs one pass over the data plus O(k²) centroid
// distances, so it scales to streaming sources.
func DaviesBouldin(src dataset.Source, centroids []float64, d int, assign []int) (float64, error) {
	n := src.N()
	if src.D() != d {
		return 0, fmt.Errorf("quality: source d=%d, centroids d=%d", src.D(), d)
	}
	if len(assign) != n {
		return 0, fmt.Errorf("quality: assignment has %d entries, want %d", len(assign), n)
	}
	if len(centroids) == 0 || len(centroids)%d != 0 {
		return 0, fmt.Errorf("quality: centroid matrix size %d not a multiple of d=%d", len(centroids), d)
	}
	k := len(centroids) / d
	scatter := make([]float64, k)
	counts := make([]int, k)
	buf := make([]float64, d)
	for i := 0; i < n; i++ {
		j := assign[i]
		if j < 0 || j >= k {
			return 0, fmt.Errorf("quality: sample %d assigned to %d, want [0,%d)", i, j, k)
		}
		src.Sample(i, buf)
		scatter[j] += math.Sqrt(sqDist(buf, centroids[j*d:(j+1)*d]))
		counts[j]++
	}
	active := 0
	for j := 0; j < k; j++ {
		if counts[j] > 0 {
			scatter[j] /= float64(counts[j])
			active++
		}
	}
	if active < 2 {
		return 0, fmt.Errorf("quality: Davies-Bouldin needs at least 2 non-empty clusters, got %d", active)
	}
	total := 0.0
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			continue
		}
		worst := 0.0
		for j := 0; j < k; j++ {
			if j == i || counts[j] == 0 {
				continue
			}
			sep := math.Sqrt(sqDist(centroids[i*d:(i+1)*d], centroids[j*d:(j+1)*d]))
			//swlint:ignore float-eq -- exact zero separation means coincident centroids, reported as an error
			if sep == 0 {
				return 0, fmt.Errorf("quality: clusters %d and %d share a centroid", i, j)
			}
			if r := (scatter[i] + scatter[j]) / sep; r > worst {
				worst = r
			}
		}
		total += worst
	}
	return total / float64(active), nil
}

// Silhouette computes the mean silhouette coefficient over up to
// sampleN deterministically spread samples (sampleN <= 0 uses all;
// the full computation is O(n²·d), so sample for large sources).
// Values near 1 indicate tight, well-separated clusters; values below
// 0 indicate misassignment.
func Silhouette(src dataset.Source, assign []int, sampleN int) (float64, error) {
	n := src.N()
	if len(assign) != n {
		return 0, fmt.Errorf("quality: assignment has %d entries, want %d", len(assign), n)
	}
	if n < 3 {
		return 0, fmt.Errorf("quality: silhouette needs at least 3 samples")
	}
	if sampleN <= 0 || sampleN > n {
		sampleN = n
	}
	stride := n / sampleN
	if stride < 1 {
		stride = 1
	}
	d := src.D()
	k := 0
	for _, a := range assign {
		if a < 0 {
			return 0, fmt.Errorf("quality: unassigned sample in silhouette input")
		}
		if a+1 > k {
			k = a + 1
		}
	}
	xi := make([]float64, d)
	xj := make([]float64, d)
	sumDist := make([]float64, k)
	countIn := make([]int, k)
	total, counted := 0.0, 0
	for i := 0; i < n; i += stride {
		src.Sample(i, xi)
		for j := range sumDist {
			sumDist[j] = 0
			countIn[j] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			src.Sample(j, xj)
			dd := math.Sqrt(sqDist(xi, xj))
			sumDist[assign[j]] += dd
			countIn[assign[j]]++
		}
		own := assign[i]
		if countIn[own] == 0 {
			continue // singleton cluster: silhouette undefined, skip
		}
		a := sumDist[own] / float64(countIn[own])
		b := math.Inf(1)
		for j := 0; j < k; j++ {
			if j == own || countIn[j] == 0 {
				continue
			}
			if m := sumDist[j] / float64(countIn[j]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0, fmt.Errorf("quality: no silhouette values computable")
	}
	return total / float64(counted), nil
}
