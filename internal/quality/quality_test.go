package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestObjective(t *testing.T) {
	m, err := dataset.FromRows([][]float64{{0, 0}, {2, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	centroids := []float64{1, 0, 10, 0} // two 2-d centroids
	obj, err := Objective(m, centroids, 2, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Squared distances: 1, 1, 0 -> mean 2/3.
	if math.Abs(obj-2.0/3.0) > 1e-12 {
		t.Errorf("Objective = %g, want 2/3", obj)
	}
}

func TestObjectiveErrors(t *testing.T) {
	m, _ := dataset.FromRows([][]float64{{0, 0}})
	if _, err := Objective(m, []float64{1, 2}, 3, []int{0}); err == nil {
		t.Error("d mismatch accepted")
	}
	if _, err := Objective(m, []float64{1, 2}, 2, []int{0, 1}); err == nil {
		t.Error("assignment length mismatch accepted")
	}
	if _, err := Objective(m, []float64{1, 2, 3}, 2, []int{0}); err == nil {
		t.Error("ragged centroid matrix accepted")
	}
	if _, err := Objective(m, []float64{1, 2}, 2, []int{5}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, err := Objective(m, nil, 2, []int{0}); err == nil {
		t.Error("empty centroids accepted")
	}
}

func TestARIIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := ARI(a, a)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(a,a) = %g (%v), want 1", got, err)
	}
	// Permuted labels are still a perfect match.
	b := []int{5, 5, 3, 3, 9, 9}
	got, err = ARI(a, b)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI permuted = %g (%v), want 1", got, err)
	}
}

func TestARIDisagreement(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 1, 0, 1, 0, 1}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.5 {
		t.Errorf("ARI of near-independent partitions = %g, want small", got)
	}
}

func TestARIDegenerate(t *testing.T) {
	a := []int{0, 0, 0}
	got, err := ARI(a, a)
	if err != nil || got != 1 {
		t.Errorf("degenerate ARI = %g (%v), want 1", got, err)
	}
}

func TestARIErrors(t *testing.T) {
	if _, err := ARI([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ARI(nil, nil); err == nil {
		t.Error("empty labelings accepted")
	}
	if _, err := ARI([]int{-1}, []int{0}); err == nil {
		t.Error("negative label accepted")
	}
}

func TestNMI(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if got, err := NMI(a, a); err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(a,a) = %g (%v), want 1", got, err)
	}
	b := []int{1, 1, 0, 0}
	if got, err := NMI(a, b); err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI permuted = %g (%v), want 1", got, err)
	}
	// Independent: every combination appears equally often.
	x := []int{0, 0, 1, 1}
	y := []int{0, 1, 0, 1}
	if got, err := NMI(x, y); err != nil || math.Abs(got) > 1e-9 {
		t.Errorf("NMI independent = %g (%v), want 0", got, err)
	}
	// Degenerate single-cluster partitions.
	if got, err := NMI([]int{0, 0}, []int{0, 0}); err != nil || got != 1 {
		t.Errorf("NMI degenerate = %g (%v), want 1", got, err)
	}
}

func TestNMIRange(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v) % 3
			b[i] = int(v>>4) % 4
		}
		got, err := NMI(a, b)
		return err == nil && got >= 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestARISymmetryProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v) % 4
			b[i] = int(v>>3) % 3
		}
		x, err1 := ARI(a, b)
		y, err2 := ARI(b, a)
		return err1 == nil && err2 == nil && math.Abs(x-y) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2, 2}
	truth := []int{4, 4, 5, 5, 6, 6}
	got, err := Accuracy(pred, truth)
	if err != nil || got != 1 {
		t.Errorf("Accuracy perfect = %g (%v), want 1", got, err)
	}
	pred2 := []int{0, 0, 1, 1, 2, 0}
	got, err = Accuracy(pred2, truth)
	if err != nil || math.Abs(got-5.0/6.0) > 1e-12 {
		t.Errorf("Accuracy = %g (%v), want 5/6", got, err)
	}
	if _, err := Accuracy([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAccuracyDeterministicTieBreak(t *testing.T) {
	pred := []int{0, 1}
	truth := []int{0, 1}
	a1, _ := Accuracy(pred, truth)
	a2, _ := Accuracy(pred, truth)
	if a1 != a2 {
		t.Error("Accuracy not deterministic")
	}
}

func TestObjectiveSurviving(t *testing.T) {
	m, err := dataset.FromRows([][]float64{{0, 0}, {2, 0}, {4, 0}, {6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	cents := []float64{0, 0, 6, 0}
	full := []int{0, 0, 1, 1}
	want, err := Objective(m, cents, 2, full)
	if err != nil {
		t.Fatal(err)
	}
	got, alive, err := ObjectiveSurviving(m, cents, 2, full)
	if err != nil {
		t.Fatal(err)
	}
	if alive != 4 || got != want {
		t.Errorf("fully assigned: got %g over %d, want %g over 4", got, alive, want)
	}
	part := []int{0, -1, -1, 1}
	got, alive, err = ObjectiveSurviving(m, cents, 2, part)
	if err != nil {
		t.Fatal(err)
	}
	if alive != 2 || got != 0 {
		t.Errorf("dropped middle samples: got %g over %d, want 0 over 2", got, alive)
	}
	if _, _, err := ObjectiveSurviving(m, cents, 2, []int{-1, -1, -1, -1}); err == nil {
		t.Error("all-dropped assignment accepted")
	}
	if _, _, err := ObjectiveSurviving(m, cents, 2, []int{0, 0, 0, 9}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}
