package quality

import (
	"testing"

	"repro/internal/dataset"
)

func benchFixture(b *testing.B) (dataset.Source, []float64, []int) {
	b.Helper()
	g, err := dataset.NewGaussianMixture("bench", 2048, 16, 8, 0.2, 2.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	cents := make([]float64, 8*16)
	buf := make([]float64, 16)
	for c := 0; c < 8; c++ {
		g.Center(c, buf)
		copy(cents[c*16:], buf)
	}
	assign := make([]int, g.N())
	for i := range assign {
		assign[i] = g.TrueLabel(i)
	}
	return g, cents, assign
}

func BenchmarkObjective(b *testing.B) {
	src, cents, assign := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Objective(src, cents, 16, assign); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkARI(b *testing.B) {
	_, _, assign := benchFixture(b)
	other := append([]int(nil), assign...)
	other[0] = (other[0] + 1) % 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ARI(assign, other); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDaviesBouldin(b *testing.B) {
	src, cents, assign := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DaviesBouldin(src, cents, 16, assign); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouetteSampled(b *testing.B) {
	src, _, assign := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(src, assign, 32); err != nil {
			b.Fatal(err)
		}
	}
}
