package quality

import (
	"testing"

	"repro/internal/dataset"
)

func separableCase(t *testing.T) (dataset.Source, []float64, []int) {
	t.Helper()
	m, err := dataset.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cents := []float64{0.033, 0.033, 10.033, 10.033}
	assign := []int{0, 0, 0, 1, 1, 1}
	return m, cents, assign
}

func mixedCase(t *testing.T) (dataset.Source, []float64, []int) {
	t.Helper()
	m, err := dataset.FromRows([][]float64{
		{0, 0}, {1, 1}, {0.5, 0.2},
		{1.2, 0.1}, {0.2, 1.1}, {0.9, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	cents := []float64{0.3, 0.3, 1.0, 0.8}
	assign := []int{0, 1, 0, 1, 0, 1}
	return m, cents, assign
}

func TestDaviesBouldinOrdersQuality(t *testing.T) {
	src1, c1, a1 := separableCase(t)
	good, err := DaviesBouldin(src1, c1, 2, a1)
	if err != nil {
		t.Fatal(err)
	}
	src2, c2, a2 := mixedCase(t)
	bad, err := DaviesBouldin(src2, c2, 2, a2)
	if err != nil {
		t.Fatal(err)
	}
	if good >= bad {
		t.Errorf("DB(good)=%g should be below DB(bad)=%g", good, bad)
	}
	if good <= 0 {
		t.Errorf("DB index must be positive, got %g", good)
	}
}

func TestDaviesBouldinErrors(t *testing.T) {
	src, cents, assign := separableCase(t)
	if _, err := DaviesBouldin(src, cents, 3, assign); err == nil {
		t.Error("d mismatch accepted")
	}
	if _, err := DaviesBouldin(src, cents, 2, assign[:3]); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := DaviesBouldin(src, cents[:3], 2, assign); err == nil {
		t.Error("ragged centroids accepted")
	}
	badAssign := append([]int(nil), assign...)
	badAssign[0] = 9
	if _, err := DaviesBouldin(src, cents, 2, badAssign); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	// All samples in one cluster.
	one := []int{0, 0, 0, 0, 0, 0}
	if _, err := DaviesBouldin(src, cents, 2, one); err == nil {
		t.Error("single-cluster input accepted")
	}
	// Duplicate centroids.
	dup := []float64{1, 1, 1, 1}
	if _, err := DaviesBouldin(src, dup, 2, assign); err == nil {
		t.Error("duplicate centroids accepted")
	}
}

func TestSilhouetteOrdersQuality(t *testing.T) {
	src1, _, a1 := separableCase(t)
	good, err := Silhouette(src1, a1, 0)
	if err != nil {
		t.Fatal(err)
	}
	src2, _, a2 := mixedCase(t)
	bad, err := Silhouette(src2, a2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.8 {
		t.Errorf("silhouette of well-separated clusters = %g, want > 0.8", good)
	}
	if bad >= good {
		t.Errorf("silhouette(bad)=%g should be below silhouette(good)=%g", bad, good)
	}
}

func TestSilhouetteSampled(t *testing.T) {
	g, err := dataset.NewGaussianMixture("sil", 300, 6, 3, 0.1, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.N())
	for i := range assign {
		assign[i] = g.TrueLabel(i)
	}
	full, err := Silhouette(g, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Silhouette(g, assign, 50)
	if err != nil {
		t.Fatal(err)
	}
	if full < 0.8 || sampled < 0.8 {
		t.Errorf("silhouettes %g/%g on separable mixture", full, sampled)
	}
	if diff := full - sampled; diff > 0.1 || diff < -0.1 {
		t.Errorf("sampled silhouette %g deviates from full %g", sampled, full)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	src, _, assign := separableCase(t)
	if _, err := Silhouette(src, assign[:2], 0); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Silhouette(src, []int{-1, 0, 0, 1, 1, 1}, 0); err == nil {
		t.Error("unassigned sample accepted")
	}
	tiny, err := dataset.FromRows([][]float64{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Silhouette(tiny, []int{0, 1}, 0); err == nil {
		t.Error("n<3 accepted")
	}
	// Single non-empty cluster: nothing computable.
	if _, err := Silhouette(src, []int{0, 0, 0, 0, 0, 0}, 0); err == nil {
		t.Error("single-cluster silhouette accepted")
	}
}
