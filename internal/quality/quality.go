// Package quality evaluates clustering results: the k-means objective
// O(C) from the paper's problem definition, plus external validity
// indexes (Adjusted Rand Index, Normalized Mutual Information) against
// the ground-truth labels of the synthetic workloads. The paper itself
// measures only per-iteration time; these metrics exist to verify that
// the functional engines cluster correctly, which the real system
// takes for granted.
package quality

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Objective computes O(C) = (1/n) * sum_i dis(x_i, c_{a(i)}) where dis
// is the squared Euclidean distance of the paper's definition, for the
// given assignment. centroids is row-major k-by-d.
func Objective(src dataset.Source, centroids []float64, d int, assign []int) (float64, error) {
	n := src.N()
	if src.D() != d {
		return 0, fmt.Errorf("quality: source d=%d, centroids d=%d", src.D(), d)
	}
	if len(assign) != n {
		return 0, fmt.Errorf("quality: assignment has %d entries, want %d", len(assign), n)
	}
	if len(centroids)%d != 0 || len(centroids) == 0 {
		return 0, fmt.Errorf("quality: centroid matrix size %d not a multiple of d=%d", len(centroids), d)
	}
	k := len(centroids) / d
	buf := make([]float64, d)
	total := 0.0
	for i := 0; i < n; i++ {
		j := assign[i]
		if j < 0 || j >= k {
			return 0, fmt.Errorf("quality: sample %d assigned to centroid %d, want [0,%d)", i, j, k)
		}
		src.Sample(i, buf)
		c := centroids[j*d : (j+1)*d]
		for u := 0; u < d; u++ {
			diff := buf[u] - c[u]
			total += diff * diff
		}
	}
	return total / float64(n), nil
}

// contingency builds the confusion counts between two labelings along
// with the marginals. Labels may be any small non-negative ints.
func contingency(a, b []int) (table map[[2]int]int, ca, cb map[int]int, err error) {
	if len(a) != len(b) {
		return nil, nil, nil, fmt.Errorf("quality: labelings differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, nil, nil, fmt.Errorf("quality: empty labelings")
	}
	table = make(map[[2]int]int)
	ca = make(map[int]int)
	cb = make(map[int]int)
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return nil, nil, nil, fmt.Errorf("quality: negative label at %d", i)
		}
		table[[2]int{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	return table, ca, cb, nil
}

func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// ARI computes the Adjusted Rand Index between two labelings: 1 for
// identical partitions (up to label permutation), ~0 for independent
// ones.
func ARI(a, b []int) (float64, error) {
	table, ca, cb, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	n := len(a)
	sumComb := 0.0
	for _, v := range table {
		sumComb += choose2(v)
	}
	sumA, sumB := 0.0, 0.0
	for _, v := range ca {
		sumA += choose2(v)
	}
	for _, v := range cb {
		sumB += choose2(v)
	}
	expected := sumA * sumB / choose2(n)
	maxIndex := (sumA + sumB) / 2
	//swlint:ignore float-eq -- exact equality detects the degenerate single-cluster partitions, which divide to 0/0 below
	if maxIndex == expected {
		// Degenerate partitions (e.g. single cluster on both sides)
		// agree perfectly by convention.
		return 1, nil
	}
	return (sumComb - expected) / (maxIndex - expected), nil
}

// NMI computes the Normalized Mutual Information (arithmetic-mean
// normalization) between two labelings: 1 for identical partitions,
// 0 for independent ones.
func NMI(a, b []int) (float64, error) {
	table, ca, cb, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	n := float64(len(a))
	mi := 0.0
	for key, v := range table {
		pxy := float64(v) / n
		px := float64(ca[key[0]]) / n
		py := float64(cb[key[1]]) / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	ha, hb := 0.0, 0.0
	for _, v := range ca {
		p := float64(v) / n
		ha -= p * math.Log(p)
	}
	for _, v := range cb {
		p := float64(v) / n
		hb -= p * math.Log(p)
	}
	//swlint:ignore float-eq -- entropy of a single-cluster labeling is exactly zero (sum of p*log(p) over one term p=1)
	if ha == 0 && hb == 0 {
		return 1, nil
	}
	denom := (ha + hb) / 2
	//swlint:ignore float-eq -- exact zero mean entropy only occurs in the degenerate case handled above
	if denom == 0 {
		return 0, nil
	}
	v := mi / denom
	// Clamp tiny negative values from floating-point noise.
	if v < 0 && v > -1e-12 {
		v = 0
	}
	return v, nil
}

// Accuracy returns the fraction of samples whose predicted cluster
// maps to the matching true class under the best greedy cluster-to-
// class matching. It is a coarse, intuitive companion to ARI/NMI for
// the land-cover demo.
func Accuracy(pred, truth []int) (float64, error) {
	table, _, _, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	// Greedy matching: repeatedly take the largest remaining cell.
	usedP := make(map[int]bool)
	usedT := make(map[int]bool)
	correct := 0
	for {
		best, bp, bt := 0, -1, -1
		for key, v := range table {
			if usedP[key[0]] || usedT[key[1]] {
				continue
			}
			if v > best || (v == best && (bp == -1 || key[0] < bp || (key[0] == bp && key[1] < bt))) {
				best, bp, bt = v, key[0], key[1]
			}
		}
		if bp < 0 {
			break
		}
		usedP[bp] = true
		usedT[bt] = true
		correct += best
	}
	return float64(correct) / float64(len(pred)), nil
}

// ObjectiveSurviving computes the mean objective over the samples that
// carry an assignment, skipping entries with assign[i] < 0 — the
// convention the resilient engine uses for shards dropped after a rank
// failure. It returns the mean, the number of surviving samples, and
// an error when none survive. On a fully-assigned result it equals
// Objective.
func ObjectiveSurviving(src dataset.Source, centroids []float64, d int, assign []int) (float64, int, error) {
	n := src.N()
	if src.D() != d {
		return 0, 0, fmt.Errorf("quality: source d=%d, centroids d=%d", src.D(), d)
	}
	if len(assign) != n {
		return 0, 0, fmt.Errorf("quality: assignment has %d entries, want %d", len(assign), n)
	}
	if len(centroids)%d != 0 || len(centroids) == 0 {
		return 0, 0, fmt.Errorf("quality: centroid matrix size %d not a multiple of d=%d", len(centroids), d)
	}
	k := len(centroids) / d
	buf := make([]float64, d)
	total := 0.0
	alive := 0
	for i := 0; i < n; i++ {
		j := assign[i]
		if j < 0 {
			continue
		}
		if j >= k {
			return 0, 0, fmt.Errorf("quality: sample %d assigned to centroid %d, want [0,%d)", i, j, k)
		}
		src.Sample(i, buf)
		c := centroids[j*d : (j+1)*d]
		for u := 0; u < d; u++ {
			diff := buf[u] - c[u]
			total += diff * diff
		}
		alive++
	}
	if alive == 0 {
		return 0, 0, fmt.Errorf("quality: no surviving samples to score")
	}
	return total / float64(alive), alive, nil
}
