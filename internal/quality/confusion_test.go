package quality

import (
	"strings"
	"testing"
)

func TestConfusion(t *testing.T) {
	pred := []int{0, 0, 1, 1, 1, 2}
	truth := []int{5, 5, 6, 6, 5, 7}
	cm, err := Confusion(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.PredLabels) != 3 || len(cm.TrueLabels) != 3 {
		t.Fatalf("labels %v / %v", cm.PredLabels, cm.TrueLabels)
	}
	// pred 0 x true 5 = 2; pred 1 x true 6 = 2; pred 1 x true 5 = 1.
	if cm.Counts[0][0] != 2 || cm.Counts[1][1] != 2 || cm.Counts[1][0] != 1 || cm.Counts[2][2] != 1 {
		t.Errorf("counts = %v", cm.Counts)
	}
	// Purity: (2 + 2 + 1) / 6.
	if got := cm.Purity(); got != 5.0/6.0 {
		t.Errorf("Purity = %g, want 5/6", got)
	}
}

func TestConfusionRender(t *testing.T) {
	pred := []int{0, 1}
	truth := []int{0, 1}
	cm, err := Confusion(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cm.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pred\\true", "total", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Grand total = 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimSpace(last), "2") {
		t.Errorf("grand total row = %q", last)
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := Confusion([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Confusion(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestPurityEmptyMatrix(t *testing.T) {
	cm := &ConfusionMatrix{}
	if got := cm.Purity(); got != 0 {
		t.Errorf("empty purity = %g", got)
	}
}
