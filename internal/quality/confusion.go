package quality

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ConfusionMatrix counts (predicted, true) label pairs. Rows are
// predicted clusters, columns true classes, both sorted ascending.
type ConfusionMatrix struct {
	PredLabels []int
	TrueLabels []int
	Counts     [][]int // [pred][true]
}

// Confusion builds the matrix from two labelings.
func Confusion(pred, truth []int) (*ConfusionMatrix, error) {
	table, cp, ct, err := contingency(pred, truth)
	if err != nil {
		return nil, err
	}
	cm := &ConfusionMatrix{}
	for l := range cp {
		cm.PredLabels = append(cm.PredLabels, l)
	}
	for l := range ct {
		cm.TrueLabels = append(cm.TrueLabels, l)
	}
	sort.Ints(cm.PredLabels)
	sort.Ints(cm.TrueLabels)
	colOf := make(map[int]int, len(cm.TrueLabels))
	for i, l := range cm.TrueLabels {
		colOf[l] = i
	}
	rowOf := make(map[int]int, len(cm.PredLabels))
	for i, l := range cm.PredLabels {
		rowOf[l] = i
	}
	cm.Counts = make([][]int, len(cm.PredLabels))
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, len(cm.TrueLabels))
	}
	for key, v := range table {
		cm.Counts[rowOf[key[0]]][colOf[key[1]]] = v
	}
	return cm, nil
}

// Render writes the matrix as an aligned table with row and column
// totals.
func (cm *ConfusionMatrix) Render(w io.Writer) error {
	var b strings.Builder
	width := 8
	fmt.Fprintf(&b, "%*s", width, "pred\\true")
	for _, l := range cm.TrueLabels {
		fmt.Fprintf(&b, "%*d", width, l)
	}
	fmt.Fprintf(&b, "%*s\n", width, "total")
	colTotals := make([]int, len(cm.TrueLabels))
	for i, pl := range cm.PredLabels {
		fmt.Fprintf(&b, "%*d", width, pl)
		rowTotal := 0
		for j, v := range cm.Counts[i] {
			fmt.Fprintf(&b, "%*d", width, v)
			rowTotal += v
			colTotals[j] += v
		}
		fmt.Fprintf(&b, "%*d\n", width, rowTotal)
	}
	fmt.Fprintf(&b, "%*s", width, "total")
	grand := 0
	for _, v := range colTotals {
		fmt.Fprintf(&b, "%*d", width, v)
		grand += v
	}
	fmt.Fprintf(&b, "%*d\n", width, grand)
	_, err := io.WriteString(w, b.String())
	return err
}

// Purity returns the fraction of samples in clusters dominated by
// their majority class.
func (cm *ConfusionMatrix) Purity() float64 {
	correct, total := 0, 0
	for _, row := range cm.Counts {
		best := 0
		for _, v := range row {
			if v > best {
				best = v
			}
			total += v
		}
		correct += best
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
