package ldm

import (
	"testing"

	"repro/internal/machine"
)

func BenchmarkAllocFree(b *testing.B) {
	a := NewAllocator(machine.LDMBytes)
	for i := 0; i < b.N; i++ {
		if err := a.AllocFloats("buf", 1024); err != nil {
			b.Fatal(err)
		}
		if err := a.Free("buf"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckLevel3(b *testing.B) {
	spec := machine.MustSpec(4096)
	for i := 0; i < b.N; i++ {
		if err := CheckLevel3(spec, 2000, 196608, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxKLevel3(b *testing.B) {
	spec := machine.MustSpec(4096)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += MaxKLevel3(spec, 196608, 1024)
	}
	_ = sink
}
