package ldm

import "repro/internal/machine"

// This file centralizes the capacity arithmetic that engines and cost
// models would otherwise re-derive by hand. The swlint ldm-capacity
// rule forbids raw LDMBytesPerCPE arithmetic outside this package, so
// every buffer-sizing decision traces back to the constraint algebra
// of Section III in one place.

// Level1StreamChunk returns the per-CPE sample-chunk size, in samples,
// for Level-1 streaming: the LDM budget left after the resident
// centroid working set of constraint C1 (the centroid set, the sum
// set and the counters: 2kd+k elements), divided by the sample size,
// capped at 64 samples per DMA chunk. It returns 0 when the resident
// set leaves no stream budget — exactly the shapes CheckLevel1
// rejects or brings within one sample of the capacity edge.
func Level1StreamChunk(spec *machine.Spec, k, d int) int {
	free := ElemsPerLDM(spec.LDMBytesPerCPE) - 2*k*d - k
	chunk := free / d
	if chunk < 0 {
		chunk = 0
	}
	if chunk > 64 {
		chunk = 64
	}
	return chunk
}

// ResidentBatch returns how many samples of dims elements fit in the
// half of one LDM reserved for sample residency while centroid tiles
// stream through the other half — the double-buffered tiling regime
// of the Level-2 cost model. The result is at least 1.
func ResidentBatch(spec *machine.Spec, dims int) int {
	if dims < 1 {
		dims = 1
	}
	batch := ElemsPerLDM(spec.LDMBytesPerCPE) / 2 / dims
	if batch < 1 {
		batch = 1
	}
	return batch
}

// MaxDLevel3 returns the largest dimension count constraint C″2
// (3d+1 ≤ 64·LDM) admits on the deployment, rounded down to a whole
// number of per-CPE stripes so every CPE owns an equal dimension
// share.
func MaxDLevel3(spec *machine.Spec) int {
	capCG := machine.CPEsPerCG * ElemsPerLDM(spec.LDMBytesPerCPE)
	d := (capCG - 1) / 3
	return d - d%machine.CPEsPerCG
}
