package ldm

import (
	"testing"

	"repro/internal/machine"
)

func TestLevel1StreamChunk(t *testing.T) {
	spec := machine.MustSpec(1)
	elems := ElemsPerLDM(spec.LDMBytesPerCPE)

	if got := Level1StreamChunk(spec, 8, 4); got != 64 {
		t.Errorf("small shape chunk = %d, want the 64-sample DMA cap", got)
	}
	// k=101 d=80 leaves 123 elements of stream budget: one 80-element
	// sample fits, two do not; one more centroid overruns the LDM.
	if got := Level1StreamChunk(spec, 101, 80); got != 1 {
		t.Errorf("tight shape chunk = %d, want 1", got)
	}
	if got := Level1StreamChunk(spec, 102, 80); got != 0 {
		t.Errorf("oversubscribed shape chunk = %d, want 0", got)
	}

	// Any shape CheckLevel1 admits must leave room for at least one
	// streamed sample: C1 guarantees free = elems-2kd-k >= d.
	for k := 1; k < 64; k += 7 {
		for d := 1; 2*k*d+k+d <= elems; d *= 2 {
			if CheckLevel1(spec, k, d) != nil {
				continue
			}
			if got := Level1StreamChunk(spec, k, d); got < 1 {
				t.Errorf("CheckLevel1 admits k=%d d=%d but chunk = %d", k, d, got)
			}
		}
	}
}

func TestResidentBatch(t *testing.T) {
	spec := machine.MustSpec(1)
	half := ElemsPerLDM(spec.LDMBytesPerCPE) / 2

	if got := ResidentBatch(spec, 1); got != half {
		t.Errorf("ResidentBatch(1) = %d, want %d", got, half)
	}
	if got := ResidentBatch(spec, half*10); got != 1 {
		t.Errorf("huge dims batch = %d, want the floor of 1", got)
	}
	if got := ResidentBatch(spec, 0); got != half {
		t.Errorf("dims=0 batch = %d, want %d (clamped to one element)", got, half)
	}
}

func TestMaxDLevel3(t *testing.T) {
	spec := machine.MustSpec(1)
	d := MaxDLevel3(spec)
	if d%machine.CPEsPerCG != 0 {
		t.Fatalf("MaxDLevel3 = %d, not a whole number of %d-wide stripes", d, machine.CPEsPerCG)
	}
	// The returned d satisfies C″2, and one more stripe does not.
	capCG := machine.CPEsPerCG * ElemsPerLDM(spec.LDMBytesPerCPE)
	if 3*d+1 > capCG {
		t.Errorf("MaxDLevel3 = %d violates C\"2: 3d+1 = %d > %d", d, 3*d+1, capCG)
	}
	next := d + machine.CPEsPerCG
	if 3*next+1 <= capCG {
		t.Errorf("MaxDLevel3 = %d is not maximal: d=%d still satisfies C\"2", d, next)
	}
	// End to end through the central check (m'group=2 so C″1's group
	// capacity admits the working set at k=2).
	if err := CheckLevel3(spec, 2, d, 2); err != nil {
		t.Errorf("CheckLevel3 rejects k=2 d=MaxDLevel3=%d: %v", d, err)
	}
	if err := CheckLevel3(spec, 2, next, 2); err == nil {
		t.Errorf("CheckLevel3 admits d=%d beyond MaxDLevel3", next)
	}
}
