package ldm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestAllocatorBasics(t *testing.T) {
	a := NewAllocator(1024)
	if a.Capacity() != 1024 || a.Used() != 0 || a.FreeBytes() != 1024 {
		t.Fatalf("fresh allocator: cap=%d used=%d free=%d", a.Capacity(), a.Used(), a.FreeBytes())
	}
	if err := a.Alloc("sample", 512); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := a.AllocFloats("centroids", 64); err != nil { // 256 bytes
		t.Fatalf("AllocFloats: %v", err)
	}
	if a.Used() != 768 {
		t.Errorf("Used = %d, want 768", a.Used())
	}
	if got := a.Buffers(); len(got) != 2 || got[0] != "centroids" || got[1] != "sample" {
		t.Errorf("Buffers = %v", got)
	}
	if err := a.Free("sample"); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if a.Used() != 256 {
		t.Errorf("Used after free = %d, want 256", a.Used())
	}
}

func TestAllocatorCapacityError(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Alloc("a", 60); err != nil {
		t.Fatal(err)
	}
	err := a.Alloc("b", 50)
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("want CapacityError, got %v", err)
	}
	if ce.Requested != 50 || ce.Free != 40 || ce.Capacity != 100 {
		t.Errorf("CapacityError = %+v", ce)
	}
	if !strings.Contains(ce.Error(), `"b"`) {
		t.Errorf("error text %q should name the buffer", ce.Error())
	}
	// Failed allocation must not consume budget.
	if a.Used() != 60 {
		t.Errorf("Used after failed alloc = %d, want 60", a.Used())
	}
}

func TestAllocatorMisuse(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Alloc("x", 0); err == nil {
		t.Error("Alloc size 0: want error")
	}
	if err := a.Alloc("x", -5); err == nil {
		t.Error("Alloc negative: want error")
	}
	if err := a.Alloc("x", 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("x", 10); err == nil {
		t.Error("double Alloc: want error")
	}
	if err := a.Free("missing"); err == nil {
		t.Error("Free of unknown buffer: want error")
	}
}

func TestNewAllocatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAllocator(0) did not panic")
		}
	}()
	NewAllocator(0)
}

func TestAllocFreeNeverLeaksProperty(t *testing.T) {
	// Property: alloc then free restores the budget exactly.
	a := NewAllocator(1 << 20)
	f := func(sz uint16) bool {
		size := int(sz%4096) + 1
		before := a.Used()
		if err := a.Alloc("tmp", size); err != nil {
			return false
		}
		if a.Used() != before+size {
			return false
		}
		if err := a.Free("tmp"); err != nil {
			return false
		}
		return a.Used() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemsPerLDM(t *testing.T) {
	if got := ElemsPerLDM(machine.LDMBytes); got != 16384 {
		t.Errorf("ElemsPerLDM(64KiB) = %d, want 16384", got)
	}
}

// TestLevel1FigureThreeEnvelopes verifies that constraint C1 with
// 4-byte elements reproduces the exact k ranges of Figure 3: the
// largest k shown per dataset passes and the next doubling fails.
func TestLevel1FigureThreeEnvelopes(t *testing.T) {
	spec := machine.MustSpec(1)
	cases := []struct {
		name     string
		d        int
		maxOK    int
		firstBad int
	}{
		{"US Census 1990", 68, 64, 128},
		{"Road Network", 4, 1024, 2048},
		{"Kegg Network", 28, 256, 512},
	}
	for _, c := range cases {
		if err := CheckLevel1(spec, c.maxOK, c.d); err != nil {
			t.Errorf("%s: CheckLevel1(k=%d,d=%d) = %v, want ok", c.name, c.maxOK, c.d, err)
		}
		err := CheckLevel1(spec, c.firstBad, c.d)
		var ce *ConstraintError
		if !errors.As(err, &ce) {
			t.Errorf("%s: CheckLevel1(k=%d,d=%d) = %v, want ConstraintError", c.name, c.firstBad, c.d, err)
			continue
		}
		if ce.Constraint != "C1" {
			t.Errorf("%s: violated %s, want C1", c.name, ce.Constraint)
		}
	}
}

func TestLevel1BoundaryConstraints(t *testing.T) {
	spec := machine.MustSpec(1)
	// C2: 3d+1 <= 16384 -> d <= 5461.
	if err := CheckLevel1(spec, 1, 5461); err != nil {
		t.Errorf("d=5461: %v, want ok", err)
	}
	err := CheckLevel1(spec, 1, 5462)
	var ce *ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != "C2" {
		t.Errorf("d=5462: got %v, want C2 violation", err)
	}
	// C3: 3k+1 <= 16384 -> k <= 5461.
	err = CheckLevel1(spec, 5462, 1)
	if !errors.As(err, &ce) || (ce.Constraint != "C3" && ce.Constraint != "C1") {
		t.Errorf("k=5462,d=1: got %v, want C3/C1 violation", err)
	}
}

func TestLevel1RejectsBadShape(t *testing.T) {
	spec := machine.MustSpec(1)
	if err := CheckLevel1(spec, 0, 10); err == nil {
		t.Error("k=0: want error")
	}
	if err := CheckLevel1(spec, 10, 0); err == nil {
		t.Error("d=0: want error")
	}
}

// TestLevel2FigureSevenLimit verifies the d ≤ 4096 stream-residency
// envelope that Figure 7 reports for Level 2.
func TestLevel2FigureSevenLimit(t *testing.T) {
	spec := machine.MustSpec(128)
	if err := CheckLevel2(spec, 2000, 4096, 64); err != nil {
		t.Errorf("k=2000,d=4096: %v, want ok (Figures 7-9 run this)", err)
	}
	err := CheckLevel2(spec, 2000, 4608, 64)
	var ce *ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != "C'2" {
		t.Errorf("k=2000,d=4608: got %v, want C'2 violation", err)
	}
}

// TestLevel2FigureFourAndEightEnvelopes: Level 2 must admit the
// largest k values the paper runs (k=100,000 on Road Network in
// Figure 4 and k=131,072 at d=4096 in Figure 8).
func TestLevel2FigureFourAndEightEnvelopes(t *testing.T) {
	spec := machine.MustSpec(256)
	if err := CheckLevel2(spec, 100000, 4, 64); err != nil {
		t.Errorf("Road k=100000: %v, want ok", err)
	}
	if err := CheckLevel2(spec, 131072, 4096, 64); err != nil {
		t.Errorf("Fig8 k=131072,d=4096: %v, want ok", err)
	}
	if err := CheckLevel2(spec, 8192, 28, 64); err != nil {
		t.Errorf("Kegg k=8192: %v, want ok", err)
	}
}

func TestLevel2DRAMConstraint(t *testing.T) {
	spec := machine.MustSpec(1)
	spec.DRAMBytesPerCG = 1 << 20 // 1 MiB: tiny DRAM
	err := CheckLevel2(spec, 10000, 100, 64)
	var ce *ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != "C'1" {
		t.Errorf("got %v, want C'1 DRAM violation", err)
	}
}

func TestLevel2MgroupRange(t *testing.T) {
	spec := machine.MustSpec(1)
	for _, m := range []int{0, -1, 65, 1000} {
		if err := CheckLevel2(spec, 16, 4, m); err == nil {
			t.Errorf("mgroup=%d: want error", m)
		}
	}
	if err := CheckLevel2(spec, 16, 4, 1); err != nil {
		t.Errorf("mgroup=1: %v, want ok", err)
	}
}

// TestLevel3HeadlineShapes: the paper's headline and capability shapes
// must be feasible at Level 3.
func TestLevel3HeadlineShapes(t *testing.T) {
	spec := machine.MustSpec(4096) // 16384 CGs
	// Figure 5/6 headline: k=2000, d=196608 with a CG group of 1024 CGs.
	if err := CheckLevel3(spec, 2000, 196608, 1024); err != nil {
		t.Errorf("headline k=2000,d=196608,m'=1024: %v, want ok", err)
	}
	// Table I capability: k=160,000, d=196,608 needs a very large group;
	// feasible on a big enough deployment.
	big := machine.MustSpec(40960)
	if err := CheckLevel3(big, 160000, 196608, 131072); err != nil {
		t.Errorf("capability k=160000,d=196608: %v, want ok", err)
	}
}

func TestLevel3DimensionLimit(t *testing.T) {
	spec := machine.MustSpec(4096)
	// C"2: 3d+1 <= 64*16384 = 1048576 -> d <= 349525; the per-CPE
	// stripe rounds d up to a multiple of 64, so the largest exactly
	// feasible d is 64*5461 = 349504.
	if err := CheckLevel3(spec, 1, 349504, 1024); err != nil {
		t.Errorf("d=349504: %v, want ok", err)
	}
	err := CheckLevel3(spec, 1, 349526, 1024)
	var ce *ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != `C"2` {
		t.Errorf("d=349526: got %v, want C\"2 violation", err)
	}
}

func TestLevel3PerCPEStripe(t *testing.T) {
	spec := machine.MustSpec(4096)
	// At d=196608 each CPE holds a 3072-element stripe; with a small
	// m'group the per-CPE centroid share overflows the LDM.
	err := CheckLevel3(spec, 2000, 196608, 700)
	var ce *ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != `C"1` {
		t.Errorf("m'group=700: got %v, want C\"1 per-CPE violation", err)
	}
	if err := CheckLevel3(spec, 2000, 196608, 1000); err != nil {
		t.Errorf("m'group=1000: %v, want ok", err)
	}
}

func TestLevel3GroupRange(t *testing.T) {
	spec := machine.MustSpec(2) // 8 CGs
	if err := CheckLevel3(spec, 4, 64, 0); err == nil {
		t.Error("m'group=0: want error")
	}
	if err := CheckLevel3(spec, 4, 64, 9); err == nil {
		t.Error("m'group>CGs: want error")
	}
	if err := CheckLevel3(spec, 4, 64, 8); err != nil {
		t.Errorf("m'group=8: %v, want ok", err)
	}
}

func TestMaxKLevel3(t *testing.T) {
	spec := machine.MustSpec(4096)
	d := 196608
	mg := 1024
	k := MaxKLevel3(spec, d, mg)
	if k <= 0 {
		t.Fatalf("MaxKLevel3 = %d, want positive", k)
	}
	if err := CheckLevel3(spec, k, d, mg); err != nil {
		t.Errorf("k=%d should be feasible: %v", k, err)
	}
	if err := CheckLevel3(spec, k+1, d, mg); err == nil {
		t.Errorf("k=%d should be infeasible", k+1)
	}
}

func TestMaxKLevel3Monotone(t *testing.T) {
	// Property: more CGs per group never reduces the feasible k.
	spec := machine.MustSpec(4096)
	f := func(mgRaw uint8) bool {
		mg := int(mgRaw)%1000 + 8
		k1 := MaxKLevel3(spec, 12288, mg)
		k2 := MaxKLevel3(spec, 12288, mg*2)
		return k2 >= k1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLevelCapabilityOrdering: the central claim of the paper's
// multi-level design — every level strictly extends the feasible
// region of the previous one on representative shapes.
func TestLevelCapabilityOrdering(t *testing.T) {
	spec := machine.MustSpec(128)
	// Shape A: moderate k, small d. Feasible everywhere.
	if err := CheckLevel1(spec, 256, 28); err != nil {
		t.Errorf("L1 shape A: %v", err)
	}
	// Shape B: large k. Infeasible at L1, feasible at L2+.
	if err := CheckLevel1(spec, 8192, 28); err == nil {
		t.Error("L1 shape B: want infeasible")
	}
	if err := CheckLevel2(spec, 8192, 28, 64); err != nil {
		t.Errorf("L2 shape B: %v", err)
	}
	// Shape C: large k AND large d. Infeasible at L2, feasible at L3.
	if err := CheckLevel2(spec, 2000, 196608, 64); err == nil {
		t.Error("L2 shape C: want infeasible")
	}
	if err := CheckLevel3(machine.MustSpec(4096), 2000, 196608, 1024); err != nil {
		t.Errorf("L3 shape C: %v", err)
	}
}

func TestConstraintErrorMessage(t *testing.T) {
	e := &ConstraintError{Constraint: "C1", Detail: "too big"}
	if !strings.Contains(e.Error(), "C1") || !strings.Contains(e.Error(), "too big") {
		t.Errorf("Error() = %q", e.Error())
	}
}
