// Package ldm simulates the 64 KB Local Directive Memory (LDM, also
// called scratch pad memory) attached to every CPE of the SW26010
// processor, and implements the paper's capacity constraints that
// govern which problem shapes each partition level can run.
//
// The LDM is a user-controlled fast buffer: there is no hardware cache
// management, so a kernel must explicitly allocate every buffer it
// needs, and a shape that does not fit simply cannot run at that
// partition level. The Allocator type reproduces this behaviour with
// byte-exact accounting, and the Constraint functions reproduce the
// closed-form feasibility tests of Section III:
//
//	Level 1:  C1:  d(1+2k)+k ≤ LDM          (one sample, all centroids)
//	          C2:  3d+1      ≤ LDM
//	          C3:  3k+1      ≤ LDM
//	Level 2:  C′1: d(1+2k)+k ≤ mgroup·LDM   (mgroup ≤ 64 CPEs share k)
//	          C′2: = C2
//	          C′3: 3k+1      ≤ mgroup·LDM
//	Level 3:  C″1: d(1+2k)+k ≤ 64·m′group·LDM  (= m·LDM, the breakthrough)
//	          C″2: 3d+1      ≤ 64·LDM
//	          C″3: 3k+1      ≤ m′group·64·LDM
//
// Constraint capacities are counted in data elements, as in the paper;
// ElemBytes converts the element capacity of one LDM from its byte
// size.
package ldm

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// ElemBytes is the size of one data element in the constraint
// arithmetic. The SW26010 implementation streams single-precision
// values, so the published capacity limits correspond to 4-byte
// elements.
const ElemBytes = 4

// ElemsPerLDM returns how many data elements fit in an LDM of the
// given byte capacity.
func ElemsPerLDM(ldmBytes int) int { return ldmBytes / ElemBytes }

// An Allocator owns the byte budget of one CPE's LDM and hands out
// named buffers. It reproduces the programming model of the real
// hardware: allocation is explicit, capacity is hard, and exhaustion
// is an error the kernel must handle by choosing a different partition
// plan.
type Allocator struct {
	capacity int
	used     int
	buffers  map[string]int
}

// NewAllocator returns an allocator over capacity bytes.
// It panics if capacity is not positive: an LDM of zero bytes is a
// configuration error, not a runtime condition.
func NewAllocator(capacity int) *Allocator {
	if capacity <= 0 {
		panic(fmt.Sprintf("ldm: capacity must be positive, got %d", capacity))
	}
	return &Allocator{capacity: capacity, buffers: make(map[string]int)}
}

// CapacityError reports an allocation that exceeded the LDM budget.
type CapacityError struct {
	Name      string // buffer being allocated
	Requested int    // bytes requested
	Free      int    // bytes available
	Capacity  int    // total LDM bytes
}

// Error implements the error interface.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("ldm: buffer %q needs %d B but only %d of %d B free",
		e.Name, e.Requested, e.Free, e.Capacity)
}

// Alloc reserves size bytes under the given name. Reusing a live name
// or requesting a non-positive size is a programming error reported as
// an error value (the simulated kernel treats it like a compile error).
func (a *Allocator) Alloc(name string, size int) error {
	if size <= 0 {
		return fmt.Errorf("ldm: buffer %q size must be positive, got %d", name, size)
	}
	if _, live := a.buffers[name]; live {
		return fmt.Errorf("ldm: buffer %q already allocated", name)
	}
	if a.used+size > a.capacity {
		return &CapacityError{Name: name, Requested: size, Free: a.capacity - a.used, Capacity: a.capacity}
	}
	a.buffers[name] = size
	a.used += size
	return nil
}

// AllocFloats reserves a buffer of n data elements.
func (a *Allocator) AllocFloats(name string, n int) error {
	return a.Alloc(name, n*ElemBytes)
}

// Free releases the named buffer.
func (a *Allocator) Free(name string) error {
	size, live := a.buffers[name]
	if !live {
		return fmt.Errorf("ldm: buffer %q not allocated", name)
	}
	delete(a.buffers, name)
	a.used -= size
	return nil
}

// Used returns the bytes currently reserved.
func (a *Allocator) Used() int { return a.used }

// Free bytes remaining.
func (a *Allocator) FreeBytes() int { return a.capacity - a.used }

// Capacity returns the total LDM size in bytes.
func (a *Allocator) Capacity() int { return a.capacity }

// Buffers returns the live buffer names in sorted order.
func (a *Allocator) Buffers() []string {
	names := make([]string, 0, len(a.buffers))
	for n := range a.buffers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConstraintError reports a problem shape that violates one of the
// paper's capacity constraints at a given partition level.
type ConstraintError struct {
	Constraint string // e.g. "C1", "C'3", `C"1`
	Detail     string
}

// Error implements the error interface.
func (e *ConstraintError) Error() string {
	return fmt.Sprintf("ldm: constraint %s violated: %s", e.Constraint, e.Detail)
}

// footprint returns the element count of the Level-1 working set on
// one computing unit holding kLocal centroids of dimension dLocal plus
// one sample slice: d(1+2k)+k in the paper's notation.
func footprint(dLocal, kLocal int) int {
	return dLocal*(1+2*kLocal) + kLocal
}

// CheckLevel1 validates constraints C1-C3 for a Level-1 run: every CPE
// holds one whole d-dimensional sample, all k centroids, the k partial
// centroid sums and the k counters.
func CheckLevel1(spec *machine.Spec, k, d int) error {
	if err := checkShape(k, d); err != nil {
		return err
	}
	cap1 := ElemsPerLDM(spec.LDMBytesPerCPE)
	if 3*d+1 > cap1 {
		return &ConstraintError{"C2", fmt.Sprintf("3d+1 = %d > LDM = %d elements", 3*d+1, cap1)}
	}
	if 3*k+1 > cap1 {
		return &ConstraintError{"C3", fmt.Sprintf("3k+1 = %d > LDM = %d elements", 3*k+1, cap1)}
	}
	if fp := footprint(d, k); fp > cap1 {
		return &ConstraintError{"C1", fmt.Sprintf("d(1+2k)+k = %d > LDM = %d elements", fp, cap1)}
	}
	return nil
}

// CheckLevel2 validates the Level-2 feasibility conditions where
// mgroup CPEs of one CG partition the k centroids.
//
// A literal group-level C′1 would forbid the paper's own Level-2
// operating points (e.g. k = 2000, d = 4096 in Figures 7-9), so — as
// the real implementation must — the centroid set of a CG is held in
// the CG's share of node main memory and tiled through LDM by DMA.
// The binding LDM condition is then stream residency: every CPE keeps
// two sample stream buffers (double-buffered DMA), one centroid tile
// and one accumulator tile, each of d elements: 4d ≤ LDM. With the
// published 64 KB LDM and 4-byte elements this yields d ≤ 4096,
// exactly the limit Figure 7 reports for Level 2.
func CheckLevel2(spec *machine.Spec, k, d, mgroup int) error {
	if err := checkShape(k, d); err != nil {
		return err
	}
	if mgroup < 1 || mgroup > machine.CPEsPerCG {
		return fmt.Errorf("ldm: mgroup must be in [1,%d], got %d", machine.CPEsPerCG, mgroup)
	}
	cap1 := ElemsPerLDM(spec.LDMBytesPerCPE)
	capGroup := mgroup * cap1
	if 4*d > cap1 {
		return &ConstraintError{"C'2", fmt.Sprintf("stream residency 4d = %d > LDM = %d elements", 4*d, cap1)}
	}
	if 3*k+1 > capGroup {
		return &ConstraintError{"C'3", fmt.Sprintf("3k+1 = %d > mgroup*LDM = %d elements", 3*k+1, capGroup)}
	}
	// Centroids, their accumulated sums and counters live in the CG's
	// share of node DRAM and are tiled through LDM.
	need := int64(3) * int64(k) * int64(d) * ElemBytes
	if need > spec.DRAMBytesPerCG {
		return &ConstraintError{"C'1", fmt.Sprintf("centroid working set 3kd = %d B > per-CG DRAM = %d B", need, spec.DRAMBytesPerCG)}
	}
	return nil
}

// CheckLevel3 validates constraints C″1-C″3 for a Level-3 run where
// one CG of 64 CPEs holds a d-striped sample and m′group CGs partition
// the k centroids.
func CheckLevel3(spec *machine.Spec, k, d, mPrimeGroup int) error {
	if err := checkShape(k, d); err != nil {
		return err
	}
	if mPrimeGroup < 1 || mPrimeGroup > spec.CGs() {
		return fmt.Errorf("ldm: m'group must be in [1,%d], got %d", spec.CGs(), mPrimeGroup)
	}
	cap1 := ElemsPerLDM(spec.LDMBytesPerCPE)
	capCG := machine.CPEsPerCG * cap1
	capGroup := mPrimeGroup * capCG
	if 3*d+1 > capCG {
		return &ConstraintError{`C"2`, fmt.Sprintf("3d+1 = %d > 64*LDM = %d elements", 3*d+1, capCG)}
	}
	if 3*k+1 > capGroup {
		return &ConstraintError{`C"3`, fmt.Sprintf("3k+1 = %d > m'group*64*LDM = %d elements", 3*k+1, capGroup)}
	}
	if fp := footprint(d, k); fp > capGroup {
		return &ConstraintError{`C"1`, fmt.Sprintf("d(1+2k)+k = %d > m'group*64*LDM = %d elements", fp, capGroup)}
	}
	// Per-CPE working set: a d/64 dimension stripe of one sample and of
	// the CG's k/m'group centroid share, plus the counters.
	dLocal := ceilDiv(d, machine.CPEsPerCG)
	kLocal := ceilDiv(k, mPrimeGroup)
	if fp := footprint(dLocal, kLocal); fp > cap1 {
		return &ConstraintError{`C"1`, fmt.Sprintf("per-CPE stripe (d/64)(1+2·k/m'group)+k/m'group = %d > LDM = %d elements", fp, cap1)}
	}
	return nil
}

// CheckLevel3Tiled validates the relaxed Level-3 feasibility used when
// no CG group size achieves full per-CPE residency (the regime the
// paper's Figure 9 runs at its smallest node counts): the centroid
// stripes of a CG live in its DRAM share and are tiled through LDM,
// so the hard conditions are only the sample-stripe stream residency,
// the group-level counter constraint and the DRAM capacity.
func CheckLevel3Tiled(spec *machine.Spec, k, d, mPrimeGroup int) error {
	if err := checkShape(k, d); err != nil {
		return err
	}
	if mPrimeGroup < 1 || mPrimeGroup > spec.CGs() {
		return fmt.Errorf("ldm: m'group must be in [1,%d], got %d", spec.CGs(), mPrimeGroup)
	}
	cap1 := ElemsPerLDM(spec.LDMBytesPerCPE)
	capCG := machine.CPEsPerCG * cap1
	capGroup := mPrimeGroup * capCG
	dStripe := ceilDiv(d, machine.CPEsPerCG)
	if 4*dStripe > cap1 {
		return &ConstraintError{`C"2`, fmt.Sprintf("stream residency 4(d/64) = %d > LDM = %d elements", 4*dStripe, cap1)}
	}
	if 3*k+1 > capGroup {
		return &ConstraintError{`C"3`, fmt.Sprintf("3k+1 = %d > m'group*64*LDM = %d elements", 3*k+1, capGroup)}
	}
	kLocal := ceilDiv(k, mPrimeGroup)
	need := int64(3) * int64(kLocal) * int64(d) * ElemBytes
	if need > spec.DRAMBytesPerCG {
		return &ConstraintError{`C"1`, fmt.Sprintf("centroid slice working set 3(k/m')d = %d B > per-CG DRAM = %d B", need, spec.DRAMBytesPerCG)}
	}
	return nil
}

// MaxKLevel3 returns the largest k that satisfies the Level-3
// constraints for the given d and m′group on the spec, or 0 when even
// k = 1 does not fit.
func MaxKLevel3(spec *machine.Spec, d, mPrimeGroup int) int {
	lo, hi := 0, 1
	for CheckLevel3(spec, hi, d, mPrimeGroup) == nil {
		lo = hi
		hi *= 2
		if hi > 1<<30 {
			break
		}
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if CheckLevel3(spec, mid, d, mPrimeGroup) == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func checkShape(k, d int) error {
	if k < 1 {
		return fmt.Errorf("ldm: centroid count k must be at least 1, got %d", k)
	}
	if d < 1 {
		return fmt.Errorf("ldm: dimension d must be at least 1, got %d", d)
	}
	return nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
