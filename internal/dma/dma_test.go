package dma

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestNewValidates(t *testing.T) {
	spec := machine.MustSpec(1)
	spec.BW.DMA = 0
	if _, err := New(spec, nil); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestMustNewPanics(t *testing.T) {
	spec := machine.MustSpec(1)
	spec.BW.DMA = -1
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(spec, nil)
}

func TestGetCopiesAndAccounts(t *testing.T) {
	stats := trace.NewStats()
	e := MustNew(machine.MustSpec(1), stats)
	clock := vclock.New()
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	if err := e.Get(clock, dst, src); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], src[i])
		}
	}
	snap := stats.Snapshot()
	if snap.DMABytes != int64(4*ldm.ElemBytes) {
		t.Errorf("DMABytes = %d, want %d", snap.DMABytes, 4*ldm.ElemBytes)
	}
	if snap.DMATransfers != 1 {
		t.Errorf("DMATransfers = %d, want 1", snap.DMATransfers)
	}
	want := e.TransferTime(4)
	if math.Abs(clock.Now()-want) > 1e-18 {
		t.Errorf("clock = %g, want %g", clock.Now(), want)
	}
}

func TestPutCopiesBack(t *testing.T) {
	e := MustNew(machine.MustSpec(1), nil)
	clock := vclock.New()
	ldmBuf := []float64{9, 8}
	mem := make([]float64, 2)
	if err := e.Put(clock, mem, ldmBuf); err != nil {
		t.Fatal(err)
	}
	if mem[0] != 9 || mem[1] != 8 {
		t.Errorf("mem = %v", mem)
	}
	if clock.Now() <= 0 {
		t.Error("Put did not advance the clock")
	}
}

func TestTransferMismatch(t *testing.T) {
	e := MustNew(machine.MustSpec(1), nil)
	if err := e.Get(vclock.New(), make([]float64, 2), make([]float64, 3)); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestEmptyTransferIsFree(t *testing.T) {
	stats := trace.NewStats()
	e := MustNew(machine.MustSpec(1), stats)
	clock := vclock.New()
	if err := e.Get(clock, nil, nil); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Errorf("empty transfer advanced clock to %g", clock.Now())
	}
	if stats.Snapshot().DMATransfers != 0 {
		t.Error("empty transfer was counted")
	}
}

func TestTransferTimeModel(t *testing.T) {
	spec := machine.MustSpec(1)
	e := MustNew(spec, nil)
	if got := e.TransferTime(0); got != 0 {
		t.Errorf("TransferTime(0) = %g, want 0", got)
	}
	one := e.TransferTime(1)
	if one <= spec.BW.DMALatency {
		t.Errorf("TransferTime(1) = %g, should exceed the latency %g", one, spec.BW.DMALatency)
	}
	// Large transfers amortize latency: time per element decreases.
	big := e.TransferTime(1 << 20)
	wantBW := float64(1<<20*ldm.ElemBytes) / spec.BW.DMA
	if math.Abs(big-spec.BW.DMALatency-wantBW) > 1e-12 {
		t.Errorf("TransferTime(1M) = %g, want latency+%g", big, wantBW)
	}
}

func TestCharge(t *testing.T) {
	stats := trace.NewStats()
	e := MustNew(machine.MustSpec(1), stats)
	clock := vclock.New()
	e.Charge(clock, 100)
	if stats.Snapshot().DMABytes != int64(100*ldm.ElemBytes) {
		t.Errorf("DMABytes = %d", stats.Snapshot().DMABytes)
	}
	if clock.Now() != e.TransferTime(100) {
		t.Errorf("clock = %g, want %g", clock.Now(), e.TransferTime(100))
	}
	before := clock.Now()
	e.Charge(clock, 0)
	e.Charge(clock, -4)
	if clock.Now() != before {
		t.Error("zero/negative charge advanced the clock")
	}
}

func TestNilClockAccountsTrafficOnly(t *testing.T) {
	stats := trace.NewStats()
	e := MustNew(machine.MustSpec(1), stats)
	if err := e.Get(nil, make([]float64, 2), []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot().DMABytes == 0 {
		t.Error("traffic not recorded with nil clock")
	}
}

func TestWithFaultsRetriesAreDeterministic(t *testing.T) {
	spec := machine.MustSpec(1)
	run := func() (float64, int64) {
		stats := trace.NewStats()
		e := MustNew(spec, stats).WithFaults(
			fault.MustInjector(fault.Plan{Seed: 3, DMAFailRate: 0.4, MaxRetries: 8}), 0)
		clock := vclock.New()
		buf := make([]float64, 64)
		src := make([]float64, 64)
		for i := 0; i < 200; i++ {
			if err := e.Get(clock, buf, src); err != nil {
				t.Fatal(err)
			}
		}
		return clock.Now(), stats.Snapshot().DMARetries
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("identical faulty runs diverged: %.12g/%d vs %.12g/%d", t1, r1, t2, r2)
	}
	if r1 == 0 {
		t.Fatal("rate 0.4 over 200 transfers produced no retries")
	}
	cleanClock := vclock.New()
	e := MustNew(spec, nil)
	for i := 0; i < 200; i++ {
		if err := e.Get(cleanClock, make([]float64, 64), make([]float64, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if t1 <= cleanClock.Now() {
		t.Errorf("faulty run %.12g not slower than clean run %.12g", t1, cleanClock.Now())
	}
}

func TestWithFaultsPermanentFailure(t *testing.T) {
	e := MustNew(machine.MustSpec(1), trace.NewStats()).WithFaults(
		fault.MustInjector(fault.Plan{DMAFailRate: 1, MaxRetries: 2}), 0)
	err := e.Put(vclock.New(), make([]float64, 8), make([]float64, 8))
	if !errors.Is(err, fault.ErrDMAFailed) {
		t.Fatalf("rate-1 transfer error = %v, want fault.ErrDMAFailed", err)
	}
}

func TestWithFaultsLeavesReceiverClean(t *testing.T) {
	e := MustNew(machine.MustSpec(1), nil)
	_ = e.WithFaults(fault.MustInjector(fault.Plan{DMAFailRate: 1}), 0)
	if err := e.Get(vclock.New(), make([]float64, 4), make([]float64, 4)); err != nil {
		t.Fatalf("original engine became faulty: %v", err)
	}
}
