// Package dma simulates the DMA engine that moves data between a core
// group's share of main memory and the LDM scratchpads of its CPEs.
// On the real SW26010 the CPE cluster issues explicit DMA get/put
// requests and the aggregate bandwidth of one CG is about 32 GB/s; the
// simulated engine performs the copy functionally (so kernels compute
// on real data), records the traffic in trace counters and charges the
// virtual clock with the transfer time.
//
// Modelled bytes are accounted at ldm.ElemBytes per element to match
// the single-precision arithmetic of the paper's implementation, even
// though the host computes in float64.
package dma

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Engine is the DMA controller of one core group.
type Engine struct {
	bw      float64 // bytes per second
	latency float64 // seconds per transfer
	stats   *trace.Stats
	inj     *fault.Injector // nil when no faults are injected
	cg      int             // core group the injector attributes faults to
	unit    *obs.Unit       // span sink of the issuing CPE; nil disables
}

// New returns a DMA engine with the spec's published bandwidth and
// latency. The stats sink may be nil to disable accounting.
func New(spec *machine.Spec, stats *trace.Stats) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("dma: %w", err)
	}
	return &Engine{bw: spec.BW.DMA, latency: spec.BW.DMALatency, stats: stats}, nil
}

// MustNew is New that panics on error.
func MustNew(spec *machine.Spec, stats *trace.Stats) *Engine {
	e, err := New(spec, stats)
	if err != nil {
		panic(err)
	}
	return e
}

// WithFaults returns a derived engine whose transfers consult the
// injector for transient failures attributed to core group cg. Each
// transiently failed attempt is retried after an exponential backoff,
// with the wasted transfer time and the backoff charged to the virtual
// clock; once the retry budget is exhausted the transfer fails with an
// error wrapping fault.ErrDMAFailed. The receiver is unchanged.
func (e *Engine) WithFaults(inj *fault.Injector, cg int) *Engine {
	d := *e
	d.inj = inj
	d.cg = cg
	return &d
}

// WithObserver returns a derived engine that records every transfer as
// a "dma" span on the unit — retries included, so the span covers what
// the transfer really cost the issuing CPE. A nil unit returns the
// receiver unchanged, keeping the unobserved path allocation-free.
func (e *Engine) WithObserver(u *obs.Unit) *Engine {
	if u == nil {
		return e
	}
	d := *e
	d.unit = u
	return &d
}

// TransferTime returns the modelled duration of moving n elements.
func (e *Engine) TransferTime(elems int) float64 {
	if elems <= 0 {
		return 0
	}
	return e.latency + float64(elems*ldm.ElemBytes)/e.bw
}

// Get copies src from simulated main memory into the LDM destination
// buffer dst, charging clock with the transfer time. It is the
// simulated equivalent of athread DMA get. dst and src must have equal
// length.
func (e *Engine) Get(clock *vclock.Clock, dst, src []float64) error {
	return e.transfer(clock, dst, src)
}

// Put copies the LDM source buffer src back to simulated main memory
// dst, charging clock with the transfer time (DMA put).
func (e *Engine) Put(clock *vclock.Clock, dst, src []float64) error {
	return e.transfer(clock, dst, src)
}

func (e *Engine) transfer(clock *vclock.Clock, dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("dma: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	if len(src) == 0 {
		return nil
	}
	start := e.spanStart(clock)
	if err := e.faultDelay(clock, len(src)); err != nil {
		return err
	}
	copy(dst, src)
	e.account(clock, len(src))
	e.spanEnd(clock, start, len(src))
	return nil
}

// spanStart captures the virtual time a transfer begins, when spans
// are being recorded.
func (e *Engine) spanStart(clock *vclock.Clock) float64 {
	if e.unit == nil || clock == nil {
		return 0
	}
	return clock.Now()
}

// spanEnd records the whole transfer — retries and backoff included —
// as one "dma" span of elems modelled elements.
func (e *Engine) spanEnd(clock *vclock.Clock, start float64, elems int) {
	if e.unit == nil || clock == nil {
		return
	}
	e.unit.Record(obs.KindDMA, start, clock.Now(), int64(elems*ldm.ElemBytes), 0)
}

// faultDelay charges the retry cost of transient DMA faults for a
// transfer of elems elements. The fault decision for each attempt is a
// pure hash of (cg, virtual time, elems, attempt), so identical runs
// replay identical fault streams regardless of goroutine scheduling.
func (e *Engine) faultDelay(clock *vclock.Clock, elems int) error {
	if e.inj == nil {
		return nil
	}
	tt := e.TransferTime(elems)
	now := 0.0
	if clock != nil {
		now = clock.Now()
	}
	for attempt := 0; e.inj.DMAFault(e.cg, now, elems, attempt); attempt++ {
		if attempt >= e.inj.MaxRetries() {
			return fmt.Errorf("dma: CG %d transfer of %d elems at t=%.9fs exhausted %d retries: %w",
				e.cg, elems, now, e.inj.MaxRetries(), fault.ErrDMAFailed)
		}
		cost := tt + e.inj.Backoff(attempt+1)
		e.stats.AddDMARetry(1, cost)
		if clock != nil {
			clock.Advance(cost)
			now = clock.Now()
		}
	}
	return nil
}

// Charge accounts for a transfer of elems elements without performing
// a copy. Engines use it when data is produced directly into the
// destination (for example a streaming dataset source writing into an
// LDM buffer) but the traffic still crossed the memory interface.
func (e *Engine) Charge(clock *vclock.Clock, elems int) {
	if elems <= 0 {
		return
	}
	start := e.spanStart(clock)
	e.account(clock, elems)
	e.spanEnd(clock, start, elems)
}

func (e *Engine) account(clock *vclock.Clock, elems int) {
	e.stats.AddDMA(int64(elems * ldm.ElemBytes))
	if clock != nil {
		clock.Advance(e.TransferTime(elems))
	}
}
