// Package dma simulates the DMA engine that moves data between a core
// group's share of main memory and the LDM scratchpads of its CPEs.
// On the real SW26010 the CPE cluster issues explicit DMA get/put
// requests and the aggregate bandwidth of one CG is about 32 GB/s; the
// simulated engine performs the copy functionally (so kernels compute
// on real data), records the traffic in trace counters and charges the
// virtual clock with the transfer time.
//
// Modelled bytes are accounted at ldm.ElemBytes per element to match
// the single-precision arithmetic of the paper's implementation, even
// though the host computes in float64.
package dma

import (
	"fmt"

	"repro/internal/ldm"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Engine is the DMA controller of one core group.
type Engine struct {
	bw      float64 // bytes per second
	latency float64 // seconds per transfer
	stats   *trace.Stats
}

// New returns a DMA engine with the spec's published bandwidth and
// latency. The stats sink may be nil to disable accounting.
func New(spec *machine.Spec, stats *trace.Stats) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("dma: %w", err)
	}
	return &Engine{bw: spec.BW.DMA, latency: spec.BW.DMALatency, stats: stats}, nil
}

// MustNew is New that panics on error.
func MustNew(spec *machine.Spec, stats *trace.Stats) *Engine {
	e, err := New(spec, stats)
	if err != nil {
		panic(err)
	}
	return e
}

// TransferTime returns the modelled duration of moving n elements.
func (e *Engine) TransferTime(elems int) float64 {
	if elems <= 0 {
		return 0
	}
	return e.latency + float64(elems*ldm.ElemBytes)/e.bw
}

// Get copies src from simulated main memory into the LDM destination
// buffer dst, charging clock with the transfer time. It is the
// simulated equivalent of athread DMA get. dst and src must have equal
// length.
func (e *Engine) Get(clock *vclock.Clock, dst, src []float64) error {
	return e.transfer(clock, dst, src)
}

// Put copies the LDM source buffer src back to simulated main memory
// dst, charging clock with the transfer time (DMA put).
func (e *Engine) Put(clock *vclock.Clock, dst, src []float64) error {
	return e.transfer(clock, dst, src)
}

func (e *Engine) transfer(clock *vclock.Clock, dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("dma: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	if len(src) == 0 {
		return nil
	}
	copy(dst, src)
	e.account(clock, len(src))
	return nil
}

// Charge accounts for a transfer of elems elements without performing
// a copy. Engines use it when data is produced directly into the
// destination (for example a streaming dataset source writing into an
// LDM buffer) but the traffic still crossed the memory interface.
func (e *Engine) Charge(clock *vclock.Clock, elems int) {
	if elems <= 0 {
		return
	}
	e.account(clock, elems)
}

func (e *Engine) account(clock *vclock.Clock, elems int) {
	e.stats.AddDMA(int64(elems * ldm.ElemBytes))
	if clock != nil {
		clock.Advance(e.TransferTime(elems))
	}
}
