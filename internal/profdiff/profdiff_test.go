package profdiff

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeProfile renders a synthetic recorder's profile to a temp file.
func writeProfile(t *testing.T, dir, name string, drive func(*obs.Recorder)) string {
	t.Helper()
	r := obs.NewRollupRecorder()
	drive(r)
	var buf bytes.Buffer
	if err := obs.WriteProfileJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func drive(extraCompute float64) func(*obs.Recorder) {
	return func(r *obs.Recorder) {
		for g := 0; g < 2; g++ {
			u := r.Unit("rank/" + string(rune('0'+g)))
			u.SetIter(0)
			u.Record(obs.KindCompute, 0, 1+extraCompute, 0, 100)
			u.Record(obs.KindDMA, 1+extraCompute, 1.5+extraCompute, 64, 0)
			u.Finish(1.5 + extraCompute)
		}
		r.AddCounter("sched:dispatches", 10)
	}
}

func TestDiffIdenticalProfiles(t *testing.T) {
	dir := t.TempDir()
	a := writeProfile(t, dir, "a.json", drive(0))
	b := writeProfile(t, dir, "b.json", drive(0))
	ta, err := LoadObs(a)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := LoadObs(b)
	if err != nil {
		t.Fatal(err)
	}
	rows := Diff(ta, tb)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if changed := Changed(rows, 0); len(changed) != 0 {
		t.Errorf("identical profiles report %d changed rows: %+v", len(changed), changed)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	ta, err := LoadObs(writeProfile(t, dir, "a.json", drive(0)))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := LoadObs(writeProfile(t, dir, "b.json", drive(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	rows := Diff(ta, tb)
	var compute *Row
	for i := range rows {
		if rows[i].Key == "rank/compute_seconds" {
			compute = &rows[i]
		}
	}
	if compute == nil {
		t.Fatalf("no rank/compute_seconds row in %+v", rows)
	}
	// 2 ranks × +0.5s on a 1s baseline: +50%.
	if math.Abs(compute.Rel()-0.5) > 1e-9 {
		t.Errorf("compute rel delta %g, want 0.5", compute.Rel())
	}
	// A 10% threshold flags it; a 100% threshold does not.
	if len(Changed(rows, 0.10)) == 0 {
		t.Error("10% threshold missed a 50% regression")
	}
	for _, r := range Changed(rows, 1.0) {
		if r.Key == "rank/compute_seconds" {
			t.Error("100% threshold flagged a 50% regression")
		}
	}
}

func TestLoadObsMetricsJSONL(t *testing.T) {
	dir := t.TempDir()
	// A metrics log's rank_iter lines normalize into the same row
	// space as a profile of the same run.
	r := obs.NewRecorder()
	drive(0)(r)
	var jsonl bytes.Buffer
	if err := obs.WriteMetricsJSONL(&jsonl, r); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, "m.jsonl")
	if err := os.WriteFile(jp, jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tj, err := LoadObs(jp)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := LoadObs(writeProfile(t, dir, "p.json", drive(0)))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range Diff(tj, tp) {
		// The profile has counter/units rows the JSONL lacks; the
		// shared phase rows must agree exactly.
		if strings.Contains(row.Key, "_seconds") && row.InOld && row.InNew && row.Rel() != 0 {
			t.Errorf("phase row %s differs across formats: %g vs %g", row.Key, row.Old, row.New)
		}
	}
}

func TestLoadObsRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	if err := os.WriteFile(p, []byte("not an export\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadObs(p); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadObs(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadBenchAndDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := write("old.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":10,"ns_per_op":100},{"name":"BenchmarkB-8","iters":10,"ns_per_op":200}]}`)
	cur := write("new.json", `{"host":"h","benchmarks":[{"name":"BenchmarkA-8","iters":10,"ns_per_op":150},{"name":"BenchmarkC-8","iters":10,"ns_per_op":50}]}`)
	to, err := LoadBench(old)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := LoadBench(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows := Diff(to, tn)
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	if r := byKey["bench:BenchmarkA-8"]; math.Abs(r.Rel()-0.5) > 1e-9 {
		t.Errorf("A rel %g, want 0.5", r.Rel())
	}
	if r := byKey["bench:BenchmarkB-8"]; r.InNew {
		t.Error("B should be gone in new")
	}
	if r := byKey["bench:BenchmarkC-8"]; r.InOld || !math.IsInf(r.Rel(), 1) {
		t.Errorf("C should be new-only with +Inf rel, got %+v", r)
	}
	var buf bytes.Buffer
	if err := Render(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bench:BenchmarkA-8", "+50.00%", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
