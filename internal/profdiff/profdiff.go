// Package profdiff compares two observability exports — aggregate
// profiles (swkm-profile/1), JSONL metrics logs, or benchjson reports
// — as flat tables of named scalars with absolute and relative
// deltas. It is the shared engine of cmd/obsdiff and `benchjson
// -diff`: loaders normalize each format into the same row space, so
// "did this run regress" is one code path regardless of which export
// the runs kept.
package profdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Row is one compared quantity.
type Row struct {
	Key string
	Old float64
	New float64
	// InOld/InNew distinguish a genuine zero from an absent key.
	InOld bool
	InNew bool
}

// Delta returns New - Old.
func (r Row) Delta() float64 { return r.New - r.Old }

// Rel returns the relative change (New-Old)/|Old|. A zero or absent
// old value with a different new value reports +Inf (appeared /
// grew from nothing); identical values report 0.
func (r Row) Rel() float64 {
	//swlint:ignore float-eq -- the determinism contract is bit-exact: two byte-identical exports must diff to exactly zero, so a tolerance here would mask real drift
	if r.Old == r.New {
		return 0
	}
	//swlint:ignore float-eq -- a literal zero baseline (row absent or truly 0) is an exact sentinel, not a computed value
	if r.Old == 0 {
		return math.Inf(1)
	}
	return (r.New - r.Old) / math.Abs(r.Old)
}

// Table is a named-scalar view of one export.
type Table struct {
	// Label describes the source (file path) for rendering.
	Label string
	vals  map[string]float64
	keys  []string // insertion order
}

// NewTable returns an empty table.
func NewTable(label string) *Table {
	return &Table{Label: label, vals: make(map[string]float64)}
}

// Add accumulates v under key, tracking first-insertion order.
func (t *Table) Add(key string, v float64) {
	if _, ok := t.vals[key]; !ok {
		t.keys = append(t.keys, key)
	}
	t.vals[key] += v
}

// Diff joins two tables over the union of their keys, sorted, so the
// row order is a pure function of the key set.
func Diff(old, new *Table) []Row {
	keys := append([]string(nil), old.keys...)
	for _, k := range new.keys {
		if _, ok := old.vals[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	rows := make([]Row, 0, len(keys))
	for _, k := range keys {
		ov, inOld := old.vals[k]
		nv, inNew := new.vals[k]
		rows = append(rows, Row{Key: k, Old: ov, New: nv, InOld: inOld, InNew: inNew})
	}
	return rows
}

// Changed filters rows whose relative change exceeds threshold (an
// absolute rel-delta bound; 0 keeps every non-identical row).
func Changed(rows []Row, threshold float64) []Row {
	var out []Row
	for _, r := range rows {
		if math.Abs(r.Rel()) > threshold {
			out = append(out, r)
		}
	}
	return out
}

// Render writes the rows as an aligned table. When onlyChanged is
// set, identical rows are skipped and a one-line summary notes how
// many matched.
func Render(w io.Writer, rows []Row, onlyChanged bool) error {
	bw := bufio.NewWriter(w)
	same := 0
	fmt.Fprintf(bw, "%-44s %16s %16s %12s %9s\n", "key", "old", "new", "delta", "rel")
	for _, r := range rows {
		//swlint:ignore float-eq -- Rel returns literal 0 only for bit-identical values; this classifies "unchanged" rows, not a numeric closeness test
		if r.Rel() == 0 {
			same++
			if onlyChanged {
				continue
			}
		}
		rel := "-"
		//swlint:ignore float-eq -- same bit-identical classification as above: nonzero means the stored values differed
		if rr := r.Rel(); rr != 0 {
			if math.IsInf(rr, 1) {
				rel = "new"
			} else {
				rel = fmt.Sprintf("%+.2f%%", 100*rr)
			}
		}
		if !r.InNew {
			rel = "gone"
		}
		fmt.Fprintf(bw, "%-44s %16.6g %16.6g %12.6g %9s\n", r.Key, r.Old, r.New, r.Delta(), rel)
	}
	if onlyChanged {
		fmt.Fprintf(bw, "(%d identical row(s) hidden)\n", same)
	}
	return bw.Flush()
}

// phaseCols maps the column names used in row keys to extractors, in
// render order.
var phaseCols = []struct {
	name string
	get  func(obs.ProfilePhases) float64
}{
	{"compute_seconds", func(p obs.ProfilePhases) float64 { return p.Compute }},
	{"dma_seconds", func(p obs.ProfilePhases) float64 { return p.DMA }},
	{"regcomm_seconds", func(p obs.ProfilePhases) float64 { return p.Reg }},
	{"mpi_seconds", func(p obs.ProfilePhases) float64 { return p.MPI }},
	{"recovery_seconds", func(p obs.ProfilePhases) float64 { return p.Recovery }},
	{"other_seconds", func(p obs.ProfilePhases) float64 { return p.Other }},
	{"total_seconds", func(p obs.ProfilePhases) float64 { return p.Total }},
}

// addPhases folds one phase breakdown under a key prefix.
func addPhases(t *Table, prefix string, p obs.ProfilePhases) {
	for _, c := range phaseCols {
		t.Add(prefix+"/"+c.name, c.get(p))
	}
}

// LoadObs loads an observability export into a table, sniffing the
// format: an aggregate profile JSON document (swkm-profile/1) or a
// JSONL metrics log (whose rank_iter lines carry the same phase
// seconds). Both normalize to per-(unit class, phase) seconds plus a
// run total, so the two formats diff against each other.
func LoadObs(path string) (*Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeft(string(raw), " \t\r\n")
	t := NewTable(path)
	if strings.HasPrefix(trimmed, "{") && strings.Contains(trimmed[:min(len(trimmed), 256)], obs.ProfileSchema) {
		var p obs.Profile
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("profdiff: %s: parsing profile: %w", path, err)
		}
		if p.Schema != obs.ProfileSchema {
			return nil, fmt.Errorf("profdiff: %s: schema %q, want %q", path, p.Schema, obs.ProfileSchema)
		}
		var run obs.ProfilePhases
		for _, c := range p.Classes {
			addPhases(t, c.Class, c.Phases)
			t.Add(c.Class+"/units", float64(c.Units))
			run = sumPhases(run, c.Phases)
		}
		addPhases(t, "run", run)
		for _, c := range p.Counters {
			t.Add("counter:"+c.Name, float64(c.Value))
		}
		return t, nil
	}
	// JSONL metrics log: fold rank_iter lines by unit class.
	type rankIter struct {
		Type     string  `json:"type"`
		Unit     string  `json:"unit"`
		Compute  float64 `json:"compute_seconds"`
		DMA      float64 `json:"dma_seconds"`
		Reg      float64 `json:"regcomm_seconds"`
		MPI      float64 `json:"mpi_seconds"`
		Recovery float64 `json:"recovery_seconds"`
		Other    float64 `json:"other_seconds"`
		Total    float64 `json:"total_seconds"`
	}
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var run obs.ProfilePhases
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ri rankIter
		if err := json.Unmarshal([]byte(line), &ri); err != nil {
			return nil, fmt.Errorf("profdiff: %s: parsing JSONL line: %w", path, err)
		}
		if ri.Type != "rank_iter" {
			continue
		}
		ph := obs.ProfilePhases{
			Compute: ri.Compute, DMA: ri.DMA, Reg: ri.Reg, MPI: ri.MPI,
			Recovery: ri.Recovery, Other: ri.Other, Total: ri.Total,
		}
		addPhases(t, obs.UnitClass(ri.Unit), ph)
		run = sumPhases(run, ph)
		lines++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profdiff: %s: reading: %w", path, err)
	}
	if lines == 0 {
		return nil, fmt.Errorf("profdiff: %s: neither a %s profile nor a metrics JSONL with rank_iter lines", path, obs.ProfileSchema)
	}
	addPhases(t, "run", run)
	return t, nil
}

func sumPhases(a, b obs.ProfilePhases) obs.ProfilePhases {
	return obs.ProfilePhases{
		Compute: a.Compute + b.Compute, DMA: a.DMA + b.DMA,
		Reg: a.Reg + b.Reg, MPI: a.MPI + b.MPI,
		Recovery: a.Recovery + b.Recovery, Other: a.Other + b.Other,
		Total: a.Total + b.Total,
	}
}

// benchReport is the subset of cmd/benchjson's schema the diff needs.
type benchReport struct {
	Host    string `json:"host"`
	Results []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// LoadBench loads a benchjson report as a table of ns/op per
// benchmark name.
func LoadBench(path string) (*Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("profdiff: %s: parsing bench report: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("profdiff: %s: no benchmarks in report", path)
	}
	t := NewTable(path)
	for _, r := range rep.Results {
		t.Add("bench:"+r.Name, r.NsPerOp)
	}
	return t, nil
}
