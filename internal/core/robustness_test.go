package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/quality"
)

// TestEnginesOnHardMixture: anisotropic noise, imbalanced masses and
// uniform outliers must not break engine/Lloyd agreement, and the
// clustering must still separate the dominant structure.
func TestEnginesOnHardMixture(t *testing.T) {
	h, err := dataset.NewHardMixture("hard", 600, 10, 4, 0.12, 2.0, 3, 0.08, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Lloyd(h, 4, 25, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Level1, Level2, Level3} {
		res, err := Run(Config{Spec: machine.MustSpec(1), Level: level, K: 4, MaxIters: 25, Seed: 11}, h)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		for i := range ref.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("%v diverges from Lloyd at %d on hard data", level, i)
			}
		}
	}
	// Quality on the non-outlier samples only: the clean structure must
	// be recovered despite the noise (NMI over clean indexes).
	var cleanPred, cleanTruth []int
	for i := 0; i < h.N(); i++ {
		if lbl := h.TrueLabel(i); lbl < h.Components() {
			cleanPred = append(cleanPred, ref.Assign[i])
			cleanTruth = append(cleanTruth, lbl)
		}
	}
	nmi, err := quality.NMI(cleanPred, cleanTruth)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.6 {
		t.Errorf("NMI on clean structure = %g", nmi)
	}
}

// TestKMeansPlusPlusResistsOutliers: with k = true components, seeding
// must not waste all its centroids on the outlier background.
func TestKMeansPlusPlusResistsOutliers(t *testing.T) {
	h, err := dataset.NewHardMixture("hard", 500, 8, 3, 0.1, 2.0, 1, 0.05, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 30,
		Init: InitKMeansPlusPlus, Seed: 4,
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	// Each true component must dominate some cluster: for every
	// component, the majority of its samples share one assignment.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		total := 0
		for i := 0; i < h.N(); i++ {
			if h.TrueLabel(i) == c {
				counts[res.Assign[i]]++
				total++
			}
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		if best*2 < total {
			t.Errorf("component %d split across clusters: %v", c, counts)
		}
	}
}
