package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/quality"
)

// TestEnginesOnHardMixture: anisotropic noise, imbalanced masses and
// uniform outliers must not break engine/Lloyd agreement, and the
// clustering must still separate the dominant structure.
func TestEnginesOnHardMixture(t *testing.T) {
	h, err := dataset.NewHardMixture("hard", 600, 10, 4, 0.12, 2.0, 3, 0.08, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Lloyd(h, 4, 25, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Level1, Level2, Level3} {
		res, err := Run(Config{Spec: machine.MustSpec(1), Level: level, K: 4, MaxIters: 25, Seed: 11}, h)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		for i := range ref.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("%v diverges from Lloyd at %d on hard data", level, i)
			}
		}
	}
	// Quality on the non-outlier samples only: the clean structure must
	// be recovered despite the noise (NMI over clean indexes).
	var cleanPred, cleanTruth []int
	for i := 0; i < h.N(); i++ {
		if lbl := h.TrueLabel(i); lbl < h.Components() {
			cleanPred = append(cleanPred, ref.Assign[i])
			cleanTruth = append(cleanTruth, lbl)
		}
	}
	nmi, err := quality.NMI(cleanPred, cleanTruth)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.6 {
		t.Errorf("NMI on clean structure = %g", nmi)
	}
}

// TestKMeansPlusPlusResistsOutliers: with k = true components, seeding
// must not waste all its centroids on the outlier background.
func TestKMeansPlusPlusResistsOutliers(t *testing.T) {
	h, err := dataset.NewHardMixture("hard", 500, 8, 3, 0.1, 2.0, 1, 0.05, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 30,
		Init: InitKMeansPlusPlus, Seed: 4,
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	// Each true component must dominate some cluster: for every
	// component, the majority of its samples share one assignment.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		total := 0
		for i := 0; i < h.N(); i++ {
			if h.TrueLabel(i) == c {
				counts[res.Assign[i]]++
				total++
			}
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		if best*2 < total {
			t.Errorf("component %d split across clusters: %v", c, counts)
		}
	}
}

// TestEmptyClusterRecoveryUnderFaults: the empty-cluster policy (a
// centroid that attracts nothing stays exactly where it is) must
// survive every class of injected fault — crashes with restart,
// transient message and DMA noise, degraded links and stragglers —
// because checkpoint/restore and survivor re-planning replay the same
// update rule. Fault plans are given in the -faults CLI syntax to
// cover the parser on realistic specs.
func TestEmptyClusterRecoveryUnderFaults(t *testing.T) {
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{float64(i%5) * 0.01, float64(i%7) * 0.01}
	}
	m, err := dataset.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{
		0, 0, // near the data
		1e6, 1e6, // unreachable: stays empty forever
	}
	cases := []struct {
		name string
		spec string // -faults syntax
		drop bool
	}{
		{name: "crash-restart", spec: "crash=1@1e-5; hb=1e-5"},
		{name: "crash-drop-shard", spec: "crash=2@1e-5; hb=1e-5", drop: true},
		{name: "double-crash", spec: "crash=1@8e-6; crash=3@2e-5; hb=1e-5"},
		{name: "transient-noise", spec: "seed=7; msg=0.1; dma=0.05; retries=64"},
		{name: "degraded-link", spec: "link=*@0:1x8"},
		{name: "straggler", spec: "slow=1x2; slow=2:5x3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := fault.ParsePlan(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, level := range []Level{Level1, Level2} {
				res, err := Run(Config{
					Spec: machine.MustSpec(1), Level: level, K: 2, MaxIters: 10,
					Initial: initial, Faults: plan, CheckpointInterval: 2,
					DropLostShards: tc.drop,
				}, m)
				if err != nil {
					t.Fatalf("%v: %v", level, err)
				}
				if res.Centroid(1)[0] != 1e6 || res.Centroid(1)[1] != 1e6 {
					t.Errorf("%v: empty centroid moved to %v", level, res.Centroid(1))
				}
				for i, a := range res.Assign {
					if tc.drop && a == -1 {
						continue // dropped shard
					}
					if a != 0 {
						t.Errorf("%v: sample %d assigned to %d, want the live cluster", level, i, a)
					}
				}
				if !res.Converged {
					t.Errorf("%v: did not converge with a frozen empty cluster", level)
				}
			}
		})
	}
}
