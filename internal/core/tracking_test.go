package core

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestObjectiveTrackingMatchesLloyd(t *testing.T) {
	g := mixture(t, 300, 8, 4)
	ref, err := Lloyd(g, 4, 20, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Objectives) != ref.Iters {
		t.Fatalf("Lloyd objectives: %d entries for %d iters", len(ref.Objectives), ref.Iters)
	}
	for _, level := range []Level{Level1, Level2, Level3} {
		cfg := Config{Spec: machine.MustSpec(1), Level: level, K: 4, MaxIters: 20, Seed: 3, TrackObjective: true}
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if len(res.Objectives) != res.Iters {
			t.Fatalf("%v: %d objectives for %d iters", level, len(res.Objectives), res.Iters)
		}
		for i := range ref.Objectives {
			diff := math.Abs(res.Objectives[i] - ref.Objectives[i])
			if diff/math.Max(1e-12, ref.Objectives[i]) > 1e-9 {
				t.Fatalf("%v iter %d: objective %g, Lloyd %g", level, i, res.Objectives[i], ref.Objectives[i])
			}
		}
	}
}

func TestObjectiveNonIncreasingAcrossEngines(t *testing.T) {
	g := mixture(t, 400, 10, 5)
	for _, level := range []Level{Level1, Level3} {
		cfg := Config{Spec: machine.MustSpec(1), Level: level, K: 5, MaxIters: 25, Seed: 7, TrackObjective: true}
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Objectives); i++ {
			if res.Objectives[i] > res.Objectives[i-1]+1e-9 {
				t.Errorf("%v: objective rose at iter %d: %g -> %g",
					level, i, res.Objectives[i-1], res.Objectives[i])
			}
		}
	}
}

func TestObjectiveTrackingOffByDefault(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 3, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objectives != nil {
		t.Error("objectives computed without TrackObjective")
	}
}

func TestPhaseBreakdown(t *testing.T) {
	g := mixture(t, 400, 16, 4)
	for _, level := range []Level{Level1, Level2, Level3} {
		res, err := Run(Config{Spec: machine.MustSpec(1), Level: level, K: 4, MaxIters: 3, Seed: 1}, g)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Phases) != res.Iters {
			t.Fatalf("%v: %d phases for %d iters", level, len(res.Phases), res.Iters)
		}
		for i, p := range res.Phases {
			if p.Read < 0 || p.Compute <= 0 || p.Reg < 0 || p.Other < 0 {
				t.Errorf("%v iter %d: bad phase %+v", level, i, p)
			}
			sum := p.Read + p.Compute + p.Reg + p.Other
			if math.Abs(sum-res.IterTimes[i])/res.IterTimes[i] > 1e-9 {
				t.Errorf("%v iter %d: phases sum to %g, iteration took %g", level, i, sum, res.IterTimes[i])
			}
		}
	}
}

func TestWarmStart(t *testing.T) {
	g := mixture(t, 300, 6, 3)
	// Converge once, then warm-start from the result: the warm run
	// must converge immediately (one iteration, zero movement).
	first, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 30, Seed: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Converged {
		t.Fatal("first run did not converge")
	}
	warm, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 30,
		Initial: first.Centroids,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged || warm.Iters != 1 {
		t.Errorf("warm start: iters=%d converged=%v, want 1/true", warm.Iters, warm.Converged)
	}
	for i := range first.Assign {
		if warm.Assign[i] != first.Assign[i] {
			t.Fatalf("warm start changed assignment at %d", i)
		}
	}
}

func TestWarmStartValidation(t *testing.T) {
	g := mixture(t, 50, 4, 2)
	_, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5,
		Initial: make([]float64, 5), // wrong size
	}, g)
	if err == nil {
		t.Error("mis-sized warm-start matrix accepted")
	}
}

func TestWarmStartAcrossLevels(t *testing.T) {
	// A model trained at Level 1 warm-starts a Level 3 run on the same
	// data and converges immediately: the partition level is purely an
	// execution concern.
	g := mixture(t, 240, 8, 4)
	l1, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 30, Seed: 5}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Converged {
		t.Fatal("level 1 run did not converge")
	}
	// The two levels associate the centroid-sum reduction differently,
	// so the fixed point is shared only to floating-point tolerance.
	l3, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level3, K: 4, MaxIters: 30,
		MPrimeGroup: 2, Initial: l1.Centroids, Tolerance: 1e-9,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !l3.Converged || l3.Iters != 1 {
		t.Errorf("cross-level warm start: iters=%d converged=%v", l3.Iters, l3.Converged)
	}
}
