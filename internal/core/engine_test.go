package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/quality"
	"repro/internal/trace"
)

// agreeWithLloyd verifies the central correctness invariant: a
// partitioned engine reproduces sequential Lloyd's assignments exactly
// and its centroids to reduction tolerance.
func agreeWithLloyd(t *testing.T, cfg Config, src dataset.Source) *Result {
	t.Helper()
	ref, err := Lloyd(src, cfg.K, cfg.withDefaults().MaxIters, cfg.Tolerance, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != ref.Iters {
		t.Errorf("%v: iters %d, Lloyd %d", cfg.Level, res.Iters, ref.Iters)
	}
	if res.Converged != ref.Converged {
		t.Errorf("%v: converged %v, Lloyd %v", cfg.Level, res.Converged, ref.Converged)
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatalf("%v: sample %d assigned %d, Lloyd %d", cfg.Level, i, res.Assign[i], ref.Assign[i])
		}
	}
	for i := range ref.Centroids {
		diff := math.Abs(res.Centroids[i] - ref.Centroids[i])
		scale := math.Max(1, math.Abs(ref.Centroids[i]))
		if diff/scale > 1e-9 {
			t.Fatalf("%v: centroid element %d = %g, Lloyd %g", cfg.Level, i, res.Centroids[i], ref.Centroids[i])
		}
	}
	return res
}

func TestLevel1MatchesLloyd(t *testing.T) {
	g := mixture(t, 400, 8, 4)
	cfg := Config{Spec: machine.MustSpec(2), Level: Level1, K: 4, MaxIters: 30, Seed: 5, Stats: trace.NewStats()}
	res := agreeWithLloyd(t, cfg, g)
	if len(res.IterTimes) != res.Iters {
		t.Errorf("IterTimes has %d entries for %d iters", len(res.IterTimes), res.Iters)
	}
	for i, it := range res.IterTimes {
		if it <= 0 {
			t.Errorf("iteration %d took %g simulated seconds", i, it)
		}
	}
	if res.Traffic.DMABytes == 0 || res.Traffic.NetBytes == 0 || res.Traffic.RegBytes == 0 || res.Traffic.Flops == 0 {
		t.Errorf("traffic incomplete: %+v", res.Traffic)
	}
}

func TestLevel2MatchesLloyd(t *testing.T) {
	g := mixture(t, 300, 10, 5)
	cfg := Config{Spec: machine.MustSpec(2), Level: Level2, K: 10, MGroup: 4, MaxIters: 30, Seed: 3, Stats: trace.NewStats()}
	agreeWithLloyd(t, cfg, g)
}

func TestLevel3MatchesLloyd(t *testing.T) {
	g := mixture(t, 240, 16, 4)
	cfg := Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 30, Seed: 11, Stats: trace.NewStats()}
	agreeWithLloyd(t, cfg, g)
}

func TestLevel3SingleGroup(t *testing.T) {
	// All ranks in one CG group: the dataflow dimension degenerates.
	g := mixture(t, 120, 12, 3)
	cfg := Config{Spec: machine.MustSpec(1), Level: Level3, K: 6, MPrimeGroup: 4, MaxIters: 20, Seed: 2}
	agreeWithLloyd(t, cfg, g)
}

func TestLevel3GroupOfOne(t *testing.T) {
	// m'group=1: every CG holds all centroids; pure dataflow partition
	// with dimension striping.
	g := mixture(t, 120, 12, 3)
	cfg := Config{Spec: machine.MustSpec(1), Level: Level3, K: 3, MPrimeGroup: 1, MaxIters: 20, Seed: 2}
	agreeWithLloyd(t, cfg, g)
}

func TestLevel3MorePositionsThanCentroids(t *testing.T) {
	// k=3 over m'group=4: one rank owns an empty centroid slice.
	g := mixture(t, 160, 8, 3)
	cfg := Config{Spec: machine.MustSpec(1), Level: Level3, K: 3, MPrimeGroup: 4, MaxIters: 20, Seed: 9}
	agreeWithLloyd(t, cfg, g)
}

func TestLevelsAgreeAcrossBatchSizes(t *testing.T) {
	g := mixture(t, 150, 6, 3)
	for _, batch := range []int{1, 7, 64, 1024} {
		cfg := Config{Spec: machine.MustSpec(1), Level: Level3, K: 6, MPrimeGroup: 2, MaxIters: 15, Seed: 4, BatchSamples: batch}
		agreeWithLloyd(t, cfg, g)
	}
}

func TestUnevenSampleDistribution(t *testing.T) {
	// n not divisible by rank count.
	g := mixture(t, 101, 5, 3)
	cfg := Config{Spec: machine.MustSpec(2), Level: Level1, K: 3, MaxIters: 15, Seed: 8}
	agreeWithLloyd(t, cfg, g)
}

func TestToleranceStopsEarly(t *testing.T) {
	g := mixture(t, 200, 6, 4)
	loose := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 50, Tolerance: 10, Seed: 1}
	res, err := Run(loose, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("loose tolerance did not converge")
	}
	tight, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 50, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > tight.Iters {
		t.Errorf("loose tolerance used more iterations (%d) than exact (%d)", res.Iters, tight.Iters)
	}
}

func TestMaxItersBound(t *testing.T) {
	g := mixture(t, 200, 6, 4)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 2, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 2 || res.Converged {
		t.Errorf("Iters=%d Converged=%v, want 2/false", res.Iters, res.Converged)
	}
}

func TestSampleStrideTimingMode(t *testing.T) {
	g := mixture(t, 800, 8, 4)
	exact, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 3, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	strided, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 3, Seed: 1, SampleStride: 8}, g)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated per-iteration time reflects the full dataflow in both.
	if math.Abs(strided.IterTimes[0]-exact.IterTimes[0])/exact.IterTimes[0] > 0.05 {
		t.Errorf("strided time %g deviates from exact %g", strided.IterTimes[0], exact.IterTimes[0])
	}
	// Unprocessed samples are marked.
	unprocessed := 0
	for _, a := range strided.Assign {
		if a == -1 {
			unprocessed++
		}
	}
	if unprocessed == 0 {
		t.Error("stride 8 left no unprocessed samples")
	}
}

func TestRunRecoversMixture(t *testing.T) {
	g := mixture(t, 600, 12, 6)
	for _, level := range []Level{Level1, Level2, Level3} {
		cfg := Config{Spec: machine.MustSpec(2), Level: level, K: 6, MaxIters: 40, Seed: 6, Init: InitKMeansPlusPlus}
		if level == Level3 {
			cfg.MPrimeGroup = 2
		}
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		truth := make([]int, g.N())
		for i := range truth {
			truth[i] = g.TrueLabel(i)
		}
		ari, err := quality.ARI(res.Assign, truth)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.999 {
			t.Errorf("%v: ARI = %g, want ~1 on separable data", level, ari)
		}
	}
}

func TestMeanIterTime(t *testing.T) {
	r := &Result{IterTimes: []float64{1, 2, 3}}
	if got := r.MeanIterTime(); got != 2 {
		t.Errorf("MeanIterTime = %g", got)
	}
	if got := (&Result{}).MeanIterTime(); got != 0 {
		t.Errorf("empty MeanIterTime = %g", got)
	}
}

func TestResultCentroidView(t *testing.T) {
	r := &Result{Centroids: []float64{1, 2, 3, 4}, K: 2, D: 2}
	if c := r.Centroid(1); c[0] != 3 || c[1] != 4 {
		t.Errorf("Centroid(1) = %v", c)
	}
}

func TestLevelTimingOrderingSmallD(t *testing.T) {
	// At small d and modest k, Level 1 should not be slower than
	// Level 3 (dimension striping pays off only at large d), matching
	// the flexibility argument of Section III.D.
	g := mixture(t, 512, 16, 4)
	t1, err := Run(Config{Spec: machine.MustSpec(2), Level: Level1, K: 16, MaxIters: 3, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Run(Config{Spec: machine.MustSpec(2), Level: Level3, K: 16, MPrimeGroup: 4, MaxIters: 3, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if t1.MeanIterTime() > t3.MeanIterTime() {
		t.Errorf("Level1 (%g s) slower than Level3 (%g s) at d=16", t1.MeanIterTime(), t3.MeanIterTime())
	}
}

func TestMoreRanksFasterIterations(t *testing.T) {
	// Strong scaling: the same problem on more CGs completes an
	// iteration in less simulated time (Figure 9's qualitative shape).
	// The problem must be large enough that per-rank work dominates
	// the fixed collective latencies.
	g := mixture(t, 32768, 128, 8)
	small, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 32, MaxIters: 2, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{Spec: machine.MustSpec(8), Level: Level1, K: 32, MaxIters: 2, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if big.MeanIterTime() >= small.MeanIterTime() {
		t.Errorf("32 CGs (%g s) not faster than 4 CGs (%g s)", big.MeanIterTime(), small.MeanIterTime())
	}
}

func TestRunValidatesAgainstDataset(t *testing.T) {
	g := mixture(t, 10, 4, 2)
	if _, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 11}, g); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Run(Config{Spec: machine.MustSpec(1), Level: 7, K: 2}, g); err == nil {
		t.Error("bad level accepted")
	}
}
