package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/trace"
)

func TestSaveLoadCentroids(t *testing.T) {
	cents := []float64{1.5, -2.25, 3.125, 0, 42, -1e-9}
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, cents, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, k, d, err := LoadCentroids(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || d != 3 {
		t.Fatalf("shape %dx%d", k, d)
	}
	for i := range cents {
		if got[i] != cents[i] {
			t.Fatalf("element %d = %g, want %g", i, got[i], cents[i])
		}
	}
}

func TestSaveCentroidsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, []float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := SaveCentroids(&buf, nil, 0, 0); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestLoadCentroidsRejectsGarbage(t *testing.T) {
	if _, _, _, err := LoadCentroids(strings.NewReader("not a model")); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong magic.
	var buf bytes.Buffer
	buf.Write([]byte{1, 2, 3, 4, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	if _, _, _, err := LoadCentroids(&buf); err == nil {
		t.Error("wrong magic accepted")
	}
	// Valid header, truncated payload.
	buf.Reset()
	if err := SaveCentroids(&buf, []float64{1, 2}, 1, 2); err != nil {
		t.Fatal(err)
	}
	truncated := bytes.NewReader(buf.Bytes()[:buf.Len()-4])
	if _, _, _, err := LoadCentroids(truncated); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestWriteSummary(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 3, Seed: 1, Stats: trace.NewStats()}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if s.K != 2 || s.D != 4 || s.N != 100 {
		t.Errorf("summary shape: %+v", s)
	}
	if s.MeanIterSec <= 0 || len(s.IterSec) != s.Iters {
		t.Errorf("summary timing: %+v", s)
	}
	if s.DMABytes == 0 || s.Flops == 0 {
		t.Errorf("summary traffic: %+v", s)
	}
}

// TestWriteSummarySchema asserts the exact JSON key set of the digest,
// including the per-phase seconds breakdown and — for resilient runs —
// the recovery counters, so downstream plotting scripts can rely on
// the field names.
func TestWriteSummarySchema(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	base := Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 4, Seed: 1, Stats: trace.NewStats()}

	decode := func(cfg Config) map[string]json.RawMessage {
		t.Helper()
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteSummary(&buf); err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatalf("summary is not valid JSON: %v", err)
		}
		return m
	}
	keysOf := func(m map[string]json.RawMessage) map[string]bool {
		out := make(map[string]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}

	faultFree := decode(base)
	baseKeys := []string{
		"level", "plan", "k", "d", "n", "iters", "converged",
		"mean_iter_seconds", "iter_seconds",
		"dma_bytes", "reg_bytes", "net_bytes", "flops", "phase_seconds",
	}
	got := keysOf(faultFree)
	for _, k := range baseKeys {
		if !got[k] {
			t.Errorf("fault-free summary missing key %q", k)
		}
		delete(got, k)
	}
	for k := range got {
		t.Errorf("fault-free summary has unexpected key %q", k)
	}
	var phases map[string]float64
	if err := json.Unmarshal(faultFree["phase_seconds"], &phases); err != nil {
		t.Fatalf("phase_seconds: %v", err)
	}
	for _, k := range []string{"read_seconds", "compute_seconds", "reg_seconds", "other_seconds"} {
		if _, ok := phases[k]; !ok {
			t.Errorf("phase_seconds missing %q (got %v)", k, phases)
		}
	}
	total := 0.0
	for _, v := range phases {
		total += v
	}
	if total <= 0 {
		t.Errorf("phase seconds sum to %g, want positive", total)
	}

	resilient := base
	resilient.Stats = trace.NewStats()
	resilient.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: 1}}}
	resilient.CheckpointInterval = 2
	faulty := decode(resilient)
	raw, ok := faulty["recovery"]
	if !ok {
		t.Fatal("resilient summary missing recovery key")
	}
	var recKeys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &recKeys); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	for _, k := range []string{
		"replans", "lost_ranks", "dropped_samples", "checkpoints",
		"checkpoint_seconds", "restore_seconds", "replan_seconds",
		"redo_seconds", "retry_seconds", "overhead_seconds",
	} {
		if _, ok := recKeys[k]; !ok {
			t.Errorf("recovery missing key %q", k)
		}
	}
}

func TestModelRoundTripThroughRun(t *testing.T) {
	// Save a trained model, load it, and verify assignments computed
	// from the loaded centroids match the original run.
	g := mixture(t, 200, 6, 3)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 20, Seed: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, res.Centroids, res.K, res.D); err != nil {
		t.Fatal(err)
	}
	cents, k, d, err := LoadCentroids(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 || d != 6 {
		t.Fatalf("shape %dx%d", k, d)
	}
	x := make([]float64, d)
	for i := 0; i < g.N(); i++ {
		g.Sample(i, x)
		j, _ := argminDistance(x, cents, d)
		if j != res.Assign[i] {
			t.Fatalf("loaded model assigns sample %d to %d, original %d", i, j, res.Assign[i])
		}
	}
}
