package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/trace"
)

func TestSaveLoadCentroids(t *testing.T) {
	cents := []float64{1.5, -2.25, 3.125, 0, 42, -1e-9}
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, cents, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, k, d, err := LoadCentroids(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || d != 3 {
		t.Fatalf("shape %dx%d", k, d)
	}
	for i := range cents {
		if got[i] != cents[i] {
			t.Fatalf("element %d = %g, want %g", i, got[i], cents[i])
		}
	}
}

func TestSaveCentroidsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, []float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := SaveCentroids(&buf, nil, 0, 0); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestLoadCentroidsRejectsGarbage(t *testing.T) {
	if _, _, _, err := LoadCentroids(strings.NewReader("not a model")); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong magic.
	var buf bytes.Buffer
	buf.Write([]byte{1, 2, 3, 4, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	if _, _, _, err := LoadCentroids(&buf); err == nil {
		t.Error("wrong magic accepted")
	}
	// Valid header, truncated payload.
	buf.Reset()
	if err := SaveCentroids(&buf, []float64{1, 2}, 1, 2); err != nil {
		t.Fatal(err)
	}
	truncated := bytes.NewReader(buf.Bytes()[:buf.Len()-4])
	if _, _, _, err := LoadCentroids(truncated); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestSaveLoadCentroidsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.swkm")
	cents := []float64{1.5, -2.25, 3.125, 0, 42, -1e-9}
	if err := SaveCentroidsFile(path, cents, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, k, d, err := LoadCentroidsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || d != 3 {
		t.Fatalf("shape %dx%d", k, d)
	}
	for i := range cents {
		if got[i] != cents[i] {
			t.Fatalf("element %d = %g, want %g", i, got[i], cents[i])
		}
	}
	// The write must be atomic: no temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after save, want just the model", len(entries))
	}
	// A replacement save over the same path keeps the invariant.
	if err := SaveCentroidsFile(path, []float64{9, 9, 9, 9, 9, 9}, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, _, _, err = LoadCentroidsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatalf("replacement save not visible: %v", got)
	}
}

func TestLoadCentroidsFileRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.swkm")
	cents := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := SaveCentroidsFile(path, cents, 4, 2); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix simulates a torn legacy write (the atomic
	// writer can no longer produce one, but old files and foreign
	// writers can): all must be rejected, and the payload-truncation
	// message must be actionable.
	for _, cut := range []int{len(whole) - 1, len(whole) - 5, 20, 16, 7, 0} {
		torn := filepath.Join(dir, "torn.swkm")
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := LoadCentroidsFile(torn)
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrModelCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrModelCorrupt", cut, err)
		}
	}
	if _, _, _, err := LoadCentroidsFile(filepath.Join(dir, "missing.swkm")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadCentroidsFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.swkm")
	if err := SaveCentroidsFile(path, []float64{1, 2, 3, 4}, 2, 2); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A bit flip inside the payload keeps the length intact; only the
	// checksum can catch it.
	flipped := append([]byte(nil), whole...)
	flipped[16+3] ^= 0x40
	bad := filepath.Join(dir, "flipped.swkm")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = LoadCentroidsFile(bad)
	if err == nil {
		t.Fatal("bit-flipped payload accepted")
	}
	if !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("error %v does not wrap ErrModelCorrupt", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error %v does not mention the checksum", err)
	}
	// Trailing garbage after a valid model is also not a checkpoint
	// this writer produced.
	trailing := filepath.Join(dir, "trailing.swkm")
	if err := os.WriteFile(trailing, append(append([]byte(nil), whole...), 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadCentroidsFile(trailing); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestLoadCentroidsFileAcceptsLegacyV1(t *testing.T) {
	// Files written by the pre-checksum SaveCentroids stream format
	// must keep loading.
	path := filepath.Join(t.TempDir(), "legacy.swkm")
	var buf bytes.Buffer
	cents := []float64{3, 1, 4, 1}
	if err := SaveCentroids(&buf, cents, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, k, d, err := LoadCentroidsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || d != 2 || got[2] != 4 {
		t.Fatalf("legacy load got %v (%dx%d)", got, k, d)
	}
}

func TestWriteSummary(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 3, Seed: 1, Stats: trace.NewStats()}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if s.K != 2 || s.D != 4 || s.N != 100 {
		t.Errorf("summary shape: %+v", s)
	}
	if s.MeanIterSec <= 0 || len(s.IterSec) != s.Iters {
		t.Errorf("summary timing: %+v", s)
	}
	if s.DMABytes == 0 || s.Flops == 0 {
		t.Errorf("summary traffic: %+v", s)
	}
}

// TestWriteSummarySchema asserts the exact JSON key set of the digest,
// including the per-phase seconds breakdown and — for resilient runs —
// the recovery counters, so downstream plotting scripts can rely on
// the field names.
func TestWriteSummarySchema(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	base := Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 4, Seed: 1, Stats: trace.NewStats()}

	decode := func(cfg Config) map[string]json.RawMessage {
		t.Helper()
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteSummary(&buf); err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatalf("summary is not valid JSON: %v", err)
		}
		return m
	}
	keysOf := func(m map[string]json.RawMessage) map[string]bool {
		out := make(map[string]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}

	faultFree := decode(base)
	baseKeys := []string{
		"level", "plan", "k", "d", "n", "iters", "converged",
		"mean_iter_seconds", "iter_seconds",
		"dma_bytes", "reg_bytes", "net_bytes", "flops", "phase_seconds",
	}
	got := keysOf(faultFree)
	for _, k := range baseKeys {
		if !got[k] {
			t.Errorf("fault-free summary missing key %q", k)
		}
		delete(got, k)
	}
	for k := range got {
		t.Errorf("fault-free summary has unexpected key %q", k)
	}
	var phases map[string]float64
	if err := json.Unmarshal(faultFree["phase_seconds"], &phases); err != nil {
		t.Fatalf("phase_seconds: %v", err)
	}
	for _, k := range []string{"read_seconds", "compute_seconds", "reg_seconds", "other_seconds"} {
		if _, ok := phases[k]; !ok {
			t.Errorf("phase_seconds missing %q (got %v)", k, phases)
		}
	}
	total := 0.0
	for _, v := range phases {
		total += v
	}
	if total <= 0 {
		t.Errorf("phase seconds sum to %g, want positive", total)
	}

	resilient := base
	resilient.Stats = trace.NewStats()
	resilient.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: 1}}}
	resilient.CheckpointInterval = 2
	faulty := decode(resilient)
	raw, ok := faulty["recovery"]
	if !ok {
		t.Fatal("resilient summary missing recovery key")
	}
	var recKeys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &recKeys); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	for _, k := range []string{
		"replans", "lost_ranks", "dropped_samples", "checkpoints",
		"checkpoint_seconds", "restore_seconds", "replan_seconds",
		"redo_seconds", "retry_seconds", "overhead_seconds",
	} {
		if _, ok := recKeys[k]; !ok {
			t.Errorf("recovery missing key %q", k)
		}
	}
}

func TestModelRoundTripThroughRun(t *testing.T) {
	// Save a trained model, load it, and verify assignments computed
	// from the loaded centroids match the original run.
	g := mixture(t, 200, 6, 3)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 20, Seed: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, res.Centroids, res.K, res.D); err != nil {
		t.Fatal(err)
	}
	cents, k, d, err := LoadCentroids(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 || d != 6 {
		t.Fatalf("shape %dx%d", k, d)
	}
	x := make([]float64, d)
	for i := 0; i < g.N(); i++ {
		g.Sample(i, x)
		j, _ := argminDistance(x, cents, d)
		if j != res.Assign[i] {
			t.Fatalf("loaded model assigns sample %d to %d, original %d", i, j, res.Assign[i])
		}
	}
}
