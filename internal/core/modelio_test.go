package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

func TestSaveLoadCentroids(t *testing.T) {
	cents := []float64{1.5, -2.25, 3.125, 0, 42, -1e-9}
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, cents, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, k, d, err := LoadCentroids(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || d != 3 {
		t.Fatalf("shape %dx%d", k, d)
	}
	for i := range cents {
		if got[i] != cents[i] {
			t.Fatalf("element %d = %g, want %g", i, got[i], cents[i])
		}
	}
}

func TestSaveCentroidsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, []float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := SaveCentroids(&buf, nil, 0, 0); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestLoadCentroidsRejectsGarbage(t *testing.T) {
	if _, _, _, err := LoadCentroids(strings.NewReader("not a model")); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong magic.
	var buf bytes.Buffer
	buf.Write([]byte{1, 2, 3, 4, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	if _, _, _, err := LoadCentroids(&buf); err == nil {
		t.Error("wrong magic accepted")
	}
	// Valid header, truncated payload.
	buf.Reset()
	if err := SaveCentroids(&buf, []float64{1, 2}, 1, 2); err != nil {
		t.Fatal(err)
	}
	truncated := bytes.NewReader(buf.Bytes()[:buf.Len()-4])
	if _, _, _, err := LoadCentroids(truncated); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestWriteSummary(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 3, Seed: 1, Stats: trace.NewStats()}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if s.K != 2 || s.D != 4 || s.N != 100 {
		t.Errorf("summary shape: %+v", s)
	}
	if s.MeanIterSec <= 0 || len(s.IterSec) != s.Iters {
		t.Errorf("summary timing: %+v", s)
	}
	if s.DMABytes == 0 || s.Flops == 0 {
		t.Errorf("summary traffic: %+v", s)
	}
}

func TestModelRoundTripThroughRun(t *testing.T) {
	// Save a trained model, load it, and verify assignments computed
	// from the loaded centroids match the original run.
	g := mixture(t, 200, 6, 3)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 20, Seed: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCentroids(&buf, res.Centroids, res.K, res.D); err != nil {
		t.Fatal(err)
	}
	cents, k, d, err := LoadCentroids(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 || d != 6 {
		t.Fatalf("shape %dx%d", k, d)
	}
	x := make([]float64, d)
	for i := 0; i < g.N(); i++ {
		g.Sample(i, x)
		j, _ := argminDistance(x, cents, d)
		if j != res.Assign[i] {
			t.Fatalf("loaded model assigns sample %d to %d, original %d", i, j, res.Assign[i])
		}
	}
}
