package core

import (
	"testing"

	"repro/internal/machine"
)

func TestChooseLevelSmallShape(t *testing.T) {
	// Small k and d: Level 1 is feasible and has no duplication
	// overhead, so it should win.
	cfg := Config{Spec: machine.MustSpec(1), K: 16}
	plan, err := ChooseLevel(cfg, 10000, 28)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Level != Level1 {
		t.Errorf("chose %v, want Level1", plan.Level)
	}
}

func TestChooseLevelLargeK(t *testing.T) {
	// k beyond C3: Level 1 infeasible; Level 2 hosts it.
	cfg := Config{Spec: machine.MustSpec(1), K: 8192}
	plan, err := ChooseLevel(cfg, 100000, 28)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Level == Level1 {
		t.Errorf("chose infeasible Level1")
	}
}

func TestChooseLevelHighDim(t *testing.T) {
	// The headline shape: only Level 3 is feasible.
	cfg := Config{Spec: machine.MustSpec(4096), K: 2000}
	plan, err := ChooseLevel(cfg, 1265723, 196608)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Level != Level3 {
		t.Errorf("chose %v, want Level3", plan.Level)
	}
}

func TestChooseLevelNothingFeasible(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(1), K: 100}
	if _, err := ChooseLevel(cfg, 10, 4); err == nil {
		t.Error("k>n accepted")
	}
}

func TestRunWithLevelAuto(t *testing.T) {
	g := mixture(t, 300, 8, 4)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: LevelAuto, K: 4, MaxIters: 10, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Level < Level1 || res.Plan.Level > Level3 {
		t.Errorf("auto run resolved to %v", res.Plan.Level)
	}
	ref, err := Lloyd(g, 4, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatalf("auto level diverges from Lloyd at %d", i)
		}
	}
}

func TestChooseLevelMatchesFigure7Regimes(t *testing.T) {
	// The Figure 7 axis: at k=2,000 on 128 nodes, small d should pick
	// Level 2 (or 1) and large d must pick Level 3.
	cfg := Config{Spec: machine.MustSpec(128), K: 2000}
	small, err := ChooseLevel(cfg, 1265723, 512)
	if err != nil {
		t.Fatal(err)
	}
	if small.Level == Level3 {
		t.Errorf("d=512 chose %v", small.Level)
	}
	large, err := ChooseLevel(cfg, 1265723, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if large.Level != Level3 {
		t.Errorf("d=8192 chose %v, want Level3", large.Level)
	}
}
