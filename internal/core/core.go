// Package core implements the paper's contribution: multi-level
// data-partitioned parallel k-means for the (simulated) Sunway
// TaihuLight.
//
// Three partition levels are provided, mirroring Section III:
//
//   - Level 1 — dataflow partition: every CPE holds all k centroids in
//     LDM and streams a share of the samples (Algorithm 1).
//   - Level 2 — dataflow and centroid partition: groups of mgroup CPEs
//     inside one CG partition the centroid set; every group member
//     reads each of the group's samples and a min-reduce over partial
//     argmins produces the assignment (Algorithm 2).
//   - Level 3 — dataflow, centroid and dimension partition: one CG
//     holds a d-striped sample across its 64 CPEs, m'group CGs form a
//     CG group partitioning the centroids, and the dataflow spreads
//     across CG groups (Algorithm 3). This is the nkd-partition that
//     removes every pairwise capacity constraint between n, k and d.
//
// All levels execute functionally on the simulated machine: real
// floating-point clustering over real (generated) data, with per-rank
// virtual clocks measuring the paper's metric — one-iteration
// completion time — and trace counters recording DMA, register-
// communication and network traffic.
//
// # The IterEngine contract
//
// All three levels run through one epoch loop (runEngine): the levels
// are one algorithm — Lloyd's iteration — under three dataflow plans,
// and the per-level code is confined to the iterEngine interface.
// An engine contributes
//
//   - replan: shape one epoch over the surviving ranks — the epoch
//     plan, the participating ranks and the model deposit slots. At
//     epoch 0 (and on every fault-free run) the epoch plan equals the
//     full-strength plan.
//   - setup: build a rank's per-epoch state from the full centroid
//     matrix (initial or restored), carving out stripes and shards.
//   - step: one iteration — assign, partial sums, reduce, centroid
//     update — reporting the epoch-global movement, the charged local
//     cost, and the objective.
//   - gather: assemble the full model on rank 0 for a coordinated
//     checkpoint (free when rank 0 holds it; a stripe gather at
//     Level 3).
//   - deposit: publish the rank's share of the final model.
//
// The loop owns everything else: iteration count, tolerance and
// convergence, objective tracking, per-iteration time and phase
// recording, and — when a fault plan is present — the checkpoint /
// restore / re-plan cycle. Resilience therefore composes with every
// level instead of being a separate driver.
package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Level selects the partition strategy.
type Level int

// The three partition levels of Section III.
const (
	Level1 Level = 1 // dataflow partition (n)
	Level2 Level = 2 // dataflow + centroid partition (nk)
	Level3 Level = 3 // dataflow + centroid + dimension partition (nkd)
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Level1:
		return "level1(n-partition)"
	case Level2:
		return "level2(nk-partition)"
	case Level3:
		return "level3(nkd-partition)"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Config describes one clustering run on the simulated machine.
type Config struct {
	// Spec is the machine deployment. Required.
	Spec *machine.Spec
	// Level is the partition strategy. Required.
	Level Level
	// K is the number of centroids. Required.
	K int
	// MaxIters bounds the Lloyd iterations (default 20).
	MaxIters int
	// Tolerance stops iterating when the total squared centroid
	// movement of an iteration is at or below it (default 0: run until
	// the centroids are exactly fixed or MaxIters is hit).
	Tolerance float64
	// Seed selects the deterministic initial centroids.
	Seed uint64
	// Init selects the initialization method (default InitBlocks).
	Init InitMethod
	// Initial, when non-nil, warm-starts the run from an explicit
	// k-by-d centroid matrix (for example one loaded with
	// LoadCentroids), overriding Init.
	Initial []float64
	// TrackObjective additionally computes the paper's objective O(C)
	// every iteration (one extra scalar AllReduce per iteration).
	TrackObjective bool
	// Ranks overrides the number of core-group ranks used (default:
	// every CG of the deployment, capped at n).
	Ranks int
	// MGroup overrides the Level-2 CPE group size (default: planner).
	MGroup int
	// MPrimeGroup overrides the Level-3 CG group size (default:
	// planner).
	MPrimeGroup int
	// SampleStride processes every stride-th sample functionally while
	// charging simulated time for the full dataflow. Stride 1 (default)
	// is exact clustering; larger strides are for timing studies whose
	// n·k·d volume is infeasible to compute on the host. With stride>1
	// the assignment array is only populated at processed indices.
	SampleStride int
	// MiniBatch, when positive, switches Levels 1 and 2 to distributed
	// mini-batch iterations: each rank processes MiniBatch samples
	// drawn deterministically from its range per iteration (rotating
	// through the range across iterations) and both the functional
	// work AND the simulated time reflect only the batch. This is the
	// nested-mini-batch direction of the paper's related work [31]
	// mapped onto the machine: approximate clustering at a fraction of
	// the per-iteration cost. Convergence is still declared by centroid
	// movement, so pair it with a non-zero Tolerance.
	MiniBatch int
	// BatchSamples sets the assignment batch exchanged per collective
	// in Levels 2 and 3 (default 256).
	BatchSamples int
	// Faults, when non-empty, injects the deterministic fault plan into
	// the simulated machine and runs the epochs resiliently:
	// per-interval checkpointing, restart from the last checkpoint
	// after a rank failure, and re-planning over the surviving core
	// groups — at every level, including Level 3's CG groups (see
	// docs/FAULT_TOLERANCE.md).
	Faults fault.Plan
	// CheckpointInterval checkpoints the model every this many
	// iterations under Faults (default 5).
	CheckpointInterval int
	// DropLostShards keeps a failed rank's sample shard out of the
	// computation instead of redistributing it to the survivors:
	// graceful degradation trading clustering quality for recovery
	// traffic. Dropped samples end the run with assignment -1.
	DropLostShards bool
	// Sched runs the epoch engine's MPI substrate on the discrete-event
	// scheduler driver instead of goroutine-per-rank: ranks become
	// coroutine tasks on a deterministic event heap, which is
	// bit-identical to the default driver (golden-locked) and hosts
	// thousands of ranks in-process — the driver behind the full
	// 4,096-rank Figure 6(b) simulation. The fine-grained CPE kernels
	// (internal/sw26010) keep their own substrate either way.
	Sched bool
	// Stats receives traffic counters; optional.
	Stats *trace.Stats
	// Obs, when non-nil, records the span-level virtual-time trace of
	// the run: one unit per rank plus an "iterations" marker track,
	// exportable as a Chrome/Perfetto trace or a metrics table (see
	// internal/obs and docs/OBSERVABILITY.md). Leave nil for the
	// allocation-free unobserved path.
	Obs *obs.Recorder
}

// withDefaults returns a copy with defaults applied.
func (cfg Config) withDefaults() Config {
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 20
	}
	if cfg.SampleStride == 0 {
		cfg.SampleStride = 1
	}
	if cfg.BatchSamples == 0 {
		cfg.BatchSamples = 256
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 5
	}
	return cfg
}

// validate checks the parts of the configuration that do not depend on
// the dataset.
func (cfg Config) validate() error {
	if cfg.Spec == nil {
		return errors.New("core: config needs a machine spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if cfg.Level < Level1 || cfg.Level > Level3 {
		return fmt.Errorf("core: unknown level %d", int(cfg.Level))
	}
	if cfg.K < 1 {
		return fmt.Errorf("core: k must be at least 1, got %d", cfg.K)
	}
	if cfg.MaxIters < 1 {
		return fmt.Errorf("core: max iterations must be at least 1, got %d", cfg.MaxIters)
	}
	if cfg.Tolerance < 0 {
		return fmt.Errorf("core: tolerance must be non-negative, got %g", cfg.Tolerance)
	}
	if cfg.SampleStride < 1 {
		return fmt.Errorf("core: sample stride must be at least 1, got %d", cfg.SampleStride)
	}
	if cfg.BatchSamples < 1 {
		return fmt.Errorf("core: batch size must be at least 1, got %d", cfg.BatchSamples)
	}
	if cfg.MiniBatch < 0 {
		return fmt.Errorf("core: mini-batch size must be non-negative, got %d", cfg.MiniBatch)
	}
	if cfg.MiniBatch > 0 {
		if cfg.Level == Level3 {
			return fmt.Errorf("core: mini-batch mode is implemented for Levels 1 and 2")
		}
		if cfg.SampleStride > 1 {
			return fmt.Errorf("core: mini-batch mode and sample striding are mutually exclusive")
		}
	}
	if cfg.CheckpointInterval < 1 {
		return fmt.Errorf("core: checkpoint interval must be at least 1, got %d", cfg.CheckpointInterval)
	}
	if !cfg.Faults.Empty() {
		if _, err := fault.NewInjector(cfg.Faults); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if cfg.MiniBatch > 0 {
			return fmt.Errorf("core: mini-batch mode and fault injection are mutually exclusive")
		}
	}
	return nil
}

// Result reports a clustering run.
type Result struct {
	// Centroids is the final k-by-d centroid matrix, row-major.
	Centroids []float64
	// K and D are the result shape.
	K, D int
	// Assign maps sample index to centroid index. With SampleStride>1
	// unprocessed indices hold -1.
	Assign []int
	// Iters is the number of iterations executed.
	Iters int
	// Converged reports whether the tolerance was reached before
	// MaxIters.
	Converged bool
	// IterTimes holds the simulated one-iteration completion time in
	// seconds for each iteration — the paper's metric.
	IterTimes []float64
	// Phases breaks each iteration's simulated time into the paper's
	// cost categories (parallel to IterTimes).
	Phases []Phase
	// Objectives holds O(C) per iteration when TrackObjective is set
	// (the objective of the assignment made in that iteration).
	Objectives []float64
	// Traffic is the per-run traffic snapshot (zero when no Stats sink
	// was configured).
	Traffic trace.Snapshot
	// Plan is the partition plan the run executed.
	Plan Plan
	// Recovery reports the fault-recovery work of the run (nil for
	// fault-free runs).
	Recovery *Recovery
}

// Phase is the per-iteration simulated time split: DMA reads, per-CPE
// compute, register communication, and everything else on the critical
// path (network collectives, synchronization, imbalance).
type Phase struct {
	Read    float64
	Compute float64
	Reg     float64
	Other   float64
}

// MeanIterTime returns the average simulated seconds per iteration.
func (r *Result) MeanIterTime() float64 {
	if len(r.IterTimes) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range r.IterTimes {
		s += t
	}
	return s / float64(len(r.IterTimes))
}

// Centroid returns a read-only view of centroid j.
func (r *Result) Centroid(j int) []float64 {
	return r.Centroids[j*r.D : (j+1)*r.D]
}

// InitialCentroids returns k deterministic, distinct initial centroids
// drawn from the source: one sample from each of k equal index blocks,
// positioned inside its block by the seed. Every rank computes the
// same initialization locally, so no startup broadcast is needed.
func InitialCentroids(src dataset.Source, k int, seed uint64) ([]float64, error) {
	n, d := src.N(), src.D()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k must be in [1,%d], got %d", n, k)
	}
	cents := make([]float64, k*d)
	block := n / k
	for j := 0; j < k; j++ {
		off := 0
		if block > 1 {
			off = int(hash2(seed, uint64(j)) % uint64(block))
		}
		idx := j*block + off
		src.Sample(idx, cents[j*d:(j+1)*d])
	}
	return cents, nil
}

// hash2 mixes two words, splitmix64-style.
func hash2(a, b uint64) uint64 {
	x := a ^ (b+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return x
}

// shareRange splits n items across p parts and returns the half-open
// range of part r; the first n%p parts get one extra item.
func shareRange(n, p, r int) (lo, hi int) {
	base := n / p
	extra := n % p
	lo = r*base + min(r, extra)
	hi = lo + base
	if r < extra {
		hi++
	}
	return lo, hi
}

// argminDistance returns the index of the centroid in cents (a kLocal
// x d row-major matrix) nearest to x under squared Euclidean distance,
// together with that distance. Ties break to the lowest index, exactly
// like the sequential baseline, so partitioned runs reproduce Lloyd's
// assignments.
func argminDistance(x, cents []float64, d int) (int, float64) {
	k := len(cents) / d
	best := -1
	bestDist := 0.0
	//swlint:hot distance kernel: runs once per sample per iteration
	for j := 0; j < k; j++ {
		c := cents[j*d : (j+1)*d]
		s := 0.0
		for u := 0; u < d; u++ {
			diff := x[u] - c[u]
			s += diff * diff
		}
		if best < 0 || s < bestDist {
			best, bestDist = j, s
		}
	}
	return best, bestDist
}

// applyUpdate recomputes centroids from accumulated sums and counts,
// keeping the previous centroid for empty clusters, and returns the
// total squared movement. cents and sums are kLocal-by-d row-major;
// counts has kLocal entries.
func applyUpdate(cents, sums []float64, counts []int64, d int) float64 {
	movement := 0.0
	k := len(counts)
	//swlint:hot centroid update: touches every centroid coordinate
	for j := 0; j < k; j++ {
		if counts[j] == 0 {
			continue
		}
		inv := 1 / float64(counts[j])
		row := cents[j*d : (j+1)*d]
		srow := sums[j*d : (j+1)*d]
		for u := 0; u < d; u++ {
			nv := srow[u] * inv
			diff := nv - row[u]
			movement += diff * diff
			row[u] = nv
		}
	}
	return movement
}

// applyMiniBatchUpdate moves each centroid toward its batch mean with
// the cumulative-count learning rate of Sculley's mini-batch k-means:
// the batched equivalent of per-sample c += (x-c)/count. cumCounts is
// updated in place and must persist across iterations.
func applyMiniBatchUpdate(cents, sums []float64, counts, cumCounts []int64, d int) float64 {
	movement := 0.0
	for j := range counts {
		m := counts[j]
		if m == 0 {
			continue
		}
		cumCounts[j] += m
		w := float64(m) / float64(cumCounts[j])
		batchInv := 1 / float64(m)
		row := cents[j*d : (j+1)*d]
		srow := sums[j*d : (j+1)*d]
		for u := 0; u < d; u++ {
			mean := srow[u] * batchInv
			nv := row[u] + w*(mean-row[u])
			diff := nv - row[u]
			movement += diff * diff
			row[u] = nv
		}
	}
	return movement
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
