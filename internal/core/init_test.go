package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/quality"
)

func TestInitMethodString(t *testing.T) {
	if InitBlocks.String() != "blocks" || InitKMeansPlusPlus.String() != "kmeans++" {
		t.Error("InitMethod strings wrong")
	}
	if InitMethod(9).String() != "init(9)" {
		t.Error("unknown InitMethod string wrong")
	}
}

func TestKMeansPlusPlusDeterministic(t *testing.T) {
	g := mixture(t, 200, 8, 4)
	a, err := KMeansPlusPlus(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeansPlusPlus(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("kmeans++ not deterministic")
		}
	}
	c, err := KMeansPlusPlus(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds chose identical centers")
	}
}

func TestKMeansPlusPlusValidation(t *testing.T) {
	g := mixture(t, 10, 2, 2)
	if _, err := KMeansPlusPlus(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeansPlusPlus(g, 11, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKMeansPlusPlusSpreadsCenters(t *testing.T) {
	// On a well-separated mixture, k-means++ usually picks one seed
	// per component (that is its whole point); require that most of a
	// seed batch achieves full coverage, which block init essentially
	// never does on interleaved labels.
	g := mixture(t, 300, 10, 5)
	trueCenter := make([]float64, 10)
	fullCover := 0
	const seeds = 8
	for seed := uint64(0); seed < seeds; seed++ {
		cents, err := KMeansPlusPlus(g, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		covered := map[int]bool{}
		for j := 0; j < 5; j++ {
			best, bestD := -1, math.Inf(1)
			for c := 0; c < 5; c++ {
				g.Center(c, trueCenter)
				if dd := sqDist(cents[j*10:(j+1)*10], trueCenter); dd < bestD {
					best, bestD = c, dd
				}
			}
			covered[best] = true
		}
		if len(covered) == 5 {
			fullCover++
		}
	}
	if fullCover < seeds*3/4 {
		t.Errorf("k-means++ fully covered the mixture on %d of %d seeds", fullCover, seeds)
	}
}

func TestKMeansPlusPlusDuplicatePoints(t *testing.T) {
	// All-identical dataset: total distance mass is zero after the
	// first pick; the fallback must still produce k centroids.
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = []float64{1, 2}
	}
	m, err := dataset.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	cents, err := KMeansPlusPlus(m, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 6 {
		t.Fatalf("got %d values", len(cents))
	}
	for i := 0; i < 6; i += 2 {
		if cents[i] != 1 || cents[i+1] != 2 {
			t.Error("degenerate centers wrong")
		}
	}
}

func TestEnginesAgreeWithLloydUnderKMeansPlusPlus(t *testing.T) {
	g := mixture(t, 240, 8, 4)
	init, err := KMeansPlusPlus(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LloydFrom(g, init, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Level1, Level2, Level3} {
		cfg := Config{Spec: machine.MustSpec(1), Level: level, K: 4, MaxIters: 30, Seed: 5, Init: InitKMeansPlusPlus}
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if res.Iters != ref.Iters {
			t.Errorf("%v: iters %d vs Lloyd %d", level, res.Iters, ref.Iters)
		}
		for i := range ref.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("%v: assignment diverges at %d", level, i)
			}
		}
	}
}

func TestLloydFromValidation(t *testing.T) {
	g := mixture(t, 10, 2, 2)
	if _, err := LloydFrom(g, []float64{1, 2, 3}, 5, 0); err == nil {
		t.Error("ragged initial matrix accepted")
	}
	if _, err := LloydFrom(g, nil, 5, 0); err == nil {
		t.Error("empty initial matrix accepted")
	}
}

func TestInitMethodQualityGap(t *testing.T) {
	// Across several seeds, kmeans++ must recover the mixture at least
	// as often as block init (here: always, on separable data).
	g := mixture(t, 360, 10, 6)
	truth := make([]int, g.N())
	for i := range truth {
		truth[i] = g.TrueLabel(i)
	}
	for seed := uint64(0); seed < 5; seed++ {
		cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 6, MaxIters: 40, Seed: seed, Init: InitKMeansPlusPlus}
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		ari, err := quality.ARI(res.Assign, truth)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.999 {
			t.Errorf("seed %d: kmeans++ ARI = %g", seed, ari)
		}
	}
}
