package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runObserved runs one training configuration under the given
// recorder, with fresh per-run stats.
func runObserved(t *testing.T, cfg Config, src dataset.Source, rec *obs.Recorder) *Result {
	t.Helper()
	cfg.Stats = trace.NewStats()
	cfg.Obs = rec
	res, err := Run(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertModesEquivalent runs cfg once per recorder mode and asserts
// the rollup recorder's derived tables and exports are bit-identical
// to the span-retaining recorder's — the tentpole equivalence
// contract, on real simulated workloads.
func assertModesEquivalent(t *testing.T, name string, cfg Config, src dataset.Source) {
	t.Helper()
	span, roll := obs.NewRecorder(), obs.NewRollupRecorder()
	runObserved(t, cfg, src, span)
	runObserved(t, cfg, src, roll)

	if got, want := obs.Summarize(roll), obs.Summarize(span); !reflect.DeepEqual(got, want) {
		t.Errorf("%s: Summarize diverges across recorder modes", name)
	}
	if got, want := obs.UnitTotals(roll), obs.UnitTotals(span); !reflect.DeepEqual(got, want) {
		t.Errorf("%s: UnitTotals diverges across recorder modes", name)
	}
	var pSpan, pRoll bytes.Buffer
	if err := obs.WriteProfileJSON(&pSpan, span); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteProfileJSON(&pRoll, roll); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pSpan.Bytes(), pRoll.Bytes()) {
		t.Errorf("%s: profile JSON diverges across recorder modes", name)
	}
	for _, u := range roll.Units() {
		if n := len(u.Spans()); n != 0 {
			t.Errorf("%s: rollup unit %s retained %d spans", name, u.Name(), n)
		}
	}
}

// TestRollupMatchesSpansAllLevels pins mode equivalence at every
// coarse partition level.
func TestRollupMatchesSpansAllLevels(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"level1", Config{Spec: machine.MustSpec(2), Level: Level1, K: 4, MaxIters: 8, Seed: 5}},
		{"level2", Config{Spec: machine.MustSpec(2), Level: Level2, K: 8, MGroup: 4, MaxIters: 8, Seed: 3}},
		{"level3", Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 8, Seed: 11}},
	} {
		assertModesEquivalent(t, tc.name, tc.cfg, g)
	}
}

// TestRollupMatchesSpansSchedDriver pins mode equivalence under the
// discrete-event driver, where the rollup recorder additionally picks
// up the scheduler counters — on both recorders, so the profiles
// still compare byte-equal.
func TestRollupMatchesSpansSchedDriver(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 6, Seed: 11, Sched: true}
	assertModesEquivalent(t, "level3-sched", cfg, g)

	// And the counters actually arrive.
	rec := obs.NewRollupRecorder()
	runObserved(t, cfg, g, rec)
	names := map[string]bool{}
	for _, c := range rec.Counters() {
		names[c.Name] = c.Value > 0
	}
	for _, want := range []string{"sched:dispatches", "sched:parks", "sched:wakes", "sched:max_queue_depth"} {
		if !names[want] {
			t.Errorf("sched-driver profile is missing counter %s (have %v)", want, names)
		}
	}
}

// TestRollupMatchesSpansCrashRecovery pins mode equivalence through
// the fault path: checkpoints, restores, replans and redo work all
// fold identically.
func TestRollupMatchesSpansCrashRecovery(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 12, Seed: 3, Stats: trace.NewStats()}
	clean, err := Run(base, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: 0.4 * totalIterSeconds(clean)}}}
	cfg.CheckpointInterval = 2

	// The scenario must actually recover, or the test pins nothing.
	res := runObserved(t, cfg, g, obs.NewRollupRecorder())
	if res.Recovery == nil || res.Recovery.Replans < 1 {
		t.Fatal("crash caused no recovery; the scenario no longer exercises the machinery")
	}
	assertModesEquivalent(t, "crash-recovery", cfg, g)
}
