package core

import (
	"repro/internal/costmodel"
	"repro/internal/ldm"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// chargeCost applies a local per-iteration cost to a rank's clock and
// trace counters, and records the cost's phase triple — DMA read,
// compute, register communication — as consecutive spans on the
// rank's observability unit (a nil unit records nothing).
func chargeCost(c costmodel.Cost, clock *vclock.Clock, stats *trace.Stats, u *obs.Unit) {
	start := clock.Now()
	clock.Advance(c.Seconds())
	stats.AddDMA(c.DMAElems * ldm.ElemBytes)
	stats.AddReg(c.RegElems * ldm.ElemBytes)
	stats.AddFlops(c.Flops)
	u.RecordCost(start, c.ReadSeconds, c.ComputeSeconds, c.RegSeconds,
		c.DMAElems*ldm.ElemBytes, c.RegElems*ldm.ElemBytes, c.Flops)
}

// chargeTransientDMA folds one iteration's chunked DMA stream through
// the fault injector and charges the retries to the rank's clock and
// the trace counters. at is the rank's clock at iteration start, so
// identical fault plans reproduce identical retry timelines. Fault-free
// runs have no injector and take the zero path.
func chargeTransientDMA(work *mpi.Comm, env *epochEnv, ic costmodel.Cost, at float64) {
	if env.inj == nil {
		return
	}
	transfers := int((ic.DMAElems + costmodel.DMAChunkElems - 1) / costmodel.DMAChunkElems)
	retries, _ := env.inj.DMARetryCount(work.CG(), at, costmodel.DMAChunkElems, transfers)
	if retries <= 0 {
		return
	}
	cost := float64(retries) * (env.chunkSeconds + env.inj.Backoff(1))
	env.cfg.Stats.AddDMARetry(int64(retries), cost)
	t0 := work.Clock().Now()
	work.Clock().Advance(cost)
	work.Obs().Record(obs.KindDMA, t0, work.Clock().Now(), 0, 0)
}
