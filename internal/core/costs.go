package core

import (
	"repro/internal/costmodel"
	"repro/internal/ldm"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// chargeCost applies a local per-iteration cost to a rank's clock and
// trace counters.
func chargeCost(c costmodel.Cost, clock interface{ Advance(float64) }, stats *trace.Stats) {
	clock.Advance(c.Seconds())
	stats.AddDMA(c.DMAElems * ldm.ElemBytes)
	stats.AddReg(c.RegElems * ldm.ElemBytes)
	stats.AddFlops(c.Flops)
}

// chargeTransientDMA folds one iteration's chunked DMA stream through
// the fault injector and charges the retries to the rank's clock and
// the trace counters. at is the rank's clock at iteration start, so
// identical fault plans reproduce identical retry timelines. Fault-free
// runs have no injector and take the zero path.
func chargeTransientDMA(work *mpi.Comm, env *epochEnv, ic costmodel.Cost, at float64) {
	if env.inj == nil {
		return
	}
	transfers := int((ic.DMAElems + costmodel.DMAChunkElems - 1) / costmodel.DMAChunkElems)
	retries, _ := env.inj.DMARetryCount(work.CG(), at, costmodel.DMAChunkElems, transfers)
	if retries <= 0 {
		return
	}
	cost := float64(retries) * (env.chunkSeconds + env.inj.Backoff(1))
	env.cfg.Stats.AddDMARetry(int64(retries), cost)
	work.Clock().Advance(cost)
}
