package core

import (
	"repro/internal/costmodel"
	"repro/internal/ldm"
	"repro/internal/trace"
)

// chargeCost applies a local per-iteration cost to a rank's clock and
// trace counters.
func chargeCost(c costmodel.Cost, clock interface{ Advance(float64) }, stats *trace.Stats) {
	clock.Advance(c.Seconds())
	stats.AddDMA(c.DMAElems * ldm.ElemBytes)
	stats.AddReg(c.RegElems * ldm.ElemBytes)
	stats.AddFlops(c.Flops)
}
