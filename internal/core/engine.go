package core

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// iterEngine is the seam between one partition level's dataflow and
// the shared epoch loop (runEngine): the paper's three levels are one
// algorithm under three dataflow plans, and this interface is exactly
// the part that differs. An engine is stateless; all per-epoch state
// lives in the engineState its setup returns.
type iterEngine interface {
	// replan shapes one epoch over the surviving world ranks before the
	// ranks start executing: it derives the epoch plan (env.eplan), the
	// set of participating ranks (env.active) and the model deposit
	// slots (env.slices). At epoch 0 every rank of the original plan is
	// alive and the epoch plan must equal the original plan, so
	// fault-free runs execute the full-strength dataflow unchanged.
	replan(env *epochEnv) error
	// setup builds a rank's per-epoch state on the working communicator
	// from the full k-by-d centroid matrix (the deterministic initial
	// centroids or a restored checkpoint). Engines that stripe the
	// model carve their slice out of it here, which is what re-stripes
	// centroids after a Level-3 re-plan changed the CG-group size.
	setup(work *mpi.Comm, env *epochEnv, cents []float64) (engineState, error)
	// adoptsModel reports whether setup keeps (and mutates) the full
	// cents matrix it was given. Replicated engines do, so every rank
	// needs a private copy; striping engines copy their stripe out and
	// may share one read-only matrix — at thousands of ranks a private
	// k·d copy apiece is the difference between megabytes and tens of
	// gigabytes.
	adoptsModel() bool
}

// engineState is one rank's view of one epoch.
type engineState interface {
	// step runs one Lloyd iteration — assign, partial sums, reduce,
	// centroid update — and reports the epoch-global movement (the
	// convergence decision must be uniform across ranks without extra
	// communication), the local per-iteration cost already charged to
	// the clock, and the mean objective (rank 0, TrackObjective only).
	step(iter int) (stepOut, error)
	// gather assembles the full k-by-d model on rank 0 for a
	// coordinated checkpoint: free for the replicated levels (rank 0
	// already holds the whole model), a slice gather for Level 3. Only
	// rank 0's return value is used.
	gather() ([]float64, error)
	// deposit publishes the rank's share of the final model into
	// env.slices at the end of a successful epoch (zero-cost shared
	// memory, like the fault-free engines always did).
	deposit()
}

// stepOut is what one iteration reports back to the shared loop.
type stepOut struct {
	movement  float64        // epoch-global squared centroid movement
	cost      costmodel.Cost // local per-iteration cost charged this step
	objective float64        // rank-0 mean objective (TrackObjective only)
}

// epochEnv carries the shared context of one epoch: the run
// configuration, the survivors, and the outputs of iterEngine.replan.
type epochEnv struct {
	cfg      Config
	src      dataset.Source
	plan     Plan // full-strength plan of the run
	epoch    int
	alive    []int // surviving world ranks, ascending
	inj      *fault.Injector
	assign   []int
	droplost bool
	// chunkSeconds is the cost of re-transferring one DMA chunk on a
	// transient fault (resilient runs only).
	chunkSeconds float64

	// Outputs of iterEngine.replan:
	eplan       Plan         // the plan this epoch executes
	active      map[int]bool // world ranks participating (nil: all survivors)
	groupOwners []int        // Level-3 droplost: epoch group -> original group
	slices      [][]float64  // final-model deposit slots, one per centroid slice
}

// isActive reports whether world rank g works this epoch.
func (env *epochEnv) isActive(g int) bool {
	return env.active == nil || env.active[g]
}

// engineFor returns the partition level's engine.
func engineFor(plan Plan) iterEngine {
	if plan.Level == Level3 {
		return level3Engine{}
	}
	return replicatedEngine{}
}

// assembleModel stitches the deposited centroid slices into the full
// k-by-d matrix: the replicated levels deposit one full model, Level 3
// one slice per CG-group position.
func assembleModel(env *epochEnv, k, d int) []float64 {
	if len(env.slices) == 1 {
		return env.slices[0]
	}
	out := make([]float64, k*d)
	for pos, slice := range env.slices {
		kLo, _ := shareRange(k, len(env.slices), pos)
		copy(out[kLo*d:], slice)
	}
	return out
}

// runEngine executes cfg over src with the level's engine. It owns
// everything the pre-refactor drivers duplicated: the Lloyd iteration
// loop, convergence, objective tracking and per-iteration time/phase
// recording — and, when a fault plan is present, the epoch cycle of
// coordinated SWKM checkpoints, rank-0 restore + broadcast, and
// survivor re-planning.
//
// Fault-free runs execute exactly one epoch on the full communicator
// with no extra collectives or clock operations, so they are
// bit-identical to the pre-refactor per-level drivers (locked by the
// golden-parity suite). Under faults the run proceeds in epochs: when
// a rank fails mid-epoch every survivor unwinds with the same typed
// failure, the epoch aborts, and the next epoch re-plans over the
// survivors, restores the last checkpoint and resumes. Every recovery
// step is charged to the virtual clocks and lands in the trace
// recovery counters and the Result's Recovery report.
func runEngine(cfg Config, src dataset.Source, plan Plan, eng iterEngine) (*Result, error) {
	n, d, k := src.N(), src.D(), cfg.K
	faulty := !cfg.Faults.Empty()

	var inj *fault.Injector
	if faulty {
		var err error
		inj, err = fault.NewInjector(cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	world, err := mpi.NewWorld(cfg.Spec, cfg.Stats, plan.Ranks)
	if err != nil {
		return nil, err
	}
	if cfg.Sched {
		world.SetDriver(mpi.DriverSched)
	}
	world.SetObserver(cfg.Obs)
	// The marker track: rank 0 stamps iteration, checkpoint and redo
	// boundaries on it, one shared timeline above the per-rank lanes.
	// Nil when unobserved; every method no-ops then.
	itu := cfg.Obs.Unit(obs.IterUnit)
	var ckptBytes int64
	var ckptCost, chunkSeconds float64
	if faulty {
		world.SetFaults(inj)
		net, err := netmodel.New(cfg.Spec)
		if err != nil {
			return nil, err
		}
		// A coordinated checkpoint ships the model header plus the k·d
		// payload past the supernode switch to stable storage; reading
		// it back on restart costs the same.
		ckptBytes = ModelBytes(k, d)
		ckptCost = net.Latency(machine.CrossSupernode) +
			float64(ckptBytes)/net.Bandwidth(machine.CrossSupernode)
		// Coarse DMA retry penalty: the cost model streams DMA in
		// chunks, so one retry re-transfers a chunk and waits out the
		// first backoff.
		chunkSeconds = cfg.Spec.BW.DMALatency +
			float64(costmodel.DMAChunkElems*8)/cfg.Spec.BW.DMA
	}
	init, err := initialCentroids(cfg, src)
	if err != nil {
		return nil, err
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{K: k, D: d, Assign: assign, Plan: plan}
	var before trace.Snapshot
	if faulty {
		before = cfg.Stats.Snapshot()
	}

	store := &ckptStore{}
	rec := &Recovery{}
	// Indexed by logical iteration so redone iterations overwrite their
	// aborted first attempt; truncated to the executed count at the end.
	iterTimes := make([]float64, cfg.MaxIters)
	phases := make([]Phase, cfg.MaxIters)
	objectives := make([]float64, cfg.MaxIters)
	itersDone, converged := 0, false
	var lastEnv *epochEnv

	for epoch := 0; ; epoch++ {
		alive := world.Alive()
		if len(alive) == 0 {
			return nil, fmt.Errorf("core: %v resilient engine: no surviving ranks: %w",
				plan.Level, mpi.ErrRankFailed)
		}
		env := &epochEnv{
			cfg: cfg, src: src, plan: plan, epoch: epoch, alive: alive,
			inj: inj, assign: assign,
			droplost:     faulty && cfg.DropLostShards,
			chunkSeconds: chunkSeconds,
		}
		if err := eng.replan(env); err != nil {
			return nil, fmt.Errorf("core: %v resilient engine: re-planning over %d survivors: %w",
				plan.Level, len(alive), err)
		}
		lastEnv = env
		failedBefore := len(world.Failed())
		epochStart := world.MaxTime()

		body := func(c *mpi.Comm) error {
			u := c.Obs()
			u.SetIter(-1)
			work := c
			if epoch > 0 {
				// Re-plan: the survivors split into the shrunken working
				// communicator — a real collective whose cost is the
				// re-planning overhead. Survivors the shrunken plan
				// cannot place (Level 3 keeps whole CG groups) sit the
				// epoch out.
				t0 := c.Clock().Now()
				om := u.Begin(t0)
				color := 1
				if env.isActive(c.Global()) {
					color = 0
				}
				sub, err := c.Split(color, c.Rank())
				u.End(om, obs.KindReplan, c.Clock().Now(), 0, 0)
				if err != nil {
					return err
				}
				if color != 0 {
					u.Finish(c.Clock().Now())
					return nil
				}
				work = sub
				if work.Rank() == 0 {
					cfg.Stats.AddReplan(c.Clock().Now() - t0)
				}
			}

			// Restore: rank 0 reads the last checkpoint back from stable
			// storage and broadcasts it; before the first checkpoint
			// every rank derives the initial centroids locally, like the
			// fault-free engines. Engines that stripe the model read
			// the shared initial matrix in place; a private buffer is
			// only materialized when a restore must overwrite it.
			cents := init
			if eng.adoptsModel() {
				cents = append([]float64(nil), init...)
			}
			startIter := 0
			if data, ckIter, _ := store.load(); data != nil {
				if !eng.adoptsModel() {
					cents = append([]float64(nil), init...)
				}
				t0 := work.Clock().Now()
				om := u.Begin(t0)
				err := func() error {
					if work.Rank() == 0 {
						loaded, lk, ld, err := LoadCentroids(bytes.NewReader(data))
						if err != nil {
							return fmt.Errorf("core: restoring checkpoint: %w", err)
						}
						if lk != k || ld != d {
							return fmt.Errorf("core: checkpoint shape %dx%d does not match run %dx%d", lk, ld, k, d)
						}
						copy(cents, loaded)
						work.Clock().Advance(ckptCost)
					}
					return work.Bcast(0, cents, nil)
				}()
				u.End(om, obs.KindRestore, work.Clock().Now(), ckptBytes, 0)
				if err != nil {
					return err
				}
				if work.Rank() == 0 {
					cfg.Stats.AddRestore(work.Clock().Now() - t0)
				}
				startIter = ckIter
			}

			st, err := eng.setup(work, env, cents)
			if err != nil {
				return err
			}
			prevT := work.Clock().Now()
			iters, conv := 0, false
			for iter := startIter; iter < cfg.MaxIters; iter++ {
				u.SetIter(iter)
				// Fail-stop promptly when this rank's crash time passed
				// during local compute, not just at the next message.
				if err := work.CheckFailure(); err != nil {
					return err
				}
				out, err := st.step(iter)
				if err != nil {
					return err
				}
				// One-iteration completion time: the barrier synchronizes
				// all clocks to the iteration's critical path.
				if err := work.Barrier(); err != nil {
					return err
				}
				if work.Rank() == 0 {
					it := work.Clock().Now() - prevT
					iterTimes[iter] = it
					other := it - out.cost.Seconds()
					if other < 0 {
						other = 0
					}
					phases[iter] = Phase{
						Read:    out.cost.ReadSeconds,
						Compute: out.cost.ComputeSeconds,
						Reg:     out.cost.RegSeconds,
						Other:   other,
					}
					if cfg.TrackObjective {
						objectives[iter] = out.objective
					}
					itu.SetIter(iter)
					itu.Record(obs.KindIter, prevT, work.Clock().Now(), 0, 0)
				}
				prevT = work.Clock().Now()

				// The reduced movement is identical on every rank, so
				// the convergence decision is uniform without extra
				// communication.
				done := out.movement <= cfg.Tolerance*cfg.Tolerance
				iters, conv = iter+1, done
				if faulty && !done && (iter+1)%cfg.CheckpointInterval == 0 && iter+1 < cfg.MaxIters {
					// Coordinated checkpoint right after the barrier: the
					// engine assembles the full model on rank 0, every
					// rank waits out the write, rank 0 serializes.
					t0 := work.Clock().Now()
					om := u.Begin(t0)
					err := func() error {
						full, err := st.gather()
						if err != nil {
							return err
						}
						work.Clock().Advance(ckptCost)
						if work.Rank() == 0 {
							var b bytes.Buffer
							if err := SaveCentroids(&b, full, k, d); err != nil {
								return err
							}
							store.save(b.Bytes(), iter+1, work.Clock().Now())
							cfg.Stats.AddCheckpoint(ckptBytes, work.Clock().Now()-t0)
						}
						return nil
					}()
					u.End(om, obs.KindCheckpoint, work.Clock().Now(), ckptBytes, 0)
					if err != nil {
						return err
					}
					if work.Rank() == 0 {
						itu.Record(obs.KindCheckpoint, t0, work.Clock().Now(), ckptBytes, 0)
					}
					prevT = work.Clock().Now()
				}
				if done {
					break
				}
			}
			st.deposit()
			u.SetIter(-1)
			u.Finish(work.Clock().Now())
			if work.Rank() == 0 {
				itersDone, converged = iters, conv
			}
			return nil
		}

		var epochErr error
		if faulty {
			epochErr = world.RunLive(body)
		} else {
			epochErr = world.Run(body)
		}
		if epochErr == nil {
			break
		}
		if !faulty {
			return nil, fmt.Errorf("core: %v engine: %w", plan.Level, epochErr)
		}
		if !errors.Is(epochErr, mpi.ErrRankFailed) && !errors.Is(epochErr, mpi.ErrCrashed) {
			return nil, fmt.Errorf("core: %v resilient engine: %w", plan.Level, epochErr)
		}
		if len(world.Failed()) == failedBefore {
			// The abort did not remove a rank: a retry would replay the
			// identical epoch forever.
			return nil, fmt.Errorf("core: %v resilient engine: non-crash abort: %w", plan.Level, epochErr)
		}
		// Everything since the last checkpoint (or the epoch start, if
		// later) is lost work the next epoch re-executes.
		_, _, ckptAt := store.load()
		if wasted := world.MaxTime() - max(ckptAt, epochStart); wasted > 0 {
			cfg.Stats.AddRedo(wasted)
			// Stamp the lost interval on the marker track: the work the
			// next epoch re-executes.
			itu.SetIter(-1)
			itu.Record(obs.KindRedo, world.MaxTime()-wasted, world.MaxTime(), 0, 0)
		}
		rec.Replans++
	}

	res.Centroids = assembleModel(lastEnv, k, d)
	res.Iters = itersDone
	res.Converged = converged
	res.IterTimes = iterTimes[:itersDone]
	res.Phases = phases[:itersDone]
	if cfg.TrackObjective {
		res.Objectives = objectives[:itersDone]
	}
	if faulty {
		rec.LostRanks = world.Failed()
		if cfg.DropLostShards {
			// A dataflow owner (a rank at Levels 1–2, a CG group at
			// Level 3) that lost any member takes its static shard out
			// of the clustering.
			broken := make(map[int]bool)
			for _, g := range rec.LostRanks {
				broken[g/plan.MPrimeGroup] = true
			}
			for owner := 0; owner < plan.Groups; owner++ {
				if !broken[owner] {
					continue
				}
				lo, hi := shareRange(n, plan.Groups, owner)
				for i := lo; i < hi; i++ {
					assign[i] = -1
				}
				rec.DroppedSamples += hi - lo
			}
		}
		delta := cfg.Stats.Snapshot().Sub(before)
		rec.Checkpoints = int(delta.Checkpoints)
		rec.CheckpointSeconds = delta.CheckpointSeconds
		rec.RestoreSeconds = delta.RestoreSeconds
		rec.ReplanSeconds = delta.ReplanSeconds
		rec.RedoSeconds = delta.RedoSeconds
		rec.RetrySeconds = delta.RetrySeconds
		res.Recovery = rec
	}
	return res, nil
}
