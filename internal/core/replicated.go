package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/mpi"
)

// runReplicated executes Levels 1 and 2, which share their data flow:
// every core group computes full assignments for its sample range
// against the complete centroid set (Level 2 merely organizes the
// centroid set across CPE groups inside the CG, which changes the
// local cost profile and the capacity constraints, not the math), and
// the k-by-d partial sums meet in a world AllReduce. The functional
// arithmetic is identical to sequential Lloyd sample-by-sample; only
// the reduction order of the centroid sums differs.
func runReplicated(cfg Config, src dataset.Source, plan Plan) (*Result, error) {
	n, d, k := src.N(), src.D(), cfg.K
	world, err := mpi.NewWorld(cfg.Spec, cfg.Stats, plan.Ranks)
	if err != nil {
		return nil, err
	}
	init, err := initialCentroids(cfg, src)
	if err != nil {
		return nil, err
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{K: k, D: d, Assign: assign, Plan: plan}
	var iterTimes []float64 // appended by rank 0 only
	var phases []Phase
	var objectives []float64
	var finalCents []float64

	runErr := world.Run(func(c *mpi.Comm) error {
		cents := append([]float64(nil), init...)
		sums := make([]float64, k*d)
		counts := make([]int64, k)
		lo, hi := shareRange(n, c.Size(), c.Rank())
		nLocal := hi - lo
		buf := make([]float64, d)
		prevT := c.Clock().Now()
		// Cumulative per-centroid mass for mini-batch learning rates.
		var cumCounts []int64
		if cfg.MiniBatch > 0 {
			cumCounts = make([]int64, k)
		}

		iters, converged := 0, false
		for iter := 0; iter < cfg.MaxIters; iter++ {
			for i := range sums {
				sums[i] = 0
			}
			for j := range counts {
				counts[j] = 0
			}
			// Assign step: either the full owned range (functionally
			// strided, always charged in full) or a rotating mini-batch
			// of it (charged as the batch).
			localObj := 0.0
			chargedN := nLocal
			if cfg.MiniBatch > 0 && nLocal > 0 {
				batch := min(cfg.MiniBatch, nLocal)
				chargedN = batch
				start := (iter * batch) % nLocal
				for b := 0; b < batch; b++ {
					i := lo + (start+b)%nLocal
					src.Sample(i, buf)
					j, dist := argminDistance(buf, cents, d)
					assign[i] = j
					localObj += dist
					row := sums[j*d : (j+1)*d]
					for u := 0; u < d; u++ {
						row[u] += buf[u]
					}
					counts[j]++
				}
			} else {
				for i := lo; i < hi; i += cfg.SampleStride {
					src.Sample(i, buf)
					j, dist := argminDistance(buf, cents, d)
					assign[i] = j
					localObj += dist
					row := sums[j*d : (j+1)*d]
					for u := 0; u < d; u++ {
						row[u] += buf[u]
					}
					counts[j]++
				}
			}
			var ic costmodel.Cost
			if plan.Level == Level1 {
				ic = costmodel.Level1(cfg.Spec, chargedN, k, d)
			} else {
				ic = costmodel.Level2(cfg.Spec, chargedN, k, d, plan.MGroup, cfg.BatchSamples)
			}
			chargeCost(ic, c.Clock(), cfg.Stats)

			// Update step: the two AllReduce operations of Algorithm 1
			// line 14 (sums and counts travel together; the algorithm
			// switches to a bandwidth-optimal ring for large k·d).
			if err := c.AllReduceSumAuto(sums, counts); err != nil {
				return err
			}
			if cfg.TrackObjective {
				obj := []float64{localObj}
				if err := c.AllReduceSum(obj, nil); err != nil {
					return err
				}
				if c.Rank() == 0 {
					// The reduced counts carry the exact number of
					// samples processed this iteration.
					total := int64(0)
					for _, cnt := range counts {
						total += cnt
					}
					objectives = append(objectives, obj[0]/float64(total))
				}
			}
			var movement float64
			if cfg.MiniBatch > 0 {
				movement = applyMiniBatchUpdate(cents, sums, counts, cumCounts, d)
			} else {
				movement = applyUpdate(cents, sums, counts, d)
			}
			iters++

			// One-iteration completion time: the barrier synchronizes
			// all clocks to the iteration's critical path.
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				it := c.Clock().Now() - prevT
				iterTimes = append(iterTimes, it)
				other := it - ic.Seconds()
				if other < 0 {
					other = 0
				}
				phases = append(phases, Phase{
					Read:    ic.ReadSeconds,
					Compute: ic.ComputeSeconds,
					Reg:     ic.RegSeconds,
					Other:   other,
				})
			}
			prevT = c.Clock().Now()

			// The reduced sums are bitwise identical on every rank, so
			// the convergence decision is uniform without extra
			// communication.
			if movement <= cfg.Tolerance*cfg.Tolerance {
				converged = true
				break
			}
		}
		if c.Rank() == 0 {
			finalCents = cents
			res.Iters = iters
			res.Converged = converged
		}
		return nil
	})
	if runErr != nil {
		return nil, fmt.Errorf("core: %v engine: %w", plan.Level, runErr)
	}
	res.Centroids = finalCents
	res.IterTimes = iterTimes
	res.Phases = phases
	res.Objectives = objectives
	return res, nil
}
