package core

import (
	"repro/internal/costmodel"
	"repro/internal/mpi"
)

// replicatedEngine executes Levels 1 and 2, which share their data
// flow: every core group computes full assignments for its sample
// range against the complete centroid set (Level 2 merely organizes
// the centroid set across CPE groups inside the CG, which changes the
// local cost profile and the capacity constraints, not the math), and
// the k-by-d partial sums meet in a world AllReduce. The functional
// arithmetic is identical to sequential Lloyd sample-by-sample; only
// the reduction order of the centroid sums differs.
type replicatedEngine struct{}

// replan shapes an epoch trivially: every survivor works, and the
// dataflow is re-partitioned over the shrunken communicator (or kept
// on the original static shards under DropLostShards, which setup
// resolves per rank).
func (replicatedEngine) replan(env *epochEnv) error {
	e := env.plan
	e.Ranks = len(env.alive)
	e.Groups = len(env.alive)
	env.eplan = e
	env.slices = make([][]float64, 1)
	return nil
}

// adoptsModel is true: the state keeps the full matrix and updates it
// in place every iteration, so each rank needs a private copy.
func (replicatedEngine) adoptsModel() bool { return true }

func (replicatedEngine) setup(work *mpi.Comm, env *epochEnv, cents []float64) (engineState, error) {
	n, d, k := env.src.N(), env.src.D(), env.cfg.K
	// Shard assignment for this epoch: redistribute the full dataset
	// over the survivors, or keep the original static shards and let
	// dead ones drop out.
	var lo, hi int
	if env.droplost {
		lo, hi = shareRange(n, env.plan.Ranks, work.Global())
	} else {
		lo, hi = shareRange(n, work.Size(), work.Rank())
	}
	st := &replicatedState{
		env: env, work: work, cents: cents, d: d,
		sums:   make([]float64, k*d),
		counts: make([]int64, k),
		buf:    make([]float64, d),
		lo:     lo, hi: hi,
	}
	if env.cfg.MiniBatch > 0 {
		// Cumulative per-centroid mass for mini-batch learning rates.
		st.cumCounts = make([]int64, k)
	}
	return st, nil
}

// replicatedState is one rank's epoch state at Levels 1 and 2.
type replicatedState struct {
	env    *epochEnv
	work   *mpi.Comm
	cents  []float64
	sums   []float64
	counts []int64
	// cumCounts persists across iterations for the mini-batch learning
	// rate (mini-batch mode only).
	cumCounts []int64
	buf       []float64
	lo, hi    int
	d         int
}

func (st *replicatedState) step(iter int) (stepOut, error) {
	env, cfg, d := st.env, &st.env.cfg, st.d
	at := st.work.Clock().Now()
	for i := range st.sums {
		st.sums[i] = 0
	}
	for j := range st.counts {
		st.counts[j] = 0
	}
	// Assign step: either the full owned range (functionally strided,
	// always charged in full) or a rotating mini-batch of it (charged
	// as the batch).
	localObj := 0.0
	nLocal := st.hi - st.lo
	chargedN := nLocal
	if cfg.MiniBatch > 0 && nLocal > 0 {
		batch := min(cfg.MiniBatch, nLocal)
		chargedN = batch
		start := (iter * batch) % nLocal
		for b := 0; b < batch; b++ {
			i := st.lo + (start+b)%nLocal
			env.src.Sample(i, st.buf)
			j, dist := argminDistance(st.buf, st.cents, d)
			env.assign[i] = j
			localObj += dist
			row := st.sums[j*d : (j+1)*d]
			for u := 0; u < d; u++ {
				row[u] += st.buf[u]
			}
			st.counts[j]++
		}
	} else {
		for i := st.lo; i < st.hi; i += cfg.SampleStride {
			env.src.Sample(i, st.buf)
			j, dist := argminDistance(st.buf, st.cents, d)
			env.assign[i] = j
			localObj += dist
			row := st.sums[j*d : (j+1)*d]
			for u := 0; u < d; u++ {
				row[u] += st.buf[u]
			}
			st.counts[j]++
		}
	}
	var ic costmodel.Cost
	if env.eplan.Level == Level1 {
		ic = costmodel.Level1(cfg.Spec, chargedN, cfg.K, d)
	} else {
		ic = costmodel.Level2(cfg.Spec, chargedN, cfg.K, d, env.eplan.MGroup, cfg.BatchSamples)
	}
	chargeCost(ic, st.work.Clock(), cfg.Stats, st.work.Obs())
	chargeTransientDMA(st.work, env, ic, at)

	// Update step: the two AllReduce operations of Algorithm 1 line 14
	// (sums and counts travel together; the algorithm switches to a
	// bandwidth-optimal ring for large k·d).
	if err := st.work.AllReduceSumAuto(st.sums, st.counts); err != nil {
		return stepOut{}, err
	}
	out := stepOut{cost: ic}
	if cfg.TrackObjective {
		obj := []float64{localObj}
		if err := st.work.AllReduceSum(obj, nil); err != nil {
			return stepOut{}, err
		}
		if st.work.Rank() == 0 {
			// The reduced counts carry the exact number of samples
			// processed this iteration.
			total := int64(0)
			for _, cnt := range st.counts {
				total += cnt
			}
			out.objective = obj[0] / float64(total)
		}
	}
	if cfg.MiniBatch > 0 {
		out.movement = applyMiniBatchUpdate(st.cents, st.sums, st.counts, st.cumCounts, d)
	} else {
		out.movement = applyUpdate(st.cents, st.sums, st.counts, d)
	}
	return out, nil
}

// gather is free at the replicated levels: every rank already holds
// the full model.
func (st *replicatedState) gather() ([]float64, error) { return st.cents, nil }

// deposit publishes rank 0's model for assembly after the epoch.
func (st *replicatedState) deposit() {
	if st.work.Rank() == 0 {
		st.env.slices[0] = st.cents
	}
}
