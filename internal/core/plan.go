package core

import (
	"fmt"

	"repro/internal/ldm"
	"repro/internal/machine"
)

// Plan is a validated partition plan: how the dataflow, the centroid
// set and the dimensions map onto the machine for one run.
type Plan struct {
	// Level is the partition strategy.
	Level Level
	// Ranks is the number of core-group ranks participating.
	Ranks int
	// MGroup is the Level-2 CPE group size (1 for other levels).
	MGroup int
	// MPrimeGroup is the Level-3 CG group size (1 for other levels).
	MPrimeGroup int
	// Groups is the number of dataflow partitions: ranks for Levels 1
	// and 2, CG groups for Level 3.
	Groups int
	// KLocalMax is the largest per-unit centroid share.
	KLocalMax int
	// DStripe is the per-CPE dimension stripe at Level 3 (d for the
	// other levels, where a CPE holds whole samples).
	DStripe int
	// Tiled reports that the Level-3 centroid stripes exceed the LDM
	// residency budget at this group size and re-stream from CG DRAM
	// (the regime the paper's smallest Figure-9 configurations run in).
	Tiled bool
	// N, K, D echo the problem shape the plan was made for.
	N, K, D int
}

// String implements fmt.Stringer with a compact summary.
func (p Plan) String() string {
	switch p.Level {
	case Level2:
		return fmt.Sprintf("%v ranks=%d mgroup=%d kLocal<=%d", p.Level, p.Ranks, p.MGroup, p.KLocalMax)
	case Level3:
		return fmt.Sprintf("%v ranks=%d m'group=%d groups=%d kLocal<=%d dStripe=%d",
			p.Level, p.Ranks, p.MPrimeGroup, p.Groups, p.KLocalMax, p.DStripe)
	default:
		return fmt.Sprintf("%v ranks=%d", p.Level, p.Ranks)
	}
}

// PlanFor validates the configuration against the machine's capacity
// constraints and chooses the partition parameters the way Section III
// describes: Level 2 picks the smallest power-of-two CPE group that
// satisfies C′, Level 3 the smallest power-of-two CG group satisfying
// C″ (so a CG group stays inside one supernode whenever it can).
func PlanFor(cfg Config, n, d int) (Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	if n < 1 || d < 1 {
		return Plan{}, fmt.Errorf("core: dataset shape must be positive, got n=%d d=%d", n, d)
	}
	if cfg.K > n {
		return Plan{}, fmt.Errorf("core: k=%d exceeds n=%d", cfg.K, n)
	}
	spec, k := cfg.Spec, cfg.K
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = spec.CGs()
	}
	if ranks < 1 || ranks > spec.CGs() {
		return Plan{}, fmt.Errorf("core: ranks must be in [1,%d], got %d", spec.CGs(), ranks)
	}

	switch cfg.Level {
	case Level1:
		if err := ldm.CheckLevel1(spec, k, d); err != nil {
			return Plan{}, err
		}
		ranks = min(ranks, max(1, n))
		return Plan{
			Level: Level1, Ranks: ranks, MGroup: 1, MPrimeGroup: 1,
			Groups: ranks, KLocalMax: k, DStripe: d, N: n, K: k, D: d,
		}, nil

	case Level2:
		mgroup := cfg.MGroup
		if mgroup == 0 {
			// Smallest power-of-two CPE group satisfying the Level-2
			// constraints; dividing the 64-CPE mesh evenly.
			for m := 1; m <= machine.CPEsPerCG; m *= 2 {
				if ldm.CheckLevel2(spec, k, d, m) == nil {
					mgroup = m
					break
				}
			}
			if mgroup == 0 {
				// Report the most permissive group's failure.
				return Plan{}, ldm.CheckLevel2(spec, k, d, machine.CPEsPerCG)
			}
		} else {
			if machine.CPEsPerCG%mgroup != 0 {
				return Plan{}, fmt.Errorf("core: mgroup %d must divide %d", mgroup, machine.CPEsPerCG)
			}
			if err := ldm.CheckLevel2(spec, k, d, mgroup); err != nil {
				return Plan{}, err
			}
		}
		return Plan{
			Level: Level2, Ranks: ranks, MGroup: mgroup, MPrimeGroup: 1,
			Groups: ranks, KLocalMax: ceilDiv(k, mgroup), DStripe: d, N: n, K: k, D: d,
		}, nil

	case Level3:
		mPrime := cfg.MPrimeGroup
		tiled := false
		if mPrime == 0 {
			for m := 1; m <= ranks; m *= 2 {
				if ldm.CheckLevel3(spec, k, d, m) == nil {
					mPrime = m
					break
				}
			}
			if mPrime == 0 {
				// No resident plan fits the deployment: fall back to
				// tiling the centroid stripes through CG DRAM with the
				// largest group the deployment can host — the regime
				// the paper's smallest Figure-9 configurations run in.
				m := largestPow2AtMost(ranks)
				if err := ldm.CheckLevel3Tiled(spec, k, d, m); err != nil {
					return Plan{}, err
				}
				mPrime, tiled = m, true
			}
		} else {
			if mPrime < 1 || mPrime > ranks {
				return Plan{}, fmt.Errorf("core: m'group must be in [1,%d], got %d", ranks, mPrime)
			}
			if err := ldm.CheckLevel3(spec, k, d, mPrime); err != nil {
				if err := ldm.CheckLevel3Tiled(spec, k, d, mPrime); err != nil {
					return Plan{}, err
				}
				tiled = true
			}
		}
		groups := ranks / mPrime
		if groups < 1 {
			return Plan{}, fmt.Errorf("core: %d ranks cannot host a CG group of %d", ranks, mPrime)
		}
		used := groups * mPrime // leftover CGs idle
		return Plan{
			Level: Level3, Ranks: used, MGroup: 1, MPrimeGroup: mPrime,
			Groups: groups, KLocalMax: ceilDiv(k, mPrime),
			DStripe: ceilDiv(d, machine.CPEsPerCG), N: n, K: k, D: d,
			Tiled: tiled,
		}, nil
	}
	return Plan{}, fmt.Errorf("core: unknown level %v", cfg.Level)
}

func largestPow2AtMost(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
