package core

import (
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/ldm"
	"repro/internal/mpi"
)

// ckptGatherTag is the user-space message tag of the Level-3
// checkpoint slice gather (group 0 ships its stripes to rank 0).
const ckptGatherTag = 0x51c3

// level3Engine executes Algorithm 3: the nkd-partition. Ranks are core
// groups; mPrime consecutive ranks form a CG group that partitions the
// centroid set (consecutive ranks share a node/supernode, so a CG
// group stays physically compact, as Section III.C recommends); the
// dataflow is partitioned across CG groups; and inside each CG the 64
// CPEs stripe the dimensions, which the cost model accounts for.
//
// Per sample batch, every CG computes partial assignments against its
// own centroid slice and the group's min-reduce (a(i) = min a(i)')
// runs over MPI. The Update step combines slice sums across CG groups
// in per-slice communicators.
type level3Engine struct{}

// replan shapes an epoch of CG groups over the survivors. Under
// DropLostShards the original group structure is kept: a CG group that
// lost any member drops out whole (its centroid stripes live on every
// other group, but its static sample shard has no owner), and the
// intact groups keep their original stripes and shards. Otherwise the
// CG-group size shrinks (halving, like the planner built it) until the
// survivors host at least one group, every member's centroid stripe
// widens accordingly, and the full dataset is redistributed across the
// remaining groups; survivors beyond groups·m' sit the epoch out.
func (level3Engine) replan(env *epochEnv) error {
	plan := env.plan
	if env.droplost {
		aliveSet := make(map[int]bool, len(env.alive))
		for _, g := range env.alive {
			aliveSet[g] = true
		}
		active := make(map[int]bool)
		var owners []int
		for og := 0; og < plan.Groups; og++ {
			intact := true
			for p := 0; p < plan.MPrimeGroup; p++ {
				if !aliveSet[og*plan.MPrimeGroup+p] {
					intact = false
					break
				}
			}
			if !intact {
				continue
			}
			owners = append(owners, og)
			for p := 0; p < plan.MPrimeGroup; p++ {
				active[og*plan.MPrimeGroup+p] = true
			}
		}
		if len(owners) == 0 {
			return fmt.Errorf("no intact CG group survives")
		}
		e := plan
		e.Groups = len(owners)
		e.Ranks = len(owners) * plan.MPrimeGroup
		env.eplan = e
		env.active = active
		env.groupOwners = owners
		env.slices = make([][]float64, e.MPrimeGroup)
		return nil
	}

	size := len(env.alive)
	mPrime := plan.MPrimeGroup
	for mPrime > size {
		mPrime /= 2
	}
	tiled := plan.Tiled
	if mPrime != plan.MPrimeGroup {
		// Halving m' doubles each member's centroid stripe: re-check
		// the LDM constraints, falling back to DRAM tiling like the
		// planner does.
		tiled = false
		if ldm.CheckLevel3(env.cfg.Spec, plan.K, plan.D, mPrime) != nil {
			if err := ldm.CheckLevel3Tiled(env.cfg.Spec, plan.K, plan.D, mPrime); err != nil {
				return err
			}
			tiled = true
		}
	}
	groups := size / mPrime
	used := groups * mPrime
	active := make(map[int]bool, used)
	for i, g := range env.alive {
		if i < used {
			active[g] = true
		}
	}
	e := plan
	e.MPrimeGroup = mPrime
	e.Groups = groups
	e.Ranks = used
	e.KLocalMax = ceilDiv(plan.K, mPrime)
	e.Tiled = tiled
	env.eplan = e
	env.active = active
	env.slices = make([][]float64, mPrime)
	return nil
}

// adoptsModel is false: setup copies this rank's stripe out of cents
// and never touches the matrix again, so all ranks may share it.
func (level3Engine) adoptsModel() bool { return false }

func (level3Engine) setup(work *mpi.Comm, env *epochEnv, cents []float64) (engineState, error) {
	e := env.eplan
	n, d, k := env.src.N(), env.src.D(), env.cfg.K
	mPrime, groups := e.MPrimeGroup, e.Groups
	group := work.Rank() / mPrime
	pos := work.Rank() % mPrime
	groupComm, err := work.Split(group, pos)
	if err != nil {
		return nil, err
	}
	posComm, err := work.Split(pos+groups, group) // offset colors past group colors
	if err != nil {
		return nil, err
	}
	if groupComm.Size() != mPrime || posComm.Size() != groups {
		return nil, fmt.Errorf("level3: split sizes %d/%d, want %d/%d",
			groupComm.Size(), posComm.Size(), mPrime, groups)
	}

	// Each rank carves its centroid stripe out of the full model (the
	// initial matrix or a restored checkpoint), so an epoch with a
	// smaller m' naturally re-stripes with wider slices.
	kLo, kHi := shareRange(k, mPrime, pos)
	slice := append([]float64(nil), cents[kLo*d:kHi*d]...)

	// The dataflow shard: the epoch group's share of the full dataset,
	// or the original group's static shard under DropLostShards.
	var lo, hi int
	if env.droplost {
		lo, hi = shareRange(n, env.plan.Groups, env.groupOwners[group])
	} else {
		lo, hi = shareRange(n, groups, group)
	}

	batch := env.cfg.BatchSamples
	return &level3State{
		env: env, work: work, groupComm: groupComm, posComm: posComm,
		group: group, pos: pos, kLo: kLo, kHi: kHi,
		cents:  slice,
		sums:   make([]float64, (kHi-kLo)*d),
		counts: make([]int64, kHi-kLo),
		lo:     lo, hi: hi,
		buf:  make([]float64, d),
		idxs: make([]int, 0, batch),
		vals: make([]float64, batch),
		ids:  make([]int64, batch),
		d:    d,
	}, nil
}

// level3State is one rank's epoch state at Level 3.
type level3State struct {
	env        *epochEnv
	work       *mpi.Comm
	groupComm  *mpi.Comm // the rank's CG group (partitions the centroids)
	posComm    *mpi.Comm // same stripe position across CG groups
	group, pos int
	kLo, kHi   int
	cents      []float64
	sums       []float64
	counts     []int64
	lo, hi     int
	buf        []float64
	idxs       []int
	vals       []float64
	ids        []int64
	d          int
}

func (st *level3State) step(iter int) (stepOut, error) {
	env, cfg, d := st.env, &st.env.cfg, st.d
	k := cfg.K
	e := env.eplan
	at := st.work.Clock().Now()
	for i := range st.sums {
		st.sums[i] = 0
	}
	for j := range st.counts {
		st.counts[j] = 0
	}

	// Assign step in batches: local partial argmin against the slice,
	// then the group's min-reduce over MPI.
	kLocal := st.kHi - st.kLo
	localObj := 0.0
	localCnt := int64(0)
	batch := cfg.BatchSamples
	for start := st.lo; start < st.hi; start += batch * cfg.SampleStride {
		st.idxs = st.idxs[:0]
		for i := start; i < st.hi && len(st.idxs) < batch; i += cfg.SampleStride {
			st.idxs = append(st.idxs, i)
		}
		b := len(st.idxs)
		for bi, i := range st.idxs {
			if kLocal == 0 {
				st.vals[bi] = math.Inf(1)
				st.ids[bi] = int64(k)
				continue
			}
			env.src.Sample(i, st.buf)
			j, dist := argminDistance(st.buf, st.cents, d)
			st.vals[bi] = dist
			st.ids[bi] = int64(st.kLo + j)
		}
		if err := st.groupComm.AllReduceMinPairs(st.vals[:b], st.ids[:b]); err != nil {
			return stepOut{}, err
		}
		for bi, i := range st.idxs {
			w := int(st.ids[bi])
			if w < 0 || w >= k {
				return stepOut{}, fmt.Errorf("level3: sample %d reduced to invalid centroid %d", i, w)
			}
			if st.pos == 0 {
				env.assign[i] = w
				localObj += st.vals[bi]
				localCnt++
			}
			if w >= st.kLo && w < st.kHi {
				env.src.Sample(i, st.buf)
				row := st.sums[(w-st.kLo)*d : (w-st.kLo+1)*d]
				for u := 0; u < d; u++ {
					row[u] += st.buf[u]
				}
				st.counts[w-st.kLo]++
			}
		}
	}
	ic := costmodel.Level3(cfg.Spec, st.hi-st.lo, k, d, e.MPrimeGroup, batch, e.Tiled)
	chargeCost(ic, st.work.Clock(), cfg.Stats, st.work.Obs())
	chargeTransientDMA(st.work, env, ic, at)

	// Update step: combine the slice sums across CG groups (ring
	// algorithm for large slice volumes).
	if err := st.posComm.AllReduceSumAuto(st.sums, st.counts); err != nil {
		return stepOut{}, err
	}
	out := stepOut{cost: ic}
	if cfg.TrackObjective {
		obj := []float64{localObj}
		cnt := []int64{localCnt}
		if err := st.work.AllReduceSum(obj, cnt); err != nil {
			return stepOut{}, err
		}
		if st.work.Rank() == 0 {
			out.objective = obj[0] / float64(cnt[0])
		}
	}
	movement := applyUpdate(st.cents, st.sums, st.counts, d)

	// Convergence is a global property of all slices: sum the
	// per-slice movements across the epoch communicator. Every group
	// carries an identical copy of each slice's movement, so the sum
	// over-counts by exactly the group count.
	mv := []float64{movement}
	if err := st.work.AllReduceSum(mv, nil); err != nil {
		return stepOut{}, err
	}
	out.movement = mv[0] / float64(e.Groups)
	return out, nil
}

// gather assembles the full model on rank 0 for a coordinated
// checkpoint: group 0's members each hold one centroid stripe (every
// other group holds identical copies), so they ship their stripes to
// rank 0 and a barrier re-synchronizes the epoch before the write.
func (st *level3State) gather() ([]float64, error) {
	mPrime := st.env.eplan.MPrimeGroup
	d, k := st.d, st.env.cfg.K
	if mPrime == 1 {
		// A group of one holds the whole model already.
		if st.work.Rank() == 0 {
			return st.cents, nil
		}
		return nil, nil
	}
	var full []float64
	switch {
	case st.work.Rank() == 0:
		full = make([]float64, k*d)
		copy(full, st.cents) // rank 0 is position 0: stripe starts at 0
		for p := 1; p < mPrime; p++ {
			kLo, kHi := shareRange(k, mPrime, p)
			data, _, err := st.work.Recv(p, ckptGatherTag)
			if err != nil {
				return nil, err
			}
			if len(data) != (kHi-kLo)*d {
				return nil, fmt.Errorf("level3: checkpoint stripe %d has %d values, want %d",
					p, len(data), (kHi-kLo)*d)
			}
			copy(full[kLo*d:kHi*d], data)
		}
	case st.group == 0:
		if err := st.work.Send(0, ckptGatherTag, st.cents, nil); err != nil {
			return nil, err
		}
	}
	if err := st.work.Barrier(); err != nil {
		return nil, err
	}
	return full, nil
}

// deposit publishes group 0's centroid stripes for assembly after the
// epoch; its ranks are work ranks 0..m'-1, writing disjoint entries.
func (st *level3State) deposit() {
	if st.group == 0 {
		st.env.slices[st.pos] = st.cents
	}
}
