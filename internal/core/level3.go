package core

import (
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/mpi"
)

// runLevel3 executes Algorithm 3: the nkd-partition. Ranks are core
// groups; mPrime consecutive ranks form a CG group that partitions the
// centroid set (consecutive ranks share a node/supernode, so a CG
// group stays physically compact, as Section III.C recommends); the
// dataflow is partitioned across CG groups; and inside each CG the 64
// CPEs stripe the dimensions, which the cost model accounts for.
//
// Per sample batch, every CG computes partial assignments against its
// own centroid slice and the group's min-reduce (a(i) = min a(i)')
// runs over MPI. The Update step combines slice sums across CG groups
// in per-slice communicators.
func runLevel3(cfg Config, src dataset.Source, plan Plan) (*Result, error) {
	n, d, k := src.N(), src.D(), cfg.K
	mPrime, groups := plan.MPrimeGroup, plan.Groups
	world, err := mpi.NewWorld(cfg.Spec, cfg.Stats, plan.Ranks)
	if err != nil {
		return nil, err
	}
	init, err := initialCentroids(cfg, src)
	if err != nil {
		return nil, err
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{K: k, D: d, Assign: assign, Plan: plan}
	var iterTimes []float64
	var phases []Phase
	var objectives []float64
	finalCents := make([]float64, k*d)
	slices := make([][]float64, mPrime) // filled by group-0 ranks

	runErr := world.Run(func(c *mpi.Comm) error {
		group := c.Rank() / mPrime
		pos := c.Rank() % mPrime
		groupComm, err := c.Split(group, pos)
		if err != nil {
			return err
		}
		posComm, err := c.Split(pos+groups, group) // offset colors past group colors
		if err != nil {
			return err
		}
		if groupComm.Size() != mPrime || posComm.Size() != groups {
			return fmt.Errorf("level3: split sizes %d/%d, want %d/%d",
				groupComm.Size(), posComm.Size(), mPrime, groups)
		}

		kLo, kHi := shareRange(k, mPrime, pos)
		kLocal := kHi - kLo
		cents := append([]float64(nil), init[kLo*d:kHi*d]...)
		sums := make([]float64, kLocal*d)
		counts := make([]int64, kLocal)

		lo, hi := shareRange(n, groups, group)
		nGroup := hi - lo
		buf := make([]float64, d)
		batch := cfg.BatchSamples
		idxs := make([]int, 0, batch)
		vals := make([]float64, batch)
		ids := make([]int64, batch)
		prevT := c.Clock().Now()

		iters, converged := 0, false
		for iter := 0; iter < cfg.MaxIters; iter++ {
			for i := range sums {
				sums[i] = 0
			}
			for j := range counts {
				counts[j] = 0
			}

			// Assign step in batches: local partial argmin against the
			// slice, then the group's min-reduce over MPI.
			localObj := 0.0
			localCnt := int64(0)
			for start := lo; start < hi; start += batch * cfg.SampleStride {
				idxs = idxs[:0]
				for i := start; i < hi && len(idxs) < batch; i += cfg.SampleStride {
					idxs = append(idxs, i)
				}
				b := len(idxs)
				for bi, i := range idxs {
					if kLocal == 0 {
						vals[bi] = math.Inf(1)
						ids[bi] = int64(k)
						continue
					}
					src.Sample(i, buf)
					j, dist := argminDistance(buf, cents, d)
					vals[bi] = dist
					ids[bi] = int64(kLo + j)
				}
				if err := groupComm.AllReduceMinPairs(vals[:b], ids[:b]); err != nil {
					return err
				}
				for bi, i := range idxs {
					w := int(ids[bi])
					if w < 0 || w >= k {
						return fmt.Errorf("level3: sample %d reduced to invalid centroid %d", i, w)
					}
					if pos == 0 {
						assign[i] = w
						localObj += vals[bi]
						localCnt++
					}
					if w >= kLo && w < kHi {
						src.Sample(i, buf)
						row := sums[(w-kLo)*d : (w-kLo+1)*d]
						for u := 0; u < d; u++ {
							row[u] += buf[u]
						}
						counts[w-kLo]++
					}
				}
			}
			ic := costmodel.Level3(cfg.Spec, nGroup, k, d, mPrime, batch, plan.Tiled)
			chargeCost(ic, c.Clock(), cfg.Stats)

			// Update step: combine the slice sums across CG groups
			// (ring algorithm for large slice volumes).
			if err := posComm.AllReduceSumAuto(sums, counts); err != nil {
				return err
			}
			if cfg.TrackObjective {
				obj := []float64{localObj}
				cnt := []int64{localCnt}
				if err := c.AllReduceSum(obj, cnt); err != nil {
					return err
				}
				if c.Rank() == 0 {
					objectives = append(objectives, obj[0]/float64(cnt[0]))
				}
			}
			movement := applyUpdate(cents, sums, counts, d)
			iters++

			// Convergence is a global property of all slices: sum the
			// per-slice movements across the world. Every group carries
			// an identical copy of each slice's movement, so the world
			// sum over-counts by exactly the group count.
			mv := []float64{movement}
			if err := c.AllReduceSum(mv, nil); err != nil {
				return err
			}
			total := mv[0] / float64(groups)

			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				it := c.Clock().Now() - prevT
				iterTimes = append(iterTimes, it)
				other := it - ic.Seconds()
				if other < 0 {
					other = 0
				}
				phases = append(phases, Phase{
					Read:    ic.ReadSeconds,
					Compute: ic.ComputeSeconds,
					Reg:     ic.RegSeconds,
					Other:   other,
				})
			}
			prevT = c.Clock().Now()

			if total <= cfg.Tolerance*cfg.Tolerance {
				converged = true
				break
			}
		}

		// Group 0 deposits its slices for assembly; ranks of group 0
		// are world ranks 0..mPrime-1, writing disjoint entries.
		if group == 0 {
			slices[pos] = cents
		}
		if c.Rank() == 0 {
			res.Iters = iters
			res.Converged = converged
		}
		return nil
	})
	if runErr != nil {
		return nil, fmt.Errorf("core: level3 engine: %w", runErr)
	}
	for pos := 0; pos < mPrime; pos++ {
		kLo, _ := shareRange(k, mPrime, pos)
		copy(finalCents[kLo*d:], slices[pos])
	}
	res.Centroids = finalCents
	res.IterTimes = iterTimes
	res.Phases = phases
	res.Objectives = objectives
	return res, nil
}
