package core

import (
	"fmt"

	"repro/internal/dataset"
)

// InitMethod selects how initial centroids are chosen. All methods are
// deterministic in the seed and computed identically on every rank, so
// initialization needs no startup broadcast.
type InitMethod int

const (
	// InitBlocks picks one sample from each of k equal index blocks
	// (the default; O(k·d), suitable for any n·d).
	InitBlocks InitMethod = iota
	// InitKMeansPlusPlus uses the k-means++ seeding of Arthur &
	// Vassilvitskii: each next centroid is drawn with probability
	// proportional to its squared distance from the chosen set. It
	// costs O(n·k·d) on the host and materializes one float per
	// sample, so it suits functional-scale runs where clustering
	// quality matters.
	InitKMeansPlusPlus
)

// String implements fmt.Stringer.
func (m InitMethod) String() string {
	switch m {
	case InitBlocks:
		return "blocks"
	case InitKMeansPlusPlus:
		return "kmeans++"
	default:
		return fmt.Sprintf("init(%d)", int(m))
	}
}

// KMeansPlusPlus returns k centroids chosen by the k-means++ rule with
// a deterministic seeded pseudo-random stream.
func KMeansPlusPlus(src dataset.Source, k int, seed uint64) ([]float64, error) {
	n, d := src.N(), src.D()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k must be in [1,%d], got %d", n, k)
	}
	cents := make([]float64, k*d)
	buf := make([]float64, d)
	minDist := make([]float64, n)

	first := int(hash2(seed, 0x9E37) % uint64(n))
	src.Sample(first, cents[:d])
	for i := 0; i < n; i++ {
		src.Sample(i, buf)
		minDist[i] = sqDist(buf, cents[:d])
	}
	for j := 1; j < k; j++ {
		total := 0.0
		for _, v := range minDist {
			total += v
		}
		var idx int
		if total <= 0 {
			// All remaining mass is zero (duplicated points): fall back
			// to a deterministic spread pick.
			idx = int(hash2(seed, uint64(j)) % uint64(n))
		} else {
			u := float64(hash2(seed, uint64(j))>>11) / (1 << 53) * total
			acc := 0.0
			idx = n - 1
			for i, v := range minDist {
				acc += v
				if acc >= u {
					idx = i
					break
				}
			}
		}
		row := cents[j*d : (j+1)*d]
		src.Sample(idx, row)
		for i := 0; i < n; i++ {
			src.Sample(i, buf)
			if dd := sqDist(buf, row); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return cents, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		diff := a[i] - b[i]
		s += diff * diff
	}
	return s
}

// initialCentroids dispatches on the configured init method, honouring
// an explicit warm-start matrix first.
func initialCentroids(cfg Config, src dataset.Source) ([]float64, error) {
	if cfg.Initial != nil {
		if len(cfg.Initial) != cfg.K*src.D() {
			return nil, fmt.Errorf("core: warm-start matrix has %d values, want k*d = %d",
				len(cfg.Initial), cfg.K*src.D())
		}
		return append([]float64(nil), cfg.Initial...), nil
	}
	switch cfg.Init {
	case InitBlocks:
		return InitialCentroids(src, cfg.K, cfg.Seed)
	case InitKMeansPlusPlus:
		return KMeansPlusPlus(src, cfg.K, cfg.Seed)
	default:
		return nil, fmt.Errorf("core: unknown init method %d", int(cfg.Init))
	}
}
