package core

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// checkTiling asserts the unit's spans partition [0, EndTime] with no
// gaps or overlaps and returns the summed span durations.
func checkTiling(t *testing.T, u *obs.Unit) float64 {
	t.Helper()
	cursor, sum := 0.0, 0.0
	for _, s := range u.Spans() {
		//swlint:ignore float-eq -- the tiling invariant carries exact timestamps; drift is a bug
		if s.Start != cursor {
			t.Fatalf("unit %s: span %s starts at %.17g, cursor at %.17g", u.Name(), s.Kind, s.Start, cursor)
		}
		if s.End < s.Start {
			t.Fatalf("unit %s: span %s runs backwards", u.Name(), s.Kind)
		}
		cursor = s.End
		sum += s.Duration()
	}
	return sum
}

// TestObserverSpanSumsMatchClock: the acceptance criterion of the
// tracing layer. For a fault-free run at every level, each rank's span
// durations sum to that rank's final virtual-clock time within 1e-9 —
// no virtual time is unattributed or double-counted. (Ranks exit the
// final barrier at slightly different virtual times — the collective's
// cost depends on the rank's position in the topology — so end times
// are per-rank, not one global instant.)
func TestObserverSpanSumsMatchClock(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		level Level
		cfg   Config
	}{
		{Level1, Config{Spec: machine.MustSpec(2), Level: Level1, K: 4, MaxIters: 8, Seed: 5}},
		{Level2, Config{Spec: machine.MustSpec(2), Level: Level2, K: 8, MGroup: 4, MaxIters: 8, Seed: 3}},
		{Level3, Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 8, Seed: 11}},
	} {
		rec := obs.NewRecorder()
		cfg := tc.cfg
		cfg.Stats = trace.NewStats()
		cfg.Obs = rec
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v: %v", tc.level, err)
		}
		var rankEnds []float64
		for _, u := range rec.Units() {
			if u.Name() == obs.IterUnit {
				continue
			}
			if !strings.HasPrefix(u.Name(), "rank/") {
				t.Errorf("%v: unexpected unit %q", tc.level, u.Name())
			}
			sum := checkTiling(t, u)
			if math.Abs(sum-u.EndTime()) > 1e-9 {
				t.Errorf("%v: unit %s durations sum to %.12g, clock at %.12g",
					tc.level, u.Name(), sum, u.EndTime())
			}
			rankEnds = append(rankEnds, u.EndTime())
		}
		if len(rankEnds) != res.Plan.Ranks {
			t.Fatalf("%v: %d rank units, plan has %d ranks", tc.level, len(rankEnds), res.Plan.Ranks)
		}
		for _, e := range rankEnds {
			if e <= 0 {
				t.Errorf("%v: a rank recorded no virtual time: %v", tc.level, rankEnds)
			}
		}
		// The marker track annotates every executed iteration.
		iterSpans := 0
		for _, s := range rec.Unit(obs.IterUnit).Spans() {
			if s.Kind == obs.KindIter {
				iterSpans++
			}
		}
		if iterSpans != res.Iters {
			t.Errorf("%v: %d iter marker spans, result ran %d iterations", tc.level, iterSpans, res.Iters)
		}
	}
}

// TestObserverDoesNotPerturbRun: attaching a recorder must not change
// the simulation — the fault-free timeline is locked bit-identical by
// the golden suite, so observed and unobserved runs must agree exactly.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 300, 6, 3, 0.08, 2.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Level1, Level2, Level3} {
		run := func(rec *obs.Recorder) *Result {
			res, err := Run(Config{
				Spec: machine.MustSpec(1), Level: level, K: 3, MaxIters: 6, Seed: 5,
				Stats: trace.NewStats(), Obs: rec,
			}, g)
			if err != nil {
				t.Fatalf("%v: %v", level, err)
			}
			return res
		}
		plain, observed := run(nil), run(obs.NewRecorder())
		if !reflect.DeepEqual(plain.IterTimes, observed.IterTimes) {
			t.Errorf("%v: observer changed iteration times:\n%v\n%v", level, plain.IterTimes, observed.IterTimes)
		}
		if !reflect.DeepEqual(plain.Centroids, observed.Centroids) {
			t.Errorf("%v: observer changed centroids", level)
		}
	}
}

// TestObserverRecordsRecovery: a crash-recovery run surfaces the
// recovery machinery as typed spans — checkpoint, restore, replan on
// the rank lanes, redo on the marker track — and stays deterministic.
func TestObserverRecordsRecovery(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 12, Seed: 3, Stats: trace.NewStats()}
	clean, err := Run(base, g)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := 0.4 * totalIterSeconds(clean)

	run := func() (*Result, *obs.Recorder) {
		rec := obs.NewRecorder()
		cfg := base
		cfg.Stats = trace.NewStats()
		cfg.Obs = rec
		cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: crashAt}}}
		cfg.CheckpointInterval = 2
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}
	res, rec := run()
	if res.Recovery == nil || res.Recovery.Replans < 1 {
		t.Fatal("crash caused no recovery; the scenario no longer exercises the machinery")
	}
	kinds := map[string]bool{}
	for _, u := range rec.Units() {
		for _, s := range u.Spans() {
			kinds[s.Kind] = true
		}
	}
	for _, want := range []string{obs.KindCheckpoint, obs.KindRestore, obs.KindReplan, obs.KindRedo} {
		if !kinds[want] {
			t.Errorf("recovery run recorded no %q span (kinds: %v)", want, kinds)
		}
	}

	// Identical seeded fault runs export byte-identically.
	_, rec2 := run()
	var b1, b2 bytes.Buffer
	if err := obs.WriteTraceEvents(&b1, rec); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTraceEvents(&b2, rec2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("trace exports of identical fault runs differ")
	}
}
