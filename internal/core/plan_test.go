package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestPlanLevel1(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 64}
	p, err := PlanFor(cfg, 10000, 28)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != Level1 || p.Ranks != 4 || p.Groups != 4 || p.KLocalMax != 64 || p.DStripe != 28 {
		t.Errorf("plan = %+v", p)
	}
	// Infeasible k at Level 1.
	cfg.K = 8192
	if _, err := PlanFor(cfg, 100000, 28); err == nil {
		t.Error("k=8192 d=28 must violate C1")
	}
}

func TestPlanLevel1CapsRanksAtN(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(4), Level: Level1, K: 2}
	p, err := PlanFor(cfg, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ranks != 3 {
		t.Errorf("Ranks = %d, want 3 (capped at n)", p.Ranks)
	}
}

func TestPlanLevel2AutoMGroup(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(64), Level: Level2, K: 8192}
	p, err := PlanFor(cfg, 100000, 28)
	if err != nil {
		t.Fatal(err)
	}
	// C'3 needs 3*8192+1 <= mgroup*16384 -> mgroup >= 2.
	if p.MGroup < 2 {
		t.Errorf("MGroup = %d, want >= 2", p.MGroup)
	}
	if p.KLocalMax != ceilDiv(8192, p.MGroup) {
		t.Errorf("KLocalMax = %d", p.KLocalMax)
	}
	// Small k fits a single CPE.
	cfg.K = 16
	p, err = PlanFor(cfg, 1000, 28)
	if err != nil {
		t.Fatal(err)
	}
	if p.MGroup != 1 {
		t.Errorf("MGroup = %d, want 1 for tiny k", p.MGroup)
	}
}

func TestPlanLevel2ExplicitMGroup(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(1), Level: Level2, K: 64, MGroup: 16}
	p, err := PlanFor(cfg, 1000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.MGroup != 16 {
		t.Errorf("MGroup = %d, want 16", p.MGroup)
	}
	cfg.MGroup = 3 // does not divide 64
	if _, err := PlanFor(cfg, 1000, 32); err == nil {
		t.Error("mgroup=3 accepted")
	}
}

func TestPlanLevel2DimensionLimit(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(128), Level: Level2, K: 2000}
	if _, err := PlanFor(cfg, 100000, 4096); err != nil {
		t.Errorf("d=4096 must plan: %v", err)
	}
	if _, err := PlanFor(cfg, 100000, 4608); err == nil {
		t.Error("d=4608 must be infeasible at Level 2 (Figure 7)")
	}
}

func TestPlanLevel3AutoGroup(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(4096), Level: Level3, K: 2000}
	p, err := PlanFor(cfg, 1265723, 196608)
	if err != nil {
		t.Fatal(err)
	}
	if p.MPrimeGroup < 751 {
		t.Errorf("MPrimeGroup = %d, want >= 751 for the headline shape", p.MPrimeGroup)
	}
	if p.MPrimeGroup&(p.MPrimeGroup-1) != 0 {
		t.Errorf("MPrimeGroup = %d, want power of two", p.MPrimeGroup)
	}
	if p.Groups*p.MPrimeGroup != p.Ranks {
		t.Errorf("groups %d x m' %d != ranks %d", p.Groups, p.MPrimeGroup, p.Ranks)
	}
	if p.DStripe != 196608/64 {
		t.Errorf("DStripe = %d", p.DStripe)
	}
}

func TestPlanLevel3Explicit(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4}
	p, err := PlanFor(cfg, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.MPrimeGroup != 4 || p.Groups != 2 || p.Ranks != 8 {
		t.Errorf("plan = %+v", p)
	}
	cfg.MPrimeGroup = 100
	if _, err := PlanFor(cfg, 100, 64); err == nil {
		t.Error("m'group beyond ranks accepted")
	}
}

func TestPlanLevel3LeftoverRanksIdle(t *testing.T) {
	// 3 nodes = 12 CGs with m'group 8: one group, 4 idle CGs.
	cfg := Config{Spec: machine.MustSpec(3), Level: Level3, K: 8, MPrimeGroup: 8}
	p, err := PlanFor(cfg, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Groups != 1 || p.Ranks != 8 {
		t.Errorf("plan = %+v", p)
	}
}

func TestPlanRejectsBadShapes(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4}
	if _, err := PlanFor(cfg, 0, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PlanFor(cfg, 10, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := PlanFor(cfg, 3, 4); err == nil {
		t.Error("k>n accepted")
	}
	cfg.Ranks = 1000
	if _, err := PlanFor(cfg, 10, 4); err == nil {
		t.Error("ranks beyond CGs accepted")
	}
}

func TestPlanString(t *testing.T) {
	specs := []struct {
		plan Plan
		want string
	}{
		{Plan{Level: Level1, Ranks: 4}, "level1"},
		{Plan{Level: Level2, Ranks: 4, MGroup: 8}, "mgroup=8"},
		{Plan{Level: Level3, Ranks: 8, MPrimeGroup: 4, Groups: 2}, "m'group=4"},
	}
	for _, s := range specs {
		if got := s.plan.String(); !strings.Contains(got, s.want) {
			t.Errorf("String() = %q, missing %q", got, s.want)
		}
	}
}

func TestLargestPow2AtMost(t *testing.T) {
	for _, c := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 2}, {64, 64}, {100, 64}} {
		if got := largestPow2AtMost(c.in); got != c.want {
			t.Errorf("largestPow2AtMost(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
