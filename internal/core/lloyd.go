package core

import (
	"fmt"

	"repro/internal/dataset"
)

// Lloyd runs the sequential Lloyd algorithm (Section II.B.2) on the
// host, with the same deterministic initialization, tie-breaking,
// empty-cluster policy and convergence rule as the parallel engines.
// It is the correctness baseline every partition level is verified
// against, and the reference point for speedup claims.
func Lloyd(src dataset.Source, k, maxIters int, tolerance float64, seed uint64) (*Result, error) {
	cents, err := InitialCentroids(src, k, seed)
	if err != nil {
		return nil, err
	}
	return LloydFrom(src, cents, maxIters, tolerance)
}

// LloydFrom runs sequential Lloyd from an explicit k-by-d initial
// centroid matrix, enabling like-for-like comparisons against engines
// configured with any initialization method.
func LloydFrom(src dataset.Source, initial []float64, maxIters int, tolerance float64) (*Result, error) {
	if maxIters < 1 {
		return nil, fmt.Errorf("core: max iterations must be at least 1, got %d", maxIters)
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("core: tolerance must be non-negative, got %g", tolerance)
	}
	n, d := src.N(), src.D()
	if len(initial) == 0 || len(initial)%d != 0 {
		return nil, fmt.Errorf("core: initial centroid matrix size %d not a positive multiple of d=%d", len(initial), d)
	}
	k := len(initial) / d
	cents := append([]float64(nil), initial...)
	res := &Result{
		Centroids: cents,
		K:         k,
		D:         d,
		Assign:    make([]int, n),
		Plan:      Plan{Level: 0, Ranks: 1, Groups: 1, N: n, K: k, D: d, DStripe: d, KLocalMax: k},
	}
	sums := make([]float64, k*d)
	counts := make([]int64, k)
	buf := make([]float64, d)
	for iter := 0; iter < maxIters; iter++ {
		for i := range sums {
			sums[i] = 0
		}
		for j := range counts {
			counts[j] = 0
		}
		// Assign step.
		obj := 0.0
		//swlint:hot per-sample assign loop: the O(n·k·d) core of Lloyd
		for i := 0; i < n; i++ {
			src.Sample(i, buf)
			j, dist := argminDistance(buf, cents, d)
			res.Assign[i] = j
			obj += dist
			row := sums[j*d : (j+1)*d]
			for u := 0; u < d; u++ {
				row[u] += buf[u]
			}
			counts[j]++
		}
		res.Objectives = append(res.Objectives, obj/float64(n))
		// Update step.
		movement := applyUpdate(cents, sums, counts, d)
		res.Iters++
		if movement <= tolerance*tolerance {
			res.Converged = true
			break
		}
	}
	return res, nil
}
