package core

import (
	"repro/internal/dataset"
	"repro/internal/trace"
)

// Run clusters src on the simulated machine according to cfg: it
// validates the configuration against the level's capacity
// constraints, derives the partition plan, executes the selected
// engine functionally, and reports centroids, assignments, simulated
// per-iteration times and the traffic breakdown.
func Run(cfg Config, src dataset.Source) (*Result, error) {
	cfg = cfg.withDefaults()
	if !cfg.Faults.Empty() && cfg.Stats == nil {
		// The resilient driver accounts recovery cost through the trace
		// counters, so it always needs a sink.
		cfg.Stats = trace.NewStats()
	}
	var plan Plan
	var err error
	if cfg.Level == LevelAuto {
		plan, err = ChooseLevel(cfg, src.N(), src.D())
		if err != nil {
			return nil, err
		}
		cfg.Level = plan.Level
	} else {
		plan, err = PlanFor(cfg, src.N(), src.D())
		if err != nil {
			return nil, err
		}
	}
	var before trace.Snapshot
	if cfg.Stats != nil {
		before = cfg.Stats.Snapshot()
	}
	res, err := runEngine(cfg, src, plan, engineFor(plan))
	if err != nil {
		return nil, err
	}
	if cfg.Stats != nil {
		res.Traffic = cfg.Stats.Snapshot().Sub(before)
	}
	return res, nil
}
