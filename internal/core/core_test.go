package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/machine"
)

func mixture(t *testing.T, n, d, comps int) *dataset.GaussianMixture {
	t.Helper()
	g, err := dataset.NewGaussianMixture("test", n, d, comps, 0.15, 2.0, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		Level1:   "level1(n-partition)",
		Level2:   "level2(nk-partition)",
		Level3:   "level3(nkd-partition)",
		Level(9): "level(9)",
	} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4}.withDefaults()
	if err := good.validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil spec", func(c *Config) { c.Spec = nil }},
		{"bad level", func(c *Config) { c.Level = 0 }},
		{"bad level high", func(c *Config) { c.Level = 4 }},
		{"k=0", func(c *Config) { c.K = 0 }},
		{"negative tolerance", func(c *Config) { c.Tolerance = -1 }},
		{"zero iters", func(c *Config) { c.MaxIters = -1 }},
		{"zero stride", func(c *Config) { c.SampleStride = -1 }},
		{"zero batch", func(c *Config) { c.BatchSamples = -1 }},
	}
	for _, m := range mutations {
		c := good
		m.mut(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: want error", m.name)
		}
	}
}

func TestShareRange(t *testing.T) {
	// Exact cover, no overlap, balanced within 1.
	for _, c := range []struct{ n, p int }{{10, 3}, {7, 7}, {5, 8}, {100, 1}, {0, 4}} {
		covered := 0
		prevHi := 0
		for r := 0; r < c.p; r++ {
			lo, hi := shareRange(c.n, c.p, r)
			if lo != prevHi {
				t.Errorf("n=%d p=%d r=%d: lo=%d, want %d", c.n, c.p, r, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("n=%d p=%d r=%d: negative range", c.n, c.p, r)
			}
			if hi-lo > c.n/c.p+1 {
				t.Errorf("n=%d p=%d r=%d: unbalanced share %d", c.n, c.p, r, hi-lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != c.n {
			t.Errorf("n=%d p=%d: covered %d", c.n, c.p, covered)
		}
	}
}

func TestShareRangeProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw)
		p := int(pRaw)%64 + 1
		total := 0
		for r := 0; r < p; r++ {
			lo, hi := shareRange(n, p, r)
			if hi < lo {
				return false
			}
			total += hi - lo
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialCentroids(t *testing.T) {
	g := mixture(t, 100, 4, 4)
	c1, err := InitialCentroids(g, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 8*4 {
		t.Fatalf("len = %d", len(c1))
	}
	// Deterministic.
	c2, _ := InitialCentroids(g, 8, 7)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("initialization not deterministic")
		}
	}
	// Seed changes selection.
	c3, _ := InitialCentroids(g, 8, 8)
	same := true
	for i := range c1 {
		if c1[i] != c3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds selected identical centroids")
	}
	// Distinct rows (samples come from distinct blocks).
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if equalRows(c1[a*4:(a+1)*4], c1[b*4:(b+1)*4]) {
				t.Errorf("initial centroids %d and %d identical", a, b)
			}
		}
	}
	if _, err := InitialCentroids(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := InitialCentroids(g, 101, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func equalRows(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestArgminDistanceTieBreak(t *testing.T) {
	cents := []float64{1, 0, 1, 0, 5, 5} // centroids 0 and 1 identical
	j, dist := argminDistance([]float64{0, 0}, cents, 2)
	if j != 0 {
		t.Errorf("tie broke to %d, want 0", j)
	}
	if dist != 1 {
		t.Errorf("dist = %g, want 1", dist)
	}
}

func TestApplyUpdate(t *testing.T) {
	cents := []float64{0, 0, 9, 9}
	sums := []float64{4, 8, 0, 0}
	counts := []int64{2, 0}
	mv := applyUpdate(cents, sums, counts, 2)
	if cents[0] != 2 || cents[1] != 4 {
		t.Errorf("centroid 0 = %v", cents[:2])
	}
	// Empty cluster keeps its previous centroid.
	if cents[2] != 9 || cents[3] != 9 {
		t.Errorf("empty centroid moved: %v", cents[2:])
	}
	if mv != 4+16 {
		t.Errorf("movement = %g, want 20", mv)
	}
}

func TestLloydConverges(t *testing.T) {
	g := mixture(t, 200, 6, 4)
	res, err := Lloyd(g, 4, 50, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("Lloyd did not converge on separable data")
	}
	if res.Iters < 1 || res.Iters > 50 {
		t.Errorf("Iters = %d", res.Iters)
	}
	// Every sample assigned; clusters recover the mixture (labels may
	// permute, so check purity: samples with the same true label share
	// an assignment).
	byLabel := map[int]int{}
	for i, a := range res.Assign {
		if a < 0 || a >= 4 {
			t.Fatalf("sample %d unassigned: %d", i, a)
		}
		lbl := g.TrueLabel(i)
		if prev, ok := byLabel[lbl]; ok {
			if prev != a {
				t.Fatalf("label %d split across clusters %d and %d", lbl, prev, a)
			}
		} else {
			byLabel[lbl] = a
		}
	}
}

func TestLloydValidation(t *testing.T) {
	g := mixture(t, 10, 2, 2)
	if _, err := Lloyd(g, 2, 0, 0, 1); err == nil {
		t.Error("maxIters=0 accepted")
	}
	if _, err := Lloyd(g, 2, 5, -1, 1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := Lloyd(g, 0, 5, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLloydObjectiveNonIncreasing(t *testing.T) {
	// Property of Lloyd's algorithm: the objective never increases.
	g := mixture(t, 150, 5, 3)
	cents, _ := InitialCentroids(g, 3, 3)
	n, d := g.N(), g.D()
	buf := make([]float64, d)
	prev := math.Inf(1)
	sums := make([]float64, 3*d)
	counts := make([]int64, 3)
	for iter := 0; iter < 10; iter++ {
		obj := 0.0
		for i := range sums {
			sums[i] = 0
		}
		for j := range counts {
			counts[j] = 0
		}
		for i := 0; i < n; i++ {
			g.Sample(i, buf)
			j, dist := argminDistance(buf, cents, d)
			obj += dist
			row := sums[j*d : (j+1)*d]
			for u := 0; u < d; u++ {
				row[u] += buf[u]
			}
			counts[j]++
		}
		if obj > prev+1e-9 {
			t.Fatalf("objective increased at iter %d: %g -> %g", iter, prev, obj)
		}
		prev = obj
		applyUpdate(cents, sums, counts, d)
	}
}
