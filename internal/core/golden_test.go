package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The golden-parity suite pins the unified IterEngine loop to runs
// recorded with the pre-refactor per-level drivers: for each case the
// final centroids and per-iteration virtual times must match the
// recorded run BIT FOR BIT, and the assignments and iteration counts
// exactly. Regenerate with UPDATE_GOLDEN=1 go test ./internal/core
// -run Golden (only justified when the simulated machine model itself
// changes deliberately).

// goldenRecord serializes one recorded run. Floats are stored as hex
// IEEE-754 bit patterns so the comparison is exact, immune to decimal
// round-tripping.
type goldenRecord struct {
	Iters      int      `json:"iters"`
	Converged  bool     `json:"converged"`
	Assign     []int    `json:"assign"`
	Centroids  []string `json:"centroid_bits"`
	IterTimes  []string `json:"iter_time_bits"`
	Objectives []string `json:"objective_bits,omitempty"`
}

func floatsToBits(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%016x", math.Float64bits(x))
	}
	return out
}

func bitsToFloats(t *testing.T, ss []string) []float64 {
	t.Helper()
	out := make([]float64, len(ss))
	for i, s := range ss {
		var bits uint64
		if _, err := fmt.Sscanf(s, "%x", &bits); err != nil {
			t.Fatalf("golden bits %q: %v", s, err)
		}
		out[i] = math.Float64frombits(bits)
	}
	return out
}

// goldenCases are the seed-dataset configurations the parity suite
// locks down: one per level plus the mode variants (mini-batch,
// stride, non-default batch) whose dataflow differs.
func goldenCases(t *testing.T) []struct {
	name string
	cfg  Config
	src  dataset.Source
} {
	t.Helper()
	g1, err := dataset.NewGaussianMixture("golden1", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := dataset.NewGaussianMixture("golden2", 300, 10, 5, 0.15, 2.0, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := dataset.NewGaussianMixture("golden3", 240, 16, 4, 0.15, 2.0, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		cfg  Config
		src  dataset.Source
	}{
		{
			name: "level1",
			cfg:  Config{Spec: machine.MustSpec(2), Level: Level1, K: 4, MaxIters: 12, Seed: 5, TrackObjective: true},
			src:  g1,
		},
		{
			name: "level1_minibatch",
			cfg:  Config{Spec: machine.MustSpec(2), Level: Level1, K: 4, MaxIters: 8, Seed: 5, MiniBatch: 32, Tolerance: 1e-6},
			src:  g1,
		},
		{
			name: "level1_stride",
			cfg:  Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 6, Seed: 5, SampleStride: 4},
			src:  g1,
		},
		{
			name: "level2",
			cfg:  Config{Spec: machine.MustSpec(2), Level: Level2, K: 10, MGroup: 4, MaxIters: 12, Seed: 3, TrackObjective: true},
			src:  g2,
		},
		{
			name: "level3",
			cfg:  Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 12, Seed: 11, TrackObjective: true},
			src:  g3,
		},
		{
			name: "level3_batch7",
			cfg:  Config{Spec: machine.MustSpec(1), Level: Level3, K: 6, MPrimeGroup: 2, MaxIters: 10, Seed: 4, BatchSamples: 7},
			src:  g3,
		},
	}
}

// drivers are the execution engines every golden scenario must agree
// across bit for bit: the default goroutine-per-rank driver and the
// discrete-event scheduler driver.
var drivers = []struct {
	name  string
	sched bool
}{
	{"goroutine", false},
	{"sched", true},
}

func TestEngineGoldenParity(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Stats = trace.NewStats()
			res, err := Run(cfg, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if update {
				rec := goldenRecord{
					Iters:      res.Iters,
					Converged:  res.Converged,
					Assign:     res.Assign,
					Centroids:  floatsToBits(res.Centroids),
					IterTimes:  floatsToBits(res.IterTimes),
					Objectives: floatsToBits(res.Objectives),
				}
				data, err := json.MarshalIndent(rec, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
			}
			var rec goldenRecord
			if err := json.Unmarshal(data, &rec); err != nil {
				t.Fatal(err)
			}
			if res.Iters != rec.Iters || res.Converged != rec.Converged {
				t.Errorf("iters/converged = %d/%v, golden %d/%v", res.Iters, res.Converged, rec.Iters, rec.Converged)
			}
			if len(res.Assign) != len(rec.Assign) {
				t.Fatalf("assignment length %d, golden %d", len(res.Assign), len(rec.Assign))
			}
			for i := range rec.Assign {
				if res.Assign[i] != rec.Assign[i] {
					t.Fatalf("assign[%d] = %d, golden %d", i, res.Assign[i], rec.Assign[i])
				}
			}
			compareBits(t, "centroid", res.Centroids, bitsToFloats(t, rec.Centroids))
			compareBits(t, "iter time", res.IterTimes, bitsToFloats(t, rec.IterTimes))
			if len(rec.Objectives) > 0 {
				compareBits(t, "objective", res.Objectives, bitsToFloats(t, rec.Objectives))
			}
		})
	}
}

// TestEngineDualDriverParity runs every golden scenario under both
// execution drivers with full observability on and requires the
// outcomes to be indistinguishable: bit-identical centroids,
// per-iteration virtual times (the clocks), objectives, assignments,
// and byte-identical exported traces and metrics. This is the
// bit-exactness contract of the DES refactor — the driver may only
// change how the simulation executes, never what it computes.
func TestEngineDualDriverParity(t *testing.T) {
	type outcome struct {
		res     *Result
		trace   []byte
		metrics []byte
	}
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			runs := make(map[string]outcome, len(drivers))
			for _, drv := range drivers {
				cfg := tc.cfg
				cfg.Stats = trace.NewStats()
				cfg.Sched = drv.sched
				cfg.Obs = obs.NewRecorder()
				res, err := Run(cfg, tc.src)
				if err != nil {
					t.Fatalf("%s driver: %v", drv.name, err)
				}
				var tr, mx bytes.Buffer
				if err := obs.WriteTraceEvents(&tr, cfg.Obs); err != nil {
					t.Fatalf("%s driver trace export: %v", drv.name, err)
				}
				if err := obs.WriteMetricsJSONL(&mx, cfg.Obs); err != nil {
					t.Fatalf("%s driver metrics export: %v", drv.name, err)
				}
				runs[drv.name] = outcome{res: res, trace: tr.Bytes(), metrics: mx.Bytes()}
			}
			g, s := runs["goroutine"], runs["sched"]
			if g.res.Iters != s.res.Iters || g.res.Converged != s.res.Converged {
				t.Errorf("iters/converged: goroutine %d/%v, sched %d/%v",
					g.res.Iters, g.res.Converged, s.res.Iters, s.res.Converged)
			}
			for i := range g.res.Assign {
				if g.res.Assign[i] != s.res.Assign[i] {
					t.Fatalf("assign[%d]: goroutine %d, sched %d", i, g.res.Assign[i], s.res.Assign[i])
				}
			}
			compareBits(t, "centroid", s.res.Centroids, g.res.Centroids)
			compareBits(t, "iter time", s.res.IterTimes, g.res.IterTimes)
			compareBits(t, "objective", s.res.Objectives, g.res.Objectives)
			if !bytes.Equal(g.trace, s.trace) {
				t.Error("exported Chrome traces differ between drivers")
			}
			if !bytes.Equal(g.metrics, s.metrics) {
				t.Error("exported metrics JSONL differs between drivers")
			}
		})
	}
}

// TestEngineGoldenParitySched replays the golden comparison itself
// under the DES driver: not just driver-vs-driver equality, but
// equality with the recorded pre-refactor runs.
func TestEngineGoldenParitySched(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") != "" {
		t.Skip("golden records are regenerated by TestEngineGoldenParity under the default driver")
	}
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Stats = trace.NewStats()
			cfg.Sched = true
			res, err := Run(cfg, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(filepath.Join("testdata", "golden_"+tc.name+".json"))
			if err != nil {
				t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
			}
			var rec goldenRecord
			if err := json.Unmarshal(data, &rec); err != nil {
				t.Fatal(err)
			}
			if res.Iters != rec.Iters || res.Converged != rec.Converged {
				t.Errorf("iters/converged = %d/%v, golden %d/%v", res.Iters, res.Converged, rec.Iters, rec.Converged)
			}
			compareBits(t, "centroid", res.Centroids, bitsToFloats(t, rec.Centroids))
			compareBits(t, "iter time", res.IterTimes, bitsToFloats(t, rec.IterTimes))
		})
	}
}

// compareBits asserts exact IEEE-754 equality element by element.
func compareBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s count %d, golden %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %.17g (bits %016x), golden %.17g (bits %016x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}
