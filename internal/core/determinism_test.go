package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// TestRunsAreFullyDeterministic: repeated runs of the same
// configuration must produce bitwise-identical results AND identical
// simulated times, regardless of goroutine scheduling — the virtual
// clocks advance from the communication structure, not from host
// timing. This is the property that makes the simulator's measurements
// reproducible.
func TestRunsAreFullyDeterministic(t *testing.T) {
	g := mixture(t, 500, 16, 4)
	runOnce := func() *Result {
		res, err := Run(Config{
			Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 2,
			MaxIters: 6, Seed: 3, Stats: trace.NewStats(), TrackObjective: true,
		}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := runOnce()
	for trial := 0; trial < 3; trial++ {
		b := runOnce()
		if b.Iters != a.Iters || b.Converged != a.Converged {
			t.Fatalf("trial %d: iteration count differs", trial)
		}
		for i := range a.Assign {
			if b.Assign[i] != a.Assign[i] {
				t.Fatalf("trial %d: assignment differs at %d", trial, i)
			}
		}
		for i := range a.Centroids {
			if b.Centroids[i] != a.Centroids[i] {
				t.Fatalf("trial %d: centroid bit-difference at %d", trial, i)
			}
		}
		for i := range a.IterTimes {
			if b.IterTimes[i] != a.IterTimes[i] {
				t.Fatalf("trial %d: simulated time differs at iteration %d: %g vs %g",
					trial, i, b.IterTimes[i], a.IterTimes[i])
			}
		}
		for i := range a.Objectives {
			if b.Objectives[i] != a.Objectives[i] {
				t.Fatalf("trial %d: objective differs at iteration %d", trial, i)
			}
		}
		if b.Traffic != a.Traffic {
			t.Fatalf("trial %d: traffic differs: %+v vs %+v", trial, b.Traffic, a.Traffic)
		}
	}
}

// TestDeterminismAcrossLevels12: the replicated engine too.
func TestDeterminismAcrossLevels12(t *testing.T) {
	g := mixture(t, 300, 8, 4)
	for _, lv := range []Level{Level1, Level2} {
		var first *Result
		for trial := 0; trial < 2; trial++ {
			res, err := Run(Config{Spec: machine.MustSpec(2), Level: lv, K: 4, MaxIters: 5, Seed: 1}, g)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = res
				continue
			}
			for i := range first.IterTimes {
				if res.IterTimes[i] != first.IterTimes[i] {
					t.Fatalf("%v: simulated time nondeterministic at iteration %d", lv, i)
				}
			}
		}
	}
}
