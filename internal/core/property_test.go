package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/machine"
)

// TestEnginesMatchLloydOnRandomShapes fuzzes problem shapes and
// machine sizes: every feasible configuration must reproduce
// sequential Lloyd.
func TestEnginesMatchLloydOnRandomShapes(t *testing.T) {
	f := func(nRaw, dRaw, kRaw, nodesRaw uint8, levelRaw uint8, seed uint16) bool {
		n := int(nRaw)%180 + 20
		d := int(dRaw)%24 + 1
		k := int(kRaw)%8 + 1
		if k > n {
			k = n
		}
		nodes := int(nodesRaw)%2 + 1
		level := Level(int(levelRaw)%3 + 1)
		g, err := dataset.NewGaussianMixture("prop", n, d, min(4, n), 0.1, 2.0, uint64(seed)+1)
		if err != nil {
			t.Logf("mixture: %v", err)
			return false
		}
		cfg := Config{
			Spec: machine.MustSpec(nodes), Level: level, K: k,
			MaxIters: 5, Seed: uint64(seed),
		}
		res, err := Run(cfg, g)
		if err != nil {
			// Shapes can legitimately violate constraints; only a
			// missing plan is acceptable as failure.
			return true
		}
		ref, err := Lloyd(g, k, 5, 0, uint64(seed))
		if err != nil {
			t.Logf("lloyd: %v", err)
			return false
		}
		if res.Iters != ref.Iters {
			t.Logf("n=%d d=%d k=%d %v: iters %d vs %d", n, d, k, level, res.Iters, ref.Iters)
			return false
		}
		for i := range ref.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Logf("n=%d d=%d k=%d %v: sample %d assigned %d vs %d",
					n, d, k, level, i, res.Assign[i], ref.Assign[i])
				return false
			}
		}
		for i := range ref.Centroids {
			diff := math.Abs(res.Centroids[i] - ref.Centroids[i])
			if diff/math.Max(1, math.Abs(ref.Centroids[i])) > 1e-9 {
				t.Logf("n=%d d=%d k=%d %v: centroid drift %g", n, d, k, level, diff)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEmptyClusterPolicy: a far-away initial centroid attracts nothing
// and must stay exactly where it started, at every level.
func TestEmptyClusterPolicy(t *testing.T) {
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{float64(i%5) * 0.01, float64(i%7) * 0.01}
	}
	m, err := dataset.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	initial := []float64{
		0, 0, // near the data
		1e6, 1e6, // unreachable: stays empty forever
	}
	for _, level := range []Level{Level1, Level2, Level3} {
		res, err := Run(Config{
			Spec: machine.MustSpec(1), Level: level, K: 2, MaxIters: 10,
			Initial: initial,
		}, m)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if res.Centroid(1)[0] != 1e6 || res.Centroid(1)[1] != 1e6 {
			t.Errorf("%v: empty centroid moved to %v", level, res.Centroid(1))
		}
		for i, a := range res.Assign {
			if a != 0 {
				t.Errorf("%v: sample %d assigned to the empty cluster", level, i)
			}
		}
		if !res.Converged {
			t.Errorf("%v: did not converge with a frozen empty cluster", level)
		}
	}
}

// TestImbalancedMixture: 90%% of the mass in one component still
// recovers all components with k-means++ init.
func TestImbalancedMixture(t *testing.T) {
	// Build an imbalanced dataset from two mixtures.
	big, err := dataset.NewGaussianMixture("big", 540, 6, 1, 0.1, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := dataset.NewGaussianMixture("small", 60, 6, 1, 0.1, 2.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	bigM, err := dataset.Materialize(big)
	if err != nil {
		t.Fatal(err)
	}
	smallM, err := dataset.Materialize(small)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 0, 600)
	for i := 0; i < bigM.N(); i++ {
		rows = append(rows, bigM.Row(i))
	}
	for i := 0; i < smallM.N(); i++ {
		rows = append(rows, smallM.Row(i))
	}
	m, err := dataset.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level3, K: 2, MaxIters: 30,
		Init: InitKMeansPlusPlus, Seed: 2,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	// The minority component must own its own cluster: all of the last
	// 60 samples share an assignment that none of the first 540 have...
	// (component separation is >> noise, so this must hold exactly).
	minor := res.Assign[540]
	for i := 540; i < 600; i++ {
		if res.Assign[i] != minor {
			t.Fatalf("minority sample %d split off", i)
		}
	}
	for i := 0; i < 540; i++ {
		if res.Assign[i] == minor {
			t.Fatalf("majority sample %d joined the minority cluster", i)
		}
	}
}

// TestSingleSamplePerRank exercises the n == ranks edge.
func TestSingleSamplePerRank(t *testing.T) {
	g := mixture(t, 4, 3, 2)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Seed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Ranks != 4 {
		t.Errorf("Ranks = %d", res.Plan.Ranks)
	}
	ref, err := Lloyd(g, 2, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatal("tiny-n run diverges from Lloyd")
		}
	}
}

// TestKEqualsN: every sample its own cluster.
func TestKEqualsN(t *testing.T) {
	g := mixture(t, 12, 4, 2)
	res, err := Run(Config{Spec: machine.MustSpec(1), Level: Level3, K: 12, MaxIters: 5, Seed: 1, MPrimeGroup: 4}, g)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		if seen[a] {
			t.Fatalf("cluster %d reused with k=n", a)
		}
		seen[a] = true
	}
	if !res.Converged {
		t.Error("k=n did not converge")
	}
}
