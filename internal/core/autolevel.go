package core

import (
	"errors"
	"fmt"

	"repro/internal/costmodel"
)

// LevelAuto asks Run to choose the partition level: the multi-level
// flexibility of Section III.D. Every level is planned against the
// capacity constraints and the cheapest feasible one (by the local
// per-CG cost model) executes.
const LevelAuto Level = 0

// ChooseLevel plans all three levels for the problem shape and
// returns the feasible one with the lowest estimated per-iteration
// cost, together with its plan. When no level can host the shape on
// the machine the error joins every level's reason.
func ChooseLevel(cfg Config, n, d int) (Plan, error) {
	cfg = cfg.withDefaults()
	var best Plan
	bestCost := 0.0
	found := false
	var reasons []error
	for _, lv := range []Level{Level1, Level2, Level3} {
		c := cfg
		c.Level = lv
		plan, err := PlanFor(c, n, d)
		if err != nil {
			reasons = append(reasons, fmt.Errorf("%v: %w", lv, err))
			continue
		}
		cost := estimateIterCost(c, plan, n, d)
		if !found || cost < bestCost {
			best, bestCost, found = plan, cost, true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("core: no partition level feasible for n=%d k=%d d=%d: %w",
			n, cfg.K, d, errors.Join(reasons...))
	}
	return best, nil
}

// estimateIterCost returns the local per-CG critical-path seconds of
// one iteration under the plan — sufficient for ranking levels (the
// collective terms scale similarly across levels at a fixed rank
// count).
func estimateIterCost(cfg Config, plan Plan, n, d int) float64 {
	switch plan.Level {
	case Level2:
		nLocal := ceilDiv(n, plan.Ranks)
		return costmodel.Level2(cfg.Spec, nLocal, cfg.K, d, plan.MGroup, cfg.BatchSamples).Seconds()
	case Level3:
		nGroup := ceilDiv(n, plan.Groups)
		return costmodel.Level3(cfg.Spec, nGroup, cfg.K, d, plan.MPrimeGroup, cfg.BatchSamples, plan.Tiled).Seconds()
	default:
		nLocal := ceilDiv(n, plan.Ranks)
		return costmodel.Level1(cfg.Spec, nLocal, cfg.K, d).Seconds()
	}
}
