package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// totalIterSeconds sums the per-iteration virtual times of a result.
func totalIterSeconds(r *Result) float64 {
	s := 0.0
	for _, t := range r.IterTimes {
		s += t
	}
	return s
}

// centroidsClose compares centroid matrices under the reduction
// tolerance: partitioned sums associate differently than sequential
// ones, so agreement is near-exact, not bitwise.
func centroidsClose(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("centroid matrix length %d, want %d", len(got), len(want))
	}
	for i := range got {
		scale := math.Max(1, math.Abs(want[i]))
		if math.Abs(got[i]-want[i]) > 1e-9*scale {
			t.Fatalf("centroid[%d] = %.17g, want %.17g", i, got[i], want[i])
		}
	}
}

// TestResilientMatchesLloydUnderCrash: a CG crash mid-run triggers
// checkpoint restart and re-planning over the survivors, and because
// the full dataset is redistributed (no shard lost) the final
// assignments still equal sequential Lloyd exactly, with centroids
// within the reduction tolerance.
func TestResilientMatchesLloydUnderCrash(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: machine.MustSpec(1), K: 4, MaxIters: 12, Seed: 3}
	ref, err := Lloyd(g, base.K, base.MaxIters, 0, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Level1, Level2} {
		cfg := base
		cfg.Level = level
		clean, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v clean: %v", level, err)
		}
		crashAt := 0.4 * totalIterSeconds(clean)
		cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: crashAt}}}
		cfg.CheckpointInterval = 2
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v faulty: %v", level, err)
		}
		if res.Recovery == nil {
			t.Fatalf("%v: no recovery report", level)
		}
		if res.Recovery.Replans < 1 {
			t.Errorf("%v: crash at t=%.9g caused no replan", level, crashAt)
		}
		if len(res.Recovery.LostRanks) != 1 || res.Recovery.LostRanks[0] != 1 {
			t.Errorf("%v: lost ranks = %v, want [1]", level, res.Recovery.LostRanks)
		}
		if res.Recovery.Checkpoints < 1 {
			t.Errorf("%v: no checkpoints taken", level)
		}
		if res.Recovery.OverheadSeconds() <= 0 {
			t.Errorf("%v: recovery overhead = %g, want positive", level, res.Recovery.OverheadSeconds())
		}
		for i := range ref.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("%v: assignment %d diverges from Lloyd under recovery", level, i)
			}
		}
		centroidsClose(t, res.Centroids, ref.Centroids)
	}
}

// TestResilientDeterministicTimeline: the same fault seed and config
// must reproduce the recovery byte for byte — iteration times, total
// virtual time, recovery report and final centroids.
func TestResilientDeterministicTimeline(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 300, 6, 3, 0.08, 2.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(Config{
			Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 10, Seed: 5,
			Faults: fault.Plan{
				Seed:        21,
				Crashes:     []fault.Crash{{CG: 2, At: 1.2e-5}},
				MsgFailRate: 0.05,
				DMAFailRate: 0.02,
				MaxRetries:  64,
			},
			CheckpointInterval: 3,
			Stats:              trace.NewStats(),
		}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.IterTimes) != len(b.IterTimes) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a.IterTimes), len(b.IterTimes))
	}
	for i := range a.IterTimes {
		if math.Float64bits(a.IterTimes[i]) != math.Float64bits(b.IterTimes[i]) {
			t.Fatalf("iteration %d time diverged: %.17g vs %.17g", i, a.IterTimes[i], b.IterTimes[i])
		}
	}
	for i := range a.Centroids {
		if math.Float64bits(a.Centroids[i]) != math.Float64bits(b.Centroids[i]) {
			t.Fatalf("centroid %d diverged across identical runs", i)
		}
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Errorf("recovery reports diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.RetrySeconds <= 0 {
		t.Errorf("transient fault rates produced no retry time")
	}
}

// TestResilientTransientNoiseMatchesLloyd: pure transient noise (DMA
// and message retries, a degraded link, a straggler CG) never loses
// state, so the result must equal the fault-free one exactly — only
// slower.
func TestResilientTransientNoiseMatchesLloyd(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 300, 6, 3, 0.08, 2.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 10, Seed: 5}
	ref, err := Lloyd(g, cfg.K, cfg.MaxIters, 0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Plan{
		Seed:        4,
		MsgFailRate: 0.1,
		DMAFailRate: 0.05,
		MaxRetries:  64,
		Links:       []fault.LinkDegrade{{FromCG: -1, ToCG: -1, From: 0, To: 1, Factor: 4}},
		Stragglers:  []fault.Straggler{{CG: 1, CPE: -1, Factor: 1.5}},
	}
	res, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatalf("assignment %d diverges from Lloyd under transient noise", i)
		}
	}
	centroidsClose(t, res.Centroids, ref.Centroids)
	if res.Recovery.Replans != 0 {
		t.Errorf("transient noise caused %d replans", res.Recovery.Replans)
	}
	if totalIterSeconds(res)+res.Recovery.OverheadSeconds() <= totalIterSeconds(clean) {
		t.Errorf("noisy run (%.9g + %.9g overhead) not slower than clean run %.9g",
			totalIterSeconds(res), res.Recovery.OverheadSeconds(), totalIterSeconds(clean))
	}
}

// TestResilientDropLostShards: graceful degradation drops the dead
// rank's shard; the run completes, reports the dropped samples, and
// leaves their assignments at -1.
func TestResilientDropLostShards(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 12, Seed: 3}
	clean, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: 0.4 * totalIterSeconds(clean)}}}
	cfg.CheckpointInterval = 2
	cfg.DropLostShards = true
	res, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := shareRange(g.N(), res.Plan.Ranks, 1)
	if res.Recovery.DroppedSamples != hi-lo {
		t.Errorf("dropped samples = %d, want shard size %d", res.Recovery.DroppedSamples, hi-lo)
	}
	for i := 0; i < g.N(); i++ {
		if i >= lo && i < hi {
			if res.Assign[i] != -1 {
				t.Fatalf("dropped sample %d still assigned to %d", i, res.Assign[i])
			}
		} else if res.Assign[i] < 0 || res.Assign[i] >= cfg.K {
			t.Fatalf("surviving sample %d has assignment %d", i, res.Assign[i])
		}
	}
	for _, v := range res.Centroids {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("degraded run produced a non-finite centroid")
		}
	}
}

// TestResilientAllRanksDead: losing every rank is a typed failure, not
// a hang.
func TestResilientAllRanksDead(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 100, 4, 2, 0.1, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	crashes := make([]fault.Crash, machine.CGsPerNode)
	for i := range crashes {
		crashes[i] = fault.Crash{CG: i, At: 0}
	}
	_, err = Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Seed: 1,
		Faults: fault.Plan{Crashes: crashes},
	}, g)
	if !errors.Is(err, mpi.ErrRankFailed) && !errors.Is(err, mpi.ErrCrashed) {
		t.Fatalf("all-ranks-dead error = %v, want a rank-failure error", err)
	}
}

// TestResilientConfigValidation: unsupported fault combinations are
// rejected up front.
func TestResilientConfigValidation(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 100, 4, 2, 0.1, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Plan{Crashes: []fault.Crash{{CG: 0, At: 1}}}
	if _, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level3, K: 2, MaxIters: 5, Faults: faults,
	}, g); err == nil {
		t.Error("Level 3 with faults accepted")
	}
	if _, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Faults: faults, MiniBatch: 16,
	}, g); err == nil {
		t.Error("mini-batch with faults accepted")
	}
	bad := fault.Plan{Crashes: []fault.Crash{{CG: 0, At: 1}}, Stragglers: []fault.Straggler{{CG: 0, CPE: -1, Factor: 0.5}}}
	if _, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Faults: bad,
	}, g); err == nil {
		t.Error("invalid fault plan accepted")
	}
}

// TestResilientLevelAutoAvoidsLevel3: automatic level selection under
// faults only considers the levels the resilient driver implements.
func TestResilientLevelAutoAvoidsLevel3(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 200, 6, 3, 0.1, 2.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: LevelAuto, K: 3, MaxIters: 5, Seed: 1,
		Faults: fault.Plan{MsgFailRate: 0.01, MaxRetries: 16},
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Level == Level3 {
		t.Errorf("auto level chose %v under faults", res.Plan.Level)
	}
}
