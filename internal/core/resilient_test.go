package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// totalIterSeconds sums the per-iteration virtual times of a result.
func totalIterSeconds(r *Result) float64 {
	s := 0.0
	for _, t := range r.IterTimes {
		s += t
	}
	return s
}

// centroidsClose compares centroid matrices under the reduction
// tolerance: partitioned sums associate differently than sequential
// ones, so agreement is near-exact, not bitwise.
func centroidsClose(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("centroid matrix length %d, want %d", len(got), len(want))
	}
	for i := range got {
		scale := math.Max(1, math.Abs(want[i]))
		if math.Abs(got[i]-want[i]) > 1e-9*scale {
			t.Fatalf("centroid[%d] = %.17g, want %.17g", i, got[i], want[i])
		}
	}
}

// TestResilientMatchesLloydUnderCrash: a CG crash mid-run triggers
// checkpoint restart and re-planning over the survivors, and because
// the full dataset is redistributed (no shard lost) the final
// assignments still equal sequential Lloyd exactly, with centroids
// within the reduction tolerance.
func TestResilientMatchesLloydUnderCrash(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: machine.MustSpec(1), K: 4, MaxIters: 12, Seed: 3}
	ref, err := Lloyd(g, base.K, base.MaxIters, 0, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Level1, Level2} {
		cfg := base
		cfg.Level = level
		clean, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v clean: %v", level, err)
		}
		crashAt := 0.4 * totalIterSeconds(clean)
		cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: crashAt}}}
		cfg.CheckpointInterval = 2
		res, err := Run(cfg, g)
		if err != nil {
			t.Fatalf("%v faulty: %v", level, err)
		}
		if res.Recovery == nil {
			t.Fatalf("%v: no recovery report", level)
		}
		if res.Recovery.Replans < 1 {
			t.Errorf("%v: crash at t=%.9g caused no replan", level, crashAt)
		}
		if len(res.Recovery.LostRanks) != 1 || res.Recovery.LostRanks[0] != 1 {
			t.Errorf("%v: lost ranks = %v, want [1]", level, res.Recovery.LostRanks)
		}
		if res.Recovery.Checkpoints < 1 {
			t.Errorf("%v: no checkpoints taken", level)
		}
		if res.Recovery.OverheadSeconds() <= 0 {
			t.Errorf("%v: recovery overhead = %g, want positive", level, res.Recovery.OverheadSeconds())
		}
		for i := range ref.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("%v: assignment %d diverges from Lloyd under recovery", level, i)
			}
		}
		centroidsClose(t, res.Centroids, ref.Centroids)
	}
}

// TestResilientDeterministicTimeline: the same fault seed and config
// must reproduce the recovery byte for byte — iteration times, total
// virtual time, recovery report and final centroids.
func TestResilientDeterministicTimeline(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 300, 6, 3, 0.08, 2.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(Config{
			Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 10, Seed: 5,
			Faults: fault.Plan{
				Seed:        21,
				Crashes:     []fault.Crash{{CG: 2, At: 1.2e-5}},
				MsgFailRate: 0.05,
				DMAFailRate: 0.02,
				MaxRetries:  64,
			},
			CheckpointInterval: 3,
			Stats:              trace.NewStats(),
		}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.IterTimes) != len(b.IterTimes) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a.IterTimes), len(b.IterTimes))
	}
	for i := range a.IterTimes {
		if math.Float64bits(a.IterTimes[i]) != math.Float64bits(b.IterTimes[i]) {
			t.Fatalf("iteration %d time diverged: %.17g vs %.17g", i, a.IterTimes[i], b.IterTimes[i])
		}
	}
	for i := range a.Centroids {
		if math.Float64bits(a.Centroids[i]) != math.Float64bits(b.Centroids[i]) {
			t.Fatalf("centroid %d diverged across identical runs", i)
		}
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Errorf("recovery reports diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.RetrySeconds <= 0 {
		t.Errorf("transient fault rates produced no retry time")
	}
}

// TestResilientTransientNoiseMatchesLloyd: pure transient noise (DMA
// and message retries, a degraded link, a straggler CG) never loses
// state, so the result must equal the fault-free one exactly — only
// slower.
func TestResilientTransientNoiseMatchesLloyd(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 300, 6, 3, 0.08, 2.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 10, Seed: 5}
	ref, err := Lloyd(g, cfg.K, cfg.MaxIters, 0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Plan{
		Seed:        4,
		MsgFailRate: 0.1,
		DMAFailRate: 0.05,
		MaxRetries:  64,
		Links:       []fault.LinkDegrade{{FromCG: -1, ToCG: -1, From: 0, To: 1, Factor: 4}},
		Stragglers:  []fault.Straggler{{CG: 1, CPE: -1, Factor: 1.5}},
	}
	res, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatalf("assignment %d diverges from Lloyd under transient noise", i)
		}
	}
	centroidsClose(t, res.Centroids, ref.Centroids)
	if res.Recovery.Replans != 0 {
		t.Errorf("transient noise caused %d replans", res.Recovery.Replans)
	}
	if totalIterSeconds(res)+res.Recovery.OverheadSeconds() <= totalIterSeconds(clean) {
		t.Errorf("noisy run (%.9g + %.9g overhead) not slower than clean run %.9g",
			totalIterSeconds(res), res.Recovery.OverheadSeconds(), totalIterSeconds(clean))
	}
}

// TestResilientDropLostShards: graceful degradation drops the dead
// rank's shard; the run completes, reports the dropped samples, and
// leaves their assignments at -1.
func TestResilientDropLostShards(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 400, 8, 4, 0.05, 3.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(1), Level: Level1, K: 4, MaxIters: 12, Seed: 3}
	clean, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 1, At: 0.4 * totalIterSeconds(clean)}}}
	cfg.CheckpointInterval = 2
	cfg.DropLostShards = true
	res, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := shareRange(g.N(), res.Plan.Ranks, 1)
	if res.Recovery.DroppedSamples != hi-lo {
		t.Errorf("dropped samples = %d, want shard size %d", res.Recovery.DroppedSamples, hi-lo)
	}
	for i := 0; i < g.N(); i++ {
		if i >= lo && i < hi {
			if res.Assign[i] != -1 {
				t.Fatalf("dropped sample %d still assigned to %d", i, res.Assign[i])
			}
		} else if res.Assign[i] < 0 || res.Assign[i] >= cfg.K {
			t.Fatalf("surviving sample %d has assignment %d", i, res.Assign[i])
		}
	}
	for _, v := range res.Centroids {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("degraded run produced a non-finite centroid")
		}
	}
}

// TestResilientAllRanksDead: losing every rank is a typed failure, not
// a hang.
func TestResilientAllRanksDead(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 100, 4, 2, 0.1, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	crashes := make([]fault.Crash, machine.CGsPerNode)
	for i := range crashes {
		crashes[i] = fault.Crash{CG: i, At: 0}
	}
	_, err = Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Seed: 1,
		Faults: fault.Plan{Crashes: crashes},
	}, g)
	if !errors.Is(err, mpi.ErrRankFailed) && !errors.Is(err, mpi.ErrCrashed) {
		t.Fatalf("all-ranks-dead error = %v, want a rank-failure error", err)
	}
}

// TestResilientConfigValidation: unsupported fault combinations are
// rejected up front, and Level 3 with faults — the former exclusion —
// is accepted.
func TestResilientConfigValidation(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 100, 4, 2, 0.1, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Plan{Crashes: []fault.Crash{{CG: 0, At: 1}}}
	if _, err := PlanFor(Config{
		Spec: machine.MustSpec(1), Level: Level3, K: 2, MaxIters: 5, Faults: faults,
	}, g.N(), g.D()); err != nil {
		t.Errorf("Level 3 with faults rejected: %v", err)
	}
	if _, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Faults: faults, MiniBatch: 16,
	}, g); err == nil {
		t.Error("mini-batch with faults accepted")
	}
	bad := fault.Plan{Crashes: []fault.Crash{{CG: 0, At: 1}}, Stragglers: []fault.Straggler{{CG: 0, CPE: -1, Factor: 0.5}}}
	if _, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 2, MaxIters: 5, Faults: bad,
	}, g); err == nil {
		t.Error("invalid fault plan accepted")
	}
}

// TestResilientLevelAutoConsidersLevel3: automatic level selection no
// longer special-cases Level 3 under a fault plan — on the headline
// shape, where only the nkd-partition is feasible, auto selection with
// faults picks it instead of failing.
func TestResilientLevelAutoConsidersLevel3(t *testing.T) {
	cfg := Config{
		Spec: machine.MustSpec(4096), K: 2000,
		Faults: fault.Plan{MsgFailRate: 0.01, MaxRetries: 16},
	}
	plan, err := ChooseLevel(cfg, 1265723, 196608)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Level != Level3 {
		t.Errorf("auto level under faults chose %v, want Level3", plan.Level)
	}
}

// TestChooseLevelReportsAllReasons: when every level is infeasible the
// error names each level's reason instead of only the last one.
func TestChooseLevelReportsAllReasons(t *testing.T) {
	cfg := Config{Spec: machine.MustSpec(1), K: 100}
	_, err := ChooseLevel(cfg, 10, 4) // k > n: every level fails
	if err == nil {
		t.Fatal("k>n accepted")
	}
	for _, lv := range []Level{Level1, Level2, Level3} {
		if !strings.Contains(err.Error(), lv.String()) {
			t.Errorf("error %q does not name %v", err, lv)
		}
	}
}

// TestResilientLevel3MatchesLloydUnderCrash: a CG crash mid-run at
// Level 3 triggers checkpoint restart and re-planning — the survivors
// re-form CG groups and every stripe is re-carved from the restored
// model — and because the full dataset is redistributed the final
// assignments still equal sequential Lloyd exactly.
func TestResilientLevel3MatchesLloydUnderCrash(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 240, 16, 4, 0.15, 2.0, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 12, Seed: 11}
	ref, err := Lloyd(g, cfg.K, cfg.MaxIters, 0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := 0.4 * totalIterSeconds(clean)
	cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 5, At: crashAt}}}
	cfg.CheckpointInterval = 2
	res, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil {
		t.Fatal("no recovery report")
	}
	if res.Recovery.Replans < 1 {
		t.Errorf("crash at t=%.9g caused no replan", crashAt)
	}
	if len(res.Recovery.LostRanks) != 1 || res.Recovery.LostRanks[0] != 5 {
		t.Errorf("lost ranks = %v, want [5]", res.Recovery.LostRanks)
	}
	if res.Recovery.Checkpoints < 1 {
		t.Errorf("no checkpoints taken")
	}
	if res.Recovery.OverheadSeconds() <= 0 {
		t.Errorf("recovery overhead = %g, want positive", res.Recovery.OverheadSeconds())
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatalf("assignment %d diverges from Lloyd under Level-3 recovery", i)
		}
	}
	centroidsClose(t, res.Centroids, ref.Centroids)
}

// TestResilientLevel3DeterministicTimeline: identical Level-3 fault
// plans reproduce identical recovery timelines byte for byte, exactly
// like the Level-1 guarantee.
func TestResilientLevel3DeterministicTimeline(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 240, 16, 4, 0.15, 2.0, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(Config{
			Spec: machine.MustSpec(2), Level: Level3, K: 8, MPrimeGroup: 4, MaxIters: 10, Seed: 11,
			Faults: fault.Plan{
				Seed:        33,
				Crashes:     []fault.Crash{{CG: 6, At: 2.5e-5}},
				MsgFailRate: 0.05,
				DMAFailRate: 0.02,
				MaxRetries:  64,
			},
			CheckpointInterval: 3,
			Stats:              trace.NewStats(),
		}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.IterTimes) != len(b.IterTimes) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a.IterTimes), len(b.IterTimes))
	}
	for i := range a.IterTimes {
		if math.Float64bits(a.IterTimes[i]) != math.Float64bits(b.IterTimes[i]) {
			t.Fatalf("iteration %d time diverged: %.17g vs %.17g", i, a.IterTimes[i], b.IterTimes[i])
		}
	}
	for i := range a.Centroids {
		if math.Float64bits(a.Centroids[i]) != math.Float64bits(b.Centroids[i]) {
			t.Fatalf("centroid %d diverged across identical runs", i)
		}
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Errorf("recovery reports diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.Replans < 1 {
		t.Errorf("crash caused no replan")
	}
}

// TestResilientLevel3DropLostShards: graceful degradation at Level 3
// drops the whole CG group that lost a member — its static shard ends
// the run unassigned — while the intact groups keep their original
// stripes and shards.
func TestResilientLevel3DropLostShards(t *testing.T) {
	g, err := dataset.NewGaussianMixture("g", 240, 16, 4, 0.15, 2.0, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: machine.MustSpec(2), Level: Level3, K: 6, MPrimeGroup: 2, MaxIters: 12, Seed: 4}
	clean, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Plan{Crashes: []fault.Crash{{CG: 3, At: 0.4 * totalIterSeconds(clean)}}}
	cfg.CheckpointInterval = 2
	cfg.DropLostShards = true
	res, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 3 sits in CG group 1 (m'=2): that group's whole shard drops.
	lostGroup := 3 / res.Plan.MPrimeGroup
	lo, hi := shareRange(g.N(), res.Plan.Groups, lostGroup)
	if res.Recovery.DroppedSamples != hi-lo {
		t.Errorf("dropped samples = %d, want group shard size %d", res.Recovery.DroppedSamples, hi-lo)
	}
	for i := 0; i < g.N(); i++ {
		if i >= lo && i < hi {
			if res.Assign[i] != -1 {
				t.Fatalf("dropped sample %d still assigned to %d", i, res.Assign[i])
			}
		} else if res.Assign[i] < 0 || res.Assign[i] >= cfg.K {
			t.Fatalf("surviving sample %d has assignment %d", i, res.Assign[i])
		}
	}
	for _, v := range res.Centroids {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("degraded run produced a non-finite centroid")
		}
	}
}
