package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// Recovery reports the fault-recovery work of one resilient run. All
// the seconds are virtual: recovery cost is charged to the simulated
// clocks exactly like compute and communication, so time-to-completion
// comparisons against fault-free runs are meaningful.
type Recovery struct {
	// Replans counts the restart rounds: epochs that aborted on a rank
	// failure and re-planned over the survivors.
	Replans int
	// LostRanks is the sorted global ranks that failed during the run.
	LostRanks []int
	// DroppedSamples is the number of samples excluded from the
	// clustering because their shard died (DropLostShards only).
	DroppedSamples int
	// Checkpoints counts the completed model checkpoints.
	Checkpoints int
	// CheckpointSeconds, ReplanSeconds, RedoSeconds and RetrySeconds
	// split the recovery overhead: writing checkpoints, rebuilding
	// communicators and restoring state, re-executing work lost since
	// the last checkpoint, and transient-fault retries.
	CheckpointSeconds float64
	ReplanSeconds     float64
	RedoSeconds       float64
	RetrySeconds      float64
}

// OverheadSeconds returns the total virtual time attributed to
// recovery rather than useful work.
func (r *Recovery) OverheadSeconds() float64 {
	return r.CheckpointSeconds + r.ReplanSeconds + r.RedoSeconds + r.RetrySeconds
}

// ckptStore is the in-memory stand-in for the parallel filesystem the
// real machine checkpoints to: a coordinated checkpoint survives any
// rank failure, and reading it back costs virtual I/O time.
type ckptStore struct {
	mu sync.Mutex
	// data, iter and at are guarded by mu: the serialized model (nil
	// until the first checkpoint), the iteration to resume at, and the
	// virtual completion time of the write (the redo baseline).
	data []byte
	iter int
	at   float64
}

func (s *ckptStore) save(data []byte, iter int, at float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data, s.iter, s.at = data, iter, at
}

func (s *ckptStore) load() (data []byte, iter int, at float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data, s.iter, s.at
}

// runResilient executes Levels 1 and 2 under the configured fault
// plan. The run proceeds in epochs: each epoch executes Lloyd
// iterations over the currently live ranks, checkpointing the model
// every CheckpointInterval iterations. When a rank fails mid-epoch,
// every survivor unwinds with the same typed failure, the epoch
// aborts, and the next epoch re-plans over the survivors (a real
// communicator Split), restores the last checkpoint (rank 0 reads it
// back and broadcasts) and resumes. Every recovery step is charged to
// the virtual clocks, and its cost lands in the trace recovery
// counters and the Result's Recovery report.
//
// Functional guarantee: without DropLostShards every sample is
// processed by exactly one rank each iteration regardless of how many
// failures occurred, so assignments equal sequential Lloyd exactly and
// centroids match within the reduction tolerance (survivor counts
// change the AllReduce association order). With DropLostShards dead
// shards leave the computation and quality degrades gracefully.
func runResilient(cfg Config, src dataset.Source, plan Plan) (*Result, error) {
	inj, err := fault.NewInjector(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	world, err := mpi.NewWorld(cfg.Spec, cfg.Stats, plan.Ranks)
	if err != nil {
		return nil, err
	}
	world.SetFaults(inj)
	net, err := netmodel.New(cfg.Spec)
	if err != nil {
		return nil, err
	}
	init, err := initialCentroids(cfg, src)
	if err != nil {
		return nil, err
	}

	n, d, k := src.N(), src.D(), cfg.K
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{K: k, D: d, Assign: assign, Plan: plan}
	before := cfg.Stats.Snapshot()

	// A coordinated checkpoint ships the model header plus the k·d
	// payload past the supernode switch to stable storage; reading it
	// back on restart costs the same.
	ckptBytes := int64(16 + k*d*8)
	ckptCost := net.Latency(machine.CrossSupernode) +
		float64(ckptBytes)/net.Bandwidth(machine.CrossSupernode)
	// Coarse DMA retry penalty: the cost model streams DMA in chunks,
	// so one retry re-transfers a chunk and waits out the first backoff.
	chunkSeconds := cfg.Spec.BW.DMALatency +
		float64(costmodel.DMAChunkElems*8)/cfg.Spec.BW.DMA

	store := &ckptStore{}
	rec := &Recovery{}
	// Indexed by logical iteration so redone iterations overwrite their
	// aborted first attempt; truncated to the executed count at the end.
	iterTimes := make([]float64, cfg.MaxIters)
	phases := make([]Phase, cfg.MaxIters)
	objectives := make([]float64, cfg.MaxIters)
	var finalCents []float64
	itersDone, converged := 0, false

	for epoch := 0; ; epoch++ {
		if len(world.Alive()) == 0 {
			return nil, fmt.Errorf("core: %v resilient engine: no surviving ranks: %w",
				plan.Level, mpi.ErrRankFailed)
		}
		failedBefore := len(world.Failed())
		epochStart := world.MaxTime()
		epochErr := world.RunLive(func(c *mpi.Comm) error {
			comm := c
			if epoch > 0 {
				// Re-plan: the survivors split into the shrunken working
				// communicator — a real collective whose cost is the
				// re-planning overhead.
				t0 := c.Clock().Now()
				sub, err := c.Split(0, c.Rank())
				if err != nil {
					return err
				}
				comm = sub
				if comm.Rank() == 0 {
					cfg.Stats.AddReplan(c.Clock().Now() - t0)
				}
			}

			// Restore: rank 0 reads the last checkpoint back from stable
			// storage and broadcasts it; before the first checkpoint every
			// rank derives the initial centroids locally, like the
			// fault-free engines.
			cents := append([]float64(nil), init...)
			startIter := 0
			if data, ckIter, _ := store.load(); data != nil {
				if comm.Rank() == 0 {
					loaded, lk, ld, err := LoadCentroids(bytes.NewReader(data))
					if err != nil {
						return fmt.Errorf("core: restoring checkpoint: %w", err)
					}
					if lk != k || ld != d {
						return fmt.Errorf("core: checkpoint shape %dx%d does not match run %dx%d", lk, ld, k, d)
					}
					copy(cents, loaded)
					comm.Clock().Advance(ckptCost)
				}
				if err := comm.Bcast(0, cents, nil); err != nil {
					return err
				}
				startIter = ckIter
			}

			// Shard assignment for this epoch: redistribute the full
			// dataset over the survivors, or keep the original static
			// shards and let dead ones drop out.
			var lo, hi int
			if cfg.DropLostShards {
				lo, hi = shareRange(n, plan.Ranks, c.Global())
			} else {
				lo, hi = shareRange(n, comm.Size(), comm.Rank())
			}

			sums := make([]float64, k*d)
			counts := make([]int64, k)
			buf := make([]float64, d)
			prevT := comm.Clock().Now()
			for iter := startIter; iter < cfg.MaxIters; iter++ {
				// Fail-stop promptly when this rank's crash time passed
				// during local compute, not just at the next message.
				if err := comm.CheckFailure(); err != nil {
					return err
				}
				for i := range sums {
					sums[i] = 0
				}
				for j := range counts {
					counts[j] = 0
				}
				localObj := 0.0
				chargedN := hi - lo
				for i := lo; i < hi; i += cfg.SampleStride {
					src.Sample(i, buf)
					j, dist := argminDistance(buf, cents, d)
					assign[i] = j
					localObj += dist
					row := sums[j*d : (j+1)*d]
					for u := 0; u < d; u++ {
						row[u] += buf[u]
					}
					counts[j]++
				}
				var ic costmodel.Cost
				if plan.Level == Level1 {
					ic = costmodel.Level1(cfg.Spec, chargedN, k, d)
				} else {
					ic = costmodel.Level2(cfg.Spec, chargedN, k, d, plan.MGroup, cfg.BatchSamples)
				}
				chargeCost(ic, comm.Clock(), cfg.Stats)
				// Transient DMA faults: fold the iteration's chunked DMA
				// stream through the injector and charge the retries.
				transfers := int((ic.DMAElems + costmodel.DMAChunkElems - 1) / costmodel.DMAChunkElems)
				if retries, _ := inj.DMARetryCount(c.CG(), prevT, costmodel.DMAChunkElems, transfers); retries > 0 {
					cost := float64(retries) * (chunkSeconds + inj.Backoff(1))
					cfg.Stats.AddDMARetry(int64(retries), cost)
					comm.Clock().Advance(cost)
				}

				if err := comm.AllReduceSumAuto(sums, counts); err != nil {
					return err
				}
				if cfg.TrackObjective {
					obj := []float64{localObj}
					if err := comm.AllReduceSum(obj, nil); err != nil {
						return err
					}
					if comm.Rank() == 0 {
						total := int64(0)
						for _, cnt := range counts {
							total += cnt
						}
						objectives[iter] = obj[0] / float64(total)
					}
				}
				movement := applyUpdate(cents, sums, counts, d)

				if err := comm.Barrier(); err != nil {
					return err
				}
				if comm.Rank() == 0 {
					it := comm.Clock().Now() - prevT
					iterTimes[iter] = it
					other := it - ic.Seconds()
					if other < 0 {
						other = 0
					}
					phases[iter] = Phase{
						Read:    ic.ReadSeconds,
						Compute: ic.ComputeSeconds,
						Reg:     ic.RegSeconds,
						Other:   other,
					}
					itersDone = iter + 1
					converged = movement <= cfg.Tolerance*cfg.Tolerance
					finalCents = cents
				}
				prevT = comm.Clock().Now()

				done := movement <= cfg.Tolerance*cfg.Tolerance
				if !done && (iter+1)%cfg.CheckpointInterval == 0 && iter+1 < cfg.MaxIters {
					// Coordinated checkpoint right after the barrier: the
					// clocks are synchronized, every rank waits out the
					// write, rank 0 serializes the model.
					comm.Clock().Advance(ckptCost)
					if comm.Rank() == 0 {
						var b bytes.Buffer
						if err := SaveCentroids(&b, cents, k, d); err != nil {
							return err
						}
						store.save(b.Bytes(), iter+1, comm.Clock().Now())
						cfg.Stats.AddCheckpoint(ckptBytes, ckptCost)
					}
					prevT = comm.Clock().Now()
				}
				if done {
					break
				}
			}
			return nil
		})
		if epochErr == nil {
			break
		}
		if !errors.Is(epochErr, mpi.ErrRankFailed) && !errors.Is(epochErr, mpi.ErrCrashed) {
			return nil, fmt.Errorf("core: %v resilient engine: %w", plan.Level, epochErr)
		}
		if len(world.Failed()) == failedBefore {
			// The abort did not remove a rank: a retry would replay the
			// identical epoch forever.
			return nil, fmt.Errorf("core: %v resilient engine: non-crash abort: %w", plan.Level, epochErr)
		}
		// Everything since the last checkpoint (or the epoch start, if
		// later) is lost work the next epoch re-executes.
		_, _, ckptAt := store.load()
		if wasted := world.MaxTime() - maxFloat(ckptAt, epochStart); wasted > 0 {
			cfg.Stats.AddRedo(wasted)
		}
		rec.Replans++
	}

	rec.LostRanks = world.Failed()
	if cfg.DropLostShards {
		for _, g := range rec.LostRanks {
			lo, hi := shareRange(n, plan.Ranks, g)
			for i := lo; i < hi; i++ {
				assign[i] = -1
			}
			rec.DroppedSamples += hi - lo
		}
	}
	delta := cfg.Stats.Snapshot().Sub(before)
	rec.Checkpoints = int(delta.Checkpoints)
	rec.CheckpointSeconds = delta.CheckpointSeconds
	rec.ReplanSeconds = delta.ReplanSeconds
	rec.RedoSeconds = delta.RedoSeconds
	rec.RetrySeconds = delta.RetrySeconds
	res.Recovery = rec
	res.Centroids = finalCents
	res.Iters = itersDone
	res.Converged = converged
	res.IterTimes = iterTimes[:itersDone]
	res.Phases = phases[:itersDone]
	if cfg.TrackObjective {
		res.Objectives = objectives[:itersDone]
	}
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
