package core

import "sync"

// Recovery reports the fault-recovery work of one resilient run. All
// the seconds are virtual: recovery cost is charged to the simulated
// clocks exactly like compute and communication, so time-to-completion
// comparisons against fault-free runs are meaningful.
type Recovery struct {
	// Replans counts the restart rounds: epochs that aborted on a rank
	// failure and re-planned over the survivors.
	Replans int
	// LostRanks is the sorted global ranks that failed during the run.
	LostRanks []int
	// DroppedSamples is the number of samples excluded from the
	// clustering because their shard died (DropLostShards only).
	DroppedSamples int
	// Checkpoints counts the completed model checkpoints.
	Checkpoints int
	// CheckpointSeconds, RestoreSeconds, ReplanSeconds, RedoSeconds and
	// RetrySeconds split the recovery overhead: writing checkpoints,
	// reading them back and broadcasting the restored model, rebuilding
	// communicators, re-executing work lost since the last checkpoint,
	// and transient-fault retries.
	CheckpointSeconds float64
	RestoreSeconds    float64
	ReplanSeconds     float64
	RedoSeconds       float64
	RetrySeconds      float64
}

// OverheadSeconds returns the total virtual time attributed to
// recovery rather than useful work.
func (r *Recovery) OverheadSeconds() float64 {
	return r.CheckpointSeconds + r.RestoreSeconds + r.ReplanSeconds + r.RedoSeconds + r.RetrySeconds
}

// ckptStore is the in-memory stand-in for the parallel filesystem the
// real machine checkpoints to: a coordinated checkpoint survives any
// rank failure, and reading it back costs virtual I/O time.
type ckptStore struct {
	mu sync.Mutex
	// data, iter and at are guarded by mu: the serialized model (nil
	// until the first checkpoint), the iteration to resume at, and the
	// virtual completion time of the write (the redo baseline).
	data []byte
	iter int
	at   float64
}

func (s *ckptStore) save(data []byte, iter int, at float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data, s.iter, s.at = data, iter, at
}

func (s *ckptStore) load() (data []byte, iter int, at float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data, s.iter, s.at
}
