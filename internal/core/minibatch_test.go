package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/quality"
)

func TestMiniBatchModeValidation(t *testing.T) {
	g := mixture(t, 100, 4, 2)
	if _, err := Run(Config{Spec: machine.MustSpec(1), Level: Level3, K: 2, MiniBatch: 16}, g); err == nil {
		t.Error("mini-batch at Level 3 accepted")
	}
	if _, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MiniBatch: 16, SampleStride: 2}, g); err == nil {
		t.Error("mini-batch with striding accepted")
	}
	if _, err := Run(Config{Spec: machine.MustSpec(1), Level: Level1, K: 2, MiniBatch: -1}, g); err == nil {
		t.Error("negative mini-batch accepted")
	}
}

func TestMiniBatchModeQualityAndCost(t *testing.T) {
	// One rank so the full pass is compute-heavy enough that fixed
	// collective latencies do not mask the mini-batch advantage.
	g := mixture(t, 2000, 64, 5)
	full, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 5, MaxIters: 2,
		Init: InitKMeansPlusPlus, Seed: 3, Ranks: 1,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level1, K: 5, MaxIters: 30,
		Init: InitKMeansPlusPlus, Seed: 3, MiniBatch: 64, Tolerance: 1e-3, Ranks: 1,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	// A mini-batch iteration must be substantially cheaper in simulated
	// time. The Update step's k·d allreduce is batch-independent, so it
	// floors the saving — the assign-side work shrinks ~30x but the
	// whole iteration lands around the reduce floor.
	if mb.IterTimes[0] >= full.IterTimes[0]/2 {
		t.Errorf("mini-batch iteration %g s vs full %g s — not cheaper", mb.IterTimes[0], full.IterTimes[0])
	}
	// And the clustering still recovers the separable mixture: the
	// rotating batches cover the whole range over the iterations.
	truth := make([]int, g.N())
	for i := range truth {
		truth[i] = g.TrueLabel(i)
	}
	// Score only processed samples (assignments filled as batches
	// rotate; with 30 iters x 32 x 4 ranks they cover most of n).
	var pred, tr []int
	for i, a := range mb.Assign {
		if a >= 0 {
			pred = append(pred, a)
			tr = append(tr, truth[i])
		}
	}
	if len(pred) < g.N()/2 {
		t.Fatalf("only %d of %d samples touched", len(pred), g.N())
	}
	ari, err := quality.ARI(pred, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Errorf("mini-batch ARI = %g on separable data", ari)
	}
}

func TestMiniBatchDeterministic(t *testing.T) {
	g := mixture(t, 500, 6, 3)
	runOnce := func() *Result {
		res, err := Run(Config{
			Spec: machine.MustSpec(1), Level: Level1, K: 3, MaxIters: 10,
			Seed: 5, MiniBatch: 16,
		}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("mini-batch mode not deterministic")
		}
	}
	for i := range a.IterTimes {
		if a.IterTimes[i] != b.IterTimes[i] {
			t.Fatal("mini-batch simulated time not deterministic")
		}
	}
}

func TestMiniBatchLevel2(t *testing.T) {
	g := mixture(t, 800, 8, 4)
	res, err := Run(Config{
		Spec: machine.MustSpec(1), Level: Level2, K: 4, MaxIters: 20,
		Seed: 2, MiniBatch: 64, MGroup: 4,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 20 {
		t.Errorf("iters = %d", res.Iters)
	}
	for _, it := range res.IterTimes {
		if it <= 0 {
			t.Error("non-positive iteration time")
		}
	}
}
