package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
)

// BenchmarkArgminDistance measures the distance kernel at the Level-1
// working-set shape (all centroids resident).
func BenchmarkArgminDistance(b *testing.B) {
	const k, d = 64, 128
	cents := make([]float64, k*d)
	x := make([]float64, d)
	for i := range cents {
		cents[i] = float64(i % 17)
	}
	for i := range x {
		x[i] = float64(i % 13)
	}
	b.SetBytes(int64(k * d * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		argminDistance(x, cents, d)
	}
}

// BenchmarkLloydIteration measures a full sequential baseline
// iteration on a small mixture.
func BenchmarkLloydIteration(b *testing.B) {
	g, err := dataset.NewGaussianMixture("bench", 2048, 32, 8, 0.2, 2.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lloyd(g, 8, 1, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLevel3Iteration measures one functional Level-3 iteration
// on the simulated machine (8 CGs, dimension-striped).
func BenchmarkLevel3Iteration(b *testing.B) {
	g, err := dataset.NewGaussianMixture("bench", 2048, 256, 8, 0.2, 2.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := machine.MustSpec(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Spec: spec, Level: Level3, K: 8, MaxIters: 1, Seed: 1}, g); err != nil {
			b.Fatal(err)
		}
	}
}
