package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Centroid model files use a small self-describing binary format:
// magic, version, k, d as little-endian uint32 followed by k·d
// float64 values. Version 2 appends a CRC-32 (IEEE) of the header and
// payload, so restores detect torn or corrupted checkpoint files
// instead of decoding garbage; version 1 (no checksum) is still read —
// it is the in-memory checkpoint format the simulated engines price.
const (
	modelMagic           = 0x53574b4d // "SWKM"
	modelVersion         = 1
	modelVersionChecksum = 2
)

// ErrModelCorrupt marks a model file rejected as truncated or
// corrupted; errors.Is(err, ErrModelCorrupt) identifies it through
// wrapping so callers can fall back to an older checkpoint.
var ErrModelCorrupt = errors.New("core: centroid model file is truncated or corrupt")

// ModelBytes returns the serialized size of a k-by-d model in the
// binary format: the four-word header plus the row-major float64
// payload. The resilient engine prices checkpoint I/O with it.
func ModelBytes(k, d int) int64 { return int64(16 + k*d*8) }

// SaveCentroids writes a k-by-d centroid matrix in the binary model
// format.
func SaveCentroids(w io.Writer, cents []float64, k, d int) error {
	if k < 1 || d < 1 || len(cents) != k*d {
		return fmt.Errorf("core: centroid matrix %d does not match k=%d d=%d", len(cents), k, d)
	}
	hdr := []uint32{modelMagic, modelVersion, uint32(k), uint32(d)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, cents); err != nil {
		return fmt.Errorf("core: writing model payload: %w", err)
	}
	return nil
}

// LoadCentroids reads a centroid matrix written by SaveCentroids (v1)
// or SaveCentroidsFile (v2, checksummed). Truncated or corrupted input
// is rejected with an error wrapping ErrModelCorrupt.
func LoadCentroids(r io.Reader) (cents []float64, k, d int, err error) {
	var hdr [4]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading model header (%w): %w", err, ErrModelCorrupt)
	}
	if hdr[0] != modelMagic {
		return nil, 0, 0, fmt.Errorf("core: not a centroid model file (magic %#x)", hdr[0])
	}
	if hdr[1] != modelVersion && hdr[1] != modelVersionChecksum {
		return nil, 0, 0, fmt.Errorf("core: unsupported model version %d", hdr[1])
	}
	k, d = int(hdr[2]), int(hdr[3])
	if k < 1 || d < 1 || k > 1<<28 || d > 1<<28 {
		return nil, 0, 0, fmt.Errorf("core: implausible model shape %dx%d", k, d)
	}
	payload := make([]byte, k*d*8)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, 0, fmt.Errorf(
			"core: model payload for shape %dx%d is short (%w) — the writer likely died mid-write; restore an older checkpoint: %w",
			k, d, err, ErrModelCorrupt)
	}
	if hdr[1] == modelVersionChecksum {
		var want uint32
		if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
			return nil, 0, 0, fmt.Errorf("core: model checksum is missing (%w): %w", err, ErrModelCorrupt)
		}
		crc := crc32.NewIEEE()
		_ = binary.Write(crc, binary.LittleEndian, hdr[:])
		crc.Write(payload)
		if got := crc.Sum32(); got != want {
			return nil, 0, 0, fmt.Errorf(
				"core: model checksum mismatch (have %#x, want %#x) — the file is corrupt; restore an older checkpoint: %w",
				got, want, ErrModelCorrupt)
		}
	}
	cents = make([]float64, k*d)
	if err := binary.Read(bytes.NewReader(payload), binary.LittleEndian, cents); err != nil {
		return nil, 0, 0, fmt.Errorf("core: decoding model payload: %w", err)
	}
	return cents, k, d, nil
}

// SaveCentroidsFile writes a checkpoint crash-consistently: the
// checksummed v2 model is written to a temporary file in the target's
// directory, synced to stable storage, and renamed into place, so a
// writer death at any point leaves either the old complete file or the
// new complete file — never a torn checkpoint.
func SaveCentroidsFile(path string, cents []float64, k, d int) (err error) {
	if k < 1 || d < 1 || len(cents) != k*d {
		return fmt.Errorf("core: centroid matrix %d does not match k=%d d=%d", len(cents), k, d)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: creating checkpoint temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	hdr := []uint32{modelMagic, modelVersionChecksum, uint32(k), uint32(d)}
	crc := crc32.NewIEEE()
	w := io.MultiWriter(tmp, crc)
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("core: writing checkpoint header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, cents); err != nil {
		return fmt.Errorf("core: writing checkpoint payload: %w", err)
	}
	if err := binary.Write(tmp, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("core: writing checkpoint checksum: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("core: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: closing checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: publishing checkpoint: %w", err)
	}
	// Best effort: persist the rename itself. Not all platforms support
	// syncing a directory, so errors are ignored.
	if df, derr := os.Open(dir); derr == nil {
		_ = df.Sync()
		df.Close()
	}
	return nil
}

// LoadCentroidsFile restores a checkpoint written by SaveCentroidsFile
// (it also accepts legacy v1 files written through SaveCentroids).
// Truncated, corrupted, or trailing-garbage files are rejected with an
// actionable error wrapping ErrModelCorrupt.
func LoadCentroidsFile(path string) (cents []float64, k, d int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: opening model %s: %w", path, err)
	}
	defer f.Close()
	cents, k, d, err = LoadCentroids(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: restoring model %s: %w", path, err)
	}
	// A well-formed prefix followed by trailing bytes is still not a
	// checkpoint this writer produced — reject it rather than silently
	// ignoring data.
	var extra [1]byte
	if n, _ := f.Read(extra[:]); n != 0 {
		return nil, 0, 0, fmt.Errorf(
			"core: restoring model %s: trailing bytes after the %dx%d payload: %w",
			path, k, d, ErrModelCorrupt)
	}
	return cents, k, d, nil
}

// Summary is the JSON-friendly digest of a Result, for harness logs
// and downstream plotting.
type Summary struct {
	Level       string    `json:"level"`
	Plan        string    `json:"plan"`
	K           int       `json:"k"`
	D           int       `json:"d"`
	N           int       `json:"n"`
	Iters       int       `json:"iters"`
	Converged   bool      `json:"converged"`
	MeanIterSec float64   `json:"mean_iter_seconds"`
	IterSec     []float64 `json:"iter_seconds"`
	DMABytes    int64     `json:"dma_bytes"`
	RegBytes    int64     `json:"reg_bytes"`
	NetBytes    int64     `json:"net_bytes"`
	Flops       int64     `json:"flops"`
	// Phases is the whole-run sum of the per-iteration cost-category
	// breakdown, present whenever the run recorded phases.
	Phases *SummaryPhases `json:"phase_seconds,omitempty"`
	// Recovery mirrors Result.Recovery, present only for resilient runs.
	Recovery *SummaryRecovery `json:"recovery,omitempty"`
}

// SummaryPhases aggregates Result.Phases into whole-run seconds per
// cost category.
type SummaryPhases struct {
	ReadSec    float64 `json:"read_seconds"`
	ComputeSec float64 `json:"compute_seconds"`
	RegSec     float64 `json:"reg_seconds"`
	OtherSec   float64 `json:"other_seconds"`
}

// SummaryRecovery is the JSON shape of the fault-recovery report.
type SummaryRecovery struct {
	Replans        int     `json:"replans"`
	LostRanks      []int   `json:"lost_ranks"`
	DroppedSamples int     `json:"dropped_samples"`
	Checkpoints    int     `json:"checkpoints"`
	CheckpointSec  float64 `json:"checkpoint_seconds"`
	RestoreSec     float64 `json:"restore_seconds"`
	ReplanSec      float64 `json:"replan_seconds"`
	RedoSec        float64 `json:"redo_seconds"`
	RetrySec       float64 `json:"retry_seconds"`
	OverheadSec    float64 `json:"overhead_seconds"`
}

// WriteSummary emits the result digest as indented JSON.
func (r *Result) WriteSummary(w io.Writer) error {
	s := Summary{
		Level:       r.Plan.Level.String(),
		Plan:        r.Plan.String(),
		K:           r.K,
		D:           r.D,
		N:           r.Plan.N,
		Iters:       r.Iters,
		Converged:   r.Converged,
		MeanIterSec: r.MeanIterTime(),
		IterSec:     r.IterTimes,
		DMABytes:    r.Traffic.DMABytes,
		RegBytes:    r.Traffic.RegBytes,
		NetBytes:    r.Traffic.NetBytes,
		Flops:       r.Traffic.Flops,
	}
	if len(r.Phases) > 0 {
		p := &SummaryPhases{}
		for _, ph := range r.Phases {
			p.ReadSec += ph.Read
			p.ComputeSec += ph.Compute
			p.RegSec += ph.Reg
			p.OtherSec += ph.Other
		}
		s.Phases = p
	}
	if rec := r.Recovery; rec != nil {
		s.Recovery = &SummaryRecovery{
			Replans:        rec.Replans,
			LostRanks:      rec.LostRanks,
			DroppedSamples: rec.DroppedSamples,
			Checkpoints:    rec.Checkpoints,
			CheckpointSec:  rec.CheckpointSeconds,
			RestoreSec:     rec.RestoreSeconds,
			ReplanSec:      rec.ReplanSeconds,
			RedoSec:        rec.RedoSeconds,
			RetrySec:       rec.RetrySeconds,
			OverheadSec:    rec.OverheadSeconds(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
