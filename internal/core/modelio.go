package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Centroid model files use a small self-describing binary format:
// magic, version, k, d as little-endian uint32 followed by k·d
// float64 values.
const (
	modelMagic   = 0x53574b4d // "SWKM"
	modelVersion = 1
)

// ModelBytes returns the serialized size of a k-by-d model in the
// binary format: the four-word header plus the row-major float64
// payload. The resilient engine prices checkpoint I/O with it.
func ModelBytes(k, d int) int64 { return int64(16 + k*d*8) }

// SaveCentroids writes a k-by-d centroid matrix in the binary model
// format.
func SaveCentroids(w io.Writer, cents []float64, k, d int) error {
	if k < 1 || d < 1 || len(cents) != k*d {
		return fmt.Errorf("core: centroid matrix %d does not match k=%d d=%d", len(cents), k, d)
	}
	hdr := []uint32{modelMagic, modelVersion, uint32(k), uint32(d)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, cents); err != nil {
		return fmt.Errorf("core: writing model payload: %w", err)
	}
	return nil
}

// LoadCentroids reads a centroid matrix written by SaveCentroids.
func LoadCentroids(r io.Reader) (cents []float64, k, d int, err error) {
	var hdr [4]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading model header: %w", err)
	}
	if hdr[0] != modelMagic {
		return nil, 0, 0, fmt.Errorf("core: not a centroid model file (magic %#x)", hdr[0])
	}
	if hdr[1] != modelVersion {
		return nil, 0, 0, fmt.Errorf("core: unsupported model version %d", hdr[1])
	}
	k, d = int(hdr[2]), int(hdr[3])
	if k < 1 || d < 1 || k > 1<<28 || d > 1<<28 {
		return nil, 0, 0, fmt.Errorf("core: implausible model shape %dx%d", k, d)
	}
	cents = make([]float64, k*d)
	if err := binary.Read(r, binary.LittleEndian, cents); err != nil {
		return nil, 0, 0, fmt.Errorf("core: reading model payload: %w", err)
	}
	return cents, k, d, nil
}

// Summary is the JSON-friendly digest of a Result, for harness logs
// and downstream plotting.
type Summary struct {
	Level       string    `json:"level"`
	Plan        string    `json:"plan"`
	K           int       `json:"k"`
	D           int       `json:"d"`
	N           int       `json:"n"`
	Iters       int       `json:"iters"`
	Converged   bool      `json:"converged"`
	MeanIterSec float64   `json:"mean_iter_seconds"`
	IterSec     []float64 `json:"iter_seconds"`
	DMABytes    int64     `json:"dma_bytes"`
	RegBytes    int64     `json:"reg_bytes"`
	NetBytes    int64     `json:"net_bytes"`
	Flops       int64     `json:"flops"`
	// Phases is the whole-run sum of the per-iteration cost-category
	// breakdown, present whenever the run recorded phases.
	Phases *SummaryPhases `json:"phase_seconds,omitempty"`
	// Recovery mirrors Result.Recovery, present only for resilient runs.
	Recovery *SummaryRecovery `json:"recovery,omitempty"`
}

// SummaryPhases aggregates Result.Phases into whole-run seconds per
// cost category.
type SummaryPhases struct {
	ReadSec    float64 `json:"read_seconds"`
	ComputeSec float64 `json:"compute_seconds"`
	RegSec     float64 `json:"reg_seconds"`
	OtherSec   float64 `json:"other_seconds"`
}

// SummaryRecovery is the JSON shape of the fault-recovery report.
type SummaryRecovery struct {
	Replans        int     `json:"replans"`
	LostRanks      []int   `json:"lost_ranks"`
	DroppedSamples int     `json:"dropped_samples"`
	Checkpoints    int     `json:"checkpoints"`
	CheckpointSec  float64 `json:"checkpoint_seconds"`
	RestoreSec     float64 `json:"restore_seconds"`
	ReplanSec      float64 `json:"replan_seconds"`
	RedoSec        float64 `json:"redo_seconds"`
	RetrySec       float64 `json:"retry_seconds"`
	OverheadSec    float64 `json:"overhead_seconds"`
}

// WriteSummary emits the result digest as indented JSON.
func (r *Result) WriteSummary(w io.Writer) error {
	s := Summary{
		Level:       r.Plan.Level.String(),
		Plan:        r.Plan.String(),
		K:           r.K,
		D:           r.D,
		N:           r.Plan.N,
		Iters:       r.Iters,
		Converged:   r.Converged,
		MeanIterSec: r.MeanIterTime(),
		IterSec:     r.IterTimes,
		DMABytes:    r.Traffic.DMABytes,
		RegBytes:    r.Traffic.RegBytes,
		NetBytes:    r.Traffic.NetBytes,
		Flops:       r.Traffic.Flops,
	}
	if len(r.Phases) > 0 {
		p := &SummaryPhases{}
		for _, ph := range r.Phases {
			p.ReadSec += ph.Read
			p.ComputeSec += ph.Compute
			p.RegSec += ph.Reg
			p.OtherSec += ph.Other
		}
		s.Phases = p
	}
	if rec := r.Recovery; rec != nil {
		s.Recovery = &SummaryRecovery{
			Replans:        rec.Replans,
			LostRanks:      rec.LostRanks,
			DroppedSamples: rec.DroppedSamples,
			Checkpoints:    rec.Checkpoints,
			CheckpointSec:  rec.CheckpointSeconds,
			RestoreSec:     rec.RestoreSeconds,
			ReplanSec:      rec.ReplanSeconds,
			RedoSec:        rec.RedoSeconds,
			RetrySec:       rec.RetrySeconds,
			OverheadSec:    rec.OverheadSeconds(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
