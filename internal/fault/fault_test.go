package fault

import (
	"math"
	"testing"
)

func TestInjectorDeterminism(t *testing.T) {
	p := Plan{
		Seed:        7,
		Crashes:     []Crash{{CG: 3, At: 0.5}, {CG: 3, At: 0.9}, {CG: 1, At: 0.1}},
		DMAFailRate: 0.3,
		MsgFailRate: 0.2,
	}
	a := MustInjector(p)
	b := MustInjector(p)
	if at, ok := a.CrashTime(3); !ok || at != 0.5 {
		t.Fatalf("earliest crash of CG 3 = %v,%v, want 0.5,true", at, ok)
	}
	if _, ok := a.CrashTime(2); ok {
		t.Fatal("CG 2 should not crash")
	}
	if got := a.CrashedCGs(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("CrashedCGs = %v", got)
	}
	hits := 0
	for i := 0; i < 2000; i++ {
		at := float64(i) * 1e-4
		if a.DMAFault(2, at, 4096, 0) != b.DMAFault(2, at, 4096, 0) {
			t.Fatal("DMA fault decisions differ between identical injectors")
		}
		if a.MsgFault(0, 1, uint64(i), at, 0) != b.MsgFault(0, 1, uint64(i), at, 0) {
			t.Fatal("msg fault decisions differ between identical injectors")
		}
		if a.DMAFault(2, at, 4096, 0) {
			hits++
		}
	}
	// The empirical rate of a 0.3 hash-driven coin over 2000 draws must
	// land near 0.3 — a broken hash collapses to 0 or 1.
	if hits < 400 || hits > 800 {
		t.Fatalf("2000 draws at rate 0.3 produced %d faults", hits)
	}
}

func TestInjectorSeedChangesDraws(t *testing.T) {
	a := MustInjector(Plan{Seed: 1, DMAFailRate: 0.5})
	b := MustInjector(Plan{Seed: 2, DMAFailRate: 0.5})
	same := 0
	for i := 0; i < 512; i++ {
		if a.DMAFault(0, float64(i), 64, 0) == b.DMAFault(0, float64(i), 64, 0) {
			same++
		}
	}
	if same == 512 {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestLinkFactorWindowsCompose(t *testing.T) {
	inj := MustInjector(Plan{Links: []LinkDegrade{
		{FromCG: 0, ToCG: 1, From: 0.1, To: 0.2, Factor: 4},
		{FromCG: -1, ToCG: -1, From: 0.15, To: 0.3, Factor: 2},
	}})
	cases := []struct {
		src, dst int
		at, want float64
	}{
		{0, 1, 0.05, 1}, // before any window
		{0, 1, 0.12, 4}, // first window only
		{1, 0, 0.12, 4}, // order-insensitive
		{0, 1, 0.17, 8}, // both windows compose
		{2, 3, 0.17, 2}, // wildcard window only
		{0, 1, 0.25, 2}, // first window closed
		{0, 1, 0.35, 1}, // all windows closed
		{0, 1, 0.2, 2},  // half-open upper bound of first window
	}
	for _, c := range cases {
		if got := inj.LinkFactor(c.src, c.dst, c.at); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LinkFactor(%d,%d,%v) = %v, want %v", c.src, c.dst, c.at, got, c.want)
		}
	}
}

func TestComputeFactor(t *testing.T) {
	inj := MustInjector(Plan{Stragglers: []Straggler{
		{CG: 2, CPE: -1, Factor: 1.5},
		{CG: 2, CPE: 7, Factor: 2},
		{CG: 4, CPE: 0, Factor: 3},
	}})
	if got := inj.ComputeFactor(2, -1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("CG-wide factor = %v, want 1.5", got)
	}
	if got := inj.ComputeFactor(2, 7); math.Abs(got-3) > 1e-12 {
		t.Errorf("composed CPE factor = %v, want 3", got)
	}
	if got := inj.ComputeFactor(4, 1); got != 1 {
		t.Errorf("unaffected CPE factor = %v, want 1", got)
	}
	if got := inj.ComputeFactor(0, 0); got != 1 {
		t.Errorf("clean CG factor = %v, want 1", got)
	}
}

func TestDMARetryCountDeterministic(t *testing.T) {
	inj := MustInjector(Plan{Seed: 11, DMAFailRate: 0.25, MaxRetries: 3})
	r1, p1 := inj.DMARetryCount(5, 0.125, 1024, 400)
	r2, p2 := inj.DMARetryCount(5, 0.125, 1024, 400)
	if r1 != r2 || p1 != p2 {
		t.Fatalf("retry counts differ across identical calls: %d/%d vs %d/%d", r1, p1, r2, p2)
	}
	if r1 == 0 {
		t.Fatal("rate 0.25 over 400 transfers produced no retries")
	}
	if clean, perm := MustInjector(Plan{Seed: 11}).DMARetryCount(5, 0.125, 1024, 400); clean != 0 || perm != 0 {
		t.Fatalf("zero-rate plan produced %d retries, %d permanent", clean, perm)
	}
}

func TestBackoffDoubles(t *testing.T) {
	inj := MustInjector(Plan{RetryBackoff: 1e-6})
	if b := inj.Backoff(1); math.Abs(b-1e-6) > 1e-18 {
		t.Errorf("Backoff(1) = %v", b)
	}
	if b := inj.Backoff(3); math.Abs(b-4e-6) > 1e-18 {
		t.Errorf("Backoff(3) = %v", b)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Crashes: []Crash{{CG: -1, At: 1}}},
		{Crashes: []Crash{{CG: 0, At: -1}}},
		{DMAFailRate: 1.5},
		{MsgFailRate: -0.1},
		{MaxRetries: -2},
		{Links: []LinkDegrade{{FromCG: 0, ToCG: 1, From: 0.5, To: 0.2, Factor: 2}}},
		{Links: []LinkDegrade{{FromCG: 0, ToCG: 1, From: 0, To: 1, Factor: 0.5}}},
		{Stragglers: []Straggler{{CG: 0, CPE: -1, Factor: 0.9}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}
