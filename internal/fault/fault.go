// Package fault is the deterministic fault-injection subsystem of the
// simulated machine. At the paper's headline scale — 4,096 SW26010
// nodes, 1,064,496 cores — component failure during a clustering job
// is the expected case, not the exception, so the simulator must be
// able to misbehave on demand: core groups crash at scheduled virtual
// times, DMA transfers fail transiently, network links degrade or flap
// inside virtual-time windows, and individual CPEs run slow.
//
// Everything is a pure function of the fault Plan's seed and the
// virtual times at which the simulated units consult the injector, so
// an identical plan and configuration reproduces a byte-identical
// failure and recovery timeline on every run — faults are part of the
// experiment, and recovery cost is measured in the same virtual
// seconds every figure reports. No wall clock and no global randomness
// are involved (the package is inside swlint's no-wallclock scope).
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Crash schedules a fail-stop of one core group: the CG executes
// normally until its virtual clock reaches At, then stops responding
// forever (crashes manifest at message boundaries, the granularity at
// which a real MPI job observes a dead peer).
type Crash struct {
	// CG is the global core-group index.
	CG int
	// At is the virtual time of the failure in seconds.
	At float64
}

// LinkDegrade slows the traffic between two core groups inside a
// virtual-time window. Several windows over the same pair model a
// flapping link. A CG of -1 is a wildcard matching any endpoint, so
// {-1, -1} degrades the whole fabric.
type LinkDegrade struct {
	// FromCG and ToCG identify the link endpoints (order-insensitive);
	// -1 matches any CG.
	FromCG, ToCG int
	// From and To bound the degradation window [From, To) in virtual
	// seconds.
	From, To float64
	// Factor multiplies the transfer time of messages crossing the
	// link inside the window; it must be at least 1.
	Factor float64
}

// Straggler slows the compute of one CPE (or a whole core group when
// CPE is -1) by a constant factor — the slow-node failure mode that
// dominates large allocations in practice.
type Straggler struct {
	// CG is the global core-group index.
	CG int
	// CPE is the CPE index within the CG, or -1 for the whole CG.
	CPE int
	// Factor multiplies compute time; it must be at least 1.
	Factor float64
}

// Plan is a complete, seeded fault schedule for one simulated job.
// The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision (transient DMA and
	// message faults). Two runs with equal Seed and equal virtual-time
	// trajectories draw identical faults.
	Seed uint64
	// Crashes lists the scheduled fail-stop failures.
	Crashes []Crash
	// DMAFailRate is the probability that one DMA transfer attempt
	// fails transiently and must be retried.
	DMAFailRate float64
	// MsgFailRate is the probability that one message transmission
	// attempt fails transiently and must be retransmitted.
	MsgFailRate float64
	// MaxRetries bounds the retry attempts for transient DMA and
	// message faults before the operation fails permanently
	// (default 3).
	MaxRetries int
	// RetryBackoff is the base backoff charged to the virtual clock
	// per retry, doubling per attempt (default 2e-6 s).
	RetryBackoff float64
	// HeartbeatTimeout is the virtual-time failure-detection latency:
	// a peer of a CG that crashed at time t is detected as failed at
	// t + HeartbeatTimeout (default 5e-4 s).
	HeartbeatTimeout float64
	// Links lists the degradation windows.
	Links []LinkDegrade
	// Stragglers lists the slow units.
	Stragglers []Straggler
}

// Defaults for the retry and detection knobs.
const (
	DefaultMaxRetries       = 3
	DefaultRetryBackoff     = 2e-6
	DefaultHeartbeatTimeout = 5e-4
)

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	//swlint:ignore float-eq -- an exactly-zero rate is the unset sentinel of the zero Plan, not a computed value
	return len(p.Crashes) == 0 && p.DMAFailRate == 0 && p.MsgFailRate == 0 &&
		len(p.Links) == 0 && len(p.Stragglers) == 0
}

// withDefaults returns a copy with the retry/detection defaults
// applied.
func (p Plan) withDefaults() Plan {
	if p.MaxRetries == 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	//swlint:ignore float-eq -- exactly zero marks the knob unset; any positive value is honoured
	if p.RetryBackoff == 0 {
		p.RetryBackoff = DefaultRetryBackoff
	}
	//swlint:ignore float-eq -- exactly zero marks the knob unset; any positive value is honoured
	if p.HeartbeatTimeout == 0 {
		p.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	return p
}

// Validate checks the plan for internal consistency.
func (p Plan) Validate() error {
	for _, c := range p.Crashes {
		if c.CG < 0 {
			return fmt.Errorf("fault: crash CG must be non-negative, got %d", c.CG)
		}
		if c.At < 0 || math.IsNaN(c.At) || math.IsInf(c.At, 0) {
			return fmt.Errorf("fault: crash time %v for CG %d is not a finite non-negative virtual time", c.At, c.CG)
		}
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"dma fail rate", p.DMAFailRate}, {"msg fail rate", p.MsgFailRate}} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: max retries must be non-negative, got %d", p.MaxRetries)
	}
	if p.RetryBackoff < 0 || math.IsNaN(p.RetryBackoff) || math.IsInf(p.RetryBackoff, 0) {
		return fmt.Errorf("fault: retry backoff %v must be finite and non-negative", p.RetryBackoff)
	}
	if p.HeartbeatTimeout < 0 || math.IsNaN(p.HeartbeatTimeout) || math.IsInf(p.HeartbeatTimeout, 0) {
		return fmt.Errorf("fault: heartbeat timeout %v must be finite and non-negative", p.HeartbeatTimeout)
	}
	for _, l := range p.Links {
		if l.FromCG < -1 || l.ToCG < -1 {
			return fmt.Errorf("fault: link endpoints (%d,%d) must be CG indexes or -1", l.FromCG, l.ToCG)
		}
		if !(l.From < l.To) || l.From < 0 || math.IsNaN(l.From) || math.IsNaN(l.To) {
			return fmt.Errorf("fault: link window [%v,%v) is not a valid virtual-time range", l.From, l.To)
		}
		if l.Factor < 1 || math.IsNaN(l.Factor) || math.IsInf(l.Factor, 0) {
			return fmt.Errorf("fault: link degradation factor %v must be finite and at least 1", l.Factor)
		}
	}
	for _, s := range p.Stragglers {
		if s.CG < 0 {
			return fmt.Errorf("fault: straggler CG must be non-negative, got %d", s.CG)
		}
		if s.CPE < -1 {
			return fmt.Errorf("fault: straggler CPE must be an index or -1, got %d", s.CPE)
		}
		if s.Factor < 1 || math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("fault: straggler factor %v must be finite and at least 1", s.Factor)
		}
	}
	return nil
}

// ErrDMAFailed marks a DMA transfer that exhausted its transient-fault
// retries; errors.Is(err, ErrDMAFailed) identifies it through wrapping.
var ErrDMAFailed = errors.New("fault: dma transfer failed permanently")

// ErrLinkFailed marks a message transmission that exhausted its
// retries.
var ErrLinkFailed = errors.New("fault: message transmission failed permanently")

// Injector answers the simulated substrates' fault queries. It is
// immutable after construction and safe for concurrent use by every
// rank and CPE goroutine of a job.
type Injector struct {
	plan     Plan
	crashAt  map[int]float64 // CG -> earliest scheduled crash time
	slowOf   map[[2]int]float64
	slowCG   map[int]float64
	maxSlow  float64
	haveLink bool
}

// NewInjector validates and compiles a plan.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	inj := &Injector{
		plan:     p,
		crashAt:  make(map[int]float64, len(p.Crashes)),
		slowOf:   make(map[[2]int]float64),
		slowCG:   make(map[int]float64),
		maxSlow:  1,
		haveLink: len(p.Links) > 0,
	}
	for _, c := range p.Crashes {
		if at, ok := inj.crashAt[c.CG]; !ok || c.At < at {
			inj.crashAt[c.CG] = c.At
		}
	}
	for _, s := range p.Stragglers {
		if s.CPE < 0 {
			inj.slowCG[s.CG] = max(inj.slowCG[s.CG], s.Factor)
		} else {
			inj.slowOf[[2]int{s.CG, s.CPE}] = max(inj.slowOf[[2]int{s.CG, s.CPE}], s.Factor)
		}
		inj.maxSlow = max(inj.maxSlow, s.Factor)
	}
	return inj, nil
}

// MustInjector is NewInjector that panics on error.
func MustInjector(p Plan) *Injector {
	inj, err := NewInjector(p)
	if err != nil {
		panic(err)
	}
	return inj
}

// Plan returns the compiled plan (with defaults applied).
func (inj *Injector) Plan() Plan { return inj.plan }

// CrashTime returns the scheduled crash time of a core group and
// whether one exists.
func (inj *Injector) CrashTime(cg int) (float64, bool) {
	at, ok := inj.crashAt[cg]
	return at, ok
}

// CrashedCGs returns the sorted CG indexes with scheduled crashes.
func (inj *Injector) CrashedCGs() []int {
	out := make([]int, 0, len(inj.crashAt))
	for cg := range inj.crashAt {
		out = append(out, cg)
	}
	sort.Ints(out)
	return out
}

// MaxRetries returns the retry budget for transient faults.
func (inj *Injector) MaxRetries() int { return inj.plan.MaxRetries }

// HeartbeatTimeout returns the virtual-time failure-detection latency.
func (inj *Injector) HeartbeatTimeout() float64 { return inj.plan.HeartbeatTimeout }

// Backoff returns the virtual backoff charged before retry attempt
// (1-based attempt numbering: the first retry is attempt 1), doubling
// per attempt.
func (inj *Injector) Backoff(attempt int) float64 {
	b := inj.plan.RetryBackoff
	for i := 1; i < attempt; i++ {
		b *= 2
	}
	return b
}

// DMAFault reports whether DMA transfer attempt (0-based) of elems
// elements issued by cg at virtual time `at` fails transiently. The
// decision is a pure hash of the plan seed and the arguments.
func (inj *Injector) DMAFault(cg int, at float64, elems, attempt int) bool {
	return inj.roll(inj.plan.DMAFailRate,
		0xD3A, uint64(cg), math.Float64bits(at), uint64(elems), uint64(attempt))
}

// DMARetryCount folds the per-transfer DMA fault decisions of a batch
// of `transfers` transfers (as the closed-form engines charge them)
// into the deterministic total number of retries, honouring the retry
// budget per transfer. The second return is the number of transfers
// that exhausted the budget and failed permanently.
func (inj *Injector) DMARetryCount(cg int, at float64, elems, transfers int) (retries, permanent int) {
	//swlint:ignore float-eq -- a rate of exactly zero (the unset sentinel) skips the per-transfer fold
	if inj.plan.DMAFailRate == 0 {
		return 0, 0
	}
	for t := 0; t < transfers; t++ {
		attempt := 0
		for inj.DMAFault(cg, at, elems+t, attempt) {
			attempt++
			if attempt > inj.plan.MaxRetries {
				permanent++
				break
			}
			retries++
		}
	}
	return retries, permanent
}

// MsgFault reports whether transmission attempt (0-based) of the
// message (srcCG -> dstCG, tag) issued at virtual time `at` fails
// transiently.
func (inj *Injector) MsgFault(srcCG, dstCG int, tag uint64, at float64, attempt int) bool {
	return inj.roll(inj.plan.MsgFailRate,
		0x4E7, uint64(srcCG), uint64(dstCG), tag, math.Float64bits(at), uint64(attempt))
}

// LinkFactor returns the transfer-time multiplier for a message
// between srcCG and dstCG at virtual time `at`: the product of every
// matching degradation window (1 when the link is clean). It
// implements netmodel.Degrader.
func (inj *Injector) LinkFactor(srcCG, dstCG int, at float64) float64 {
	if !inj.haveLink {
		return 1
	}
	f := 1.0
	for _, l := range inj.plan.Links {
		if at < l.From || at >= l.To {
			continue
		}
		if linkMatches(l, srcCG, dstCG) {
			f *= l.Factor
		}
	}
	return f
}

// linkMatches reports whether the degradation covers the (unordered)
// CG pair, honouring -1 wildcards.
func linkMatches(l LinkDegrade, a, b int) bool {
	end := func(want, got int) bool { return want == -1 || want == got }
	return (end(l.FromCG, a) && end(l.ToCG, b)) || (end(l.FromCG, b) && end(l.ToCG, a))
}

// ComputeFactor returns the compute-time multiplier of one CPE
// (cpe = -1 queries the whole-CG factor only). Factors compose: a slow
// CG with one additionally slow CPE multiplies both.
func (inj *Injector) ComputeFactor(cg, cpe int) float64 {
	f := 1.0
	if s, ok := inj.slowCG[cg]; ok {
		f *= s
	}
	if cpe >= 0 {
		if s, ok := inj.slowOf[[2]int{cg, cpe}]; ok {
			f *= s
		}
	}
	return f
}

// roll draws the deterministic decision for one fault opportunity:
// hash the seed with the discriminating parts and compare the uniform
// [0,1) value against the rate.
func (inj *Injector) roll(rate float64, parts ...uint64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := inj.plan.Seed ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		h = mix(h, p)
	}
	return float64(h>>11)/(1<<53) < rate
}

// mix folds b into the running hash a, splitmix64-style.
func mix(a, b uint64) uint64 {
	x := a ^ (b+0x9e3779b97f4a7c15+(a<<6)+(a>>2))*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return x
}
