package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// ParsePlan builds a Plan from the compact command-line syntax used by
// the -faults flag. Items are separated by ';' (or ','):
//
//	seed=N              hash seed for transient-fault decisions
//	crash=CG@T          fail-stop of core group CG at virtual time T
//	crashnode=NODE@T    fail-stop of all 4 CGs of a node at time T
//	dma=RATE            transient DMA failure probability per transfer
//	msg=RATE            transient message failure probability per send
//	retries=N           retry budget before a transient fault is fatal
//	backoff=SECONDS     base retry backoff (doubles per attempt)
//	hb=SECONDS          heartbeat failure-detection timeout
//	link=A-B@T0:T1xF    slow link between CGs A and B (either may be *)
//	                    during virtual window [T0,T1), factor F
//	link=*@T0:T1xF      degrade the whole fabric during the window
//	slow=CGxF           straggler core group, compute slowed by F
//	slow=CG:CPExF       straggler CPE within a core group
//
// Example:
//
//	crash=3@0.002;dma=0.01;msg=0.005;link=0-1@0.001:0.004x8;slow=2x1.5
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	items := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' })
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: item %q is not key=value", item)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "crash":
			err = parseCrash(&p, val, 1)
		case "crashnode":
			err = parseCrash(&p, val, machine.CGsPerNode)
		case "dma":
			p.DMAFailRate, err = strconv.ParseFloat(val, 64)
		case "msg":
			p.MsgFailRate, err = strconv.ParseFloat(val, 64)
		case "retries":
			p.MaxRetries, err = strconv.Atoi(val)
		case "backoff":
			p.RetryBackoff, err = strconv.ParseFloat(val, 64)
		case "hb":
			p.HeartbeatTimeout, err = strconv.ParseFloat(val, 64)
		case "link":
			err = parseLink(&p, val)
		case "slow":
			err = parseSlow(&p, val)
		default:
			return Plan{}, fmt.Errorf("fault: unknown item %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: parsing %q: %w", item, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// parseCrash handles crash=CG@T; span expands a node index into its
// CGs (span = CGsPerNode for crashnode).
func parseCrash(p *Plan, val string, span int) error {
	unit, at, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want UNIT@TIME")
	}
	idx, err := strconv.Atoi(unit)
	if err != nil {
		return err
	}
	// Bound the unit index before the span expansion: a huge index
	// would overflow idx*span into a wrong-but-valid CG instead of
	// failing validation.
	if idx < 0 || idx > math.MaxInt32/span {
		return fmt.Errorf("unit index %d outside [0,%d]", idx, math.MaxInt32/span)
	}
	t, err := strconv.ParseFloat(at, 64)
	if err != nil {
		return err
	}
	for i := 0; i < span; i++ {
		p.Crashes = append(p.Crashes, Crash{CG: idx*span + i, At: t})
	}
	return nil
}

// parseLink handles link=A-B@T0:T1xF and link=*@T0:T1xF.
func parseLink(p *Plan, val string) error {
	ends, rest, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want ENDPOINTS@T0:T1xF")
	}
	window, factor, ok := strings.Cut(rest, "x")
	if !ok {
		return fmt.Errorf("want a window xFACTOR suffix")
	}
	t0s, t1s, ok := strings.Cut(window, ":")
	if !ok {
		return fmt.Errorf("want T0:T1 window")
	}
	l := LinkDegrade{FromCG: -1, ToCG: -1}
	if ends != "*" {
		as, bs, ok := strings.Cut(ends, "-")
		if !ok {
			return fmt.Errorf("want A-B or * endpoints")
		}
		var err error
		if l.FromCG, err = parseCG(as); err != nil {
			return err
		}
		if l.ToCG, err = parseCG(bs); err != nil {
			return err
		}
	}
	var err error
	if l.From, err = strconv.ParseFloat(t0s, 64); err != nil {
		return err
	}
	if l.To, err = strconv.ParseFloat(t1s, 64); err != nil {
		return err
	}
	if l.Factor, err = strconv.ParseFloat(factor, 64); err != nil {
		return err
	}
	p.Links = append(p.Links, l)
	return nil
}

// parseSlow handles slow=CGxF and slow=CG:CPExF.
func parseSlow(p *Plan, val string) error {
	unit, factor, ok := strings.Cut(val, "x")
	if !ok {
		return fmt.Errorf("want UNITxFACTOR")
	}
	s := Straggler{CPE: -1}
	cgs, cpes, hasCPE := strings.Cut(unit, ":")
	var err error
	if s.CG, err = strconv.Atoi(cgs); err != nil {
		return err
	}
	if hasCPE {
		if s.CPE, err = strconv.Atoi(cpes); err != nil {
			return err
		}
	}
	if s.Factor, err = strconv.ParseFloat(factor, 64); err != nil {
		return err
	}
	p.Stragglers = append(p.Stragglers, s)
	return nil
}

// parseCG parses a CG endpoint that may be the * wildcard.
func parseCG(s string) (int, error) {
	if s == "*" {
		return -1, nil
	}
	return strconv.Atoi(s)
}
