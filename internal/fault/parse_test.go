package fault

import "testing"

func TestParsePlanFull(t *testing.T) {
	p, err := ParsePlan("seed=9; crash=3@0.5; crashnode=2@0.8; dma=0.01; msg=0.005; retries=5; backoff=1e-6; hb=2e-4; link=0-1@0.2:0.8x4; link=*@0.1:0.2x8; slow=2x1.5; slow=2:7x3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Errorf("seed = %d", p.Seed)
	}
	// crashnode=2 expands to CGs 8..11, plus the single crash of CG 3.
	if len(p.Crashes) != 5 {
		t.Fatalf("crashes = %v", p.Crashes)
	}
	if p.Crashes[0] != (Crash{CG: 3, At: 0.5}) || p.Crashes[1] != (Crash{CG: 8, At: 0.8}) || p.Crashes[4] != (Crash{CG: 11, At: 0.8}) {
		t.Errorf("crash expansion wrong: %v", p.Crashes)
	}
	if p.DMAFailRate != 0.01 || p.MsgFailRate != 0.005 || p.MaxRetries != 5 {
		t.Errorf("rates/retries wrong: %+v", p)
	}
	if p.RetryBackoff != 1e-6 || p.HeartbeatTimeout != 2e-4 {
		t.Errorf("backoff/hb wrong: %+v", p)
	}
	if len(p.Links) != 2 || p.Links[0] != (LinkDegrade{FromCG: 0, ToCG: 1, From: 0.2, To: 0.8, Factor: 4}) {
		t.Errorf("links wrong: %v", p.Links)
	}
	if p.Links[1].FromCG != -1 || p.Links[1].ToCG != -1 {
		t.Errorf("wildcard link wrong: %v", p.Links[1])
	}
	if len(p.Stragglers) != 2 || p.Stragglers[0] != (Straggler{CG: 2, CPE: -1, Factor: 1.5}) ||
		p.Stragglers[1] != (Straggler{CG: 2, CPE: 7, Factor: 3}) {
		t.Errorf("stragglers wrong: %v", p.Stragglers)
	}
}

func TestParsePlanEmpty(t *testing.T) {
	p, err := ParsePlan("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("empty spec parsed to %+v", p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"crash=3",        // missing @time
		"crash=x@1",      // bad CG
		"bogus=1",        // unknown key
		"dma=2",          // rate out of range (Validate)
		"link=0-1@0.5x2", // missing window separator
		"link=0-1@2:1x2", // inverted window
		"slow=1",         // missing factor
		"slow=1x0.5",     // factor below 1
		"crash",          // not key=value
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
