package fault

import (
	"strings"
	"testing"
)

// FuzzParsePlan proves the plan grammar is total: any input string
// either parses into a plan that validates and compiles, or returns an
// error — it never panics and never yields a plan the injector
// rejects. (The fuzzer found the two repairs now in the parser: Inf
// retry/heartbeat knobs slipping through Validate, and huge crashnode
// indexes overflowing the span expansion into wrong-but-valid CGs.)
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"",
		"seed=7",
		"crash=3@0.002;dma=0.01;msg=0.005;link=0-1@0.001:0.004x8;slow=2x1.5",
		"crashnode=1@3e-5; hb=1e-4",
		"seed=11; dma=0.05; msg=0.05; retries=64",
		"link=*@0:1x4; slow=2:13x1.5",
		"backoff=2e-6",
		// Malformed shapes the grammar must reject cleanly.
		"crash=",
		"crash=@",
		"crash=x@y",
		"crash=-1@0",
		"crashnode=99999999999999999999@0",
		"crashnode=4611686018427387904@0",
		"dma=NaN",
		"msg=2",
		"backoff=+Inf",
		"hb=Inf",
		"link=0-1@2:1x4",
		"link=*@0:1x0.5",
		"slow=1x0.5",
		"slow=1:x2",
		"unknown=1",
		"=x",
		";;;,,,",
		"crash=1@1e309",
		"seed=18446744073709551616",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		// Bound pathological inputs: the grammar is line-sized.
		if len(spec) > 4096 {
			t.Skip()
		}
		p, err := ParsePlan(spec)
		if err != nil {
			if !strings.Contains(err.Error(), "fault:") {
				t.Fatalf("ParsePlan(%q) error %q is not a fault error", spec, err)
			}
			return
		}
		// A plan that parsed must validate and compile: ParsePlan's
		// contract is that its output is usable as-is.
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan Validate rejects: %v", spec, verr)
		}
		if _, ierr := NewInjector(p); ierr != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan the injector rejects: %v", spec, ierr)
		}
	})
}
