package lint

import (
	"go/ast"
	"testing"
)

// TestCFGGolden pins the builder's block and edge structure on the
// canonical shapes: each golden is the dump of one cfgshapes fixture
// function — blocks in construction order, the statement/expression
// nodes they carry with source lines, and their successor edges. A
// builder change that moves an edge shows up as a one-line diff here
// before it shows up as a wrong lock-set or a missed back edge in the
// rules.
func TestCFGGolden(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "cfgshapes", cfg.ModulePath+"/internal/fixture/cfgshapes")
	graphs := make(map[string]*cfgGraph)
	for _, fn := range packageFuncs(p) {
		d, ok := fn.node.(*ast.FuncDecl)
		if !ok || fn.body == nil {
			continue
		}
		graphs[d.Name.Name] = buildCFG(p, fn)
	}

	tests := []struct {
		name string
		want string
	}{
		{
			// Two-arm branch: both arms reach the merge, the merge
			// returns through the (empty) function tail to exit.
			name: "IfElse",
			want: `b0 entry: AssignStmt@8 BinaryExpr@9 -> b1 b2
b1 then: AssignStmt@10 -> b3
b2 else: AssignStmt@12 -> b3
b3 merge: ReturnStmt@14 -> b5
b4 dead: -> b5
b5 exit: -> (none)
`,
		},
		{
			// continue jumps to the post statement (b9), break to the
			// loop-after (b10); the back edge is b9 -> b1.
			name: "ForBreakContinue",
			want: `b0 entry: AssignStmt@20 AssignStmt@21 -> b1
b1 loop-head: BinaryExpr@21 -> b2 b10
b2 loop-body: BinaryExpr@22 -> b3 b5
b3 then: BranchStmt@23 -> b9
b4 dead: -> b5
b5 merge: BinaryExpr@25 -> b6 b8
b6 then: BranchStmt@26 -> b10
b7 dead: -> b8
b8 merge: AssignStmt@28 -> b9
b9 loop-post: IncDecStmt@21 -> b1
b10 loop-after: ReturnStmt@30 -> b12
b11 dead: -> b12
b12 exit: -> (none)
`,
		},
		{
			// No default: the entry keeps a fall-through edge straight
			// to the merge alongside the two case arms.
			name: "Switch",
			want: `b0 entry: AssignStmt@36 -> b1 b2 b3
b1 case: BinaryExpr@38 AssignStmt@39 -> b3
b2 case: BinaryExpr@40 AssignStmt@41 -> b3
b3 merge: ReturnStmt@43 -> b5
b4 dead: -> b5
b5 exit: -> (none)
`,
		},
		{
			// Both returns are rewired through the defer block (b5),
			// which re-lists the deferred call before exit.
			name: "Defer",
			want: `b0 entry: DeferStmt@49 Ident@50 -> b1 b3
b1 then: ReturnStmt@51 -> b5
b2 dead: -> b3
b3 merge: ReturnStmt@53 -> b5
b4 dead: -> b5
b5 defer: CallExpr@49 -> b6
b6 exit: -> (none)
`,
		},
		{
			// `continue outer` targets the outer range head (b2),
			// `break outer` the outer loop-after (b13), across the
			// inner loop's own head (b4) and after (b12).
			name: "Labeled",
			want: `b0 entry: AssignStmt@59 -> b1
b1 label: -> b2
b2 range-head: Ident@61 -> b3 b13
b3 loop-body: -> b4
b4 range-head: Ident@62 -> b5 b12
b5 loop-body: BinaryExpr@63 -> b6 b8
b6 then: BranchStmt@64 -> b2
b7 dead: -> b8
b8 merge: BinaryExpr@66 -> b9 b11
b9 then: BranchStmt@67 -> b13
b10 dead: -> b11
b11 merge: AssignStmt@69 -> b4
b12 loop-after: -> b2
b13 loop-after: ReturnStmt@72 -> b15
b14 dead: -> b15
b15 exit: -> (none)
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := graphs[tt.name]
			if g == nil {
				t.Fatalf("no CFG built for fixture function %s", tt.name)
			}
			got := g.dump(p.Fset)
			if got != tt.want {
				t.Errorf("CFG dump for %s changed.\ngot:\n%s\nwant:\n%s", tt.name, got, tt.want)
			}
		})
	}
}
