package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//swlint:ignore <rule>[,<rule>...] [reason]
//
// The comment suppresses the listed rules on its own line and on the
// line directly below, so both trailing and preceding placement work:
//
//	if a == b { ... }            //swlint:ignore float-eq exact tie-break
//
//	//swlint:ignore float-eq exact tie-break
//	if a == b { ... }
const ignorePrefix = "swlint:ignore"

// suppressions indexes the ignore comments of one package by file and
// line.
type suppressions struct {
	// byLine maps filename -> line -> rule IDs suppressed at that line.
	byLine map[string]map[int][]string
}

func newSuppressions(p *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // a bare swlint:ignore names no rule and suppresses nothing
				}
				rules := strings.Split(fields[0], ",")
				pos := p.Fset.Position(c.Pos())
				s.add(pos, rules)
			}
		}
	}
	return s
}

func (s *suppressions) add(pos token.Position, rules []string) {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]string)
		s.byLine[pos.Filename] = lines
	}
	for _, r := range rules {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		lines[pos.Line] = append(lines[pos.Line], r)
	}
}

// suppressed reports whether the finding is covered by an ignore
// comment on its own line or the line above.
func (s *suppressions) suppressed(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, r := range lines[line] {
			if r == f.RuleID {
				return true
			}
		}
	}
	return false
}
