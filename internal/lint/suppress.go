package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//swlint:ignore <rule>[,<rule>...] -- <reason>
//
// The rule list and the reason are both mandatory: a suppression is a
// claim that a specific rule's invariant holds here for a reason the
// analysis cannot see, and the reason is the reviewable part of that
// claim. The comment suppresses the listed rules on its own line and
// on the line directly below, so both trailing and preceding placement
// work:
//
//	if a == b { ... }            //swlint:ignore float-eq -- exact tie-break
//
//	//swlint:ignore float-eq -- exact tie-break
//	if a == b { ... }
//
// A malformed suppression (missing rule list, missing the " -- "
// separator, or an empty reason) suppresses nothing and is itself
// reported as a bad-suppress finding. A well-formed suppression that
// matched no finding of its rules is reported as unused-suppress, so
// stale ignores cannot silently accumulate.
const ignorePrefix = "swlint:ignore"

// BadSuppressID and UnusedSuppressID are the pseudo-rules the
// suppression machinery itself reports. They cannot be suppressed.
const (
	BadSuppressID    = "bad-suppress"
	UnusedSuppressID = "unused-suppress"
)

// suppression is one parsed ignore comment entry: one rule at one
// line, with its use count.
type suppression struct {
	rule string
	pos  token.Position
	used int
}

// suppressions indexes the ignore comments of one package by file and
// line.
type suppressions struct {
	// byLine maps filename -> line -> entries declared at that line.
	byLine map[string]map[int][]*suppression
	// malformed collects the bad-suppress findings.
	malformed []Finding
}

func newSuppressions(p *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppression)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rules, reason, ok := parseIgnore(rest)
				if !ok {
					s.malformed = append(s.malformed, Finding{
						RuleID: BadSuppressID,
						Pos:    pos,
						Message: "malformed suppression; the form is " +
							"//swlint:ignore <rule>[,<rule>...] -- <reason> (rule list and reason are mandatory)",
					})
					continue
				}
				_ = reason // recorded in source; the analysis only requires its presence
				s.add(pos, rules)
			}
		}
	}
	return s
}

// parseIgnore splits the text after the prefix into rule IDs and the
// mandatory reason.
func parseIgnore(rest string) (rules []string, reason string, ok bool) {
	rest = strings.TrimSpace(rest)
	ruleList, reason, found := strings.Cut(rest, "--")
	if !found {
		return nil, "", false
	}
	reason = strings.TrimSpace(reason)
	fields := strings.Fields(ruleList)
	if reason == "" || len(fields) != 1 {
		return nil, "", false
	}
	for _, r := range strings.Split(fields[0], ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return nil, "", false
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, "", false
	}
	return rules, reason, true
}

func (s *suppressions) add(pos token.Position, rules []string) {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]*suppression)
		s.byLine[pos.Filename] = lines
	}
	for _, r := range rules {
		lines[pos.Line] = append(lines[pos.Line], &suppression{rule: r, pos: pos})
	}
}

// suppressed reports whether the finding is covered by an ignore
// comment on its own line or the line above, and counts the use.
func (s *suppressions) suppressed(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, sup := range lines[line] {
			if sup.rule == f.RuleID {
				sup.used++
				return true
			}
		}
	}
	return false
}

// counts returns the per-rule census of well-formed suppression
// entries in the package (a multi-rule comment counts once per rule it
// names). This is the -stats / SARIF suppression report's raw data:
// every count is a finding someone chose to tolerate, and the census
// makes that debt visible module-wide.
func (s *suppressions) counts() map[string]int {
	out := make(map[string]int)
	for _, lines := range s.byLine {
		for _, sups := range lines {
			for _, sup := range sups {
				out[sup.rule]++
			}
		}
	}
	return out
}

// report emits the machinery's own findings: every malformed comment,
// and every well-formed suppression for a rule in scope that matched
// nothing. Suppressions naming rules outside the run's rule set are
// left alone so a partial rule run does not misreport them as stale.
func (s *suppressions) report(ranRules map[string]bool) []Finding {
	out := append([]Finding(nil), s.malformed...)
	for _, lines := range s.byLine {
		for _, sups := range lines {
			for _, sup := range sups {
				if sup.used > 0 || !ranRules[sup.rule] {
					continue
				}
				out = append(out, Finding{
					RuleID: UnusedSuppressID,
					Pos:    sup.pos,
					Message: "suppression for " + sup.rule +
						" matched no finding; delete the stale comment or fix the rule ID",
				})
			}
		}
	}
	return out
}
