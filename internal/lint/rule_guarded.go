package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedFieldRule enforces documented mutex discipline. A struct
// field annotated
//
//	foo int // guarded by mu
//
// may only be accessed inside functions that also lock that mutex
// (a call to mu.Lock or mu.RLock somewhere in the same function
// body). The goroutine-per-rank MPI world, the goroutine-per-CPE
// mesh and the vclock barrier all share small amounts of state whose
// races the runtime detector can only catch probabilistically; this
// rule catches a forgotten lock on every run.
//
// The analysis is deliberately function-scoped: a function that
// accesses a guarded field while its *caller* holds the lock should
// either take the mutex itself, be restructured, or carry a
// //swlint:ignore guarded-field comment explaining the protocol.
type GuardedFieldRule struct{}

// ID implements Rule.
func (GuardedFieldRule) ID() string { return "guarded-field" }

// Doc implements Rule.
func (GuardedFieldRule) Doc() string {
	return "fields annotated 'guarded by <mu>' must only be accessed under that mutex"
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// Check implements Rule.
func (r GuardedFieldRule) Check(p *Package) []Finding {
	guarded := collectGuardedFields(p)
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		// funcStack tracks the innermost enclosing function body so an
		// access can be matched against that body's lock calls.
		var funcStack []ast.Node
		locks := make(map[ast.Node]map[string]bool)
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				ast.Inspect(body(n), walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.SelectorExpr:
				sel, ok := p.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				mu, ok := guarded[sel.Obj().(*types.Var)]
				if !ok {
					return true
				}
				if len(funcStack) == 0 {
					return true // package-level initializer: single-threaded
				}
				enc := funcStack[len(funcStack)-1]
				if m, ok := locks[enc]; ok {
					if m[mu] {
						return true
					}
				} else {
					locks[enc] = lockCalls(body(enc))
					if locks[enc][mu] {
						return true
					}
				}
				out = append(out, Finding{
					RuleID: r.ID(),
					Pos:    p.Fset.Position(n.Sel.Pos()),
					Message: "field " + sel.Obj().Name() + " is guarded by " + mu +
						" but the enclosing function never locks it",
				})
				return true
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return out
}

// collectGuardedFields maps annotated field objects to their mutex
// names.
func collectGuardedFields(p *Package) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or
// trailing comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// body returns the body of a FuncDecl or FuncLit (possibly nil for
// bodiless declarations).
func body(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return n
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return n
}

// lockCalls collects the mutex names locked anywhere in a function
// body: every call of the form <chain>.<mu>.Lock() or <mu>.Lock()
// (and the RLock variants) contributes <mu>.
func lockCalls(root ast.Node) map[string]bool {
	found := make(map[string]bool)
	if root == nil {
		return found
	}
	ast.Inspect(root, func(n ast.Node) bool {
		// Nested function literals take their own locks; do not credit
		// them to the enclosing function.
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			found[x.Name] = true
		case *ast.SelectorExpr:
			found[x.Sel.Name] = true
		}
		return true
	})
	return found
}
