package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrapRule flags fmt.Errorf calls that format an error operand with
// %v where %w is required. The capacity checks return typed errors
// (ldm.ConstraintError, ldm.CapacityError) that planners and tests
// inspect with errors.As; a %v anywhere on the propagation path
// flattens them to text and silently breaks that contract. The rule
// applies to the module's internal packages, where every error path
// feeds either the planner or the test suite.
type ErrWrapRule struct{}

// ID implements Rule.
func (ErrWrapRule) ID() string { return "err-wrap" }

// Doc implements Rule.
func (ErrWrapRule) Doc() string {
	return "fmt.Errorf must wrap error operands with %w, not flatten them with %v"
}

// Check implements Rule.
func (r ErrWrapRule) Check(p *Package) []Finding {
	if !strings.Contains(p.Path, "/internal/") && !strings.HasPrefix(p.Path, "internal/") {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(p, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := stringConstant(p, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range formatVerbs(format) {
				argIdx := 1 + v.arg
				if v.verb != 'v' || argIdx >= len(call.Args) {
					continue
				}
				t := p.Info.TypeOf(call.Args[argIdx])
				if t == nil || !types.Implements(t, errType) {
					continue
				}
				out = append(out, Finding{
					RuleID: r.ID(),
					Pos:    p.Fset.Position(call.Args[argIdx].Pos()),
					Message: "fmt.Errorf formats an error operand with %v; " +
						"use %w so errors.Is/As can unwrap it",
				})
			}
			return true
		})
	}
	return out
}

// isPkgFunc reports whether the call target resolves to pkg.name.
func isPkgFunc(p *Package, fun ast.Expr, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}

// stringConstant evaluates expr as a compile-time string constant.
func stringConstant(p *Package, expr ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbUse is one formatting verb and the 0-based index of the variadic
// argument it consumes.
type verbUse struct {
	verb rune
	arg  int
}

// formatVerbs parses a Printf-style format string into its verbs and
// the argument slots they consume, supporting flags, *-widths and
// explicit [n] argument indexes.
func formatVerbs(format string) []verbUse {
	var verbs []verbUse
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags, width and precision; '*' consumes an argument slot.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.", c) || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		// Explicit argument index [n] (1-based).
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		verbs = append(verbs, verbUse{verb: runes[i], arg: arg})
		arg++
	}
	return verbs
}
