package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrapRule flags fmt.Errorf calls that format an error operand with
// %v where %w is required. The capacity checks return typed errors
// (ldm.ConstraintError, ldm.CapacityError) that planners and tests
// inspect with errors.As; a %v anywhere on the propagation path
// flattens them to text and silently breaks that contract. The rule
// applies to the module's internal packages, where every error path
// feeds either the planner or the test suite.
type ErrWrapRule struct{}

// ID implements Rule.
func (ErrWrapRule) ID() string { return "err-wrap" }

// Doc implements Rule.
func (ErrWrapRule) Doc() string {
	return "fmt.Errorf must wrap error operands with %w, not flatten them with %v"
}

// Check implements Rule.
func (r ErrWrapRule) Check(p *Package) []Finding {
	if !strings.Contains(p.Path, "/internal/") && !strings.HasPrefix(p.Path, "internal/") {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(p, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := stringConstant(p, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range formatVerbs(format) {
				argIdx := 1 + v.arg
				if v.verb != 'v' || argIdx >= len(call.Args) {
					continue
				}
				t := p.Info.TypeOf(call.Args[argIdx])
				if t == nil || !types.Implements(t, errType) {
					continue
				}
				finding := Finding{
					RuleID: r.ID(),
					Pos:    p.Fset.Position(call.Args[argIdx].Pos()),
					Message: "fmt.Errorf formats an error operand with %v; " +
						"use %w so errors.Is/As can unwrap it",
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					finding.Fix = wrapVerbFix(p, lit, format, v.arg)
				}
				out = append(out, finding)
			}
			return true
		})
	}
	return out
}

// isPkgFunc reports whether the call target resolves to pkg.name.
func isPkgFunc(p *Package, fun ast.Expr, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}

// stringConstant evaluates expr as a compile-time string constant.
func stringConstant(p *Package, expr ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// wrapVerbFix builds the one-byte %v → %w edit for the verb consuming
// variadic argument arg. It scans the literal's raw source text so the
// edit's byte offset is exact; when the raw scan disagrees with the
// constant-value scan (an escaped '%' such as \x25 shifts verbs), no
// fix is offered and the finding stays manual.
func wrapVerbFix(p *Package, lit *ast.BasicLit, format string, arg int) *Fix {
	raw := formatVerbLocs(lit.Value)
	val := formatVerbs(format)
	if len(raw) != len(val) {
		return nil
	}
	for i := range raw {
		if rune(raw[i].verb) != val[i].verb || raw[i].arg != val[i].arg {
			return nil
		}
	}
	for _, v := range raw {
		if v.verb != 'v' || v.arg != arg {
			continue
		}
		off := p.Fset.Position(lit.Pos()).Offset + v.off
		return &Fix{
			Message: "wrap the error with %w",
			Edits: []TextEdit{{
				Filename: p.Fset.Position(lit.Pos()).Filename,
				Start:    off,
				End:      off + 1,
				NewText:  "w",
			}},
		}
	}
	return nil
}

// verbLoc is one verb located in a literal's raw source text.
type verbLoc struct {
	verb byte
	arg  int
	off  int // byte offset of the verb character
}

// formatVerbLocs is formatVerbs over raw source bytes, tracking each
// verb's byte offset. Scanning bytes is safe because '%', flags and
// verbs are ASCII and UTF-8 continuation bytes never collide with them.
func formatVerbLocs(s string) []verbLoc {
	var out []verbLoc
	arg := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		i++
		if i >= len(s) {
			break
		}
		if s[i] == '%' {
			continue
		}
		for i < len(s) {
			c := s[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.IndexByte("+-# 0.", c) >= 0 || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(s) && s[i] == '[' {
			j := i + 1
			n := 0
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				n = n*10 + int(s[j]-'0')
				j++
			}
			if j < len(s) && s[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(s) {
			break
		}
		out = append(out, verbLoc{verb: s[i], arg: arg, off: i})
		arg++
	}
	return out
}

// verbUse is one formatting verb and the 0-based index of the variadic
// argument it consumes.
type verbUse struct {
	verb rune
	arg  int
}

// formatVerbs parses a Printf-style format string into its verbs and
// the argument slots they consume, supporting flags, *-widths and
// explicit [n] argument indexes.
func formatVerbs(format string) []verbUse {
	var verbs []verbUse
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags, width and precision; '*' consumes an argument slot.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.", c) || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		// Explicit argument index [n] (1-based).
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		verbs = append(verbs, verbUse{verb: runes[i], arg: arg})
		arg++
	}
	return verbs
}
