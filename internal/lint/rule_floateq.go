package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEqRule flags == and != between floating-point operands. The
// convergence decision (movement ≤ tolerance²), the assignment
// tie-breaks and the cost models all work in float64; an exact
// equality almost always means a forgotten tolerance and, worse, can
// differ between reduction orders that are both legal under the
// paper's deterministic-combining requirement. Deliberate exact
// comparisons (the min-pair tie-break, IEEE sentinel checks) carry a
// //swlint:ignore float-eq comment with the reason, or live in a
// helper whose doc comment contains the marker "swlint:tolerant".
type FloatEqRule struct{}

// TolerantMarker in a function's doc comment exempts the whole
// function: it declares "this helper understands float comparison
// semantics" (for example an ULP-aware comparator).
const TolerantMarker = "swlint:tolerant"

// ID implements Rule.
func (FloatEqRule) ID() string { return "float-eq" }

// Doc implements Rule.
func (FloatEqRule) Doc() string {
	return "floating-point values must not be compared with == or != outside tolerant helpers"
}

// Check implements Rule.
func (r FloatEqRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil &&
				strings.Contains(fd.Doc.Text(), TolerantMarker) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
					return true
				}
				out = append(out, Finding{
					RuleID: r.ID(),
					Pos:    p.Fset.Position(be.OpPos),
					Message: "floating-point " + be.Op.String() +
						" comparison; use a tolerance, or suppress with a reason if the exact compare is intentional",
				})
				return true
			})
		}
	}
	return out
}

// isFloat reports whether t is (or is an alias/defined type over) a
// floating-point or complex basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
