package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the package's lightweight dataflow engine: a
// function-level, intraprocedural value-flow pass over the typed AST
// that the semantic rules (map-order, collective-match,
// goroutine-purity) share. The model is deliberately simple and its
// limits are documented in docs/STATIC_ANALYSIS.md:
//
//   - flow is tracked per local variable within one function (params
//     and range/assign definitions), with no alias analysis — a value
//     stored through a pointer or into a container loses its origin;
//   - ordering questions ("is this slice sorted after the loop?") are
//     answered positionally within the function body, not over a real
//     control-flow graph;
//   - calls are opaque: a helper's effects are not propagated into its
//     callers (each function is analyzed against its own body only).
//
// Those limits trade missed corner cases for zero false dataflow: what
// the pass does report derives from definitions it actually saw.

// funcUnit is one analyzable function: a declaration or a function
// literal, with its body and (for declarations) its doc comment.
type funcUnit struct {
	node ast.Node       // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt // nil for bodiless declarations
	doc  *ast.CommentGroup
}

// packageFuncs enumerates every function declaration and function
// literal of the package, innermost literals included.
func packageFuncs(p *Package) []funcUnit {
	var out []funcUnit
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				out = append(out, funcUnit{node: n, body: n.Body, doc: n.Doc})
			case *ast.FuncLit:
				out = append(out, funcUnit{node: n, body: n.Body})
			}
			return true
		})
	}
	return out
}

// flowGraph is the intraprocedural value flow of one function: for
// every local variable, the expressions whose values reach it through
// definitions and assignments anywhere in the function.
type flowGraph struct {
	p       *Package
	sources map[*types.Var][]ast.Expr
}

// newFlowGraph builds the value flow of fn's body.
func newFlowGraph(p *Package, fn funcUnit) *flowGraph {
	g := &flowGraph{p: p, sources: make(map[*types.Var][]ast.Expr)}
	if fn.body == nil {
		return g
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// a, b = x, y pairs positionally; a, b = f() flows the call
			// into every destination.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v := g.localVar(id)
				if v == nil {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					g.sources[v] = append(g.sources[v], n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					g.sources[v] = append(g.sources[v], n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v := g.localVar(name)
				if v == nil {
					continue
				}
				if len(n.Values) == len(n.Names) {
					g.sources[v] = append(g.sources[v], n.Values[i])
				} else if len(n.Values) == 1 {
					g.sources[v] = append(g.sources[v], n.Values[0])
				}
			}
		case *ast.RangeStmt:
			// Key and value flow from the ranged expression.
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v := g.localVar(id); v != nil {
						g.sources[v] = append(g.sources[v], n.X)
					}
				}
			}
		}
		return true
	})
	return g
}

// localVar resolves an identifier to the variable it defines or uses.
func (g *flowGraph) localVar(id *ast.Ident) *types.Var {
	if v, ok := g.p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := g.p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// derivesFrom reports whether expr's value derives — directly or
// through local assignments — from a source expression satisfying
// pred. Flow through opaque calls, fields and containers is not
// followed; builtins and conversions pass their operands through.
func (g *flowGraph) derivesFrom(expr ast.Expr, pred func(ast.Expr) bool) bool {
	return g.derives(expr, pred, nil, make(map[*types.Var]bool))
}

// derivesVia is derivesFrom with a call oracle: for each resolvable
// call the oracle reports whether the result is itself a source (a
// callee whose summary returns tainted values) and which argument
// indices flow through to the result, letting taint cross function
// boundaries. A nil oracle restores the v2 opaque-call behavior.
func (g *flowGraph) derivesVia(expr ast.Expr, pred func(ast.Expr) bool, oracle func(*ast.CallExpr) (bool, []int)) bool {
	return g.derives(expr, pred, oracle, make(map[*types.Var]bool))
}

func (g *flowGraph) derives(expr ast.Expr, pred func(ast.Expr) bool, oracle func(*ast.CallExpr) (bool, []int), seen map[*types.Var]bool) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && pred(e) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			// Builtins (make/append/len/cap/min/max) and type
			// conversions pass their operands' values through; other
			// calls are opaque unless the oracle knows the callee: a
			// result does not carry its receiver's or arguments' taint
			// (`err := comm.Barrier()` is not rank-dependent just
			// because comm came from a Split keyed by rank). A call
			// that is itself a source matched pred above.
			if g.passThroughCall(call) {
				return true
			}
			if oracle != nil {
				src, args := oracle(call)
				if src {
					found = true
					return false
				}
				for _, i := range args {
					if i >= 0 && i < len(call.Args) && g.derives(call.Args[i], pred, oracle, seen) {
						found = true
						return false
					}
				}
			}
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := g.p.Info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		seen[v] = true
		for _, src := range g.sources[v] {
			if g.derives(src, pred, oracle, seen) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// passThroughCall reports whether a call propagates its operands'
// values rather than computing an opaque result: the value-shaping
// builtins and type conversions (`float64(rank)` carries rank's
// taint).
func (g *flowGraph) passThroughCall(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, ok := g.p.Info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make", "append", "len", "cap", "min", "max":
				return true
			}
			return false
		}
	}
	if tv, ok := g.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// totalSortFuncs are the sort calls that impose a total order on a
// slice of ordered elements by construction. sort.Slice and
// sort.SliceStable are deliberately absent: whether their comparator
// is a total order is not statically checkable, and an unstable sort
// under a partial comparator is exactly the nondeterminism the
// map-order rule exists to prevent.
var totalSortFuncs = map[string]map[string]bool{
	"sort":   {"Ints": true, "Strings": true, "Float64s": true},
	"slices": {"Sort": true},
}

// The positional sortedTotallyAfter check lived here through v3; the
// CFG layer's sortedOnAllPaths (cfg.go) replaced it, turning "a sort
// appears later in the source" into "every path to the function exit
// passes a sort".

// rankSourceNames are the method names whose results identify the
// calling rank (or its role) on a communicator-like receiver.
var rankSourceNames = map[string]bool{
	"Rank":   true,
	"Global": true,
	"IsRoot": true,
	"CG":     true,
}

// isRankSource reports whether e is a direct rank origin: a call to a
// Rank/Global/IsRoot/CG method, or a use of a variable literally named
// "rank" (the convention for rank parameters threaded through
// helpers).
func isRankSource(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() == nil {
			return false
		}
		return rankSourceNames[fn.Name()]
	case *ast.Ident:
		if !strings.EqualFold(e.Name, "rank") {
			return false
		}
		_, isVar := p.Info.Uses[e].(*types.Var)
		return isVar
	}
	return false
}

// rankDependent reports whether cond's value depends on the calling
// rank: it mentions a rank source directly, or a local variable whose
// value flows from one (covering `pos := c.Rank() % m; if pos == 0`).
// A non-nil oracle extends the flow through calls to helpers whose
// summaries return rank-derived values.
func rankDependent(p *Package, g *flowGraph, cond ast.Expr, oracle func(*ast.CallExpr) (bool, []int)) bool {
	return g.derivesVia(cond, func(e ast.Expr) bool { return isRankSource(p, e) }, oracle)
}

// declaredWithin reports whether the variable's declaration position
// falls inside the given node's source span — the positional stand-in
// for scope analysis.
func declaredWithin(v *types.Var, n ast.Node) bool {
	return v.Pos() >= n.Pos() && v.Pos() < n.End()
}

// guardedFields returns the set of struct fields carrying a
// "guarded by <mu>" annotation, shared with the guarded-field rule:
// writes to them from goroutines follow a documented mutex protocol
// and count as deterministic reduces for goroutine-purity.
func guardedFields(p *Package) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for v := range collectGuardedFields(p) {
		out[v] = true
	}
	return out
}

// receiverNamed reports whether the method call's receiver type (after
// pointer indirection) is the named type pkgPath.typeName.
func receiverNamed(p *Package, call *ast.CallExpr, pkgPath, typeName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}
