package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Control-flow graphs over the typed AST. The v3 engine answered every
// ordering question positionally ("does a sort call appear later in
// the source?"), which the docs called out as its known blind spot: a
// sort behind a condition looked unconditional, and a sort reached via
// a loop back edge looked absent. This file builds real basic blocks
// with branch, loop, switch, select, defer, goto and panic edges, and
// the facts the semantic rules consume:
//
//   - sortedOnAllPaths: the CFG replacement for the positional
//     "sorted after the loop" approximation (map-order,
//     goroutine-purity fan-in);
//   - reachableNodes: the early-exit tail of collective-match, so
//     collectives that follow the enclosing block — not just the
//     enclosing statement list — participate in matching;
//   - onCycle: whether a block re-executes, the park-recheck rule's
//     definition of "guard re-checked in an enclosing loop";
//   - lockSets: a forward union dataflow of held sync.Mutex /
//     sync.RWMutex receivers per block, the lock-across-park rule's
//     substrate.
//
// The graph is per funcUnit and intraprocedural; interprocedural facts
// (a helper that parks or enters a collective) arrive through the v3
// function summaries at the call site. Function-literal bodies are not
// descended into — each literal is its own funcUnit with its own graph.

// cfgBlock is one basic block: a maximal sequence of statements (and
// condition expressions) with a single entry and branch-free interior.
type cfgBlock struct {
	index int
	kind  string // entry, exit, body, then, else, merge, loop-head, loop-body, loop-post, loop-after, case, comm, defer, label, dead
	nodes []ast.Node
	succs []*cfgBlock
}

// cfgGraph is the control-flow graph of one function.
type cfgGraph struct {
	fn     funcUnit
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
	// deferBlock collects deferred calls (in LIFO order); every return
	// edge routes through it when the function defers anything.
	deferBlock *cfgBlock
	// loopAfter maps each for/range statement to the block control
	// reaches when the loop exits normally or via break.
	loopAfter map[ast.Stmt]*cfgBlock
	// ifMerge maps each else-less if statement to the block control
	// reaches when its condition is false.
	ifMerge map[*ast.IfStmt]*cfgBlock
}

// ctrlFrame is one enclosing breakable/continuable construct during
// construction.
type ctrlFrame struct {
	label  string
	brk    *cfgBlock
	cont   *cfgBlock // nil for switch/select frames
	isLoop bool
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g        *cfgGraph
	cur      *cfgBlock
	frames   []ctrlFrame
	labels   map[string]*cfgBlock
	gotos    []pendingGoto
	fallNext *cfgBlock // fallthrough target inside a switch clause
	pending  string    // label awaiting the statement it names
	defers   []ast.Node
	p        *Package
}

// buildCFG constructs the control-flow graph of fn's body. A bodiless
// function yields the trivial entry→exit graph.
func buildCFG(p *Package, fn funcUnit) *cfgGraph {
	g := &cfgGraph{
		fn:        fn,
		loopAfter: make(map[ast.Stmt]*cfgBlock),
		ifMerge:   make(map[*ast.IfStmt]*cfgBlock),
	}
	b := &cfgBuilder{g: g, labels: make(map[string]*cfgBlock), p: p}
	g.entry = b.newBlock("entry")
	g.exit = &cfgBlock{kind: "exit"}
	b.cur = g.entry
	if fn.body != nil {
		b.stmts(fn.body.List)
	}
	ret := g.exit
	if len(b.defers) > 0 {
		g.deferBlock = b.newBlock("defer")
		for i := len(b.defers) - 1; i >= 0; i-- {
			g.deferBlock.nodes = append(g.deferBlock.nodes, b.defers[i])
		}
		b.edge(g.deferBlock, g.exit)
		ret = g.deferBlock
		// Rewire earlier direct return edges through the defer block.
		for _, blk := range g.blocks {
			if blk == g.deferBlock {
				continue
			}
			for i, s := range blk.succs {
				if s == g.exit {
					blk.succs[i] = g.deferBlock
				}
			}
		}
	}
	b.edge(b.cur, ret)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		} else {
			b.edge(pg.from, ret)
		}
	}
	g.exit.index = len(g.blocks)
	g.blocks = append(g.blocks, g.exit)
	return g
}

func (b *cfgBuilder) newBlock(kind string) *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks), kind: kind}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// seal ends the current block after a control transfer; subsequent
// statements are unreachable and land in a fresh predecessor-less
// block so every node still belongs to some block.
func (b *cfgBuilder) seal() {
	b.cur = b.newBlock("dead")
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pending
	b.pending = ""
	return l
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		lbl := b.newBlock("label")
		b.edge(b.cur, lbl)
		b.cur = lbl
		b.labels[s.Label.Name] = lbl
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchStmt(nil, nil, s.Body, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.seal()
	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if terminatingCall(b.p, s.X) {
			b.edge(b.cur, b.g.exit)
			b.seal()
		}
	default:
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	merge := &cfgBlock{kind: "merge"} // appended after the arms for readable indices

	then := b.newBlock("then")
	b.edge(cond, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, merge)

	switch e := s.Else.(type) {
	case nil:
		b.edge(cond, merge)
		b.g.ifMerge[s] = merge
	case *ast.BlockStmt:
		els := b.newBlock("else")
		b.edge(cond, els)
		b.cur = els
		b.stmts(e.List)
		b.edge(b.cur, merge)
	case *ast.IfStmt:
		els := b.newBlock("else")
		b.edge(cond, els)
		b.cur = els
		b.ifStmt(e)
		b.edge(b.cur, merge)
	}
	merge.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, merge)
	b.cur = merge
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("loop-head")
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.nodes = append(head.nodes, s.Cond)
	}
	after := &cfgBlock{kind: "loop-after"}
	var post *cfgBlock
	cont := head
	if s.Post != nil {
		post = &cfgBlock{kind: "loop-post"}
		cont = post
	}
	body := b.newBlock("loop-body")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after, cont: cont, isLoop: true})
	b.cur = body
	b.stmts(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if post != nil {
		post.index = len(b.g.blocks)
		b.g.blocks = append(b.g.blocks, post)
		b.edge(b.cur, post)
		post.nodes = append(post.nodes, s.Post)
		b.edge(post, head)
	} else {
		b.edge(b.cur, head)
	}
	after.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, after)
	b.g.loopAfter[s] = after
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range-head")
	b.edge(b.cur, head)
	head.nodes = append(head.nodes, s.X)
	after := &cfgBlock{kind: "loop-after"}
	body := b.newBlock("loop-body")
	b.edge(head, body)
	b.edge(head, after)
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after, cont: head, isLoop: true})
	b.cur = body
	b.stmts(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, head)
	after.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, after)
	b.g.loopAfter[s] = after
	b.cur = after
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	after := &cfgBlock{kind: "merge"}
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock("case")
		b.edge(head, caseBlocks[i])
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(caseBlocks) {
			b.fallNext = caseBlocks[i+1]
		} else {
			b.fallNext = nil
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallNext = nil
	b.frames = b.frames[:len(b.frames)-1]
	after.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, after)
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := &cfgBlock{kind: "merge"}
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	after.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, after)
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.isLoop && (label == "" || f.label == label) {
				b.edge(b.cur, f.cont)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	case token.FALLTHROUGH:
		b.edge(b.cur, b.fallNext)
	}
	b.seal()
}

// terminatingCall reports whether the expression statement never
// returns: a panic call or os.Exit.
func terminatingCall(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "os" && fn.Name() == "Exit" {
		return true
	}
	return false
}

// blockFor returns the block whose narrowest node span contains n, or
// nil when no node covers it (e.g. a node of a nested function
// literal, which belongs to its own graph).
func (g *cfgGraph) blockFor(n ast.Node) *cfgBlock {
	var best *cfgBlock
	var bestSpan token.Pos = -1
	for _, blk := range g.blocks {
		for _, node := range blk.nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				span := node.End() - node.Pos()
				if bestSpan < 0 || span < bestSpan {
					best, bestSpan = blk, span
				}
			}
		}
	}
	return best
}

// onCycle reports whether b lies on a CFG cycle — control can leave b
// and come back, i.e. the statement re-executes. This is the
// park-recheck rule's notion of "inside a re-checking loop": a parked
// task that wakes spuriously re-evaluates its guard only if its Park
// re-executes.
func (g *cfgGraph) onCycle(b *cfgBlock) bool {
	seen := make([]bool, len(g.blocks)+1)
	stack := append([]*cfgBlock(nil), b.succs...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == b {
			return true
		}
		if cur.index < len(seen) && seen[cur.index] {
			continue
		}
		seen[cur.index] = true
		stack = append(stack, cur.succs...)
	}
	return false
}

// reachableBlocks returns every block reachable from start (start
// included), following all edges.
func (g *cfgGraph) reachableBlocks(start *cfgBlock) []*cfgBlock {
	seen := make(map[*cfgBlock]bool)
	stack := []*cfgBlock{start}
	var out []*cfgBlock
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, cur)
		stack = append(stack, cur.succs...)
	}
	return out
}

// reachableNodes returns the AST nodes of every block reachable from
// start whose span is not inside exclude — the CFG tail of an
// early-exit branch, with the branch's own arm (and condition)
// filtered out even when a loop back edge makes them reachable.
func (g *cfgGraph) reachableNodes(start *cfgBlock, exclude ast.Node) []ast.Node {
	var out []ast.Node
	for _, blk := range g.reachableBlocks(start) {
		for _, n := range blk.nodes {
			if exclude != nil && n.Pos() >= exclude.Pos() && n.End() <= exclude.End() {
				continue
			}
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// sortedOnAllPaths reports whether every path from the program point
// after n to the function exit passes a total-order sort of v. This is
// the CFG replacement for the v3 positional check: a sort behind a
// condition no longer counts (some path escapes unsorted), and a sort
// reached via an enclosing loop's back edge does.
func (g *cfgGraph) sortedOnAllPaths(p *Package, v *types.Var, n ast.Node) bool {
	type point struct {
		blk *cfgBlock
		idx int
	}
	var starts []point
	switch s := n.(type) {
	case *ast.ForStmt:
		if after := g.loopAfter[s]; after != nil {
			starts = append(starts, point{after, 0})
		}
	case *ast.RangeStmt:
		if after := g.loopAfter[s]; after != nil {
			starts = append(starts, point{after, 0})
		}
	}
	if starts == nil {
		blk := g.blockFor(n)
		if blk == nil {
			return false
		}
		idx := len(blk.nodes)
		for i, node := range blk.nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				idx = i + 1
				break
			}
		}
		starts = append(starts, point{blk, idx})
	}
	sorts := func(node ast.Node) bool { return nodeSortsVar(p, node, v) }
	// DFS for a path that reaches exit without passing a sort of v.
	visited := make(map[*cfgBlock]bool)
	var escape func(pt point) bool
	escape = func(pt point) bool {
		for i := pt.idx; i < len(pt.blk.nodes); i++ {
			if sorts(pt.blk.nodes[i]) {
				return false // this path is fixed up
			}
		}
		if pt.blk == g.exit || len(pt.blk.succs) == 0 {
			return true // fell off the function unsorted
		}
		if pt.idx == 0 {
			if visited[pt.blk] {
				return false
			}
			visited[pt.blk] = true
		}
		for _, s := range pt.blk.succs {
			if s == g.exit {
				return true
			}
			if !visited[s] && escape(point{s, 0}) {
				return true
			}
		}
		return false
	}
	for _, pt := range starts {
		if escape(pt) {
			return false
		}
	}
	return true
}

// nodeSortsVar reports whether the node contains a total-order sort
// call whose first argument is v (nested function literals excluded).
func nodeSortsVar(p *Package, node ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		names := totalSortFuncs[fnObj.Pkg().Path()]
		if names == nil || !names[fnObj.Name()] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if u, ok := p.Info.Uses[id].(*types.Var); ok && u == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lockSets computes, per block, the set of mutex receivers that may be
// held on entry: a forward union dataflow where Lock/RLock add the
// receiver, Unlock/RUnlock remove it, and deferred unlocks do not
// release along the path (they run at function exit). The union merge
// is conservative — "may be held on some path in" — which is exactly
// the right polarity for lock-across-park: parking under a
// sometimes-held mutex is still a deadlock on that path.
func (g *cfgGraph) lockSets(p *Package) map[*cfgBlock]map[string]bool {
	in := make(map[*cfgBlock]map[string]bool, len(g.blocks))
	for _, b := range g.blocks {
		in[b] = make(map[string]bool)
	}
	changed := true
	for changed {
		changed = false
		for _, b := range g.blocks {
			out := copyLockSet(in[b])
			applyLockOps(p, b, out, nil)
			for _, s := range b.succs {
				for k := range out {
					if !in[s][k] {
						in[s][k] = true
						changed = true
					}
				}
			}
		}
	}
	return in
}

func copyLockSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// lockEvent is one mutex operation or visit callback inside a block.
type lockEvent struct {
	call *ast.CallExpr
	recv string // rendered receiver, e.g. "g.mu"
	op   string // Lock, RLock, Unlock, RUnlock
}

// applyLockOps walks a block's nodes in order, updating the held set
// and invoking visit (when non-nil) at every call expression with the
// set as it stands at that point.
func applyLockOps(p *Package, b *cfgBlock, held map[string]bool, visit func(call *ast.CallExpr, held map[string]bool)) {
	for _, node := range b.nodes {
		deferred := false
		if _, ok := node.(*ast.DeferStmt); ok {
			deferred = true
		}
		ast.Inspect(node, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ev, ok := mutexOp(p, call); ok {
				if deferred {
					return true // runs at exit, not here
				}
				switch ev.op {
				case "Lock", "RLock":
					held[lockKey(ev)] = true
				case "Unlock":
					delete(held, "Lock:"+ev.recv)
				case "RUnlock":
					delete(held, "RLock:"+ev.recv)
				}
				return true
			}
			if visit != nil {
				visit(call, held)
			}
			return true
		})
	}
}

func lockKey(ev lockEvent) string { return ev.op + ":" + ev.recv }

// heldNames renders a held set for a finding message: the receiver
// expressions, sorted, without the Lock/RLock namespace prefix.
func heldNames(held map[string]bool) []string {
	var out []string
	for k := range held {
		if i := strings.Index(k, ":"); i >= 0 {
			k = k[i+1:]
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mutexOp classifies a call as a sync.Mutex / sync.RWMutex operation on
// a rendered receiver. TryLock is deliberately excluded: its
// acquisition is conditional on the return value, which this analysis
// does not model.
func mutexOp(p *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockEvent{}, false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return lockEvent{}, false
	}
	return lockEvent{call: call, recv: exprText(sel.X), op: fn.Name()}, true
}

// exprText renders a simple receiver expression (identifiers, field
// selections, parenthesized forms) for lock identity and messages.
// Anything more exotic collapses to a positional placeholder so two
// different complex receivers never alias.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprText(e.X)
		}
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return fmt.Sprintf("<expr@%d>", e.Pos())
}

// dump renders the graph for the golden CFG-shape tests: one line per
// block with its kind, node summaries (AST type @ line) and successor
// indices. The format is deterministic.
func (g *cfgGraph) dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.index, b.kind)
		for _, n := range b.nodes {
			t := fmt.Sprintf("%T", n)
			t = t[strings.LastIndex(t, ".")+1:]
			fmt.Fprintf(&sb, " %s@%d", t, fset.Position(n.Pos()).Line)
		}
		sb.WriteString(" ->")
		if len(b.succs) == 0 {
			sb.WriteString(" (none)")
		}
		for _, s := range b.succs {
			fmt.Fprintf(&sb, " b%d", s.index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
