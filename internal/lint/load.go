package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for rule checking. Test
// files are not loaded: every rule's scope is the non-test build, and
// external test packages (package foo_test) cannot be type-checked
// together with their subject anyway.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path
	Dir   string
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local import paths resolve directly to
// directories under the module root, everything else (the standard
// library) goes through go/importer's source importer. One Loader
// caches dependencies across Load calls, so loading the whole module
// type-checks each stdlib package once.
//
// The loader is safe for concurrent LoadDir calls: Import deduplicates
// in-flight work per path (first caller computes, others wait on the
// entry's done channel), and the stdlib source importer — which makes
// no concurrency promises — is serialized behind its own mutex. Import
// recursion across distinct paths cannot deadlock because Go package
// imports form a DAG.
type Loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.ImporterFrom
	stdMu  sync.Mutex
	mu     sync.Mutex
	cache  map[string]*importEntry
}

// importEntry is one per-path singleflight slot in the import cache.
type importEntry struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

// NewLoader returns a loader for the module rooted at root with the
// given module path.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:  make(map[string]*importEntry),
	}
}

// Fset exposes the loader's file set for position resolution.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer for dependency resolution during
// type checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	if e, ok := l.cache[path]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &importEntry{done: make(chan struct{})}
	l.cache[path] = e
	l.mu.Unlock()
	defer close(e.done)
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		e.pkg, e.err = l.check(path, l.dirOf(path), nil)
		return e.pkg, e.err
	}
	l.stdMu.Lock()
	p, err := l.std.ImportFrom(path, l.root, 0)
	l.stdMu.Unlock()
	if err != nil {
		e.err = fmt.Errorf("lint: importing %s: %w", path, err)
		return nil, e.err
	}
	e.pkg = p
	return p, nil
}

// dirOf maps a module-local import path to its directory.
func (l *Loader) dirOf(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// pathOf maps a directory under the module root to its import path.
func (l *Loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the non-test Go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks the package in dir under import path. When info is
// non-nil the use/def/selection maps are filled for rule checking.
func (l *Loader) check(path, dir string, info *types.Info) (*types.Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, nil
}

// LoadDir loads the single package in dir, rooted anywhere under the
// module, with full type information. importPath overrides the derived
// path when non-empty (fixture trees under testdata/ use this to pose
// as arbitrary packages).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := importPath
	if path == "" {
		if path, err = l.pathOf(abs); err != nil {
			return nil, err
		}
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Fset: l.fset, Path: path, Dir: abs, Files: files, Info: info, Pkg: pkg}, nil
}

// ResolveDirs expands package patterns — "./...", "dir/...", or plain
// directories, relative to the module root — into a sorted list of
// package directories.
func (l *Loader) ResolveDirs(patterns []string) ([]string, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := l.packageDirs(l.root)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolve(strings.TrimSuffix(pat, "/..."))
			ds, err := l.packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				dirs[d] = true
			}
		default:
			dirs[l.resolve(pat)] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	return sorted, nil
}

// Load resolves package patterns into loaded packages.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	sorted, err := l.ResolveDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range sorted {
		p, err := l.LoadDir(d, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// resolve interprets a pattern as a directory, relative to the module
// root unless absolute.
func (l *Loader) resolve(pat string) string {
	if filepath.IsAbs(pat) {
		return pat
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
}

// packageDirs walks base collecting every directory holding at least
// one non-test Go file, skipping testdata, vendor and hidden trees.
func (l *Loader) packageDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		abs = parent
	}
}
