package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests: every LoadDir call reuses
// the same stdlib type-check cache, so the suite pays the source
// importer's cost once instead of once per subtest.
var (
	loaderOnce sync.Once
	loaderErr  error
	testCfg    Config
	testLoader *Loader
)

func fixtureLoader(t *testing.T) (*Loader, Config) {
	t.Helper()
	loaderOnce.Do(func() {
		testCfg, loaderErr = DefaultConfig(".")
		if loaderErr != nil {
			return
		}
		testLoader = NewLoader(testCfg.ModuleRoot, testCfg.ModulePath)
	})
	if loaderErr != nil {
		t.Fatalf("DefaultConfig: %v", loaderErr)
	}
	return testLoader, testCfg
}

// loadFixture type-checks one testdata tree, posing as importPath so
// path-scoped rules see the package where the test wants it.
func loadFixture(t *testing.T, fixture, importPath string) *Package {
	t.Helper()
	l, _ := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "src", fixture), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", fixture, importPath, err)
	}
	return p
}

// expect is one finding the fixture is seeded with: the rule, the
// fixture file's base name, the 1-based line and a fragment of the
// message.
type expect struct {
	rule    string
	file    string
	line    int
	message string
}

func checkFindings(t *testing.T, got []Finding, want []expect) {
	t.Helper()
	sortFindings(got)
	for i, f := range got {
		if i < len(want) {
			w := want[i]
			if f.RuleID != w.rule || filepath.Base(f.Pos.Filename) != w.file || f.Pos.Line != w.line {
				t.Errorf("finding %d = %s:%d %s, want %s:%d %s",
					i, filepath.Base(f.Pos.Filename), f.Pos.Line, f.RuleID, w.file, w.line, w.rule)
			}
			if !strings.Contains(f.Message, w.message) {
				t.Errorf("finding %d message %q does not contain %q", i, f.Message, w.message)
			}
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i := len(got); i < len(want); i++ {
		t.Errorf("missing finding: %+v", want[i])
	}
}

func TestRuleFixtures(t *testing.T) {
	_, cfg := fixtureLoader(t)
	tests := []struct {
		name    string
		fixture string
		as      string // import path the fixture poses as
		rule    Rule
		want    []expect
	}{
		{
			name:    "no-wallclock flags clock reads and rand imports in sim packages",
			fixture: "wallclock",
			as:      cfg.ModulePath + "/internal/core",
			rule:    NoWallclockRule{SimPackages: cfg.SimPackages},
			want: []expect{
				{"no-wallclock", "wallclock.go", 7, "import of math/rand"},
				{"no-wallclock", "wallclock.go", 14, "time.Now"},
				{"no-wallclock", "wallclock.go", 16, "time.Since"},
			},
		},
		{
			name:    "no-wallclock is silent outside the simulation packages",
			fixture: "wallclock",
			as:      cfg.ModulePath + "/internal/report",
			rule:    NoWallclockRule{SimPackages: cfg.SimPackages},
			want:    nil,
		},
		{
			name:    "float-eq flags exact comparisons outside tolerant helpers",
			fixture: "floateq",
			as:      cfg.ModulePath + "/internal/fixture/floateq",
			rule:    FloatEqRule{},
			want: []expect{
				{"float-eq", "floateq.go", 8, "floating-point == comparison"},
				{"float-eq", "floateq.go", 13, "floating-point != comparison"},
			},
		},
		{
			name:    "guarded-field flags lock-free access, including goroutine literals",
			fixture: "guarded",
			as:      cfg.ModulePath + "/internal/fixture/guarded",
			rule:    GuardedFieldRule{},
			want: []expect{
				{"guarded-field", "guarded.go", 23, "guarded by mu"},
				{"guarded-field", "guarded.go", 32, "guarded by mu"},
			},
		},
		{
			name:    "err-wrap flags %v on error operands, including indexed verbs",
			fixture: "errwrap",
			as:      cfg.ModulePath + "/internal/fixture/errwrap",
			rule:    ErrWrapRule{},
			want: []expect{
				{"err-wrap", "errwrap.go", 15, "use %w"},
				{"err-wrap", "errwrap.go", 26, "use %w"},
			},
		},
		{
			name:    "err-wrap is scoped to internal packages",
			fixture: "errwrap",
			as:      cfg.ModulePath + "/pkg/errwrap",
			rule:    ErrWrapRule{},
			want:    nil,
		},
		{
			name:    "ldm-capacity flags raw capacity use without a central check",
			fixture: "ldmcap",
			as:      cfg.ModulePath + "/internal/fixture/ldmcap",
			rule:    LDMCapacityRule{LDMPackage: cfg.LDMPackage, Exempt: cfg.CapacityExempt},
			want: []expect{
				{"ldm-capacity", "ldmcap.go", 15, "HandRolled uses raw LDM capacity"},
				{"ldm-capacity", "ldmcap.go", 32, "Alloc uses raw LDM capacity"},
			},
		},
		{
			name:    "ldm-capacity exempts the machine-description package",
			fixture: "ldmcap",
			as:      cfg.ModulePath + "/internal/machine",
			rule:    LDMCapacityRule{LDMPackage: cfg.LDMPackage, Exempt: cfg.CapacityExempt},
			want:    nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := loadFixture(t, tt.fixture, tt.as)
			checkFindings(t, tt.rule.Check(p), tt.want)
		})
	}
}

// TestSuppressions proves the ignore machinery end to end: the raw
// rule sees every seeded violation, and CheckPackage filters exactly
// the ones carrying a matching //swlint:ignore — trailing, preceding
// and comma-list forms — while wrong-rule, bare and out-of-range
// comments suppress nothing.
func TestSuppressions(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "suppress", cfg.ModulePath+"/internal/fixture/suppress")

	raw := FloatEqRule{}.Check(p)
	checkFindings(t, raw, []expect{
		{"float-eq", "suppress.go", 8, "floating-point"},
		{"float-eq", "suppress.go", 14, "floating-point"},
		{"float-eq", "suppress.go", 20, "floating-point"},
		{"float-eq", "suppress.go", 26, "floating-point"},
		{"float-eq", "suppress.go", 32, "floating-point"},
		{"float-eq", "suppress.go", 39, "floating-point"},
	})

	filtered := CheckPackage([]Rule{FloatEqRule{}}, p)
	checkFindings(t, filtered, []expect{
		{"float-eq", "suppress.go", 26, "floating-point"}, // wrong rule named
		{"float-eq", "suppress.go", 32, "floating-point"}, // bare ignore
		{"float-eq", "suppress.go", 39, "floating-point"}, // comment out of range
	})
}

func TestFindingString(t *testing.T) {
	f := Finding{RuleID: "float-eq", Message: "bad compare"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 7
	f.Pos.Column = 3
	if got, want := f.String(), "a/b.go:7:3: float-eq: bad compare"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultConfig(t *testing.T) {
	_, cfg := fixtureLoader(t)
	if cfg.ModulePath != "repro" {
		t.Errorf("ModulePath = %q, want repro", cfg.ModulePath)
	}
	if cfg.LDMPackage != "repro/internal/ldm" {
		t.Errorf("LDMPackage = %q", cfg.LDMPackage)
	}
	for _, sim := range []string{"repro/internal/core", "repro/internal/vclock", "repro/internal/mpi"} {
		if !hasSuffixPath(sim, cfg.SimPackages) {
			t.Errorf("SimPackages missing %s", sim)
		}
	}
	if len(AllRules(cfg)) != 5 {
		t.Errorf("AllRules returned %d rules, want 5", len(AllRules(cfg)))
	}
}
