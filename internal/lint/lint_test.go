package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests: every LoadDir call reuses
// the same stdlib type-check cache, so the suite pays the source
// importer's cost once instead of once per subtest.
var (
	loaderOnce sync.Once
	loaderErr  error
	testCfg    Config
	testLoader *Loader
)

func fixtureLoader(t *testing.T) (*Loader, Config) {
	t.Helper()
	loaderOnce.Do(func() {
		testCfg, loaderErr = DefaultConfig(".")
		if loaderErr != nil {
			return
		}
		testLoader = NewLoader(testCfg.ModuleRoot, testCfg.ModulePath)
	})
	if loaderErr != nil {
		t.Fatalf("DefaultConfig: %v", loaderErr)
	}
	return testLoader, testCfg
}

// loadFixture type-checks one testdata tree, posing as importPath so
// path-scoped rules see the package where the test wants it.
func loadFixture(t *testing.T, fixture, importPath string) *Package {
	t.Helper()
	l, _ := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "src", fixture), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", fixture, importPath, err)
	}
	return p
}

// expect is one finding the fixture is seeded with: the rule, the
// fixture file's base name, the 1-based line and a fragment of the
// message.
type expect struct {
	rule    string
	file    string
	line    int
	message string
}

func checkFindings(t *testing.T, got []Finding, want []expect) {
	t.Helper()
	sortFindings(got)
	for i, f := range got {
		if i < len(want) {
			w := want[i]
			if f.RuleID != w.rule || filepath.Base(f.Pos.Filename) != w.file || f.Pos.Line != w.line {
				t.Errorf("finding %d = %s:%d %s, want %s:%d %s",
					i, filepath.Base(f.Pos.Filename), f.Pos.Line, f.RuleID, w.file, w.line, w.rule)
			}
			if !strings.Contains(f.Message, w.message) {
				t.Errorf("finding %d message %q does not contain %q", i, f.Message, w.message)
			}
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i := len(got); i < len(want); i++ {
		t.Errorf("missing finding: %+v", want[i])
	}
}

func TestRuleFixtures(t *testing.T) {
	_, cfg := fixtureLoader(t)
	tests := []struct {
		name    string
		fixture string
		as      string // import path the fixture poses as
		rule    Rule
		want    []expect
	}{
		{
			name:    "no-wallclock flags clock reads and rand imports in sim packages",
			fixture: "wallclock",
			as:      cfg.ModulePath + "/internal/core",
			rule:    NoWallclockRule{SimPackages: cfg.SimPackages},
			want: []expect{
				{"no-wallclock", "wallclock.go", 7, "import of math/rand"},
				{"no-wallclock", "wallclock.go", 14, "time.Now"},
				{"no-wallclock", "wallclock.go", 16, "time.Since"},
			},
		},
		{
			name:    "no-wallclock is silent outside the simulation packages",
			fixture: "wallclock",
			as:      cfg.ModulePath + "/internal/report",
			rule:    NoWallclockRule{SimPackages: cfg.SimPackages},
			want:    nil,
		},
		{
			name:    "float-eq flags exact comparisons outside tolerant helpers",
			fixture: "floateq",
			as:      cfg.ModulePath + "/internal/fixture/floateq",
			rule:    FloatEqRule{},
			want: []expect{
				{"float-eq", "floateq.go", 8, "floating-point == comparison"},
				{"float-eq", "floateq.go", 13, "floating-point != comparison"},
			},
		},
		{
			name:    "guarded-field flags lock-free access, including goroutine literals",
			fixture: "guarded",
			as:      cfg.ModulePath + "/internal/fixture/guarded",
			rule:    GuardedFieldRule{},
			want: []expect{
				{"guarded-field", "guarded.go", 23, "guarded by mu"},
				{"guarded-field", "guarded.go", 32, "guarded by mu"},
			},
		},
		{
			name:    "err-wrap flags %v on error operands, including indexed verbs",
			fixture: "errwrap",
			as:      cfg.ModulePath + "/internal/fixture/errwrap",
			rule:    ErrWrapRule{},
			want: []expect{
				{"err-wrap", "errwrap.go", 15, "use %w"},
				{"err-wrap", "errwrap.go", 26, "use %w"},
			},
		},
		{
			name:    "err-wrap is scoped to internal packages",
			fixture: "errwrap",
			as:      cfg.ModulePath + "/pkg/errwrap",
			rule:    ErrWrapRule{},
			want:    nil,
		},
		{
			name:    "ldm-capacity flags raw capacity use without a central check",
			fixture: "ldmcap",
			as:      cfg.ModulePath + "/internal/fixture/ldmcap",
			rule:    LDMCapacityRule{LDMPackage: cfg.LDMPackage, Exempt: cfg.CapacityExempt},
			want: []expect{
				{"ldm-capacity", "ldmcap.go", 15, "HandRolled uses raw LDM capacity"},
				{"ldm-capacity", "ldmcap.go", 32, "Alloc uses raw LDM capacity"},
			},
		},
		{
			name:    "ldm-capacity exempts the machine-description package",
			fixture: "ldmcap",
			as:      cfg.ModulePath + "/internal/machine",
			rule:    LDMCapacityRule{LDMPackage: cfg.LDMPackage, Exempt: cfg.CapacityExempt},
			want:    nil,
		},
		{
			name:    "map-order flags order-sensitive effects and blesses sorted collection",
			fixture: "maporder",
			as:      cfg.ModulePath + "/internal/core",
			rule:    MapOrderRule{SimPackages: cfg.SimPackages, VClockPackage: cfg.VClockPackage, CommPackage: cfg.CommPackage},
			want: []expect{
				{"map-order", "maporder.go", 12, "package variable counts"},
				{"map-order", "maporder.go", 20, "append to slice out"},
				{"map-order", "maporder.go", 40, "append to slice out"},
				{"map-order", "maporder.go", 65, "channel send"},
				{"map-order", "maporder.go", 86, "struct field total"},
				// CondSort: the sort sits on only one path out of the
				// branch; the v3 positional check ("a sort appears later
				// in the source") blessed it, the CFG check does not.
				// SortBothArms, sorting on every path, stays blessed.
				{"map-order", "maporder.go", 96, "append to slice out"},
			},
		},
		{
			name:    "map-order is silent outside the simulation packages",
			fixture: "maporder",
			as:      cfg.ModulePath + "/internal/report",
			rule:    MapOrderRule{SimPackages: cfg.SimPackages, VClockPackage: cfg.VClockPackage, CommPackage: cfg.CommPackage},
			want:    nil,
		},
		{
			name:    "collective-match flags lone rank-conditional collectives",
			fixture: "collective",
			as:      cfg.ModulePath + "/internal/fixture/collective",
			rule:    CollectiveMatchRule{CommPackage: cfg.CommPackage},
			want: []expect{
				{"collective-match", "collective.go", 13, "no matching Bcast"},
				{"collective-match", "collective.go", 45, "no matching Barrier"},
				{"collective-match", "collective.go", 53, "no matching Gather"},
				{"collective-match", "collective.go", 85, "no matching Reduce"},
			},
		},
		{
			name:    "goroutine-purity flags order-sensitive fan-in, blesses scatter and guarded reduce",
			fixture: "goroutine",
			as:      cfg.ModulePath + "/internal/core",
			rule:    GoroutinePurityRule{SimPackages: cfg.SimPackages},
			want: []expect{
				{"goroutine-purity", "goroutine.go", 19, "writes shared variable shared"},
				{"goroutine-purity", "goroutine.go", 51, "select chooses pseudo-randomly"},
				{"goroutine-purity", "goroutine.go", 64, "arrival order"},
				{"goroutine-purity", "goroutine.go", 84, "arrival order"},
				{"goroutine-purity", "goroutine.go", 120, "unguarded shared field n"},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := loadFixture(t, tt.fixture, tt.as)
			checkFindings(t, tt.rule.Check(p), tt.want)
		})
	}
}

// TestSuppressions proves the ignore machinery end to end: the raw
// rule sees every seeded violation; CheckPackage filters exactly the
// ones carrying a well-formed matching //swlint:ignore — trailing,
// preceding and comma-list forms — while wrong-rule, malformed and
// out-of-range comments suppress nothing; and the machinery's own
// bad-suppress/unused-suppress findings surface, scoped to the rules
// that actually ran.
func TestSuppressions(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "suppress", cfg.ModulePath+"/internal/fixture/suppress")

	raw := FloatEqRule{}.Check(p)
	checkFindings(t, raw, []expect{
		{"float-eq", "suppress.go", 8, "floating-point"},
		{"float-eq", "suppress.go", 14, "floating-point"},
		{"float-eq", "suppress.go", 20, "floating-point"},
		{"float-eq", "suppress.go", 26, "floating-point"},
		{"float-eq", "suppress.go", 33, "floating-point"},
		{"float-eq", "suppress.go", 41, "floating-point"},
	})

	filtered := CheckPackage([]Rule{FloatEqRule{}}, p)
	checkFindings(t, filtered, []expect{
		{"float-eq", "suppress.go", 26, "floating-point"},   // wrong rule named
		{"bad-suppress", "suppress.go", 32, "malformed"},    // legacy reason-free form
		{"float-eq", "suppress.go", 33, "floating-point"},   // malformed comment suppresses nothing
		{"unused-suppress", "suppress.go", 39, "matched no"}, // out of range, so stale
		{"float-eq", "suppress.go", 41, "floating-point"},   // comment out of range
	})

	// With err-wrap in the run, the err-wrap half of the comma-list
	// comment is also reported stale; no-wallclock stays exempt because
	// it did not run.
	both := CheckPackage([]Rule{FloatEqRule{}, ErrWrapRule{}}, p)
	checkFindings(t, both, []expect{
		{"unused-suppress", "suppress.go", 19, "err-wrap"},
		{"float-eq", "suppress.go", 26, "floating-point"},
		{"bad-suppress", "suppress.go", 32, "malformed"},
		{"float-eq", "suppress.go", 33, "floating-point"},
		{"unused-suppress", "suppress.go", 39, "matched no"},
		{"float-eq", "suppress.go", 41, "floating-point"},
	})
}

func TestFindingString(t *testing.T) {
	f := Finding{RuleID: "float-eq", Message: "bad compare"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 7
	f.Pos.Column = 3
	if got, want := f.String(), "a/b.go:7:3: float-eq: bad compare"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultConfig(t *testing.T) {
	_, cfg := fixtureLoader(t)
	if cfg.ModulePath != "repro" {
		t.Errorf("ModulePath = %q, want repro", cfg.ModulePath)
	}
	if cfg.LDMPackage != "repro/internal/ldm" {
		t.Errorf("LDMPackage = %q", cfg.LDMPackage)
	}
	for _, sim := range []string{"repro/internal/core", "repro/internal/vclock", "repro/internal/mpi"} {
		if !hasSuffixPath(sim, cfg.SimPackages) {
			t.Errorf("SimPackages missing %s", sim)
		}
	}
	if len(AllRules(cfg)) != 15 {
		t.Errorf("AllRules returned %d rules, want 15", len(AllRules(cfg)))
	}
	if cfg.DMAPackage != "repro/internal/dma" {
		t.Errorf("DMAPackage = %q", cfg.DMAPackage)
	}
	if cfg.SchedPackage != "repro/internal/sched" {
		t.Errorf("SchedPackage = %q", cfg.SchedPackage)
	}
}
