package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// testSummarizer builds a summarizer against the real module, as
// AllRules would.
func testSummarizer(t *testing.T) *Summarizer {
	t.Helper()
	_, cfg := fixtureLoader(t)
	return NewSummarizer(cfg)
}

// TestInterprocCollectives is the v3 acceptance demonstration: the
// helper-wrapped collectives and helper-derived rank conditions in the
// interproc fixture are invisible to the v2 intraprocedural rule and
// caught with summaries enabled, with the call chain in the message —
// while the one finding v2 does emit (BothArms) is a false positive
// the summaries dissolve.
func TestInterprocCollectives(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "interproc", cfg.ModulePath+"/internal/core")

	// The v2 intraprocedural rule misses every helper-wrapped shape —
	// and falsely flags BothArms' direct Bcast, whose partner hides in
	// the helper on the other arm. Both directions of the gap must hold
	// for the fixture to stay meaningful.
	v2 := CollectiveMatchRule{CommPackage: cfg.CommPackage}
	checkFindings(t, v2.Check(p), []expect{
		{"collective-match", "interproc.go", 68, "no matching Bcast"},
	})

	v3 := CollectiveMatchRule{CommPackage: cfg.CommPackage, Sums: testSummarizer(t)}
	got := v3.Check(p)
	checkFindings(t, got, []expect{
		{"collective-match", "interproc.go", 40, "no matching Bcast"},
		{"collective-match", "interproc.go", 48, "no matching AllReduceSum"},
		{"collective-match", "interproc.go", 57, "no matching Barrier"},
		{"collective-match", "interproc.go", 77, "no matching Bcast"},
	})
	wantChains := map[int]string{
		40: "reached via core.broadcast → Bcast",
		48: "reached via core.sumAll → core.reduceHelper → AllReduceSum",
	}
	for _, f := range got {
		if chain, ok := wantChains[f.Pos.Line]; ok && !strings.Contains(f.Message, chain) {
			t.Errorf("finding at line %d lacks call chain %q:\n%s", f.Pos.Line, chain, f.Message)
		}
	}
}

// TestInterprocCallSiteSuppression proves a suppression at the call
// site — not the callee — silences a summary-propagated finding, and
// is counted as used by the suppression machinery.
func TestInterprocCallSiteSuppression(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "interproc", cfg.ModulePath+"/internal/core")
	rule := CollectiveMatchRule{CommPackage: cfg.CommPackage, Sums: testSummarizer(t)}

	got := CheckPackage([]Rule{rule}, p)
	for _, f := range got {
		if f.Pos.Line == 77 {
			t.Errorf("call-site suppression did not silence the summary-propagated finding: %s", f)
		}
		if f.RuleID == UnusedSuppressID {
			t.Errorf("suppression reported unused: %s", f)
		}
	}
}

// TestInterprocMapOrderAndGoroutine covers the other two rewired
// rules: an impure helper under a map range and under a `go`
// statement, both only visible through summaries.
func TestInterprocMapOrderAndGoroutine(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "interproc", cfg.ModulePath+"/internal/core")
	sums := testSummarizer(t)

	mo2 := MapOrderRule{SimPackages: cfg.SimPackages, VClockPackage: cfg.VClockPackage, CommPackage: cfg.CommPackage}
	if got := mo2.Check(p); len(got) != 0 {
		t.Fatalf("v2 map-order found %v, want nothing", got)
	}
	mo3 := MapOrderRule{SimPackages: cfg.SimPackages, VClockPackage: cfg.VClockPackage, CommPackage: cfg.CommPackage, Sums: sums}
	checkFindings(t, mo3.Check(p), []expect{
		{"map-order", "interproc.go", 85, "call to core.bump which writes package variable hits"},
	})

	gp2 := GoroutinePurityRule{SimPackages: cfg.SimPackages}
	if got := gp2.Check(p); len(got) != 0 {
		t.Fatalf("v2 goroutine-purity found %v, want nothing", got)
	}
	gp3 := GoroutinePurityRule{SimPackages: cfg.SimPackages, Sums: sums}
	checkFindings(t, gp3.Check(p), []expect{
		{"goroutine-purity", "interproc.go", 93, "writes package variable hits"},
	})
}

// TestLDMProvenance covers both sides of the provenance rule:
// hand-rolled sizes are flagged, capacity-derived sizes and
// Check*-gated functions are blessed — including through helpers,
// where only the summarized rule sees the provenance.
func TestLDMProvenance(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "ldmprov", cfg.ModulePath+"/internal/fixture/ldmprov")

	v3 := LDMProvenanceRule{LDMPackage: cfg.LDMPackage, DMAPackage: cfg.DMAPackage, Exempt: cfg.CapacityExempt, Sums: testSummarizer(t)}
	checkFindings(t, v3.Check(p), []expect{
		{"ldm-provenance", "ldmprov.go", 26, "Engine.Charge"},
		{"ldm-provenance", "ldmprov.go", 27, "Allocator.AllocFloats"},
	})

	// Without summaries the helper-wrapped provenance and gating are
	// invisible: HelperChunk and HelperGated are (wrongly, in v2's
	// conservative model) flagged too.
	v2 := LDMProvenanceRule{LDMPackage: cfg.LDMPackage, DMAPackage: cfg.DMAPackage, Exempt: cfg.CapacityExempt}
	v2Got := v2.Check(p)
	if len(v2Got) <= 2 {
		t.Errorf("rule without summaries found %d findings, want the helper-wrapped cases flagged as well: %v", len(v2Got), v2Got)
	}

	// The rule stays out of the capacity and machine packages.
	exempt := loadFixture(t, "ldmprov", cfg.ModulePath+"/internal/machine")
	if got := v3.Check(exempt); len(got) != 0 {
		t.Errorf("exempt package still flagged: %v", got)
	}
}

// TestHotPathAlloc covers the opt-in allocation lint: every allocation
// shape inside a marked loop is flagged (make, helper allocation with
// chain, growing append with a mechanical fix, map traffic, interface
// boxing) while preallocated appends and unmarked loops stay silent.
func TestHotPathAlloc(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "hotalloc", cfg.ModulePath+"/internal/fixture/hotalloc")
	rule := HotPathAllocRule{Sums: testSummarizer(t)}

	got := rule.Check(p)
	checkFindings(t, got, []expect{
		{"hot-path-alloc", "hotalloc.go", 20, "heap allocation (make)"},
		{"hot-path-alloc", "hotalloc.go", 31, "call to hotalloc.scratch allocates with make"},
		{"hot-path-alloc", "hotalloc.go", 42, "append to out may grow"},
		{"hot-path-alloc", "hotalloc.go", 52, "map write"},
		{"hot-path-alloc", "hotalloc.go", 61, "boxes it on the heap"},
	})

	for _, f := range got {
		if f.Pos.Line != 42 {
			continue
		}
		if f.Fix == nil {
			t.Fatalf("growing append carries no fix: %s", f)
		}
		if want := "out := make([]float64, 0, len(xs))"; len(f.Fix.Edits) != 1 || f.Fix.Edits[0].NewText != want {
			t.Errorf("fix = %+v, want single edit to %q", f.Fix.Edits, want)
		}
	}
}

// TestSummaryDiskCache proves summaries survive the disk round trip
// and that the key rolls when a (transitive) callee changes.
func TestSummaryDiskCache(t *testing.T) {
	_, cfg := fixtureLoader(t)
	dir := t.TempDir()

	s1 := NewSummarizer(cfg)
	s1.SetCacheDir(dir)
	table := s1.byPath(cfg.ModulePath + "/internal/ldm")
	if len(table) == 0 {
		t.Fatal("no summaries for internal/ldm")
	}
	key := cfg.ModulePath + "/internal/ldm.Level1StreamChunk"
	if sum := table[key]; sum == nil || !sum.LDMReturn {
		t.Fatalf("Level1StreamChunk summary = %+v, want LDMReturn", table[key])
	}

	entries, err := filepath.Glob(filepath.Join(dir, "sum-*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no summary cache entries written (err=%v)", err)
	}

	// A second summarizer sharing the cache dir serves from disk: the
	// loaded tables match the computed ones.
	s2 := NewSummarizer(cfg)
	s2.SetCacheDir(dir)
	table2 := s2.byPath(cfg.ModulePath + "/internal/ldm")
	if sum := table2[key]; sum == nil || !sum.LDMReturn {
		t.Fatalf("cache-served summary = %+v, want LDMReturn", table2[key])
	}

	// The disk key covers the transitive closure: internal/ldm imports
	// internal/machine, so the machine package's sources are part of
	// the key material.
	k1, err := s1.diskKey(filepath.Join(cfg.ModuleRoot, "internal", "ldm"))
	if err != nil {
		t.Fatal(err)
	}
	lines, err := s1.hasher.closure(filepath.Join(cfg.ModuleRoot, "internal", "ldm"))
	if err != nil {
		t.Fatal(err)
	}
	sawMachine := false
	for _, l := range lines {
		if strings.HasPrefix(l, "internal/machine/") {
			sawMachine = true
		}
	}
	if !sawMachine {
		t.Errorf("closure for internal/ldm does not include internal/machine files — callee edits would not invalidate callers")
	}
	if k2, _ := s1.diskKey(filepath.Join(cfg.ModuleRoot, "internal", "machine")); k1 == k2 {
		t.Errorf("distinct packages share a summary cache key")
	}
}
