package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAllocRule keeps the marked hot loops of the assignment and
// update kernels allocation-free. The ROADMAP's blocked-kernel
// direction (communication-avoiding kernel k-means) assumes the inner
// per-sample loops run at memory speed: a heap allocation, a map
// lookup, or an interface boxing inside them turns a
// million-iteration kernel into a GC benchmark. The rule is opt-in —
// a loop participates only when its `for`/`range` line (or the line
// above) carries a `//swlint:hot` marker — so cold setup loops stay
// unconstrained and a marker documents the performance contract in
// source.
//
// Inside a marked loop (nested blocks and loops included) the rule
// flags:
//
//   - make/new and slice/map composite literals (and &T{...}),
//   - closures (a func literal allocates its environment),
//   - `append` to a slice with no capacity-bearing make() before the
//     loop — preallocated appends are blessed, and the mechanical fix
//     rewrites `var xs []T` into `xs := make([]T, 0, bound)` when the
//     loop bound is statically evident,
//   - map index writes, reads in assignments, and delete() — maps
//     hash and may allocate on insert,
//   - interface boxing: a concrete-typed argument passed to an
//     interface-typed parameter,
//   - calls to module-local functions whose summaries allocate, with
//     the call chain in the message (summaries enabled).
//
// Deliberate allocations (error paths, once-per-convergence slow
// paths) carry a //swlint:ignore hot-path-alloc -- <reason> at the
// offending line.
type HotPathAllocRule struct {
	// Sums enables the allocating-callee check; nil limits the rule to
	// direct allocations.
	Sums *Summarizer
}

// ID implements Rule.
func (HotPathAllocRule) ID() string { return "hot-path-alloc" }

// Doc implements Rule.
func (HotPathAllocRule) Doc() string {
	return "loops marked //swlint:hot must not allocate: no make/new/closures, growing appends, map operations, or interface boxing"
}

// hotMarker is the loop opt-in comment.
const hotMarker = "swlint:hot"

// Check implements Rule.
func (r HotPathAllocRule) Check(p *Package) []Finding {
	hot := hotMarkerLines(p)
	if len(hot) == 0 {
		return nil
	}
	var out []Finding
	files := newFileSources(p)
	for _, fn := range packageFuncs(p) {
		if fn.body == nil {
			continue
		}
		fnScope := fn
		g := newFlowGraph(p, fn)
		ast.Inspect(fn.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != fnScope.node {
				return false // literals are their own funcUnits
			}
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			pos := p.Fset.Position(n.Pos())
			lines := hot[pos.Filename]
			if lines == nil || !(lines[pos.Line] || lines[pos.Line-1]) {
				return true
			}
			out = append(out, r.checkHotLoop(p, g, files, fnScope, n.(ast.Stmt), body)...)
			return true // nested marked loops are found and checked too
		})
	}
	return out
}

// hotMarkerLines collects the //swlint:hot marker lines per file.
func hotMarkerLines(p *Package) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != hotMarker && !strings.HasPrefix(text, hotMarker+" ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// checkHotLoop walks one marked loop body and flags every allocation
// shape. Nested function literals are flagged as closure allocations
// and not descended into: their bodies execute under a different
// activation.
func (r HotPathAllocRule) checkHotLoop(p *Package, g *flowGraph, files *fileSources, fn funcUnit, loop ast.Stmt, body *ast.BlockStmt) []Finding {
	var out []Finding
	flagged := make(map[token.Pos]bool)
	flag := func(pos token.Pos, what, hint string) {
		if flagged[pos] {
			return // the write cases fire before Inspect reaches the index child
		}
		flagged[pos] = true
		out = append(out, Finding{
			RuleID:  r.ID(),
			Pos:     p.Fset.Position(pos),
			Message: what + " inside a //swlint:hot loop; " + hint,
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n.Pos(), "closure allocation", "predeclare the function or hoist the closure out of the loop")
			return false
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					flag(n.Pos(), "composite-literal allocation", "hoist the literal out of the loop and reuse it")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					flag(n.Pos(), "heap allocation (&composite literal)", "hoist the value out of the loop and reuse it")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapValue(p, idx.X) {
					flag(idx.Pos(), "map write", "maps hash and may allocate on insert — use a dense slice keyed by index")
				}
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if v := appendTarget(p, lhs, rhs); v != nil && !r.preallocated(p, g, v, loop) {
					f := Finding{
						RuleID: r.ID(),
						Pos:    p.Fset.Position(rhs.Pos()),
						Message: "append to " + v.Name() + " may grow and reallocate inside a //swlint:hot loop; " +
							"preallocate the slice with make(..., 0, n) before the loop",
						Fix: r.preallocFix(p, files, fn, v, loop),
					}
					out = append(out, f)
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := n.X.(*ast.IndexExpr); ok && isMapValue(p, idx.X) {
				flag(idx.Pos(), "map write", "maps hash and may allocate on insert — use a dense slice keyed by index")
			}
		case *ast.IndexExpr:
			// Reads: map indexing hashes on every access.
			if isMapValue(p, n.X) {
				flag(n.Pos(), "map access", "maps hash on every access — use a dense slice keyed by index")
				return false
			}
		case *ast.CallExpr:
			switch builtinName(p, n) {
			case "make":
				flag(n.Pos(), "heap allocation (make)", "hoist the buffer out of the loop and reuse it")
				return true
			case "new":
				flag(n.Pos(), "heap allocation (new)", "hoist the value out of the loop and reuse it")
				return true
			case "append":
				return true // handled at the assignment
			case "delete":
				flag(n.Pos(), "map delete", "maps hash and may allocate — use a dense slice keyed by index")
				return true
			case "":
			default:
				return true
			}
			out = append(out, r.boxedArgs(p, n)...)
			if r.Sums != nil {
				if sum := r.Sums.ForCall(p, n); sum != nil && len(sum.Allocs) > 0 {
					a := sum.Allocs[0]
					msg := "call to " + sum.Name + " " + a.Detail
					if a.Chain != "" {
						msg += " (via " + a.Chain + ")"
					}
					msg += " inside a //swlint:hot loop; hoist the allocation or pass scratch buffers in"
					out = append(out, Finding{RuleID: r.ID(), Pos: p.Fset.Position(n.Pos()), Message: msg})
				}
			}
		}
		return true
	})
	return out
}

// boxedArgs flags concrete-typed arguments passed to interface-typed
// parameters — each such call boxes the value on the heap.
func (r HotPathAllocRule) boxedArgs(p *Package, call *ast.CallExpr) []Finding {
	t := p.Info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []Finding
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		out = append(out, Finding{
			RuleID: r.ID(),
			Pos:    p.Fset.Position(arg.Pos()),
			Message: "passing a concrete value to an interface parameter boxes it on the heap " +
				"inside a //swlint:hot loop; use a concrete-typed helper or hoist the call",
		})
	}
	return out
}

// preallocated reports whether the slice variable's sources include a
// capacity-bearing make() positioned before the loop.
func (r HotPathAllocRule) preallocated(p *Package, g *flowGraph, v *types.Var, loop ast.Stmt) bool {
	for _, src := range g.sources[v] {
		call, ok := src.(*ast.CallExpr)
		if !ok {
			continue
		}
		if builtinName(p, call) == "make" && len(call.Args) >= 3 && call.Pos() < loop.Pos() {
			return true
		}
	}
	return false
}

// preallocFix builds the mechanical preallocation hint: when the
// un-preallocated append target is declared `var xs []T` before the
// loop and the loop bound is statically evident (`for i := 0; i < n;
// i++` with pure n, or `range X` with pure X), rewrite the declaration
// into `xs := make([]T, 0, bound)`. Returns nil when any piece is not
// mechanical; the finding stays manual.
func (r HotPathAllocRule) preallocFix(p *Package, files *fileSources, fn funcUnit, v *types.Var, loop ast.Stmt) *Fix {
	bound := loopBoundText(p, files, loop)
	if bound == "" {
		return nil
	}
	spec, decl := sliceVarDecl(p, fn, v, loop)
	if spec == nil {
		return nil
	}
	fset := p.Fset
	src, err := files.source(fset.Position(decl.Pos()).Filename)
	if err != nil {
		return nil
	}
	start := fset.Position(decl.Pos()).Offset
	end := fset.Position(decl.End()).Offset
	tstart := fset.Position(spec.Type.Pos()).Offset
	tend := fset.Position(spec.Type.End()).Offset
	if end > len(src) || tend > len(src) {
		return nil
	}
	typeText := string(src[tstart:tend])
	return &Fix{
		Message: "preallocate " + v.Name() + " with the loop bound as capacity",
		Edits: []TextEdit{{
			Filename: fset.Position(decl.Pos()).Filename,
			Start:    start,
			End:      end,
			NewText:  v.Name() + " := make(" + typeText + ", 0, " + bound + ")",
		}},
	}
}

// loopBoundText renders the loop's static iteration bound as source
// text, or "" when the bound is not mechanical.
func loopBoundText(p *Package, files *fileSources, loop ast.Stmt) string {
	exprText := func(e ast.Expr) string {
		pos := p.Fset.Position(e.Pos())
		end := p.Fset.Position(e.End())
		src, err := files.source(pos.Filename)
		if err != nil || end.Offset > len(src) {
			return ""
		}
		return string(src[pos.Offset:end.Offset])
	}
	switch loop := loop.(type) {
	case *ast.RangeStmt:
		if !pureExpr(loop.X) {
			return ""
		}
		t := p.Info.TypeOf(loop.X)
		if t == nil {
			return ""
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Array:
			if text := exprText(loop.X); text != "" {
				return "len(" + text + ")"
			}
		}
	case *ast.ForStmt:
		// `for i := 0; i < n; i++` with pure n.
		init, ok := loop.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return ""
		}
		iv, ok := init.Lhs[0].(*ast.Ident)
		if !ok {
			return ""
		}
		if lit, ok := init.Rhs[0].(*ast.BasicLit); !ok || lit.Value != "0" {
			return ""
		}
		cond, ok := loop.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS || !pureExpr(cond.Y) {
			return ""
		}
		cid, ok := cond.X.(*ast.Ident)
		if !ok || p.Info.Uses[cid] != p.Info.Defs[iv] {
			return ""
		}
		return exprText(cond.Y)
	}
	return ""
}

// sliceVarDecl finds the `var xs []T` declaration statement of v inside
// the function, positioned before the loop, with no initializer.
func sliceVarDecl(p *Package, fn funcUnit, v *types.Var, loop ast.Stmt) (*ast.ValueSpec, *ast.GenDecl) {
	var spec *ast.ValueSpec
	var decl *ast.GenDecl
	ast.Inspect(fn.node, func(n ast.Node) bool {
		if spec != nil {
			return false
		}
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR || len(gd.Specs) != 1 || gd.Pos() >= loop.Pos() {
			return true
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || len(vs.Values) != 0 || vs.Type == nil {
			return true
		}
		if p.Info.Defs[vs.Names[0]] != v {
			return true
		}
		if _, ok := vs.Type.(*ast.ArrayType); !ok {
			return true
		}
		spec, decl = vs, gd
		return false
	})
	return spec, decl
}
