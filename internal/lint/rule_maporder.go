package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderRule flags `range` over a map inside a simulation package
// when the loop body has an order-sensitive effect: Go randomizes map
// iteration order per run, so any such loop whose effect reaches
// simulation state, an exported artifact or a virtual clock breaks the
// byte-identical-replay contract. Order-sensitive effects are:
//
//   - writes to package-level variables or struct fields (unless the
//     destination is the map's own entry, reached through the range
//     value or indexed by the range key — those are per-entry and
//     order-insensitive),
//   - appends to slices,
//   - channel sends,
//   - virtual-clock advancement (any vclock.Clock method call),
//   - communicator traffic (any mpi.Comm method call).
//
// The one blessed pattern is key collection: a body that only appends
// the keys (or derived values) to a local slice which is then passed
// to a total-order sort — sort.Ints, sort.Strings, sort.Float64s or
// slices.Sort — before use. sort.Slice does not qualify: whether its
// comparator is total cannot be checked statically, and an unstable
// sort under a partial order is the same nondeterminism again.
type MapOrderRule struct {
	// SimPackages scopes the rule, like no-wallclock.
	SimPackages []string
	// VClockPackage and CommPackage locate the virtual-clock and
	// communicator types whose use inside a map range is order-sensitive.
	VClockPackage string
	CommPackage   string
	// Sums, when non-nil, makes calls transparent: a call to a helper
	// whose summary carries shared writes or order-sensitive effects
	// (channel sends, clock advancement, communicator traffic) is an
	// effect of the range body, reported with the call chain. Nil
	// restores the v2 intraprocedural behavior.
	Sums *Summarizer
}

// ID implements Rule.
func (MapOrderRule) ID() string { return "map-order" }

// Doc implements Rule.
func (MapOrderRule) Doc() string {
	return "map iteration with order-sensitive effects in simulation packages must sort keys first"
}

// mapEffect is one order-sensitive effect found in a range body.
type mapEffect struct {
	pos  token.Pos
	kind string
	// appendTo is the local slice variable receiving an append, when
	// the effect is an append eligible for the sorted-collection
	// exemption.
	appendTo *types.Var
}

// Check implements Rule.
func (r MapOrderRule) Check(p *Package) []Finding {
	if !hasSuffixPath(p.Path, r.SimPackages) {
		return nil
	}
	var out []Finding
	files := newFileSources(p)
	for _, fn := range packageFuncs(p) {
		if fn.body == nil {
			continue
		}
		g := newFlowGraph(p, fn)
		fnScope := fn
		var cg *cfgGraph // built on first order-sensitive loop
		ast.Inspect(fn.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != fnScope.node {
				return false // literals are their own funcUnits
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if rng.Key == nil {
				// `for range m` runs identical iterations; order cannot
				// reach the result.
				return true
			}
			effects := r.rangeEffects(p, g, rng)
			if len(effects) == 0 {
				return true
			}
			if cg == nil {
				cg = buildCFG(p, fnScope)
			}
			if allSortedCollections(p, cg, rng, effects) {
				return true
			}
			f := Finding{
				RuleID: r.ID(),
				Pos:    p.Fset.Position(rng.For),
				Message: fmt.Sprintf("map iteration order reaches simulation state (%s); "+
					"iterate sorted keys, or collect into a slice and apply a total-order sort "+
					"(sort.Ints/Strings/Float64s, slices.Sort)", effects[0].kind),
			}
			f.Fix = r.sortedKeysFix(p, files, fnScope, rng)
			out = append(out, f)
			return true
		})
	}
	return out
}

// rangeEffects scans one map-range body for order-sensitive effects.
func (r MapOrderRule) rangeEffects(p *Package, g *flowGraph, rng *ast.RangeStmt) []mapEffect {
	var effects []mapEffect
	perEntry := func(e ast.Expr) bool {
		// An expression reached through the range key or value denotes
		// the entry itself: writing there is per-entry, not ordered.
		return g.derivesFrom(e, func(src ast.Expr) bool {
			return src == rng.X || isRangeVarUse(p, src, rng)
		})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					continue
				}
				if e := r.writeEffect(p, g, rng, lhs, perEntry); e != nil {
					effects = append(effects, *e)
					continue
				}
				// Appends: s = append(s, ...) in any assignment form.
				if i < len(n.Rhs) || len(n.Rhs) == 1 {
					rhs := n.Rhs[min(i, len(n.Rhs)-1)]
					if v := appendTarget(p, lhs, rhs); v != nil && !declaredWithin(v, rng) {
						effects = append(effects, mapEffect{pos: lhs.Pos(), kind: "append to slice " + v.Name(), appendTo: v})
					}
				}
			}
		case *ast.IncDecStmt:
			if e := r.writeEffect(p, g, rng, n.X, perEntry); e != nil {
				effects = append(effects, *e)
			}
		case *ast.SendStmt:
			effects = append(effects, mapEffect{pos: n.Arrow, kind: "channel send"})
		case *ast.CallExpr:
			if r.VClockPackage != "" && receiverNamed(p, n, r.VClockPackage, "Clock") {
				effects = append(effects, mapEffect{pos: n.Pos(), kind: "virtual-clock advancement"})
			} else if r.CommPackage != "" && receiverNamed(p, n, r.CommPackage, "Comm") {
				effects = append(effects, mapEffect{pos: n.Pos(), kind: "communicator operation"})
			} else if r.Sums != nil {
				if sum := r.Sums.ForCall(p, n); sum != nil {
					if kind := summaryOrderEffect(sum); kind != "" {
						effects = append(effects, mapEffect{pos: n.Pos(), kind: kind})
					}
				}
			}
		}
		return true
	})
	return effects
}

// writeEffect classifies an assignment destination as order-sensitive
// state, or nil when it is loop-local or per-entry.
func (r MapOrderRule) writeEffect(p *Package, g *flowGraph, rng *ast.RangeStmt,
	lhs ast.Expr, perEntry func(ast.Expr) bool) *mapEffect {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		v, ok := p.Info.Uses[lhs].(*types.Var)
		if !ok || declaredWithin(v, rng) {
			return nil
		}
		if v.Parent() == v.Pkg().Scope() {
			return &mapEffect{pos: lhs.Pos(), kind: "write to package variable " + v.Name()}
		}
		return nil // plain local writes are out of model (documented limit)
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if perEntry(lhs.X) {
				return nil
			}
			if id, ok := lhs.X.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && declaredWithin(v, rng) {
					return nil
				}
			}
			return &mapEffect{pos: lhs.Pos(), kind: "write to struct field " + sel.Obj().Name()}
		}
		if v, ok := p.Info.Uses[lhs.Sel].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return &mapEffect{pos: lhs.Pos(), kind: "write to package variable " + v.Name()}
		}
		return nil
	case *ast.IndexExpr:
		if perEntry(lhs.Index) || perEntry(lhs.X) {
			return nil // deterministic destination keyed by the entry
		}
		return &mapEffect{pos: lhs.Pos(), kind: "order-dependent indexed write"}
	case *ast.StarExpr:
		if perEntry(lhs.X) {
			return nil
		}
		return &mapEffect{pos: lhs.Pos(), kind: "write through pointer"}
	}
	return nil
}

// summaryOrderEffect renders a callee summary's first order-sensitive
// behavior as an effect description carrying the call chain, or "" for
// a callee the summaries consider order-clean. Allocation facts do not
// count: allocating inside a map range is order-insensitive.
func summaryOrderEffect(sum *FuncSummary) string {
	var use *EffectUse
	if len(sum.SharedWrites) > 0 {
		use = &sum.SharedWrites[0]
	} else if len(sum.Effects) > 0 {
		use = &sum.Effects[0]
	}
	if use == nil {
		return ""
	}
	kind := "call to " + sum.Name + " which " + use.Detail
	if use.Chain != "" {
		kind += " (via " + use.Chain + ")"
	}
	return kind
}

// isRangeVarUse reports whether e is a use of the range's key or value
// variable.
func isRangeVarUse(p *Package, e ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	for _, decl := range []ast.Expr{rng.Key, rng.Value} {
		if did, ok := decl.(*ast.Ident); ok && p.Info.Defs[did] == obj {
			return true
		}
	}
	return false
}

// allSortedCollections reports whether every effect is an append to a
// local slice that a total-order sort fixes up on every path out of
// the loop. The CFG fact replaces the v3 positional check: a sort
// behind a condition no longer blesses the loop (some path escapes
// unsorted), while a sort reached only via an enclosing loop's back
// edge now does.
func allSortedCollections(p *Package, g *cfgGraph, rng *ast.RangeStmt, effects []mapEffect) bool {
	for _, e := range effects {
		if e.appendTo == nil || !g.sortedOnAllPaths(p, e.appendTo, rng) {
			return false
		}
	}
	return true
}

// appendTarget matches `lhs = append(lhs, ...)` and returns the slice
// variable, or nil.
func appendTarget(p *Package, lhs, rhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if u, ok := p.Info.Uses[first].(*types.Var); !ok || u != v {
		return nil
	}
	return v
}

// sortKeyFuncs maps fixable key types to their total-order sort call.
var sortKeyFuncs = map[string]string{
	"int":     "sort.Ints",
	"string":  "sort.Strings",
	"float64": "sort.Float64s",
}

// sortedKeysFix builds the mechanical sorted-key rewrite
//
//	for k, v := range m { body }
//
// into
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.FN(keys)
//	for _, k := range keys {
//		v := m[k]
//		body
//	}
//
// when the pattern is safely rewriteable: plain int/string/float64 key
// type, a pure (identifier/selector) map expression, := range form,
// and no label on the loop. It returns nil otherwise and the finding
// stays manual.
func (r MapOrderRule) sortedKeysFix(p *Package, files *fileSources, fn funcUnit, rng *ast.RangeStmt) *Fix {
	if rng.Tok != token.DEFINE {
		return nil
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	var valID *ast.Ident
	if rng.Value != nil {
		v, ok := rng.Value.(*ast.Ident)
		if !ok {
			return nil
		}
		valID = v
	}
	t := p.Info.TypeOf(rng.X)
	mt, ok := t.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	keyType := types.TypeString(mt.Key(), nil)
	sortFn, ok := sortKeyFuncs[keyType]
	if !ok {
		return nil
	}
	if !pureExpr(rng.X) || isLabeled(p, rng) {
		return nil
	}
	src, err := files.source(p.Fset.Position(rng.Pos()).Filename)
	if err != nil {
		return nil
	}

	fset := p.Fset
	start := fset.Position(rng.Pos()).Offset
	end := fset.Position(rng.End()).Offset
	bodyStart := fset.Position(rng.Body.Lbrace).Offset + 1
	bodyEnd := fset.Position(rng.Body.Rbrace).Offset
	if bodyEnd > len(src) || end > len(src) {
		return nil
	}
	mapText := string(src[fset.Position(rng.X.Pos()).Offset:fset.Position(rng.X.End()).Offset])
	bodyText := string(src[bodyStart:bodyEnd])

	keys := freshName("keys", fn)
	keyName := keyID.Name
	if keyName == "_" {
		keyName = freshName("key", fn)
	}
	indent := strings.Repeat("\t", fset.Position(rng.Pos()).Column-1)

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keys, keyType, mapText)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, keyName, mapText)
	fmt.Fprintf(&b, "%s\t%s = append(%s, %s)\n", indent, keys, keys, keyName)
	fmt.Fprintf(&b, "%s}\n", indent)
	fmt.Fprintf(&b, "%s%s(%s)\n", indent, sortFn, keys)
	fmt.Fprintf(&b, "%sfor _, %s := range %s {", indent, keyName, keys)
	if valID != nil && valID.Name != "_" && identUsed(p, rng.Body, valID) {
		fmt.Fprintf(&b, "\n%s\t%s := %s[%s]", indent, valID.Name, mapText, keyName)
	}
	b.WriteString(bodyText)
	b.WriteString("}")

	fix := &Fix{
		Message: "iterate the map's keys in sorted order",
		Edits: []TextEdit{{
			Filename: fset.Position(rng.Pos()).Filename,
			Start:    start,
			End:      end,
			NewText:  b.String(),
		}},
	}
	if imp := addImportEdit(p, fset, rng, "sort", src); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	}
	return fix
}

// pureExpr reports whether e is a side-effect-free expression safe to
// evaluate more than once: an identifier or a selector chain.
func pureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return pureExpr(e.X)
	case *ast.ParenExpr:
		return pureExpr(e.X)
	}
	return false
}

// isLabeled reports whether the statement is the target of a label
// (rewriting it would re-attach the label to the key-collection loop).
func isLabeled(p *Package, stmt ast.Stmt) bool {
	for _, f := range p.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if l, ok := n.(*ast.LabeledStmt); ok && l.Stmt == stmt {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// freshName returns base, extended with underscores until it collides
// with no identifier in the function.
func freshName(base string, fn funcUnit) string {
	used := make(map[string]bool)
	ast.Inspect(fn.node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	name := base
	for used[name] {
		name += "_"
	}
	return name
}

// identUsed reports whether the declared identifier's object is used
// anywhere under root.
func identUsed(p *Package, root ast.Node, decl *ast.Ident) bool {
	obj := p.Info.Defs[decl]
	if obj == nil {
		return false
	}
	used := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// addImportEdit returns the edit inserting an import of path into the
// file containing node, or nil when already imported. The insertion
// keeps the first import group's alphabetical order.
func addImportEdit(p *Package, fset *token.FileSet, node ast.Node, path string, src []byte) *TextEdit {
	var file *ast.File
	for _, f := range p.Files {
		if f.Pos() <= node.Pos() && node.Pos() < f.End() {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	for _, imp := range file.Imports {
		if importPath(imp) == path {
			return nil
		}
	}
	quoted := `"` + path + `"`
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if !gd.Lparen.IsValid() {
			// Single-spec import: rewrite `import "x"` to a block.
			if len(gd.Specs) != 1 {
				return nil
			}
			spec := gd.Specs[0].(*ast.ImportSpec)
			old := string(src[fset.Position(spec.Pos()).Offset:fset.Position(spec.End()).Offset])
			lines := []string{old, quoted}
			if path < importPath(spec) {
				lines = []string{quoted, old}
			}
			return &TextEdit{
				Filename: fset.Position(gd.Pos()).Filename,
				Start:    fset.Position(gd.Pos()).Offset,
				End:      fset.Position(gd.End()).Offset,
				NewText:  "import (\n\t" + lines[0] + "\n\t" + lines[1] + "\n)",
			}
		}
		// Insert before the first path sorting after ours, else at the
		// end of the group.
		insertAt := fset.Position(gd.Rparen).Offset
		for _, s := range gd.Specs {
			spec := s.(*ast.ImportSpec)
			if importPath(spec) > path {
				insertAt = fset.Position(spec.Pos()).Offset
				return &TextEdit{
					Filename: fset.Position(gd.Pos()).Filename,
					Start:    insertAt,
					End:      insertAt,
					NewText:  quoted + "\n\t",
				}
			}
		}
		return &TextEdit{
			Filename: fset.Position(gd.Pos()).Filename,
			Start:    insertAt,
			End:      insertAt,
			NewText:  "\t" + quoted + "\n",
		}
	}
	return nil
}
