package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a checked-in ledger of known findings that lets a
// new rule land while its backlog is burned down, without suppressing
// anything in source. A baseline entry matches a finding by rule, file
// (module-root-relative) and message — deliberately NOT by line, so
// unrelated edits above a known finding do not break CI. Matching is
// multiset: two identical findings need two entries. Every entry
// carries a mandatory reason, mirroring the suppression policy: the
// reason is the reviewable claim about why the finding is tolerated.
//
// Entries that match no finding are stale; Filter reports them so the
// ledger shrinks as the backlog is fixed.

// BaselineFile is the conventional baseline filename at the module root.
const BaselineFile = ".swlint-baseline.json"

// BaselineEntry is one tolerated finding.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
	Reason  string `json:"reason"`
}

// Baseline is the checked-in set of tolerated findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so fresh checkouts work before the first
// -update-baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{}, nil
		}
		return nil, err
	}
	b, err := ParseBaseline(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// ParseBaseline decodes and validates baseline JSON: every entry must
// carry rule, file, message and a non-blank reason. Factored out of
// LoadBaseline so the validation logic is fuzzable on raw bytes.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline: %w", err)
	}
	for i, e := range b.Entries {
		if e.Rule == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("entry %d is missing rule, file, or message", i)
		}
		if strings.TrimSpace(e.Reason) == "" {
			return nil, fmt.Errorf("entry %d (%s in %s) has no reason; baseline entries must say why the finding is tolerated", i, e.Rule, e.File)
		}
	}
	return &b, nil
}

// baselineKey identifies a finding for baseline matching.
func baselineKey(rule, file, message string) string {
	return rule + "\x00" + filepath.ToSlash(file) + "\x00" + message
}

// relFile renders a finding's filename relative to the module root.
func relFile(filename, moduleRoot string) string {
	if moduleRoot != "" {
		if rel, err := filepath.Rel(moduleRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// Filter removes findings covered by the baseline (multiset: each
// entry absorbs one finding) and returns the survivors plus the stale
// entries that matched nothing. Bad-suppress and unused-suppress
// findings are never baselined — they are findings about the
// suppression ledger itself and must be fixed, not deferred.
func (b *Baseline) Filter(findings []Finding, moduleRoot string) (kept []Finding, stale []BaselineEntry) {
	budget := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[baselineKey(e.Rule, e.File, e.Message)]++
	}
	for _, f := range findings {
		if f.RuleID != BadSuppressID && f.RuleID != UnusedSuppressID {
			k := baselineKey(f.RuleID, relFile(f.Pos.Filename, moduleRoot), f.Message)
			if budget[k] > 0 {
				budget[k]--
				continue
			}
		}
		kept = append(kept, f)
	}
	for _, e := range b.Entries {
		k := baselineKey(e.Rule, e.File, e.Message)
		if budget[k] > 0 {
			budget[k]--
			stale = append(stale, e)
		}
	}
	return kept, stale
}

// UpdateBaseline builds a fresh baseline from the current findings,
// carrying forward reasons from prior entries that still match and
// stamping new entries with reason — the justification the developer
// supplies for accepting the debt (the CLI's mandatory
// -baseline-reason). An empty reason falls back to a placeholder that
// must be edited before the file passes review.
func UpdateBaseline(prev *Baseline, findings []Finding, moduleRoot, reason string) *Baseline {
	reasons := make(map[string][]string)
	for _, e := range prev.Entries {
		k := baselineKey(e.Rule, e.File, e.Message)
		reasons[k] = append(reasons[k], e.Reason)
	}
	next := &Baseline{}
	for _, f := range findings {
		if f.RuleID == BadSuppressID || f.RuleID == UnusedSuppressID {
			continue
		}
		file := relFile(f.Pos.Filename, moduleRoot)
		k := baselineKey(f.RuleID, file, f.Message)
		entryReason := reason
		if entryReason == "" {
			entryReason = "TODO: justify or fix"
		}
		if rs := reasons[k]; len(rs) > 0 {
			entryReason = rs[0]
			reasons[k] = rs[1:]
		}
		next.Entries = append(next.Entries, BaselineEntry{
			Rule:    f.RuleID,
			File:    file,
			Message: f.Message,
			Reason:  entryReason,
		})
	}
	sort.Slice(next.Entries, func(i, j int) bool {
		a, b := next.Entries[i], next.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return next
}

// Write renders the baseline as stable, diff-friendly JSON. An empty
// baseline serializes as an explicit empty list, not null, so the
// checked-in file reads as "no tolerated findings".
func (b *Baseline) Write(w io.Writer) error {
	out := *b
	if out.Entries == nil {
		out.Entries = []BaselineEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// Save writes the baseline to path.
func (b *Baseline) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
