package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LDMCapacityRule keeps the paper's capacity constraints in one place.
// Which problem shapes fit which partition level is governed by the
// closed-form feasibility conditions of Section III (C1..C″3,
// d(1+2k)+k ≤ m·LDM and friends), implemented once in internal/ldm.
// Any function outside that package that allocates LDM buffers
// (ldm.NewAllocator) or reads the raw capacity (Spec.LDMBytesPerCPE)
// without routing through a central ldm.Check* feasibility call is
// re-deriving those conditions by hand — the exact class of drift this
// pass exists to prevent.
type LDMCapacityRule struct {
	// LDMPackage is the import path of the central capacity package.
	LDMPackage string
	// Exempt packages may use raw capacity directly: the capacity
	// package itself and the machine-description package that defines
	// the field.
	Exempt []string
}

// ID implements Rule.
func (LDMCapacityRule) ID() string { return "ldm-capacity" }

// Doc implements Rule.
func (LDMCapacityRule) Doc() string {
	return "LDM allocation and raw capacity reads must route through the central ldm.Check* feasibility checks"
}

// capacityField is the raw per-CPE scratchpad size on the machine
// spec; reading it outside the exempt packages is hand-rolled
// capacity arithmetic.
const capacityField = "LDMBytesPerCPE"

// Check implements Rule.
func (r LDMCapacityRule) Check(p *Package) []Finding {
	if p.Path == r.LDMPackage || hasSuffixPath(p.Path, r.Exempt) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			trigger := r.firstCapacityUse(p, fd)
			if trigger == nil {
				continue
			}
			if r.callsCentralCheck(p, fd) {
				continue
			}
			out = append(out, Finding{
				RuleID: r.ID(),
				Pos:    p.Fset.Position(trigger.Pos()),
				Message: "function " + fd.Name.Name + " uses raw LDM capacity without a central " +
					"feasibility check; call ldm.Check* first or move the arithmetic into " + r.LDMPackage,
			})
		}
	}
	return out
}

// firstCapacityUse returns the first node in the declaration that
// allocates LDM or reads the raw capacity field, or nil.
func (r LDMCapacityRule) firstCapacityUse(p *Package, fd *ast.FuncDecl) ast.Node {
	var trigger ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if trigger != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == r.LDMPackage && fn.Name() == "NewAllocator" {
					trigger = n
					return false
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name != capacityField {
				return true
			}
			if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.FieldVal &&
				sel.Obj().Name() == capacityField {
				trigger = n
				return false
			}
		}
		return true
	})
	return trigger
}

// callsCentralCheck reports whether the declaration calls one of the
// capacity package's feasibility checks (CheckLevel1, CheckLevel2,
// CheckLevel3, CheckLevel3Tiled, ...).
func (r LDMCapacityRule) callsCentralCheck(p *Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == r.LDMPackage &&
			strings.HasPrefix(fn.Name(), "Check") {
			found = true
			return false
		}
		return true
	})
	return found
}
