// Package lint implements swlint, the project's static-analysis pass.
//
// The simulator's correctness rests on invariants the Go compiler
// cannot see: virtual-clock determinism (no wall-clock or global
// randomness inside simulation packages), the paper's LDM capacity
// constraints (d(1+2k)+k ≤ m·LDM and friends, which must be checked
// centrally rather than re-derived by hand at every allocation site),
// tolerance-aware floating-point comparisons, mutex discipline on the
// shared state of the goroutine-per-unit substrates, and error
// wrapping that keeps ldm.ConstraintError and friends inspectable
// through errors.As. Each rule in this package mechanically enforces
// one of those invariants; docs/STATIC_ANALYSIS.md ties every rule to
// the paper section it protects.
//
// Beyond the per-file syntactic rules, the package carries a
// lightweight function-level dataflow engine (dataflow.go) and a
// call-graph-driven interprocedural summary layer (summary.go):
// bottom-up per-function summaries record transitively invoked
// collectives, rank and LDM-capacity taint through parameters and
// returns, package-variable writes, and allocation behavior, letting
// the semantic rules map-order, collective-match, goroutine-purity,
// ldm-provenance and hot-path-alloc report through helper calls with
// the call chain in the message. On top sits the tooling layer of a
// real analyzer: SARIF 2.1.0 export (sarif.go), a checked-in findings
// baseline (baseline.go), mechanical autofixes (fix.go) and a
// content-hash keyed result cache with parallel per-package analysis
// (cache.go); function summaries join the same on-disk cache, keyed so
// a callee edit invalidates its callers.
//
// The package is stdlib-only (go/parser + go/types with a source
// importer); go.mod stays dependency-free. Rules are unit-testable
// against fixture trees under testdata/, and every finding can be
// suppressed at the offending line with:
//
//	//swlint:ignore <rule>[,<rule>...] -- <reason>
//
// either on the same line or on the line directly above. The rule list
// and reason are mandatory; malformed and stale suppressions are
// themselves findings (bad-suppress, unused-suppress).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position. A finding may
// carry a mechanical Fix, applied only under the CLI's -fix flag.
type Finding struct {
	RuleID  string
	Pos     token.Position
	Message string
	Fix     *Fix
}

// String renders the finding in the conventional file:line:col form
// that editors and CI annotators understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.RuleID, f.Message)
}

// Rule is one project-specific check, run per package.
type Rule interface {
	// ID is the stable identifier used in output and in
	// //swlint:ignore comments.
	ID() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	// Check inspects one type-checked package and reports violations.
	Check(p *Package) []Finding
}

// Config controls which module is analyzed and how the rules are
// parameterized.
type Config struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path (the `module` line of
	// go.mod). Filled from go.mod by DefaultConfig.
	ModulePath string
	// SimPackages lists the import paths whose virtual-time
	// determinism must not be broken by wall clocks or global
	// randomness (rule no-wallclock).
	SimPackages []string
	// LDMPackage is the import path of the central capacity-check
	// package; CapacityExempt packages may touch raw LDM capacity
	// without routing through it (rule ldm-capacity).
	LDMPackage     string
	CapacityExempt []string
	// CommPackage and VClockPackage locate the communicator and
	// virtual-clock types for the dataflow rules (collective-match,
	// map-order).
	CommPackage   string
	VClockPackage string
	// DMAPackage hosts the transfer engine whose size arguments the
	// ldm-provenance rule checks.
	DMAPackage string
	// SchedPackage hosts the discrete-event scheduler whose Task.Park
	// protocol the lock-across-park and park-recheck rules enforce.
	SchedPackage string
	// Rules is the rule set to run. Empty means AllRules(cfg).
	Rules []Rule
}

// simPackageSuffixes is the default rule no-wallclock scope: the
// packages that together form the simulated machine. Everything that
// advances or reads time in these packages must do so through
// internal/vclock.
var simPackageSuffixes = []string{
	"internal/core",
	"internal/sw26010",
	"internal/mpi",
	"internal/regcomm",
	"internal/vclock",
	"internal/dma",
	"internal/netmodel",
	"internal/fault",
	"internal/obs",
	"internal/fattree",
	"internal/stream",
	"internal/sched",
}

// DefaultConfig locates go.mod at or above dir and returns the
// standard configuration for this repository's invariants.
func DefaultConfig(dir string) (Config, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		ModuleRoot:    root,
		ModulePath:    module,
		LDMPackage:    module + "/internal/ldm",
		CommPackage:   module + "/internal/mpi",
		VClockPackage: module + "/internal/vclock",
		DMAPackage:    module + "/internal/dma",
		SchedPackage:  module + "/internal/sched",
		CapacityExempt: []string{
			module + "/internal/ldm",
			module + "/internal/machine",
		},
	}
	for _, s := range simPackageSuffixes {
		cfg.SimPackages = append(cfg.SimPackages, module+"/"+s)
	}
	return cfg, nil
}

// AllRules returns the full rule set parameterized by cfg: the five
// syntactic rules, the eight semantic rules backed by a shared
// interprocedural summarizer and the CFG layer, and the two
// pseudo-rules the suppression machinery reports through.
func AllRules(cfg Config) []Rule {
	return allRules(cfg, NewSummarizer(cfg))
}

// allRules builds the rule set around one shared Summarizer, so the
// driver can wire its disk cache in before the rules are constructed.
func allRules(cfg Config, sums *Summarizer) []Rule {
	return []Rule{
		NoWallclockRule{SimPackages: cfg.SimPackages},
		FloatEqRule{},
		GuardedFieldRule{},
		ErrWrapRule{},
		LDMCapacityRule{LDMPackage: cfg.LDMPackage, Exempt: cfg.CapacityExempt},
		LDMProvenanceRule{LDMPackage: cfg.LDMPackage, DMAPackage: cfg.DMAPackage, Exempt: cfg.CapacityExempt, Sums: sums},
		MapOrderRule{SimPackages: cfg.SimPackages, VClockPackage: cfg.VClockPackage, CommPackage: cfg.CommPackage, Sums: sums},
		CollectiveMatchRule{CommPackage: cfg.CommPackage, Sums: sums},
		CollectiveOrderRule{CommPackage: cfg.CommPackage, Sums: sums},
		GoroutinePurityRule{SimPackages: cfg.SimPackages, Sums: sums},
		HotPathAllocRule{Sums: sums},
		LockAcrossParkRule{CommPackage: cfg.CommPackage, VClockPackage: cfg.VClockPackage, SchedPackage: cfg.SchedPackage, Sums: sums},
		ParkRecheckRule{SchedPackage: cfg.SchedPackage, Sums: sums},
		metaRule{id: BadSuppressID, doc: "suppressions must name rules and carry a reason: //swlint:ignore <rule> -- <reason>"},
		metaRule{id: UnusedSuppressID, doc: "suppressions that match no finding are stale and must be deleted"},
	}
}

// metaRule is a pseudo-rule: it produces no findings of its own (the
// suppression machinery emits them) but gives the ID a place in the
// rule listing and the SARIF rule table. Meta findings cannot be
// suppressed.
type metaRule struct{ id, doc string }

// ID implements Rule.
func (m metaRule) ID() string { return m.id }

// Doc implements Rule.
func (m metaRule) Doc() string { return m.doc }

// Check implements Rule.
func (m metaRule) Check(*Package) []Finding { return nil }

// Run loads the packages selected by patterns, runs every rule and
// returns the surviving (non-suppressed) findings sorted by position.
// Packages are analyzed in parallel; see RunWithOptions for caching.
func Run(cfg Config, patterns []string) ([]Finding, error) {
	return RunWithOptions(cfg, patterns, RunOptions{})
}

// CheckPackage runs the rules over one loaded package, filters
// suppressed findings, and appends the suppression machinery's own
// findings (bad-suppress for malformed comments, unused-suppress for
// stale ones — scoped to the rules actually run, so partial rule runs
// do not misreport).
func CheckPackage(rules []Rule, p *Package) []Finding {
	out, _ := checkPackageWithSupp(rules, p)
	return out
}

// checkPackageWithSupp is CheckPackage plus the package's per-rule
// suppression census, which the driver aggregates for -stats and the
// SARIF run properties.
func checkPackageWithSupp(rules []Rule, p *Package) ([]Finding, map[string]int) {
	sup := newSuppressions(p)
	ran := make(map[string]bool, len(rules))
	var out []Finding
	for _, r := range rules {
		ran[r.ID()] = true
		for _, f := range r.Check(p) {
			if sup.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
	}
	out = append(out, sup.report(ran)...)
	return out, sup.counts()
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.RuleID < b.RuleID
	})
}

// hasSuffixPath reports whether import path p equals one of the given
// paths or ends with "/"+path (so configs may use module-relative
// suffixes).
func hasSuffixPath(p string, paths []string) bool {
	for _, s := range paths {
		if p == s || strings.HasSuffix(p, "/"+s) {
			return true
		}
	}
	return false
}
