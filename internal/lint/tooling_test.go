package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestApplyFixes proves the -fix pipeline end to end on a copy of the
// fixes fixture: the sorted-key map rewrite and the %v → %w rewrite
// apply, the rewritten package type-checks, re-analysis is clean, and
// a second apply changes nothing (idempotency).
func TestApplyFixes(t *testing.T) {
	_, cfg := fixtureLoader(t)
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixes", "fixes.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "fixes.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	l, _ := fixtureLoader(t)
	rules := []Rule{
		MapOrderRule{SimPackages: cfg.SimPackages, VClockPackage: cfg.VClockPackage, CommPackage: cfg.CommPackage},
		ErrWrapRule{},
	}
	as := cfg.ModulePath + "/internal/core"
	p, err := l.LoadDir(dir, as)
	if err != nil {
		t.Fatal(err)
	}
	findings := CheckPackage(rules, p)
	fixable := 0
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if len(findings) != 2 || fixable != 2 {
		t.Fatalf("got %d findings (%d fixable), want 2 fixable; findings: %v", len(findings), fixable, findings)
	}

	changed, applied, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || len(applied) != 2 {
		t.Fatalf("ApplyFixes changed %v, applied %d findings; want 1 file, 2 findings", changed, len(applied))
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sort"`, "sort.Ints(", "%w"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}

	// The rewritten package must type-check and analyze clean.
	p2, err := l.LoadDir(dir, as)
	if err != nil {
		t.Fatalf("fixed source does not type-check: %v", err)
	}
	if rest := CheckPackage(rules, p2); len(rest) != 0 {
		t.Fatalf("findings survive the fix: %v", rest)
	}

	// Idempotency: a second -fix pass has nothing to apply.
	changed2, _, err := ApplyFixes(CheckPackage(rules, p2))
	if err != nil {
		t.Fatal(err)
	}
	if len(changed2) != 0 {
		t.Errorf("second fix pass rewrote %v, want nothing", changed2)
	}
}

// TestBaselineRoundTrip covers the baseline lifecycle: update from
// findings, multiset filtering, stale-entry detection, reason
// carry-forward and the on-disk round trip.
func TestBaselineRoundTrip(t *testing.T) {
	_, cfg := fixtureLoader(t)
	mk := func(rule, file, msg string, line int) Finding {
		f := Finding{RuleID: rule, Message: msg}
		f.Pos.Filename = filepath.Join(cfg.ModuleRoot, file)
		f.Pos.Line = line
		return f
	}
	findings := []Finding{
		mk("map-order", "internal/obs/metrics.go", "map iteration order reaches simulation state", 10),
		mk("map-order", "internal/obs/metrics.go", "map iteration order reaches simulation state", 40),
		mk(BadSuppressID, "internal/obs/metrics.go", "malformed suppression", 5),
	}

	prev := &Baseline{Entries: []BaselineEntry{{
		Rule:    "map-order",
		File:    "internal/obs/metrics.go",
		Message: "map iteration order reaches simulation state",
		Reason:  "pre-existing; tracked for cleanup",
	}}}
	b := UpdateBaseline(prev, findings, cfg.ModuleRoot, "accepted while the metrics rework lands")
	if len(b.Entries) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (bad-suppress is never baselined): %+v", len(b.Entries), b.Entries)
	}
	if b.Entries[0].Reason != "pre-existing; tracked for cleanup" {
		t.Errorf("first entry reason = %q, want carried-forward reason", b.Entries[0].Reason)
	}
	if b.Entries[1].Reason != "accepted while the metrics rework lands" {
		t.Errorf("second entry reason = %q, want the supplied -baseline-reason", b.Entries[1].Reason)
	}
	if noReason := UpdateBaseline(prev, findings, cfg.ModuleRoot, ""); noReason.Entries[1].Reason != "TODO: justify or fix" {
		t.Errorf("empty reason stamped %q, want the placeholder", noReason.Entries[1].Reason)
	}

	kept, stale := b.Filter(findings, cfg.ModuleRoot)
	if len(stale) != 0 {
		t.Errorf("fresh baseline reports stale entries: %+v", stale)
	}
	if len(kept) != 1 || kept[0].RuleID != BadSuppressID {
		t.Errorf("kept = %v, want only the bad-suppress finding", kept)
	}

	// One finding fixed: its entry goes stale, the other still filters.
	kept, stale = b.Filter(findings[1:], cfg.ModuleRoot)
	if len(kept) != 1 || len(stale) != 1 {
		t.Errorf("after fixing one finding: kept %d, stale %d; want 1 and 1", len(kept), len(stale))
	}

	path := filepath.Join(t.TempDir(), BaselineFile)
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Entries, b.Entries) {
		t.Errorf("round trip mismatch:\nsaved  %+v\nloaded %+v", b.Entries, loaded.Entries)
	}

	// A missing file is an empty baseline; a reason-free entry is an error.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(empty.Entries) != 0 {
		t.Errorf("missing baseline: entries=%d err=%v, want empty and nil", len(empty.Entries), err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"entries":[{"rule":"map-order","file":"a.go","message":"m","reason":" "}]}`), 0o644)
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("baseline entry without a reason loaded without error")
	}
}

// TestWriteSARIF checks the exported document's shape: schema header,
// rule table, result wiring and module-root-relative URIs.
func TestWriteSARIF(t *testing.T) {
	_, cfg := fixtureLoader(t)
	f := Finding{RuleID: "map-order", Message: "map iteration order reaches simulation state"}
	f.Pos.Filename = filepath.Join(cfg.ModuleRoot, "internal", "obs", "metrics.go")
	f.Pos.Line = 12
	f.Pos.Column = 2

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, []Finding{f}, AllRules(cfg), cfg.ModuleRoot, map[string]int{"float-eq": 3, "map-order": 1}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Properties struct {
				Suppressions map[string]int `json:"suppressions"`
			} `json:"properties"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "swlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(AllRules(cfg)) {
		t.Errorf("rule table has %d rules, want %d", len(run.Tool.Driver.Rules), len(AllRules(cfg)))
	}
	res := run.Results[0]
	if res.RuleID != "map-order" || res.Level != "error" {
		t.Errorf("result = %s/%s, want map-order/error", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/obs/metrics.go" {
		t.Errorf("uri = %q, want module-root-relative internal/obs/metrics.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 {
		t.Errorf("startLine = %d, want 12", loc.Region.StartLine)
	}
	if run.Properties.Suppressions["float-eq"] != 3 || run.Properties.Suppressions["map-order"] != 1 {
		t.Errorf("run properties suppressions = %v, want float-eq:3 map-order:1", run.Properties.Suppressions)
	}
}

// TestCacheRoundTrip runs the parallel driver twice over the suppress
// fixture with a shared cache directory and demands identical findings:
// the second run is served from disk and must not change results.
func TestCacheRoundTrip(t *testing.T) {
	_, cfg := fixtureLoader(t)
	pattern := filepath.Join("internal", "lint", "testdata", "src", "suppress")
	cacheDir := t.TempDir()

	var liveStats RunStats
	first, err := RunWithOptions(cfg, []string{pattern}, RunOptions{CacheDir: cacheDir, Stats: &liveStats})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("suppress fixture produced no findings; the cache test needs a non-empty result")
	}
	ents, err := os.ReadDir(cacheDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir not populated (entries=%d, err=%v)", len(ents), err)
	}

	var cachedStats RunStats
	second, err := RunWithOptions(cfg, []string{pattern}, RunOptions{CacheDir: cacheDir, Stats: &cachedStats})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached run differs from live run:\nlive   %v\ncached %v", first, second)
	}
	if len(liveStats.Suppressions) == 0 {
		t.Error("live run reported no suppressions; the suppress fixture should have some")
	}
	if !reflect.DeepEqual(liveStats.Suppressions, cachedStats.Suppressions) {
		t.Errorf("suppression census differs between live and cached runs:\nlive   %v\ncached %v",
			liveStats.Suppressions, cachedStats.Suppressions)
	}

	uncached, err := RunWithOptions(cfg, []string{pattern}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, uncached) {
		t.Errorf("cache-enabled run differs from uncached run:\nuncached %v\ncached   %v", uncached, first)
	}
}

// TestSimPackageScopeCoversVClockImporters is the scope meta-test: any
// package under internal/ that imports the virtual clock participates
// in simulated time and must be inside the determinism rules' scope.
func TestSimPackageScopeCoversVClockImporters(t *testing.T) {
	_, cfg := fixtureLoader(t)
	l := NewLoader(cfg.ModuleRoot, cfg.ModulePath)
	dirs, err := l.packageDirs(filepath.Join(cfg.ModuleRoot, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	h := newDepHasher(cfg.ModuleRoot, cfg.ModulePath)
	vclockDir := filepath.Join(cfg.ModuleRoot, "internal", "vclock")
	for _, dir := range dirs {
		if dir == vclockDir {
			continue
		}
		info := h.scan(dir)
		if info.scanErr != nil {
			t.Fatalf("scanning %s: %v", dir, info.scanErr)
		}
		imports := false
		for _, d := range info.deps {
			if d == vclockDir {
				imports = true
			}
		}
		if !imports {
			continue
		}
		path, err := l.pathOf(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !hasSuffixPath(path, cfg.SimPackages) {
			t.Errorf("%s imports internal/vclock but is missing from simPackageSuffixes; "+
				"the determinism rules (no-wallclock, map-order, goroutine-purity) do not cover it", path)
		}
	}
}

// TestSimPackageSuffixesResolve is the inverse meta-test: every
// simPackageSuffixes entry must name a package that actually exists
// with Go sources, so a rename or removal cannot leave a stale entry
// silently shrinking the determinism scope.
func TestSimPackageSuffixesResolve(t *testing.T) {
	_, cfg := fixtureLoader(t)
	for _, suffix := range simPackageSuffixes {
		dir := filepath.Join(cfg.ModuleRoot, filepath.FromSlash(suffix))
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("simPackageSuffixes entry %q does not resolve: %v", suffix, err)
			continue
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			t.Errorf("simPackageSuffixes entry %q has no Go sources", suffix)
		}
	}
}
