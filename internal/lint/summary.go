package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
)

// Interprocedural function summaries. The v2 dataflow engine stopped at
// call boundaries: a helper wrapping a collective, a size computed two
// calls away, or an impure callee was invisible to the semantic rules.
// This file adds the missing layer — a module-local call graph over
// go/types with bottom-up per-function summaries recording:
//
//   - collectives transitively invoked (with the call chain),
//   - rank taint through parameters and returns,
//   - shared-write and order-sensitive effect behavior,
//   - LDM-capacity provenance of returned sizes and transitive
//     ldm.Check* gating,
//   - allocation behavior (for the hot-path-alloc rule).
//
// Within one package, summaries are computed to a fixpoint so mutual
// recursion converges (entry lists are deduplicated by key and capped,
// and chains stop growing at chainLimit hops, which bounds the
// lattice). Across packages the import DAG guarantees termination:
// summarizing a package may demand its dependencies' summaries but
// never its own. Calls that resolve to nothing — interface methods,
// function values, packages outside the module — stay opaque exactly as
// in v2, so every propagated fact still traces to a definition the
// analysis saw.
//
// The Summarizer owns a private Loader world: rule fixtures pose as
// arbitrary import paths, so summaries for the package under analysis
// are computed from that package's own AST (keyed by its *types.Func
// objects), while cross-package callees resolve by real import path
// through the private loader. Summaries are JSON-serializable and join
// the on-disk cache keyed by the package's transitive module-local
// closure hash — editing a callee invalidates every caller's entry.

// CollectiveUse is one communicator collective a function reaches,
// directly or transitively.
type CollectiveUse struct {
	// Key is the collective-match key (see collectiveOps).
	Key string `json:"key"`
	// Name is the Comm method name actually invoked.
	Name string `json:"name"`
	// Chain is the call path from the summarized function to the
	// operation, " → "-separated; for a direct call it is the method
	// name itself.
	Chain string `json:"chain"`
}

// EffectUse is one behavior fact (shared write, order-sensitive effect
// or allocation) with the call chain that reaches it. An empty chain
// means the function does it directly.
type EffectUse struct {
	Detail string `json:"detail"`
	Chain  string `json:"chain,omitempty"`
}

// FuncSummary is the bottom-up summary of one function declaration.
type FuncSummary struct {
	// Key is the stable cross-package identifier:
	// pkgpath.[Type.]Name.
	Key string `json:"key"`
	// Name is the short display form pkg.[Type.]Name used in chains
	// and finding messages.
	Name string `json:"name"`

	// Collectives lists the communicator collectives the function
	// transitively enters.
	Collectives []CollectiveUse `json:"collectives,omitempty"`
	// SharedWrites lists writes to package-level variables, the
	// conservative core of impurity for goroutine-purity.
	SharedWrites []EffectUse `json:"shared_writes,omitempty"`
	// Effects lists order-sensitive effects for map-order: channel
	// sends, virtual-clock advancement, communicator traffic.
	Effects []EffectUse `json:"effects,omitempty"`
	// Allocs lists allocation behavior for hot-path-alloc.
	Allocs []EffectUse `json:"allocs,omitempty"`
	// Blocks lists the scheduler blocking points the function
	// transitively reaches outside the communicator: Task.Park and
	// Group.Sync (blocking collectives are already in Collectives).
	// The lock-across-park rule consults it at call sites.
	Blocks []EffectUse `json:"blocks,omitempty"`
	// ParksUnchecked lists Task.Park sites the function reaches with no
	// re-check loop of its own around them — the obligation to re-check
	// the guard transfers to the caller (rule park-recheck). A helper
	// that parks inside its own loop discharges the obligation and does
	// not propagate it.
	ParksUnchecked []EffectUse `json:"parks_unchecked,omitempty"`

	// RankReturn marks a function whose (basic-typed) return value
	// derives from the calling rank.
	RankReturn bool `json:"rank_return,omitempty"`
	// LDMReturn marks a function whose return value derives from the
	// internal/ldm capacity model.
	LDMReturn bool `json:"ldm_return,omitempty"`
	// ChecksLDM marks a function that calls an ldm.Check* feasibility
	// check, directly or transitively.
	ChecksLDM bool `json:"checks_ldm,omitempty"`
	// TaintParams are the parameter indices whose values flow into the
	// function's return values.
	TaintParams []int `json:"taint_params,omitempty"`
}

const (
	// maxSummaryEntries caps each summary list; combined with
	// key-based deduplication it bounds the fixpoint lattice.
	maxSummaryEntries = 8
	// chainLimit is the maximum number of hops rendered in a call
	// chain before it ends in an ellipsis (recursion safety).
	chainLimit = 5
	chainSep   = " → "
)

// mergeChain prefixes a callee's chain with the callee's short name,
// truncating at chainLimit hops so recursive cycles converge.
func mergeChain(callee, sub string) string {
	if sub == "" {
		return callee
	}
	if strings.Count(sub, chainSep) >= chainLimit || strings.HasSuffix(sub, "…") {
		return callee + chainSep + "…"
	}
	return callee + chainSep + sub
}

// Summarizer computes and caches function summaries for one module. It
// is safe for concurrent use from the parallel driver: per-path
// summaries are deduplicated singleflight-style, and the private loader
// serializes its own imports.
type Summarizer struct {
	root, module string
	commPkg      string
	vclockPkg    string
	ldmPkg       string
	dmaPkg       string
	schedPkg     string
	cacheDir     string

	loaderOnce sync.Once
	loader     *Loader
	hasher     *depHasher

	mu    sync.Mutex
	paths map[string]*sumEntry
	pkgs  map[*Package]map[*types.Func]*FuncSummary
}

// sumEntry is one per-path singleflight slot.
type sumEntry struct {
	done  chan struct{}
	byKey map[string]*FuncSummary
}

// NewSummarizer returns a summarizer for the module described by cfg.
func NewSummarizer(cfg Config) *Summarizer {
	return &Summarizer{
		root:      cfg.ModuleRoot,
		module:    cfg.ModulePath,
		commPkg:   cfg.CommPackage,
		vclockPkg: cfg.VClockPackage,
		ldmPkg:    cfg.LDMPackage,
		dmaPkg:    cfg.DMAPackage,
		schedPkg:  cfg.SchedPackage,
		hasher:    newDepHasher(cfg.ModuleRoot, cfg.ModulePath),
		paths:     make(map[string]*sumEntry),
		pkgs:      make(map[*Package]map[*types.Func]*FuncSummary),
	}
}

// SetCacheDir enables the on-disk summary store under dir (shared with
// the findings cache; summary entries are prefixed "sum-").
func (s *Summarizer) SetCacheDir(dir string) { s.cacheDir = dir }

// ForCall resolves the summary of the function a call statically
// invokes, or nil when the callee is unresolvable (interface method,
// function value), outside the module, or a communicator/virtual-clock
// method (those the rules model directly).
func (s *Summarizer) ForCall(p *Package, call *ast.CallExpr) *FuncSummary {
	return s.lookupCallee(p, call, nil)
}

// lookupCallee is ForCall with an optional in-progress local table,
// used during a package's own fixpoint computation.
func (s *Summarizer) lookupCallee(p *Package, call *ast.CallExpr, local map[*types.Func]*FuncSummary) *FuncSummary {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return nil
	}
	path := fn.Pkg().Path()
	if path == s.commPkg || path == s.vclockPkg || path == s.schedPkg {
		// Substrate methods (Comm, Clock, Task/Sim) are what the rules
		// detect directly; their implementations are out of summary
		// scope.
		return nil
	}
	if fn.Pkg() == p.Pkg {
		if local != nil {
			return local[fn]
		}
		return s.packageTable(p)[fn]
	}
	if path != s.module && !strings.HasPrefix(path, s.module+"/") {
		return nil
	}
	return s.byPath(path)[funcKey(fn)]
}

// packageTable returns the summaries of p's own function declarations,
// computed from p's already-loaded AST (fixtures pose as arbitrary
// import paths, so the package under analysis is never re-loaded by
// path).
func (s *Summarizer) packageTable(p *Package) map[*types.Func]*FuncSummary {
	s.mu.Lock()
	if t, ok := s.pkgs[p]; ok {
		s.mu.Unlock()
		return t
	}
	s.mu.Unlock()
	t := s.computePackage(p)
	s.mu.Lock()
	s.pkgs[p] = t
	s.mu.Unlock()
	return t
}

// byPath returns the summaries of a module-local package by import
// path, loading it in the summarizer's private world on first demand.
// Failures degrade to an empty table: the summaries are an accelerant
// for the rules, never a load-order correctness dependency.
func (s *Summarizer) byPath(path string) map[string]*FuncSummary {
	s.mu.Lock()
	if e, ok := s.paths[path]; ok {
		s.mu.Unlock()
		<-e.done
		return e.byKey
	}
	e := &sumEntry{done: make(chan struct{})}
	s.paths[path] = e
	s.mu.Unlock()
	defer close(e.done)
	e.byKey = s.computePath(path)
	return e.byKey
}

func (s *Summarizer) computePath(path string) map[string]*FuncSummary {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, s.module), "/")
	dir := filepath.Join(s.root, filepath.FromSlash(rel))
	var key string
	if s.cacheDir != "" {
		if k, err := s.diskKey(dir); err == nil {
			key = k
			if m, ok := s.loadDisk(key); ok {
				return m
			}
		}
	}
	s.loaderOnce.Do(func() { s.loader = NewLoader(s.root, s.module) })
	p, err := s.loader.LoadDir(dir, path)
	if err != nil {
		return map[string]*FuncSummary{}
	}
	table := s.computePackage(p)
	byKey := make(map[string]*FuncSummary, len(table))
	for _, sum := range table {
		byKey[sum.Key] = sum
	}
	if key != "" {
		s.saveDisk(key, byKey)
	}
	return byKey
}

// computePackage iterates summarizeFunc over the package's function
// declarations until the table stops changing, so same-package
// (including mutual) recursion converges.
func (s *Summarizer) computePackage(p *Package) map[*types.Func]*FuncSummary {
	type item struct {
		fn   *types.Func
		unit funcUnit
	}
	var items []item
	for _, fu := range packageFuncs(p) {
		fd, ok := fu.node.(*ast.FuncDecl)
		if !ok || fu.body == nil {
			continue
		}
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		items = append(items, item{fn, fu})
	}
	table := make(map[*types.Func]*FuncSummary, len(items))
	for round := 0; round <= len(items)+1; round++ {
		changed := false
		for _, it := range items {
			ns := s.summarizeFunc(p, it.fn, it.unit, table)
			if !reflect.DeepEqual(table[it.fn], ns) {
				table[it.fn] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return table
}

// summarizeFunc computes one function's summary against the current
// table. Function-literal bodies are included: their effects run under
// the function's dynamic extent.
func (s *Summarizer) summarizeFunc(p *Package, fn *types.Func, unit funcUnit, local map[*types.Func]*FuncSummary) *FuncSummary {
	out := &FuncSummary{Key: funcKey(fn), Name: funcShortName(fn)}
	seenCol := make(map[string]bool)
	seenSW := make(map[string]bool)
	seenEff := make(map[string]bool)
	seenAlloc := make(map[string]bool)
	seenBlk := make(map[string]bool)
	seenPark := make(map[string]bool)

	// Lexical loop spans: a park inside one of them re-executes with
	// the enclosing guard, so the re-check obligation is discharged in
	// this function and does not propagate to callers.
	var loopSpans [][2]token.Pos
	ast.Inspect(unit.body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loopSpans = append(loopSpans, [2]token.Pos{l.Body.Pos(), l.Body.End()})
		case *ast.RangeStmt:
			loopSpans = append(loopSpans, [2]token.Pos{l.Body.Pos(), l.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, span := range loopSpans {
			if pos >= span[0] && pos < span[1] {
				return true
			}
		}
		return false
	}
	addCol := func(key, name, chain string) {
		k := key + "\x00" + name
		if seenCol[k] || len(out.Collectives) >= maxSummaryEntries {
			return
		}
		seenCol[k] = true
		out.Collectives = append(out.Collectives, CollectiveUse{Key: key, Name: name, Chain: chain})
	}
	add := func(list *[]EffectUse, seen map[string]bool, detail, chain string) {
		if seen[detail] || len(*list) >= maxSummaryEntries {
			return
		}
		seen[detail] = true
		*list = append(*list, EffectUse{Detail: detail, Chain: chain})
	}

	ast.Inspect(unit.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(&out.Allocs, seenAlloc, "allocates a closure", "")
			return true
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					add(&out.Allocs, seenAlloc, "allocates a composite literal", "")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					add(&out.Allocs, seenAlloc, "allocates a composite literal", "")
				}
			}
		case *ast.SendStmt:
			add(&out.Effects, seenEff, "sends on a channel", "")
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					if v := pkgVarWrite(p, lhs); v != nil {
						add(&out.SharedWrites, seenSW, "writes package variable "+v.Name(), "")
					}
					if idx, ok := lhs.(*ast.IndexExpr); ok && isMapValue(p, idx.X) {
						add(&out.Allocs, seenAlloc, "performs a map operation", "")
					}
				}
			}
		case *ast.IncDecStmt:
			if v := pkgVarWrite(p, n.X); v != nil {
				add(&out.SharedWrites, seenSW, "writes package variable "+v.Name(), "")
			}
			if idx, ok := n.X.(*ast.IndexExpr); ok && isMapValue(p, idx.X) {
				add(&out.Allocs, seenAlloc, "performs a map operation", "")
			}
		case *ast.CallExpr:
			switch builtinName(p, n) {
			case "make":
				add(&out.Allocs, seenAlloc, "allocates with make", "")
				return true
			case "new":
				add(&out.Allocs, seenAlloc, "allocates with new", "")
				return true
			case "append":
				add(&out.Allocs, seenAlloc, "grows a slice with append", "")
				return true
			case "delete":
				add(&out.Allocs, seenAlloc, "performs a map operation", "")
				return true
			case "":
			default:
				return true
			}
			if s.commPkg != "" && receiverNamed(p, n, s.commPkg, "Comm") {
				name := n.Fun.(*ast.SelectorExpr).Sel.Name
				if key, ok := collectiveOps[name]; ok {
					addCol(key, name, name)
				}
				add(&out.Effects, seenEff, "performs communicator operation "+name, "")
				return true
			}
			if s.vclockPkg != "" && receiverNamed(p, n, s.vclockPkg, "Clock") {
				add(&out.Effects, seenEff, "advances the virtual clock", "")
				return true
			}
			if s.schedPkg != "" && receiverNamed(p, n, s.schedPkg, "Task") {
				if n.Fun.(*ast.SelectorExpr).Sel.Name == "Park" {
					add(&out.Blocks, seenBlk, "Task.Park", "")
					if !inLoop(n.Pos()) {
						add(&out.ParksUnchecked, seenPark, "Task.Park", "")
					}
				}
				return true
			}
			if s.vclockPkg != "" && receiverNamed(p, n, s.vclockPkg, "Group") {
				if n.Fun.(*ast.SelectorExpr).Sel.Name == "Sync" {
					add(&out.Blocks, seenBlk, "Group.Sync", "")
				}
				return true
			}
			if callee := calleeFunc(p, n); callee != nil && callee.Pkg() != nil &&
				callee.Pkg().Path() == s.ldmPkg && strings.HasPrefix(callee.Name(), "Check") {
				out.ChecksLDM = true
				return true
			}
			if sum := s.lookupCallee(p, n, local); sum != nil {
				for _, c := range sum.Collectives {
					addCol(c.Key, c.Name, mergeChain(sum.Name, c.Chain))
				}
				for _, e := range sum.SharedWrites {
					add(&out.SharedWrites, seenSW, e.Detail, mergeChain(sum.Name, e.Chain))
				}
				for _, e := range sum.Effects {
					add(&out.Effects, seenEff, e.Detail, mergeChain(sum.Name, e.Chain))
				}
				for _, e := range sum.Allocs {
					add(&out.Allocs, seenAlloc, e.Detail, mergeChain(sum.Name, e.Chain))
				}
				for _, e := range sum.Blocks {
					add(&out.Blocks, seenBlk, e.Detail, mergeChain(sum.Name, e.Chain))
				}
				if !inLoop(n.Pos()) {
					for _, e := range sum.ParksUnchecked {
						add(&out.ParksUnchecked, seenPark, e.Detail, mergeChain(sum.Name, e.Chain))
					}
				}
				if sum.ChecksLDM {
					out.ChecksLDM = true
				}
			}
		}
		return true
	})

	// Return-value provenance: rank taint, LDM-capacity provenance and
	// parameter→return flow, each following calls through the current
	// table so chains of helpers resolve during the fixpoint.
	results := returnExprs(unit)
	if len(results) > 0 {
		g := newFlowGraph(p, unit)
		rankOr := s.taintOracle(p, local, func(sum *FuncSummary) bool { return sum.RankReturn })
		ldmOr := s.taintOracle(p, local, func(sum *FuncSummary) bool { return sum.LDMReturn })
		flowOr := s.taintOracle(p, local, nil)
		for _, e := range results {
			if !out.RankReturn && basicValued(p, e) &&
				g.derivesVia(e, func(x ast.Expr) bool { return isRankSource(p, x) }, rankOr) {
				out.RankReturn = true
			}
			if !out.LDMReturn && g.derivesVia(e, func(x ast.Expr) bool { return ldmSource(p, s.ldmPkg, x) }, ldmOr) {
				out.LDMReturn = true
			}
		}
		for i, pv := range paramVars(p, unit) {
			if pv == nil {
				continue
			}
			for _, e := range results {
				if g.derivesVia(e, func(x ast.Expr) bool {
					id, ok := x.(*ast.Ident)
					return ok && p.Info.Uses[id] == pv
				}, flowOr) {
					out.TaintParams = append(out.TaintParams, i)
					break
				}
			}
		}
	}
	return out
}

// taintOracle adapts summaries into the dataflow engine's call oracle:
// a call is a source when its callee's summary satisfies isSrc (nil
// means never), and taint crosses the call through the callee's
// parameter→return flow. Only basic-valued results carry taint — a
// Split-derived *Comm does not become rank taint, preserving the
// documented v2 design.
func (s *Summarizer) taintOracle(p *Package, local map[*types.Func]*FuncSummary, isSrc func(*FuncSummary) bool) func(*ast.CallExpr) (bool, []int) {
	return func(call *ast.CallExpr) (bool, []int) {
		sum := s.lookupCallee(p, call, local)
		if sum == nil || !basicValued(p, call) {
			return false, nil
		}
		src := false
		if isSrc != nil {
			src = isSrc(sum)
		}
		return src, sum.TaintParams
	}
}

// RankTaint returns the rule-level oracle for rank dependence: calls to
// helpers whose summaries return rank-derived values become sources.
func (s *Summarizer) RankTaint(p *Package) func(*ast.CallExpr) (bool, []int) {
	return s.taintOracle(p, nil, func(sum *FuncSummary) bool { return sum.RankReturn })
}

// LDMTaint returns the rule-level oracle for LDM-capacity provenance.
func (s *Summarizer) LDMTaint(p *Package) func(*ast.CallExpr) (bool, []int) {
	return s.taintOracle(p, nil, func(sum *FuncSummary) bool { return sum.LDMReturn })
}

// diskKey digests the summary-relevant configuration plus the
// package's transitive module-local closure, so editing any callee —
// however deep — rolls the key of every dependent package.
func (s *Summarizer) diskKey(dir string) (string, error) {
	lines, err := s.hasher.closure(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, part := range []string{"swlint-summary", ToolVersion, s.module, s.commPkg, s.vclockPkg, s.ldmPkg, s.dmaPkg, s.schedPkg} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (s *Summarizer) diskPath(key string) string {
	return filepath.Join(s.cacheDir, "sum-"+key+".json")
}

func (s *Summarizer) loadDisk(key string) (map[string]*FuncSummary, bool) {
	data, err := os.ReadFile(s.diskPath(key))
	if err != nil {
		return nil, false
	}
	var m map[string]*FuncSummary
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false
	}
	return m, true
}

func (s *Summarizer) saveDisk(key string, m map[string]*FuncSummary) {
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	if err := os.MkdirAll(s.cacheDir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.cacheDir, "sum-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// calleeFunc resolves the function object a call statically invokes:
// a plain function, a method, or a qualified pkg.Func reference.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		paren, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = paren.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcKey is the stable cross-package identity of a function:
// pkgpath.[Type.]Name.
func funcKey(fn *types.Func) string {
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key = named.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

// funcShortName is the display form pkg.[Type.]Name used in chains.
func funcShortName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		name = parts[len(parts)-1] + "." + name
	}
	return name
}

// pkgVarWrite returns the package-level variable an assignment
// destination writes, or nil.
func pkgVarWrite(p *Package, lhs ast.Expr) *types.Var {
	var id *ast.Ident
	switch l := lhs.(type) {
	case *ast.Ident:
		id = l
	case *ast.SelectorExpr:
		id = l.Sel
	default:
		return nil
	}
	if v, ok := p.Info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(p *Package, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// isMapValue reports whether the expression's type is a map.
func isMapValue(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// basicValued reports whether the expression's type is basic (or a
// tuple of basics) — the only shapes that carry taint through a call
// result.
func basicValued(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if _, ok := tup.At(i).Type().Underlying().(*types.Basic); !ok {
				return false
			}
		}
		return tup.Len() > 0
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

// ldmSource reports whether e originates in the LDM capacity package:
// a call to any of its functions, or a reference to one of its
// package-level constants (ElemBytes, ElemsPerLDM).
func ldmSource(p *Package, ldmPkg string, e ast.Expr) bool {
	if ldmPkg == "" {
		return false
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(p, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == ldmPkg {
			return true
		}
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == ldmPkg {
			return true
		}
	}
	return false
}

// returnExprs collects the function's own return expressions, skipping
// nested function literals (their returns are not the function's).
func returnExprs(unit funcUnit) []ast.Expr {
	var out []ast.Expr
	if unit.body == nil {
		return nil
	}
	ast.Inspect(unit.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n.Results...)
		}
		return true
	})
	return out
}

// paramVars flattens the declaration's parameter list into variables,
// nil-padded for unnamed parameters so indices stay aligned with call
// arguments.
func paramVars(p *Package, unit funcUnit) []*types.Var {
	fd, ok := unit.node.(*ast.FuncDecl)
	if !ok || fd.Type.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			v, _ := p.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}
