package lint

import (
	"os"
	"strings"
	"testing"
)

// TestLockAcrossPark pins the lock-set rule against the fixture: a
// direct park under the mutex, a park reached only through a helper's
// summary, a deferred unlock across a collective and a lock across
// Group.Sync are flagged; the unlock-park-relock protocol (the
// vclock.syncSched shape), unlock-before-collective, Wake under the
// lock and the lock-free helper call are blessed.
func TestLockAcrossPark(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "lockpark", cfg.ModulePath+"/internal/fixture/lockpark")
	rule := LockAcrossParkRule{
		CommPackage:   cfg.CommPackage,
		VClockPackage: cfg.VClockPackage,
		SchedPackage:  cfg.SchedPackage,
		Sums:          testSummarizer(t),
	}
	checkFindings(t, rule.Check(p), []expect{
		{"lock-across-park", "lockpark.go", 24, "held across Task.Park"},
		{"lock-across-park", "lockpark.go", 39, "parkOnce"},
		{"lock-across-park", "lockpark.go", 50, "held across Comm.Barrier"},
		{"lock-across-park", "lockpark.go", 57, "held across Group.Sync"},
	})
}

// TestParkRecheck pins the re-check rule: an if-guarded park, a bare
// park in a helper, a summary-propagated obligation at a loop-free
// call site and a lexical loop with no back edge through the park are
// flagged; re-check loops — direct, around the helper call, or inside
// the helper itself — discharge the obligation. The two sole-statement
// if guards carry the mechanical if→for fix; the other findings do
// not.
func TestParkRecheck(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "parkrecheck", cfg.ModulePath+"/internal/fixture/parkrecheck")
	rule := ParkRecheckRule{SchedPackage: cfg.SchedPackage, Sums: testSummarizer(t)}
	got := rule.Check(p)
	checkFindings(t, got, []expect{
		{"park-recheck", "parkrecheck.go", 19, "not re-checked"},
		{"park-recheck", "parkrecheck.go", 26, "not re-checked"},
		{"park-recheck", "parkrecheck.go", 33, "parkBare"},
		{"park-recheck", "parkrecheck.go", 45, "not re-checked"},
	})

	fixable := map[int]bool{19: true, 33: true}
	var fixed *Finding
	for i := range got {
		f := &got[i]
		if fixable[f.Pos.Line] {
			if f.Fix == nil {
				t.Errorf("finding at line %d should carry the if→for fix", f.Pos.Line)
				continue
			}
			e := f.Fix.Edits[0]
			if e.NewText != "for" || e.End-e.Start != len("if") {
				t.Errorf("finding at line %d has edit %+v, want if→for keyword swap", f.Pos.Line, e)
			}
			if f.Pos.Line == 19 {
				fixed = f
			}
		} else if f.Fix != nil {
			t.Errorf("finding at line %d should not be mechanically fixable, got fix %q", f.Pos.Line, f.Fix.Message)
		}
	}

	// Apply the IfGuard fix in memory and confirm the rewrite is the
	// blessed loop: the guard survives, only the keyword changes.
	if fixed == nil {
		t.Fatal("no fixable finding at line 19")
	}
	src, err := os.ReadFile(fixed.Pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	e := fixed.Fix.Edits[0]
	patched := string(src[:e.Start]) + e.NewText + string(src[e.End:])
	if got, want := strings.Count(patched, "for !w.ready {"), strings.Count(string(src), "for !w.ready {")+1; got != want {
		t.Errorf("patched source has %d `for !w.ready` loops, want %d", got, want)
	}
	if strings.Count(patched, "if !w.ready {") != strings.Count(string(src), "if !w.ready {")-1 {
		t.Error("patched source did not consume the if guard")
	}
}

// TestCollectiveOrder pins the path-sensitive order rule on shapes the
// multiset matcher provably cannot see: collective-match (with the
// same summaries) reports nothing on the fixture — asserted first —
// yet three functions reorder the same collectives across rank arms.
// The blessed shapes stay silent: identical order inline and through a
// helper (error guards are straight-line, not forks), mirrored
// data-dependent forks, and a p2p recv loop against single sends.
func TestCollectiveOrder(t *testing.T) {
	_, cfg := fixtureLoader(t)
	p := loadFixture(t, "collorder", cfg.ModulePath+"/internal/fixture/collorder")
	sums := testSummarizer(t)

	if got := (CollectiveMatchRule{CommPackage: cfg.CommPackage, Sums: sums}).Check(p); len(got) != 0 {
		t.Fatalf("collective-match reported %d finding(s) on the order fixture; it must stay multiset-clean so the misses are provable:\n%v", len(got), got)
	}

	rule := CollectiveOrderRule{CommPackage: cfg.CommPackage, Sums: sums}
	checkFindings(t, rule.Check(p), []expect{
		{"collective-order", "collorder.go", 14, "rank-divergent collective order"},
		{"collective-order", "collorder.go", 31, "rank-divergent collective order"},
		{"collective-order", "collorder.go", 50, "rank-divergent collective order"},
	})
}
