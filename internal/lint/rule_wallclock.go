package lint

import (
	"go/ast"
	"go/types"
)

// NoWallclockRule forbids wall-clock time and global randomness inside
// the simulation packages. The paper's metric is one-iteration
// completion time on a *virtual* machine; every duration must come
// from internal/vclock so that a run is a deterministic function of
// its inputs. A single time.Now or math/rand call silently turns the
// timing model into a measurement of the host.
type NoWallclockRule struct {
	// SimPackages are the import paths under the rule's scope.
	SimPackages []string
}

// ID implements Rule.
func (NoWallclockRule) ID() string { return "no-wallclock" }

// Doc implements Rule.
func (NoWallclockRule) Doc() string {
	return "simulation packages must use virtual clocks, never wall time or global randomness"
}

// wallclockFuncs are the package-time functions that read the host
// clock. Constructors like time.Duration arithmetic are fine; reading
// the clock is not.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Check implements Rule.
func (r NoWallclockRule) Check(p *Package) []Finding {
	if !hasSuffixPath(p.Path, r.SimPackages) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					RuleID: r.ID(),
					Pos:    p.Fset.Position(imp.Pos()),
					Message: "import of " + path + " in simulation package " + p.Path +
						" breaks run determinism; derive pseudo-randomness from explicit seeds",
				})
			}
		}
	}
	for ident, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
			continue
		}
		out = append(out, Finding{
			RuleID: r.ID(),
			Pos:    p.Fset.Position(ident.Pos()),
			Message: "time." + fn.Name() + " in simulation package " + p.Path +
				" breaks virtual-clock determinism; advance a vclock.Clock instead",
		})
	}
	return out
}

// importPath unquotes an import spec's path.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	return s
}
