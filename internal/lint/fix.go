package lint

import (
	"fmt"
	"os"
	"sort"
)

// TextEdit is one byte-range replacement in one file. Offsets index
// the file's raw bytes; Start == End inserts.
type TextEdit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// Fix is a mechanical repair attached to a finding. Fixes are
// suggestions: they are only applied under the CLI's -fix flag, and a
// fixed tree must lint clean (applying the full fix set twice is a
// no-op — the first pass removes every fixable finding).
type Fix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// fileSources caches raw file contents during one rule pass so fix
// construction reads each file once.
type fileSources struct {
	byName map[string][]byte
}

func newFileSources(p *Package) *fileSources {
	return &fileSources{byName: make(map[string][]byte)}
}

func (fs *fileSources) source(name string) ([]byte, error) {
	if b, ok := fs.byName[name]; ok {
		return b, nil
	}
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	fs.byName[name] = b
	return b, nil
}

// ApplyFixes applies every finding's fix to the files on disk and
// returns the filenames written and the findings whose fixes were
// applied. Identical edits (several findings inserting the same import)
// collapse; overlapping distinct edits are a conflict and the later
// finding's fix is skipped, left for a second -fix run after the first
// rewrite lands.
func ApplyFixes(findings []Finding) (changed []string, applied []Finding, err error) {
	type edit struct {
		TextEdit
		order int
	}
	perFile := make(map[string][]edit)
	fixable := make([]Finding, 0, len(findings))
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		fixable = append(fixable, f)
		for _, e := range f.Fix.Edits {
			perFile[e.Filename] = append(perFile[e.Filename], edit{e, len(fixable) - 1})
		}
	}
	if len(perFile) == 0 {
		return nil, nil, nil
	}
	skipped := make(map[int]bool)
	for name, edits := range perFile {
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		// Collapse exact duplicates, then detect overlaps.
		kept := edits[:0]
		for _, e := range edits {
			if len(kept) > 0 {
				last := kept[len(kept)-1]
				if last.TextEdit == e.TextEdit {
					continue
				}
				if e.Start < last.End {
					skipped[e.order] = true
					continue
				}
			}
			kept = append(kept, e)
		}
		perFile[name] = kept
	}
	for name, edits := range perFile {
		src, rerr := os.ReadFile(name)
		if rerr != nil {
			return nil, nil, fmt.Errorf("lint: applying fixes: %w", rerr)
		}
		out := make([]byte, 0, len(src))
		prev := 0
		ok := true
		for _, e := range edits {
			if skipped[e.order] {
				continue
			}
			if e.Start < prev || e.End > len(src) {
				ok = false
				skipped[e.order] = true
				continue
			}
			out = append(out, src[prev:e.Start]...)
			out = append(out, e.NewText...)
			prev = e.End
		}
		out = append(out, src[prev:]...)
		if !ok && len(out) == len(src) {
			continue
		}
		if werr := os.WriteFile(name, out, 0o644); werr != nil {
			return nil, nil, fmt.Errorf("lint: applying fixes: %w", werr)
		}
		changed = append(changed, name)
	}
	sort.Strings(changed)
	for i, f := range fixable {
		if !skipped[i] {
			applied = append(applied, f)
		}
	}
	return changed, applied, nil
}
