package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CollectiveOrderRule upgrades collective-match from presence checking
// to order checking. In the paper's bulk-synchronous execution model a
// collective is a contract every rank enters in the same global
// sequence; two rank-conditional arms that issue the *same multiset*
// of collectives in a *different order* —
//
//	if comm.Rank() == 0 {
//		comm.Bcast(...)
//		comm.Barrier()
//	} else {
//		comm.Barrier()
//		comm.Bcast(...)
//	}
//
// — deadlock pairwise inside the first divergent operation, yet are
// invisible to collective-match, whose matching is a multiset fact.
// This rule is the path-sensitive complement: for each rank-dependent
// branch point it enumerates the per-arm *sequences* of tracked calls
// (bounded structural path enumeration: inner branches fork, loops
// contribute their flattened body once, returns end a path) and fires
// exactly when the flat multisets agree but the sequence sets do not.
// Presence mismatches stay collective-match's findings; this rule is
// silent on them so each bug has one owner.
//
// Blessed patterns the sequence comparison accepts by construction:
// Send and Recv normalize to one p2p key, so the root's recv loop
// against the leaves' single send is order-clean; helper-wrapped
// collectives compare by their summary sequence, so hoisting an arm
// into a helper changes nothing; idiomatic error guards
// (`if err != nil { return err }`) are straight-line, not forks, so an
// inline arm never diverges from its helper-wrapped sibling over error
// plumbing; and arms whose multisets differ are out of scope here.
type CollectiveOrderRule struct {
	// CommPackage is the communicator's import path; its own
	// implementation is rank-conditional by construction and exempt.
	CommPackage string
	// Sums, when non-nil, contributes helper collectives (in summary
	// order) at the call site and extends rank dependence through
	// helper returns.
	Sums *Summarizer
}

// ID implements Rule.
func (CollectiveOrderRule) ID() string { return "collective-order" }

// Doc implements Rule.
func (CollectiveOrderRule) Doc() string {
	return "rank-conditional arms issuing the same collectives must issue them in the same order"
}

func (r CollectiveOrderRule) rankOracle(p *Package) func(*ast.CallExpr) (bool, []int) {
	if r.Sums == nil {
		return nil
	}
	return r.Sums.RankTaint(p)
}

// Check implements Rule.
func (r CollectiveOrderRule) Check(p *Package) []Finding {
	if p.Path == r.CommPackage {
		return nil
	}
	var out []Finding
	for _, fn := range packageFuncs(p) {
		if fn.body == nil {
			continue
		}
		g := newFlowGraph(p, fn)
		out = append(out, r.checkBlock(p, g, fn.body.List)...)
	}
	return out
}

// checkBlock walks one statement list and analyzes every
// rank-dependent branch point, mirroring collective-match's walk.
func (r CollectiveOrderRule) checkBlock(p *Package, g *flowGraph, stmts []ast.Stmt) []Finding {
	var out []Finding
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			out = append(out, r.checkIf(p, g, s, stmts[i+1:])...)
		case *ast.SwitchStmt:
			if s.Tag == nil {
				out = append(out, r.checkSwitch(p, g, s)...)
			}
			out = append(out, r.descend(p, g, s)...)
		default:
			out = append(out, r.descend(p, g, stmt)...)
		}
	}
	return out
}

// descend recurses into nested blocks of a non-branch statement.
func (r CollectiveOrderRule) descend(p *Package, g *flowGraph, stmt ast.Stmt) []Finding {
	var out []Finding
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			out = append(out, r.checkBlock(p, g, n.List)...)
			return false
		}
		return true
	})
	return out
}

// checkIf analyzes one if statement; rest is the statement tail of the
// enclosing block, the implicit sibling arm when the rank-dependent
// body terminates early.
func (r CollectiveOrderRule) checkIf(p *Package, g *flowGraph, s *ast.IfStmt, rest []ast.Stmt) []Finding {
	var out []Finding
	if !rankDependent(p, g, s.Cond, r.rankOracle(p)) {
		out = append(out, r.checkBlock(p, g, s.Body.List)...)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				out = append(out, r.checkBlock(p, g, e.List)...)
			case *ast.IfStmt:
				out = append(out, r.checkIf(p, g, e, rest)...)
			}
		}
		return out
	}

	// Nested branch points inside the arms are their own analyses.
	out = append(out, r.checkBlock(p, g, s.Body.List)...)

	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		out = append(out, r.checkBlock(p, g, e.List)...)
		out = append(out, r.compareArms(p, s.Body.List, e.List, "the else arm")...)
	case *ast.IfStmt:
		out = append(out, r.checkIf(p, g, e, rest)...)
		out = append(out, r.compareArms(p, s.Body.List, []ast.Stmt{e}, "the else-if chain")...)
	default:
		if terminates(s.Body) {
			// Early-exit guard: the code after the if is the arm the
			// other ranks run.
			out = append(out, r.compareArms(p, s.Body.List, rest, "the code after this early-exit branch")...)
		}
		// A non-terminating then-arm with no else is a presence
		// question (extra calls on one side), owned by collective-match.
	}
	return out
}

// checkSwitch compares every pair of case bodies of a rank-dependent
// expression-less switch.
func (r CollectiveOrderRule) checkSwitch(p *Package, g *flowGraph, s *ast.SwitchStmt) []Finding {
	type armInfo struct {
		body []ast.Stmt
	}
	var arms []armInfo
	anyRank := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, cond := range cc.List {
			if rankDependent(p, g, cond, r.rankOracle(p)) {
				anyRank = true
				break
			}
		}
		arms = append(arms, armInfo{body: cc.Body})
	}
	if !anyRank {
		return nil
	}
	var out []Finding
	for i := 0; i < len(arms); i++ {
		for j := i + 1; j < len(arms); j++ {
			out = append(out, r.compareArms(p, arms[i].body, arms[j].body, "a sibling case")...)
		}
	}
	return out
}

// compareArms fires when two arms issue the same multiset of tracked
// calls in provably different orders. Position is the first tracked
// call of the first arm — the earliest point a rank commits to the
// divergent order.
func (r CollectiveOrderRule) compareArms(p *Package, armA, armB []ast.Stmt, siblingName string) []Finding {
	flatA := collectStmtsCalls(p, armA, r.CommPackage, r.Sums)
	flatB := collectStmtsCalls(p, armB, r.CommPackage, r.Sums)
	if len(flatA) == 0 || len(flatB) == 0 {
		return nil
	}
	if !sameKeyMultiset(flatA, flatB) {
		return nil // presence mismatch: collective-match's finding
	}
	b := &seqBuilder{p: p, commPkg: r.CommPackage, sums: r.Sums}
	seqsA := b.armSeqs(armA)
	seqsB := b.armSeqs(armB)
	if b.overflow {
		// Path explosion: compare the flat sequences only.
		seqsA = []string{joinKeys(flatA)}
		seqsB = []string{joinKeys(flatB)}
	}
	if sameStringSets(seqsA, seqsB) {
		return nil
	}
	repA := firstNotIn(seqsA, seqsB)
	repB := firstNotIn(seqsB, seqsA)
	if repA == "" {
		repA = seqsA[0]
	}
	if repB == "" {
		repB = seqsB[0]
	}
	first := flatA[0]
	reached := ""
	if first.via != "" {
		reached = " (first collective reached via " + first.via + ")"
	}
	return []Finding{{
		RuleID: r.ID(),
		Pos:    p.Fset.Position(first.call.Pos()),
		Message: "rank-divergent collective order" + reached + ": this arm may enter [" + repA + "] while " +
			siblingName + " enters [" + repB + "]; same operations, different order — ranks deadlock pairwise inside the first divergent collective",
	}}
}

// collectStmtsCalls flattens the tracked calls of a statement list in
// source order.
func collectStmtsCalls(p *Package, stmts []ast.Stmt, commPkg string, sums *Summarizer) []commCall {
	var out []commCall
	for _, st := range stmts {
		out = append(out, collectCommCalls(p, st, commPkg, sums)...)
	}
	return out
}

func sameKeyMultiset(a, b []commCall) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int)
	for _, c := range a {
		counts[c.key]++
	}
	for _, c := range b {
		counts[c.key]--
		if counts[c.key] < 0 {
			return false
		}
	}
	return true
}

func joinKeys(calls []commCall) string {
	keys := make([]string, len(calls))
	for i, c := range calls {
		keys[i] = c.key
	}
	return strings.Join(keys, " → ")
}

func sameStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstNotIn(a, b []string) string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	for _, s := range a {
		if !in[s] {
			return s
		}
	}
	return ""
}

// seqBuilder enumerates the per-path collective sequences of an arm by
// structure: inner if/switch statements fork alternative suffixes,
// loops contribute their flattened body exactly once, return/panic and
// break/continue end the path. Enumeration is bounded (maxSeqPaths
// alternatives, maxSeqLen calls per path); on overflow the caller
// falls back to flat-sequence comparison.
type seqBuilder struct {
	p        *Package
	commPkg  string
	sums     *Summarizer
	overflow bool
}

const (
	maxSeqPaths = 64
	maxSeqLen   = 32
)

// armSeqs returns the canonical (sorted, deduplicated) set of
// sequences for one arm, each rendered "key → key → …" ("∅" for the
// empty sequence).
func (b *seqBuilder) armSeqs(stmts []ast.Stmt) []string {
	active, finished := b.block(stmts)
	set := make(map[string]bool)
	for _, s := range append(active, finished...) {
		set[renderSeq(s)] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func renderSeq(keys []string) string {
	if len(keys) == 0 {
		return "∅"
	}
	return strings.Join(keys, " → ")
}

// block runs the statement list over a set of active path prefixes.
// finished paths left the list early (return, panic, break, continue).
func (b *seqBuilder) block(list []ast.Stmt) (active, finished [][]string) {
	active = [][]string{{}}
	for _, st := range list {
		if b.overflow {
			return
		}
		switch s := st.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				active = b.crossSeg(active, b.segment(s.Init))
			}
			active = b.crossSeg(active, b.segment(s.Cond))
			if b.errGuard(s) {
				// Idiomatic error guard (`if err != nil { return err }`
				// after a collective): the error path aborts the whole
				// protocol, and forking on it would make every inline
				// arm diverge from a helper-wrapped sibling whose
				// summary sequence is necessarily flat. Straight-line.
				continue
			}
			tAct, tFin := b.block(s.Body.List)
			var eAct, eFin [][]string
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				eAct, eFin = b.block(e.List)
			case *ast.IfStmt:
				eAct, eFin = b.block([]ast.Stmt{e})
			default:
				eAct = [][]string{{}}
			}
			cur := active
			finished = append(finished, b.crossAll(cur, tFin)...)
			finished = append(finished, b.crossAll(cur, eFin)...)
			active = b.dedup(append(b.crossAll(cur, tAct), b.crossAll(cur, eAct)...))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var clauses []*ast.CaseClause
			hasDefault := false
			var body *ast.BlockStmt
			var head []ast.Node
			if sw, ok := s.(*ast.SwitchStmt); ok {
				body = sw.Body
				if sw.Init != nil {
					head = append(head, sw.Init)
				}
				if sw.Tag != nil {
					head = append(head, sw.Tag)
				}
			} else {
				ts := s.(*ast.TypeSwitchStmt)
				body = ts.Body
				if ts.Init != nil {
					head = append(head, ts.Init)
				}
				head = append(head, ts.Assign)
			}
			for _, h := range head {
				active = b.crossSeg(active, b.segment(h))
			}
			for _, c := range body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					clauses = append(clauses, cc)
					if cc.List == nil {
						hasDefault = true
					}
				}
			}
			cur := active
			var alts [][]string
			for _, cc := range clauses {
				aAct, aFin := b.block(cc.Body)
				finished = append(finished, b.crossAll(cur, aFin)...)
				alts = append(alts, aAct...)
			}
			if !hasDefault {
				alts = append(alts, []string{})
			}
			active = b.dedup(b.crossAll(cur, alts))
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			// Loops and selects contribute their flattened body once;
			// iteration-count path splitting is collectively owned by
			// the runtime checks, not this enumeration.
			active = b.crossSeg(active, b.segment(st))
		case *ast.ReturnStmt:
			active = b.crossSeg(active, b.segment(st))
			finished = append(finished, active...)
			active = nil
		case *ast.BranchStmt:
			finished = append(finished, active...)
			active = nil
		case *ast.BlockStmt:
			aAct, aFin := b.block(s.List)
			cur := active
			finished = append(finished, b.crossAll(cur, aFin)...)
			active = b.dedup(b.crossAll(cur, aAct))
		default:
			if terminatingStmt(st) {
				active = b.crossSeg(active, b.segment(st))
				finished = append(finished, active...)
				active = nil
				continue
			}
			active = b.crossSeg(active, b.segment(st))
		}
	}
	return active, finished
}

// errGuard reports whether s is an idiomatic error guard: an else-less
// if on an error-nil comparison whose body always leaves the function
// and issues no tracked calls of its own. Such guards are blessed as
// straight-line rather than forked — see the comment at the use site.
func (b *seqBuilder) errGuard(s *ast.IfStmt) bool {
	if s.Else != nil || !terminates(s.Body) {
		return false
	}
	if len(collectStmtsCalls(b.p, s.Body.List, b.commPkg, b.sums)) != 0 {
		return false
	}
	return errNilCond(b.p, s.Cond)
}

// errNilCond reports whether cond compares an error-typed operand
// against nil.
func errNilCond(p *Package, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var other ast.Expr
	switch {
	case isNil(be.X):
		other = be.Y
	case isNil(be.Y):
		other = be.X
	default:
		return false
	}
	tv, ok := p.Info.Types[other]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errType)
}

// terminatingStmt reports whether a plain statement never falls
// through: a panic call.
func terminatingStmt(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// segment flattens the tracked-call keys under one node in source
// order.
func (b *seqBuilder) segment(n ast.Node) []string {
	calls := collectCommCalls(b.p, n, b.commPkg, b.sums)
	keys := make([]string, len(calls))
	for i, c := range calls {
		keys[i] = c.key
	}
	return keys
}

// crossSeg appends one segment to every active path.
func (b *seqBuilder) crossSeg(active [][]string, seg []string) [][]string {
	if len(seg) == 0 || len(active) == 0 {
		return active
	}
	out := make([][]string, 0, len(active))
	for _, a := range active {
		n := append(append([]string{}, a...), seg...)
		if len(n) > maxSeqLen {
			b.overflow = true
			return active
		}
		out = append(out, n)
	}
	return out
}

// crossAll concatenates every prefix with every alternative suffix.
func (b *seqBuilder) crossAll(prefixes, suffixes [][]string) [][]string {
	var out [][]string
	for _, pre := range prefixes {
		for _, suf := range suffixes {
			n := append(append([]string{}, pre...), suf...)
			if len(n) > maxSeqLen {
				b.overflow = true
				return out
			}
			out = append(out, n)
			if len(out) > maxSeqPaths {
				b.overflow = true
				return out
			}
		}
	}
	return out
}

// dedup collapses identical paths, keeping enumeration bounded across
// chains of independent branches.
func (b *seqBuilder) dedup(paths [][]string) [][]string {
	seen := make(map[string]bool, len(paths))
	out := paths[:0]
	for _, p := range paths {
		k := strings.Join(p, "\x00")
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	if len(out) > maxSeqPaths {
		b.overflow = true
	}
	return out
}
