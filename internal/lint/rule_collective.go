package lint

import (
	"go/ast"
)

// CollectiveMatchRule statically detects the desynchronized-collective
// class of deadlock: an mpi.Comm collective (or a point-to-point call
// on a gather path) reached under a rank-dependent branch with no
// matching call on the other branch arm. In the simulated MPI world —
// exactly as on a real communicator — a collective is a contract every
// rank must enter; `if rank == 0 { comm.Bcast(...) }` with a silent
// else arm leaves the other ranks blocked forever. This is the
// static counterpart of what collective-verification tools like MUST
// check at runtime, specialized to this module's communicator.
//
// The analysis is per function (intraprocedural) over if/else chains
// and expression-less switch statements whose condition depends on the
// calling rank (a Rank/Global/IsRoot/CG call, a variable derived from
// one, or a variable named "rank"), using the package's value-flow
// pass. Matching is by operation: a collective matches the same
// collective on the sibling arm; Send and Recv match each other (the
// root-gathers/leaf-sends shape). A rank-dependent arm that returns
// early makes the rest of the function conditional, so collectives
// after it must match a call inside the arm.
//
// Deliberately asymmetric protocols carry a
// //swlint:ignore collective-match -- <reason> suppression at the call.
type CollectiveMatchRule struct {
	// CommPackage is the import path of the communicator package; its
	// own implementation (tree broadcasts are rank-conditional sends by
	// construction) is out of scope.
	CommPackage string
	// Sums, when non-nil, extends the analysis interprocedurally: a
	// call to a helper whose summary reaches a collective counts as
	// that collective at the call site (the finding names the call
	// chain), and branch conditions may derive their rank dependence
	// through helper returns. Nil restores the v2 intraprocedural
	// behavior.
	Sums *Summarizer
}

// ID implements Rule.
func (CollectiveMatchRule) ID() string { return "collective-match" }

// Doc implements Rule.
func (CollectiveMatchRule) Doc() string {
	return "rank-conditional mpi collectives must have a matching call on the other branch arm"
}

// collectiveOps classifies the Comm methods the rule tracks into match
// keys: same-key calls on sibling arms satisfy each other.
var collectiveOps = map[string]string{
	"Barrier":           "Barrier",
	"Bcast":             "Bcast",
	"Reduce":            "Reduce",
	"AllReduceSum":      "AllReduceSum",
	"AllReduceSumAuto":  "AllReduceSumAuto",
	"AllReduceMinPairs": "AllReduceMinPairs",
	"AllGatherFloats":   "AllGatherFloats",
	"AllGatherInts":     "AllGatherInts",
	"Gather":            "Gather",
	"Scatter":           "Scatter",
	"Split":             "Split",
	"Send":              "p2p",
	"Recv":              "p2p",
}

// commCall is one tracked communicator call. via is empty for a direct
// Comm method call; for a summary-propagated collective it is the call
// chain from the invoked helper down to the operation.
type commCall struct {
	call *ast.CallExpr
	name string
	key  string
	via  string
}

// rankOracle builds the per-package call oracle extending rank
// dependence through helper returns, or nil without summaries.
func (r CollectiveMatchRule) rankOracle(p *Package) func(*ast.CallExpr) (bool, []int) {
	if r.Sums == nil {
		return nil
	}
	return r.Sums.RankTaint(p)
}

// Check implements Rule.
func (r CollectiveMatchRule) Check(p *Package) []Finding {
	if p.Path == r.CommPackage {
		return nil
	}
	var out []Finding
	for _, fn := range packageFuncs(p) {
		if fn.body == nil {
			continue
		}
		g := newFlowGraph(p, fn)
		cg := buildCFG(p, fn)
		out = append(out, r.checkBlock(p, g, cg, fn.body.List, fn)...)
	}
	return out
}

// checkBlock walks one statement list, descending into nested blocks,
// and analyzes every rank-dependent branch point it finds.
func (r CollectiveMatchRule) checkBlock(p *Package, g *flowGraph, cg *cfgGraph, stmts []ast.Stmt, fn funcUnit) []Finding {
	var out []Finding
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			out = append(out, r.checkIf(p, g, cg, s, stmts[i+1:], fn)...)
		case *ast.SwitchStmt:
			if s.Tag == nil {
				out = append(out, r.checkSwitch(p, g, s)...)
			} else {
				out = append(out, r.descend(p, g, cg, s, fn)...)
			}
			continue
		default:
			out = append(out, r.descend(p, g, cg, stmt, fn)...)
		}
	}
	return out
}

// descend recurses into the nested blocks of a non-branch statement
// (loops, blocks, function literals are excluded — literals are their
// own funcUnits).
func (r CollectiveMatchRule) descend(p *Package, g *flowGraph, cg *cfgGraph, stmt ast.Stmt, fn funcUnit) []Finding {
	var out []Finding
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			// Only descend into blocks that are loop/select bodies etc.;
			// if-statements inside are handled by checkBlock.
			out = append(out, r.checkBlock(p, g, cg, n.List, fn)...)
			return false
		}
		return true
	})
	return out
}

// checkIf analyzes one if statement. rest is the statement tail after
// the if in the enclosing block, consulted when the rank-dependent arm
// terminates.
func (r CollectiveMatchRule) checkIf(p *Package, g *flowGraph, cg *cfgGraph, s *ast.IfStmt, rest []ast.Stmt, fn funcUnit) []Finding {
	var out []Finding
	if !rankDependent(p, g, s.Cond, r.rankOracle(p)) {
		// Not a rank branch: analyze both arms as plain blocks.
		out = append(out, r.checkBlock(p, g, cg, s.Body.List, fn)...)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				out = append(out, r.checkBlock(p, g, cg, e.List, fn)...)
			case *ast.IfStmt:
				out = append(out, r.checkIf(p, g, cg, e, rest, fn)...)
			}
		}
		return out
	}

	thenCalls := r.collectCalls(p, s.Body)
	var elseCalls []commCall
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseCalls = r.collectCalls(p, e)
	case *ast.IfStmt:
		// else-if chain: treat the whole chain as the sibling arm.
		elseCalls = r.collectCalls(p, e)
	}

	if s.Else == nil && terminates(s.Body) {
		// Early-exit guard: `if rank != 0 { ...; return }` makes the
		// rest of the function the other arm. The tail is a CFG fact —
		// every node reachable from the if's merge point, the branch's
		// own arm excluded — so collectives after the enclosing block
		// (which the v3 lexical tail could not see) participate in
		// matching.
		var tail []commCall
		if merge := cg.ifMerge[s]; merge != nil {
			for _, n := range cg.reachableNodes(merge, s) {
				tail = append(tail, r.collectCalls(p, n)...)
			}
		} else {
			// Fallback (if inside a nested function literal whose graph
			// this is not): the lexical tail.
			for _, st := range rest {
				tail = append(tail, r.collectCalls(p, st)...)
			}
		}
		out = append(out, unmatched(p, r.ID(), thenCalls, tail, "the code after this early-exit branch")...)
		out = append(out, unmatched(p, r.ID(), tail, thenCalls, "the early-exit branch above")...)
		return out
	}

	arm := "the else arm"
	if s.Else == nil {
		arm = "the (missing) else arm"
	}
	out = append(out, unmatched(p, r.ID(), thenCalls, elseCalls, arm)...)
	out = append(out, unmatched(p, r.ID(), elseCalls, thenCalls, "the then arm")...)
	return out
}

// checkSwitch analyzes an expression-less switch whose case conditions
// are rank-dependent: every tracked call in one case must find a match
// in some sibling case (the Level-3 stripe-gather shape:
// `case rank == 0: Recv...; case group == 0: Send`).
func (r CollectiveMatchRule) checkSwitch(p *Package, g *flowGraph, s *ast.SwitchStmt) []Finding {
	type armInfo struct {
		calls   []commCall
		rankDep bool
	}
	var arms []armInfo
	anyRank := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		dep := false
		for _, cond := range cc.List {
			if rankDependent(p, g, cond, r.rankOracle(p)) {
				dep = true
				break
			}
		}
		anyRank = anyRank || dep
		var calls []commCall
		for _, st := range cc.Body {
			calls = append(calls, r.collectCalls(p, st)...)
		}
		arms = append(arms, armInfo{calls: calls, rankDep: dep})
	}
	if !anyRank {
		return nil
	}
	var out []Finding
	for i, arm := range arms {
		var siblings []commCall
		for j, other := range arms {
			if j != i {
				siblings = append(siblings, other.calls...)
			}
		}
		out = append(out, unmatched(p, r.ID(), arm.calls, siblings, "a sibling case")...)
	}
	return out
}

// collectCalls gathers the tracked communicator calls under n,
// skipping nested function literals and nested rank-independent
// structure alike — matching is structural, not path-sensitive. With
// summaries enabled, a call to a helper that transitively enters a
// collective contributes that collective at the call site.
func (r CollectiveMatchRule) collectCalls(p *Package, n ast.Node) []commCall {
	return collectCommCalls(p, n, r.CommPackage, r.Sums)
}

// collectCommCalls is the shared collector behind collective-match and
// collective-order: every tracked Comm call under n, in source order,
// with summary-propagated collectives contributed at the helper call
// site.
func collectCommCalls(p *Package, n ast.Node, commPkg string, sums *Summarizer) []commCall {
	var out []commCall
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if key, tracked := collectiveOps[sel.Sel.Name]; tracked && receiverNamed(p, call, commPkg, "Comm") {
				out = append(out, commCall{call: call, name: sel.Sel.Name, key: key})
				return true
			}
		}
		if sums != nil {
			if sum := sums.ForCall(p, call); sum != nil {
				for _, c := range sum.Collectives {
					out = append(out, commCall{call: call, name: c.Name, key: c.Key, via: mergeChain(sum.Name, c.Chain)})
				}
			}
		}
		return true
	})
	return out
}

// unmatched reports the calls of one arm with no same-key partner in
// the sibling arm.
func unmatched(p *Package, ruleID string, calls, sibling []commCall, siblingName string) []Finding {
	keys := make(map[string]bool, len(sibling))
	for _, c := range sibling {
		keys[c.key] = true
	}
	var out []Finding
	for _, c := range calls {
		if keys[c.key] {
			continue
		}
		want := c.name
		if c.key == "p2p" {
			want = "Send or Recv"
		}
		reached := ""
		if c.via != "" {
			reached = " (reached via " + c.via + ")"
		}
		out = append(out, Finding{
			RuleID: ruleID,
			Pos:    p.Fset.Position(c.call.Pos()),
			Message: "rank-conditional " + c.name + reached + " has no matching " + want +
				" in " + siblingName + "; the other ranks never enter the operation and the communicator deadlocks",
		})
	}
	return out
}

// terminates reports whether a block always transfers control out of
// the enclosing function: its last statement is a return or a call to
// panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BranchStmt:
		return false
	}
	return false
}
