package lint

import (
	"bytes"
	"strings"
	"testing"
	"unicode"
)

// FuzzParseIgnore drives the suppression-comment parser with arbitrary
// text after the //swlint:ignore prefix and checks the contract every
// accepted comment must satisfy: at least one rule, no rule empty or
// containing whitespace, and a non-blank reason. The parser is the
// front door for untrusted source text, so a panic or an accepted
// malformed comment here would poison the suppression census and the
// unused-suppress bookkeeping.
func FuzzParseIgnore(f *testing.F) {
	for _, seed := range []string{
		"float-eq -- tolerance is intentional here",
		"float-eq,err-wrap -- both deliberate",
		"no-wallclock--reason",
		" -- reason only",
		"rule1 rule2 -- two fields is malformed",
		"float-eq --",
		"float-eq",
		"",
		",, -- empty rules",
		"a,b,c,d -- long comma list",
		"float-eq -- reason -- with separator inside",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, rest string) {
		rules, reason, ok := parseIgnore(rest)
		if !ok {
			if rules != nil || reason != "" {
				t.Fatalf("parseIgnore(%q) rejected but returned rules=%v reason=%q", rest, rules, reason)
			}
			return
		}
		if len(rules) == 0 {
			t.Fatalf("parseIgnore(%q) accepted with no rules", rest)
		}
		for _, r := range rules {
			if r == "" {
				t.Fatalf("parseIgnore(%q) returned an empty rule name", rest)
			}
			if strings.IndexFunc(r, unicode.IsSpace) >= 0 {
				t.Fatalf("parseIgnore(%q) returned rule %q containing whitespace", rest, r)
			}
		}
		if strings.TrimSpace(reason) != reason || reason == "" {
			t.Fatalf("parseIgnore(%q) returned untrimmed or blank reason %q", rest, reason)
		}
	})
}

// FuzzParseBaseline drives the baseline JSON loader with arbitrary
// bytes: whatever parses must satisfy the validation contract (every
// entry complete, every reason non-blank) and survive a write/re-parse
// round trip, so a hand-edited or corrupted .swlint-baseline.json can
// never smuggle an unvalidated entry past CI.
func FuzzParseBaseline(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte(`{"entries":[]}`),
		[]byte(`{"entries":[{"rule":"float-eq","file":"a/b.go","message":"m","reason":"accepted debt"}]}`),
		[]byte(`{"entries":[{"rule":"","file":"","message":""}]}`),
		[]byte(`{"entries":[{"rule":"x","file":"y.go","message":"z","reason":"  "}]}`),
		[]byte(`null`),
		[]byte(`{}`),
		[]byte(`[]`),
		[]byte(`{"entries":null}`),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ParseBaseline(data)
		if err != nil {
			if b != nil {
				t.Fatalf("ParseBaseline returned both a baseline and error %v", err)
			}
			return
		}
		if b == nil {
			t.Fatal("ParseBaseline returned nil baseline without error")
		}
		for i, e := range b.Entries {
			if e.Rule == "" || e.File == "" || e.Message == "" || strings.TrimSpace(e.Reason) == "" {
				t.Fatalf("entry %d passed validation incomplete: %+v", i, e)
			}
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatalf("re-encoding a valid baseline failed: %v", err)
		}
		b2, err := ParseBaseline(buf.Bytes())
		if err != nil {
			t.Fatalf("round trip failed to re-parse: %v", err)
		}
		if len(b2.Entries) != len(b.Entries) {
			t.Fatalf("round trip changed entry count: %d != %d", len(b2.Entries), len(b.Entries))
		}
	})
}
