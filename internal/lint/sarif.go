package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 export, the interchange format GitHub code scanning
// ingests (github/codeql-action/upload-sarif in CI turns the findings
// into PR annotations). The emitted document is the minimal valid
// subset: schema/version header, one run, a tool.driver carrying the
// full rule table, and one result per finding with a physical location
// relative to the module root (uriBaseId SRCROOT).

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool      `json:"tool"`
	Results    []sarifResult  `json:"results"`
	Properties *sarifRunProps `json:"properties,omitempty"`
}

// sarifRunProps is the run-level property bag. suppressions carries
// the per-rule //swlint:ignore counts of the run, so code scanning
// dashboards see the tolerated-debt surface alongside the findings.
type sarifRunProps struct {
	Suppressions map[string]int `json:"suppressions"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Version        string      `json:"semanticVersion"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ToolVersion identifies the analyzer in SARIF output and keys the
// result cache; bump it whenever rule behavior changes so stale cache
// entries and code-scanning alert identities roll over together.
const ToolVersion = "4.0.0"

// WriteSARIF writes the findings as a SARIF 2.1.0 document. The rule
// table lists every rule of the run (findings or not), so code
// scanning can show rule metadata for closed alerts too. File URIs are
// slash-separated paths relative to the module root. suppressions,
// when non-nil, is the run's per-rule //swlint:ignore census, emitted
// into the run property bag.
func WriteSARIF(w io.Writer, findings []Finding, rules []Rule, moduleRoot string, suppressions map[string]int) error {
	ruleIndex := make(map[string]int, len(rules))
	table := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		ruleIndex[r.ID()] = len(table)
		table = append(table, sarifRule{ID: r.ID(), ShortDescription: sarifMessage{Text: r.Doc()}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.RuleID]
		if !ok {
			idx = len(table)
			ruleIndex[f.RuleID] = idx
			table = append(table, sarifRule{ID: f.RuleID, ShortDescription: sarifMessage{Text: f.RuleID}})
		}
		level := "error"
		if f.RuleID == UnusedSuppressID {
			level = "warning"
		}
		results = append(results, sarifResult{
			RuleID:    f.RuleID,
			RuleIndex: idx,
			Level:     level,
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(f.Pos.Filename, moduleRoot),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	var props *sarifRunProps
	if len(suppressions) > 0 {
		props = &sarifRunProps{Suppressions: suppressions}
	}
	doc := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "swlint",
				InformationURI: "docs/STATIC_ANALYSIS.md",
				Version:        ToolVersion,
				Rules:          table,
			}},
			Results:    results,
			Properties: props,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// sarifURI renders a finding path relative to the module root with
// forward slashes, as SARIF artifact locations require.
func sarifURI(filename, moduleRoot string) string {
	if moduleRoot != "" {
		if rel, err := filepath.Rel(moduleRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}
