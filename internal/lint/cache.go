package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Result cache and parallel per-package analysis. A package's findings
// depend only on its own source, the source of its module-local
// dependencies (types flow across package boundaries), the rule
// configuration, and the analyzer version — so the cache key is a
// content hash over exactly those, and a cache hit skips parsing and
// type-checking entirely. Entries live under CacheDir (conventionally
// .swlint-cache/ at the module root, restored between CI runs) keyed
// by hash; the store is append-only and safe to delete at any time.

// CacheDirName is the conventional cache directory at the module root.
const CacheDirName = ".swlint-cache"

// RunOptions controls the parallel driver.
type RunOptions struct {
	// Jobs is the number of packages analyzed concurrently. Zero or
	// negative means GOMAXPROCS.
	Jobs int
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// Stats, when non-nil, receives run statistics (package and cache
	// counters); the per-rule finding counts are derivable from the
	// returned findings.
	Stats *RunStats
}

// RunStats carries the driver's counters for the CLI's -stats output.
type RunStats struct {
	// Packages is the number of package directories analyzed.
	Packages int
	// CacheHits is how many of them were served from the on-disk cache.
	CacheHits int
	// Suppressions is the module-wide per-rule //swlint:ignore census,
	// aggregated across packages (cache hits included — the counts ride
	// in the cache entries).
	Suppressions map[string]int
}

// RunWithOptions is Run with explicit parallelism and caching. Findings
// are returned sorted by position regardless of completion order, so
// output is deterministic — the analyzer holds itself to the invariant
// it enforces.
func RunWithOptions(cfg Config, patterns []string, opts RunOptions) ([]Finding, error) {
	loader := NewLoader(cfg.ModuleRoot, cfg.ModulePath)
	dirs, err := loader.ResolveDirs(patterns)
	if err != nil {
		return nil, err
	}
	rules := cfg.Rules
	if len(rules) == 0 {
		sums := NewSummarizer(cfg)
		if opts.CacheDir != "" {
			sums.SetCacheDir(opts.CacheDir)
		}
		rules = allRules(cfg, sums)
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(dirs) {
		jobs = len(dirs)
	}
	if jobs < 1 {
		jobs = 1
	}
	var store *cacheStore
	if opts.CacheDir != "" {
		store = &cacheStore{
			dir:    opts.CacheDir,
			fp:     configFingerprint(cfg, rules),
			hasher: newDepHasher(cfg.ModuleRoot, cfg.ModulePath),
		}
	}
	results := make([][]Finding, len(dirs))
	supps := make([]map[string]int, len(dirs))
	errs := make([]error, len(dirs))
	hits := make([]bool, len(dirs))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], supps[i], hits[i], errs[i] = checkDir(loader, rules, store, dir)
		}(i, dir)
	}
	wg.Wait()
	var findings []Finding
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		findings = append(findings, results[i]...)
	}
	if opts.Stats != nil {
		opts.Stats.Packages = len(dirs)
		opts.Stats.Suppressions = make(map[string]int)
		for i, hit := range hits {
			if hit {
				opts.Stats.CacheHits++
			}
			for rule, n := range supps[i] {
				opts.Stats.Suppressions[rule] += n
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// checkDir analyzes one package directory, consulting the cache when
// enabled. Cache failures (unreadable entries, hash errors) degrade to
// a live run — the cache is an accelerator, never a correctness
// dependency.
func checkDir(loader *Loader, rules []Rule, store *cacheStore, dir string) ([]Finding, map[string]int, bool, error) {
	var key string
	if store != nil {
		if k, err := store.key(dir); err == nil {
			key = k
			if findings, supp, ok := store.load(k); ok {
				return findings, supp, true, nil
			}
		}
	}
	p, err := loader.LoadDir(dir, "")
	if err != nil {
		return nil, nil, false, err
	}
	findings, supp := checkPackageWithSupp(rules, p)
	if store != nil && key != "" {
		store.save(key, findings, supp)
	}
	return findings, supp, false, nil
}

// configFingerprint digests everything about the configuration that
// can change findings, so edited configs and rule sets never reuse
// stale entries.
func configFingerprint(cfg Config, rules []Rule) string {
	h := sha256.New()
	w := func(ss ...string) {
		for _, s := range ss {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	w("swlint", ToolVersion, cfg.ModulePath, cfg.LDMPackage, cfg.CommPackage, cfg.VClockPackage, cfg.DMAPackage, cfg.SchedPackage)
	w(cfg.SimPackages...)
	w(cfg.CapacityExempt...)
	ids := make([]string, 0, len(rules))
	for _, r := range rules {
		ids = append(ids, r.ID())
	}
	sort.Strings(ids)
	w(ids...)
	return hex.EncodeToString(h.Sum(nil))
}

// depHasher computes, with memoization, each package directory's file
// hashes and module-local imports; the cache key for a directory
// digests its whole transitive module-local closure.
type depHasher struct {
	root   string
	module string
	mu     sync.Mutex
	dirs   map[string]*dirInfo
}

type dirInfo struct {
	files   []string // "relpath\x00contenthash" lines, sorted
	deps    []string // module-local dependency directories
	scanErr error
}

func newDepHasher(root, module string) *depHasher {
	return &depHasher{root: root, module: module, dirs: make(map[string]*dirInfo)}
}

// scan reads one directory's non-test Go files, hashing contents and
// collecting module-local imports with an imports-only parse.
func (h *depHasher) scan(dir string) *dirInfo {
	h.mu.Lock()
	if info, ok := h.dirs[dir]; ok {
		h.mu.Unlock()
		return info
	}
	h.mu.Unlock()
	info := h.scanUncached(dir)
	h.mu.Lock()
	h.dirs[dir] = info
	h.mu.Unlock()
	return info
}

func (h *depHasher) scanUncached(dir string) *dirInfo {
	info := &dirInfo{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		info.scanErr = err
		return info
	}
	fset := token.NewFileSet()
	depSet := make(map[string]bool)
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			info.scanErr = err
			return info
		}
		sum := sha256.Sum256(data)
		rel := path
		if r, err := filepath.Rel(h.root, path); err == nil {
			rel = filepath.ToSlash(r)
		}
		info.files = append(info.files, rel+"\x00"+hex.EncodeToString(sum[:]))
		f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
		if err != nil {
			info.scanErr = err
			return info
		}
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if ipath == h.module || strings.HasPrefix(ipath, h.module+"/") {
				rel := strings.TrimPrefix(strings.TrimPrefix(ipath, h.module), "/")
				depSet[filepath.Join(h.root, filepath.FromSlash(rel))] = true
			}
		}
	}
	sort.Strings(info.files)
	for d := range depSet {
		info.deps = append(info.deps, d)
	}
	sort.Strings(info.deps)
	return info
}

// closure returns the sorted file-hash lines of dir's transitive
// module-local closure.
func (h *depHasher) closure(dir string) ([]string, error) {
	seen := map[string]bool{dir: true}
	queue := []string{dir}
	var lines []string
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		info := h.scan(d)
		if info.scanErr != nil {
			return nil, info.scanErr
		}
		lines = append(lines, info.files...)
		for _, dep := range info.deps {
			if !seen[dep] {
				seen[dep] = true
				queue = append(queue, dep)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// cacheStore is the on-disk findings store.
type cacheStore struct {
	dir    string
	fp     string
	hasher *depHasher
}

// key computes the cache key for one package directory.
func (s *cacheStore) key(dir string) (string, error) {
	lines, err := s.hasher.closure(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(s.fp))
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is the stored value. Filenames inside are module-root
// relative so a cache restored into a different checkout path stays
// valid; load rehydrates them to absolute paths.
type cacheEntry struct {
	Findings []Finding `json:"findings"`
	// Suppressions is the package's per-rule //swlint:ignore census,
	// carried in the entry so a fully cached run still aggregates the
	// module-wide suppression report without parsing anything.
	Suppressions map[string]int `json:"suppressions,omitempty"`
}

func (s *cacheStore) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

func (s *cacheStore) load(key string) ([]Finding, map[string]int, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, false
	}
	for i := range e.Findings {
		s.rebase(&e.Findings[i], false)
	}
	return e.Findings, e.Suppressions, true
}

func (s *cacheStore) save(key string, findings []Finding, supp map[string]int) {
	e := cacheEntry{Findings: make([]Finding, len(findings)), Suppressions: supp}
	for i, f := range findings {
		if f.Fix != nil {
			fix := *f.Fix
			fix.Edits = append([]TextEdit(nil), f.Fix.Edits...)
			f.Fix = &fix
		}
		e.Findings[i] = f
		s.rebase(&e.Findings[i], true)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "entry-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// rebase rewrites the filenames inside a finding between absolute and
// module-root-relative form.
func (s *cacheStore) rebase(f *Finding, toRel bool) {
	conv := func(name string) string {
		if toRel {
			if rel, err := filepath.Rel(s.hasher.root, name); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
			return name
		}
		if filepath.IsAbs(name) {
			return name
		}
		return filepath.Join(s.hasher.root, filepath.FromSlash(name))
	}
	f.Pos.Filename = conv(f.Pos.Filename)
	if f.Fix != nil {
		for i := range f.Fix.Edits {
			f.Fix.Edits[i].Filename = conv(f.Fix.Edits[i].Filename)
		}
	}
}

// DefaultCacheDir returns the conventional cache location for a module.
func DefaultCacheDir(moduleRoot string) string {
	return filepath.Join(moduleRoot, CacheDirName)
}
