// Package guarded exercises rule guarded-field: fields annotated
// "guarded by <mu>" may only be accessed in functions that lock that
// mutex.
package guarded

import "sync"

type counter struct {
	mu  sync.Mutex
	n   int // guarded by mu
	hot int
}

// Add holds the documented mutex; not a finding.
func (c *counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek forgot the lock — the canonical finding.
func (c *counter) Peek() int {
	return c.n
}

// Race locks in the enclosing function, but the goroutine body is its
// own function and takes no lock of its own, so the access inside the
// literal is a finding.
func (c *counter) Race() {
	c.mu.Lock()
	go func() {
		c.n++
	}()
	c.mu.Unlock()
}

// Unguarded touches only the unannotated field; not a finding.
func (c *counter) Unguarded() int {
	return c.hot
}
