// Package goroutine seeds concurrency shapes for the goroutine-purity
// rule: bare shared writes, index scatters, guarded reduces, token
// channels, selects and fan-in merges.
package goroutine

import (
	"sort"
	"sync"
)

// shared is package state goroutines must not write bare.
var shared int

// BadShared writes package state from a goroutine.
func BadShared(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		shared = 1
	}()
	wg.Wait()
}

// Scatter writes each goroutine's own index: deterministic.
func Scatter(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i * 2
		}(i)
	}
	wg.Wait()
	return results
}

// Token signals completion with an empty-struct send.
func Token(run func()) {
	done := make(chan struct{})
	go func() {
		run()
		done <- struct{}{}
	}()
	<-done
}

// Race returns whichever arrives first; inherently schedule-dependent.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// GatherUnsorted merges worker results in arrival order.
func GatherUnsorted(ch chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		v := <-ch
		out = append(out, v)
	}
	return out
}

// GatherSorted merges, then imposes a total order before use.
func GatherSorted(ch chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		v := <-ch
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// DrainUnsorted collects a closed channel in arrival order.
func DrainUnsorted(ch chan string) []string {
	var out []string
	for v := range ch {
		out = append(out, v)
	}
	return out
}

// acc reduces worker contributions under a documented mutex.
type acc struct {
	mu  sync.Mutex
	sum int // guarded by mu
}

// GuardedReduce accumulates through the guarded field, the documented
// deterministic reduce for commutative operations.
func GuardedReduce(a *acc, vals []int) {
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			a.mu.Lock()
			a.sum += v
			a.mu.Unlock()
		}(v)
	}
	wg.Wait()
}

// counterBare has no annotation; goroutine writes to it are flagged.
type counterBare struct{ n int }

// BadField writes an unguarded shared field.
func BadField(c *counterBare) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.n++
	}()
	wg.Wait()
}
