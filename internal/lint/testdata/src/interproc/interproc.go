// Package interproc seeds helper-wrapped communicator shapes the v2
// intraprocedural analysis provably missed: collectives behind one and
// two levels of helpers, rank dependence through helper returns,
// impure helpers under map iteration and goroutines, and call-site
// suppression of summary-propagated findings.
package interproc

import "repro/internal/mpi"

var hits int

// broadcast wraps the collective one call deep.
func broadcast(c *mpi.Comm, data []float64) error {
	return c.Bcast(0, data, nil)
}

// reduceHelper wraps AllReduceSum; sumAll wraps it again (two deep).
func reduceHelper(c *mpi.Comm, data []float64) error {
	return c.AllReduceSum(data, nil)
}

func sumAll(c *mpi.Comm, data []float64) error {
	return reduceHelper(c, data)
}

// myRank derives a basic value from the calling rank.
func myRank(c *mpi.Comm) int {
	return c.Rank()
}

// bump writes package state: impure under goroutines and map ranges.
func bump() {
	hits++
}

// RootOnlyBroadcast reaches Bcast through the helper on the root arm
// only: flagged with the call chain, invisible to v2.
func RootOnlyBroadcast(c *mpi.Comm, data []float64) error {
	if c.Rank() == 0 {
		return broadcast(c, data)
	}
	return nil
}

// DeepLoneSum reaches AllReduceSum two helpers deep on one arm.
func DeepLoneSum(c *mpi.Comm, data []float64) error {
	if c.Rank() == 0 {
		return sumAll(c, data)
	}
	return nil
}

// HelperRankGate branches on a helper-returned rank: the Barrier under
// it is lone. v2 does not see the condition as rank-dependent.
func HelperRankGate(c *mpi.Comm) error {
	if myRank(c) == 0 {
		return c.Barrier()
	}
	return nil
}

// BothArms enters the same collective on both arms, one wrapped and
// one direct: matched, no finding.
func BothArms(c *mpi.Comm, data []float64) error {
	if c.Rank() == 0 {
		return broadcast(c, data)
	}
	return c.Bcast(0, data, nil)
}

// SuppressedAsym documents a deliberately asymmetric protocol at the
// call site; the suppression must silence the summary-propagated
// finding even though the collective lives in the callee.
func SuppressedAsym(c *mpi.Comm, data []float64) error {
	if c.Rank() == 0 {
		//swlint:ignore collective-match -- root-only notify; leaves drain via timeout
		return broadcast(c, data)
	}
	return nil
}

// RangeHelperEffect runs an impure helper under map iteration: the
// iteration order reaches package state through the call.
func RangeHelperEffect(m map[string]int) {
	for k := range m {
		_ = k
		bump()
	}
}

// GoImpureHelper spawns a helper that writes package state.
func GoImpureHelper() {
	go bump()
}
