// Package maporder seeds map-range loops with and without
// order-sensitive effects for the map-order rule.
package maporder

import "sort"

// counts is package state a loop body must not write in map order.
var counts int

// PkgWrite accumulates into a package variable in map order.
func PkgWrite(m map[string]int) {
	for _, v := range m {
		counts += v
	}
}

// CollectNoSort appends map values with no total-order sort after.
func CollectNoSort(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// CollectSorted is the blessed pattern: collect, then total-order sort.
func CollectSorted(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// CollectSortSlice sorts with a comparator, whose totality the
// analysis cannot check; the finding stands.
func CollectSortSlice(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count ranges keylessly; identical iterations cannot observe order.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Normalize writes only through the range key: per-entry, order-free.
func Normalize(m map[string][]int, scale map[string]int) {
	for k := range scale {
		m[k] = nil
	}
}

// Stream sends values in map order.
func Stream(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

// Max folds into a plain local, which the flow model leaves alone.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// tally is shared state reached through a pointer parameter.
type tally struct{ total int }

// FieldWrite accumulates into a struct field in map order.
func FieldWrite(t *tally, m map[string]int) {
	for _, v := range m {
		t.total += v
	}
}

// CondSort sorts the collected slice on only one path: the skipping
// path escapes unsorted, a CFG fact the v3 positional check (any sort
// textually after the loop) could not see.
func CondSort(m map[int]int, cleanup bool) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	if cleanup {
		sort.Ints(out)
	}
	return out
}

// SortBothArms sorts on every path out of the branch — the early
// return included — which the CFG check blesses just as it blesses
// the straight-line sort.
func SortBothArms(m map[int]int, early bool) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	if early {
		sort.Ints(out)
		return out
	}
	sort.Ints(out)
	return out
}
