// Package floateq exercises rule float-eq: exact comparisons of
// floating-point operands outside tolerant helpers.
package floateq

// Converged compares movement against the tolerance exactly — the
// forgotten-tolerance bug the rule exists for.
func Converged(movement, tolerance float64) bool {
	return movement == tolerance
}

// Moved inequality-compares float32 operands; same problem.
func Moved(a, b float32) bool {
	return a != b
}

// Same compares integers; not a finding.
func Same(a, b int) bool {
	return a == b
}

// ApproxEqual understands float comparison semantics and says so with
// the swlint:tolerant marker, which exempts the whole function.
func ApproxEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	return d < eps && -d < eps
}
