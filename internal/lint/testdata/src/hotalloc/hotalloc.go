// Package hotalloc seeds allocation shapes inside //swlint:hot loops
// for the hot-path-alloc rule, plus blessed preallocated and unmarked
// cold counterparts.
package hotalloc

// scratch allocates; calls to it from hot loops are flagged through
// its summary.
func scratch(n int) []float64 {
	return make([]float64, n)
}

// sink accepts an interface; concrete arguments box.
func sink(v any) { _ = v }

// MakeInLoop allocates a fresh buffer every iteration.
func MakeInLoop(n int) float64 {
	total := 0.0
	//swlint:hot
	for i := 0; i < n; i++ {
		buf := make([]float64, 4)
		total += buf[0] + float64(i)
	}
	return total
}

// HelperAlloc reaches the allocation through scratch.
func HelperAlloc(n int) float64 {
	total := 0.0
	//swlint:hot
	for i := 0; i < n; i++ {
		total += scratch(4)[0]
	}
	return total
}

// GrowingAppend appends without preallocating; the mechanical fix
// rewrites the declaration with the loop bound as capacity.
func GrowingAppend(xs []float64) []float64 {
	var out []float64
	//swlint:hot
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

// MapInLoop hashes per iteration.
func MapInLoop(keys []string) map[string]int {
	m := make(map[string]int)
	//swlint:hot
	for _, k := range keys {
		m[k]++
	}
	return m
}

// BoxInLoop boxes an int into an interface parameter per iteration.
func BoxInLoop(n int) {
	//swlint:hot
	for i := 0; i < n; i++ {
		sink(i)
	}
}

// Preallocated appends into a capacity-sized slice: blessed.
func Preallocated(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	//swlint:hot
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

// Cold allocates in an unmarked loop: out of scope.
func Cold(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}
